package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCleanModule runs the full suite over this repository: the gate
// must stay green, so findings here are real regressions.
func TestCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errb strings.Builder
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on the repository tree\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean run should print nothing, got:\n%s", out.String())
	}
}

// TestFindingsExitCode runs the suite over the known-bad fixture module
// and checks the text output contract.
func TestFindingsExitCode(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-rule", "floatcmp,exhaustive-enum",
		"../../internal/analysis/testdata/bad/..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"floats/floats.go:5: [floatcmp]",
		"floats/floats.go:8: [floatcmp]",
		"enums/enums.go:15: [exhaustive-enum]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "[ctxmut]") {
		t.Errorf("-rule filter leaked another rule:\n%s", s)
	}
}

// TestJSONShape checks the -json encoding.
func TestJSONShape(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "-rule", "floatcmp",
		"../../internal/analysis/testdata/bad/..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "floatcmp" || d.File == "" || d.Line == 0 || d.Col == 0 ||
			!strings.Contains(d.Message, "floating-point") {
			t.Errorf("malformed finding: %+v", d)
		}
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rule", "nosuchrule", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for unknown rule, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr should name the unknown rule, got:\n%s", errb.String())
	}
}

func TestListRules(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for -list, want 0", code)
	}
	for _, rule := range []string{"exhaustive-enum", "validate-coverage",
		"stats-drift", "floatcmp", "ctxmut",
		"resetcomplete", "guardedby", "hotpath", "ctxpoll",
		"lockorder", "atomicfield", "goleak", "digestcover"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list missing %s:\n%s", rule, out.String())
		}
	}
}

func TestNoModuleRoot(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"/"}, &out, &errb); code != 2 {
		t.Errorf("exit %d for a pattern outside any module, want 2", code)
	}
}
