// Command storemlpvet runs MLPsim's repo-specific static-analysis suite
// over the module: exhaustive-enum, validate-coverage, stats-drift,
// floatcmp, ctxmut, resetcomplete, guardedby, hotpath, ctxpoll,
// lockorder, atomicfield, goleak, digestcover, lockbalance,
// sharedcapture, mergecomplete and closeall (see DESIGN.md, "Static
// analysis", "Invariant analyzers", "Concurrency and digest-integrity
// analyzers" and "Flow-sensitive dataflow core").
//
// Usage:
//
//	storemlpvet [-rule r1,r2] [-json] [-list] [-timing] [./...]
//
// The package pattern argument is accepted for symmetry with go vet;
// the suite always analyzes the whole module enclosing the pattern's
// directory (the invariants it checks are cross-package). All rules
// share one type-checked load and one CFG cache; -timing prints each
// rule's marginal wall time to stderr. Exit status is 0 when clean, 1
// when findings are reported, 2 on a load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"storemlp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("storemlpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ruleFlag := fs.String("rule", "", "comma-separated rule names to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array")
	listFlag := fs.Bool("list", false, "list the rules and exit")
	timingFlag := fs.Bool("timing", false, "print per-rule wall time to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.DefaultAnalyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *ruleFlag != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*ruleFlag, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var filtered []analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				filtered = append(filtered, a)
				delete(want, a.Name())
			}
		}
		if len(want) > 0 {
			var unknown []string
			for r := range want {
				unknown = append(unknown, r)
			}
			fmt.Fprintf(stderr, "storemlpvet: unknown rule(s): %s (use -list)\n",
				strings.Join(unknown, ", "))
			return 2
		}
		analyzers = filtered
	}

	root, err := moduleRoot(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "storemlpvet: %v\n", err)
		return 2
	}
	loadStart := time.Now()
	mod, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "storemlpvet: %v\n", err)
		return 2
	}
	loadTime := time.Since(loadStart)

	diags, timings := analysis.RunWithTiming(mod, analyzers)
	relativize(diags, root)
	if *timingFlag {
		var total time.Duration
		fmt.Fprintf(stderr, "storemlpvet: module load (shared by all rules) %v\n", loadTime.Round(time.Millisecond))
		for _, tm := range timings {
			fmt.Fprintf(stderr, "storemlpvet: %-18s %v\n", tm.Rule, tm.Elapsed.Round(time.Millisecond))
			total += tm.Elapsed
		}
		fmt.Fprintf(stderr, "storemlpvet: %-18s %v (rules) / %v (with load)\n",
			"total", total.Round(time.Millisecond), (total + loadTime).Round(time.Millisecond))
	}

	if *jsonFlag {
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "storemlpvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleRoot resolves the positional package pattern (default ".") to
// the root of the enclosing module by walking up to the nearest go.mod.
func moduleRoot(args []string) (string, error) {
	dir := "."
	if len(args) > 0 {
		// Clean maps "" (from a bare "...") to "." and keeps "/" intact.
		dir = filepath.Clean(strings.TrimSuffix(args[0], "..."))
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found enclosing %s", abs)
		}
		d = parent
	}
}

// relativize rewrites diagnostic filenames relative to the module root
// for stable, readable output.
func relativize(diags []analysis.Diagnostic, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil &&
			!strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}
