package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"storemlp/internal/epoch"
	"storemlp/internal/obs"
	"storemlp/internal/server"
	"storemlp/internal/sim"

	"io"
	"log/slog"
)

// stubService serves a real server.Server with a fake engine: cold
// (nocache) requests pay sleep, warm ones hit the cache.
func stubService(t *testing.T, delay time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var execs atomic.Int64
	s := server.New(server.Config{
		Workers: 4,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Runner: func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error) {
			execs.Add(1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &epoch.Stats{Insts: spec.Insts, Epochs: spec.Insts / 100}, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, &execs
}

func TestGridShape(t *testing.T) {
	pts := grid([]string{"database", "tpcw", "specjbb", "specweb"}, 1000, 500, 0)
	if len(pts) != 64 {
		t.Fatalf("grid has %d points, want 64", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		key := p.Workload
		key += string(rune('0' + *p.Config.StorePrefetch))
		b, _ := json.Marshal(p.Config)
		seen[key+string(b)] = true
		if p.Insts != 1000 || p.Warm != 500 {
			t.Fatalf("point sizes wrong: %+v", p)
		}
	}
	if len(seen) != 64 {
		t.Fatalf("grid has %d distinct points, want 64", len(seen))
	}
}

func TestLoadColdVsWarm(t *testing.T) {
	ts, execs := stubService(t, 10*time.Millisecond)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_serve.json")

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL,
		"-workloads", "database,tpcw",
		"-insts", "1000", "-warm", "0",
		"-concurrency", "4", "-repeat", "2",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("mlpload: %v (output %s)", err, out.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 prefetch x 2 sb x 4 sq = 32-point grid.
	if rec.GridPoints != 32 {
		t.Errorf("grid points = %d, want 32", rec.GridPoints)
	}
	if rec.Cold.Requests != 64 || rec.Cold.Errors != 0 {
		t.Errorf("cold phase: %+v", rec.Cold)
	}
	if rec.WarmPhase.Requests != 64 || rec.WarmPhase.Errors != 0 {
		t.Errorf("warm phase: %+v", rec.WarmPhase)
	}
	// Cold executes every request; warm executes only the priming pass.
	// 64 cold + 32 priming = 96 engine runs total.
	if got := execs.Load(); got != 96 {
		t.Errorf("engine executions = %d, want 96", got)
	}
	if rec.WarmPhase.Cached != 64 {
		t.Errorf("warm cached = %d, want 64", rec.WarmPhase.Cached)
	}
	if rec.Speedup <= 1 {
		t.Errorf("speedup = %.2f, want > 1 (cold pays %v per request)", rec.Speedup, 10*time.Millisecond)
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Errorf("output missing speedup line: %s", out.String())
	}
}

func TestLoadServerUnreachable(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", "http://127.0.0.1:1", "-timeout", "1s"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatalf("err = %v, want unreachable", err)
	}
}

func TestLoadFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-mode", "hot"},
		{"-concurrency", "0"},
		{"-repeat", "0"},
		{"-workloads", " , "},
	} {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestLatencyHistogram checks the streaming estimator the phases use:
// percentiles come out ordered and within one bucket of the truth.
func TestLatencyHistogram(t *testing.T) {
	h := obs.NewHistogram(latencyBuckets)
	// 90 fast requests at ~1ms, 10 slow at ~100ms.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.100)
	}
	p50 := h.Quantile(0.50) * 1000
	p95 := h.Quantile(0.95) * 1000
	p99 := h.Quantile(0.99) * 1000
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles unordered: p50=%.3f p95=%.3f p99=%.3f", p50, p95, p99)
	}
	if p50 < 0.5 || p50 > 2 {
		t.Errorf("p50 = %.3fms, want ~1ms", p50)
	}
	if p99 < 50 || p99 > 200 {
		t.Errorf("p99 = %.3fms, want ~100ms", p99)
	}
	if obs.NewHistogram(latencyBuckets).Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
}

// TestScrapeMode: -scrape validates the daemon's /metrics exposition
// and trace export after the load phases.
func TestScrapeMode(t *testing.T) {
	ts, _ := stubService(t, 0)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL,
		"-workloads", "database",
		"-insts", "1000", "-warm", "0",
		"-concurrency", "2", "-repeat", "1",
		"-mode", "warm",
		"-scrape",
	}, &out)
	if err != nil {
		t.Fatalf("mlpload -scrape: %v (output %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "metric families OK") {
		t.Errorf("output missing scrape summary:\n%s", out.String())
	}
}
