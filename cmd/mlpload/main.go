// Command mlpload load-tests a running mlpsimd instance with the
// paper's Figure-2-style configuration grid and reports throughput and
// tail latency for two phases:
//
//   - cold: every request carries nocache, so each one costs a full
//     engine execution — the floor the serving layer starts from.
//   - warm: the same grid repeated through the digest cache and
//     coalescing path, where repeats become map lookups.
//
// The speedup ratio between the phases is the serving layer's win on
// repeated sweeps. Per-request latencies stream into a fixed-bucket
// histogram (internal/obs) from which the reported p50/p95/p99 are
// estimated; -json writes the measurements as a benchmark record
// (scripts/bench.sh stores it as BENCH_serve.json), including a
// per-phase stage breakdown (parse / cache_probe / pool_wait /
// simulate / ...) derived from the daemon's mlpsimd_stage_seconds
// histogram deltas around each phase. -scrape additionally validates
// the daemon's /metrics output against the Prometheus text exposition
// grammar and checks the /debug/obs/trace export; -slow-out saves the
// daemon's /debug/obs/slow listing (the slowest requests with their
// per-stage timings) as a post-run artifact.
//
// Examples:
//
//	mlpload -addr http://127.0.0.1:7743
//	mlpload -addr http://127.0.0.1:7743 -repeat 5 -concurrency 16 -json BENCH_serve.json
//	mlpload -addr http://127.0.0.1:7743 -mode warm -scrape -slow-out slow.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"storemlp/internal/obs"
	"storemlp/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mlpload: %v\n", err)
		os.Exit(1)
	}
}

// grid builds the Figure-2-style sweep: every workload crossed with
// store-prefetch policy, store-buffer size, and store-queue depth.
// The defaults give 4 x 2 x 2 x 4 = 64 points. parallel, when nonzero,
// is forwarded on every point so the server splits each run into that
// many segments (0 leaves the field out; the server default applies).
func grid(workloads []string, insts, warm int64, parallel int) []server.RunRequest {
	prefetches := []int{0, 1}
	sbs := []int{8, 16}
	sqs := []int{16, 32, 64, 256}
	var pts []server.RunRequest
	for _, w := range workloads {
		for _, sp := range prefetches {
			for _, sb := range sbs {
				for _, sq := range sqs {
					sp, sb, sq := sp, sb, sq
					pts = append(pts, server.RunRequest{
						Workload: w,
						Insts:    insts,
						Warm:     warm,
						Config:   &server.ConfigPatch{StorePrefetch: &sp, StoreBuffer: &sb, StoreQueue: &sq},
						Parallel: parallel,
					})
				}
			}
		}
	}
	return pts
}

// phaseStats summarizes one load phase.
type phaseStats struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	ElapsedS   float64 `json:"elapsed_s"`
	Throughput float64 `json:"throughput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	Cached     int     `json:"cached"`
	Coalesced  int     `json:"coalesced"`
	// Segments is the largest per-run segment fan-out the server
	// reported for this phase (1 = every run executed serially).
	Segments int `json:"segments,omitempty"`
	// Stages decomposes the phase's server-side time by pipeline stage
	// (parse, cache_probe, pool_wait, simulate, ...), derived from the
	// daemon's mlpsimd_stage_seconds histogram deltas around the phase.
	// Absent when the server predates stage metrics or has span tracing
	// disabled.
	Stages map[string]stageAgg `json:"stages,omitempty"`
}

// stageAgg aggregates one pipeline stage over a phase.
type stageAgg struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// stageSample is one histogram's cumulative state at scrape time.
type stageSample struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

// stageCounts maps stage name -> cumulative histogram state.
type stageCounts map[string]stageSample

// scrapeStages reads the per-stage latency histograms out of the
// daemon's /debug/obs/vars JSON view.
func scrapeStages(ctx context.Context, client *http.Client, base string) (stageCounts, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/obs/vars", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/obs/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, err
	}
	const prefix = `mlpsimd_stage_seconds{stage="`
	out := make(stageCounts)
	for key, raw := range vars {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(key, prefix), `"}`)
		var h stageSample
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, fmt.Errorf("%s: %w", key, err)
		}
		out[stage] = h
	}
	return out, nil
}

// stageDelta converts a before/after scrape pair into the phase's
// stage breakdown, dropping stages that saw no traffic. A nil result
// means the server exposes no stage histograms at all.
func stageDelta(before, after stageCounts) map[string]stageAgg {
	out := make(map[string]stageAgg)
	for name, a := range after {
		b := before[name] // zero value when the stage first appeared mid-phase
		n := a.Count - b.Count
		if n <= 0 {
			continue
		}
		total := (a.Sum - b.Sum) * 1000
		out[name] = stageAgg{Count: n, TotalMS: total, MeanMS: total / float64(n)}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// formatStages renders the breakdown biggest-first for the phase line.
func formatStages(stages map[string]stageAgg) string {
	names := make([]string, 0, len(stages))
	for n := range stages {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := stages[names[i]], stages[names[j]]
		if a.TotalMS > b.TotalMS {
			return true
		}
		if a.TotalMS < b.TotalMS {
			return false
		}
		return names[i] < names[j]
	})
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%.1fms", n, stages[n].TotalMS)
	}
	return strings.Join(parts, " ")
}

// benchRecord is the -json output shape.
type benchRecord struct {
	Bench       string     `json:"bench"`
	GridPoints  int        `json:"grid_points"`
	Repeat      int        `json:"repeat"`
	Concurrency int        `json:"concurrency"`
	Insts       int64      `json:"insts"`
	Warm        int64      `json:"warm"`
	Cold        phaseStats `json:"cold"`
	WarmPhase   phaseStats `json:"warm_phase"`
	Speedup     float64    `json:"speedup"`
}

// latencyBuckets spans 0.2ms (cache hits) through ~26s (deep cold
// simulations) in x1.4 steps — fine enough for ~15% quantile error,
// constant memory regardless of request count.
var latencyBuckets = obs.ExpBuckets(0.0002, 1.4, 36)

// firePhase posts every request through a bounded worker pool and
// aggregates latency/throughput. Latencies stream into a fixed-bucket
// histogram, so memory stays constant however long the phase runs and
// the percentiles come from the same estimator Prometheus would apply
// to the server's own histogram.
func firePhase(ctx context.Context, client *http.Client, url string, reqs []server.RunRequest, concurrency int) (phaseStats, error) {
	jobs := make(chan []byte)
	hist := obs.NewHistogram(latencyBuckets)
	var st phaseStats
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error

	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				t0 := time.Now()
				resp, err := post(ctx, client, url, body)
				lat := time.Since(t0)
				if err == nil {
					hist.Observe(lat.Seconds())
				}
				mu.Lock()
				if err != nil {
					st.Errors++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					if resp.Cached {
						st.Cached++
					}
					if resp.Coalesced {
						st.Coalesced++
					}
					if resp.Result.Segments > st.Segments {
						st.Segments = resp.Result.Segments
					}
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	var encErr error
drain:
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			encErr = err
			break
		}
		select {
		case jobs <- b:
		case <-ctx.Done():
			encErr = ctx.Err()
			break drain
		}
	}
	close(jobs)
	wg.Wait()
	st.ElapsedS = time.Since(start).Seconds()
	if encErr != nil {
		return st, encErr
	}
	if firstErr != nil {
		return st, firstErr
	}

	st.Requests = int(hist.Count())
	if st.ElapsedS > 0 {
		st.Throughput = float64(st.Requests) / st.ElapsedS
	}
	st.P50MS = hist.Quantile(0.50) * 1000
	st.P95MS = hist.Quantile(0.95) * 1000
	st.P99MS = hist.Quantile(0.99) * 1000
	return st, nil
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (*server.RunResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var rr server.RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// fetchSlow saves the daemon's slowest-request listing — the post-run
// artifact that explains WHERE the tail latency went, request by
// request, stage by stage.
func fetchSlow(ctx context.Context, client *http.Client, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/obs/slow", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("GET /debug/obs/slow: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/obs/slow: status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return os.WriteFile(path, raw, 0o644)
}

// scrapeCheck validates the daemon's observability surface after the
// load phases: /metrics must parse cleanly under the Prometheus text
// exposition grammar and /debug/obs/trace must serve valid Chrome
// trace JSON, non-empty when this invocation generated traffic.
func scrapeCheck(ctx context.Context, client *http.Client, base string, wantTraffic bool, stdout io.Writer) error {
	get := func(path string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return nil, err
		}
		return client.Do(req)
	}

	resp, err := get("/metrics")
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	fams, err := obs.ValidateExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics violates the exposition grammar: %w", err)
	}

	resp, err = get("/debug/obs/trace")
	if err != nil {
		return fmt.Errorf("GET /debug/obs/trace: %w", err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/debug/obs/trace is not valid trace JSON: %w", err)
	}
	if wantTraffic && len(tr.TraceEvents) == 0 {
		return fmt.Errorf("/debug/obs/trace is empty after generating traffic")
	}
	fmt.Fprintf(stdout, "scrape: %d metric families OK, %d trace events\n", len(fams), len(tr.TraceEvents))
	return nil
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlpload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:7743", "mlpsimd base URL")
		workloadCSV = fs.String("workloads", "database,tpcw,specjbb,specweb", "comma-separated workloads")
		insts       = fs.Int64("insts", 200_000, "measured instructions per point")
		warm        = fs.Int64("warm", 100_000, "warmup instructions per point")
		concurrency = fs.Int("concurrency", 8, "in-flight requests")
		repeat      = fs.Int("repeat", 3, "timed passes over the grid per phase")
		mode        = fs.String("mode", "both", "phases to run: cold, warm, or both")
		jsonPath    = fs.String("json", "", "write measurements to this file (benchmark record)")
		parallel    = fs.Int("parallel", 0, "segment count forwarded on every request (0 = let the server default decide)")
		reqTimeout  = fs.Duration("timeout", 5*time.Minute, "per-request timeout")
		scrape      = fs.Bool("scrape", false, "after the load phases, validate /metrics against the exposition grammar and the /debug/obs/trace export")
		slowOut     = fs.String("slow-out", "", "after the load phases, write the daemon's /debug/obs/slow JSON (slowest requests with stage breakdowns) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 || *repeat < 1 {
		return fmt.Errorf("concurrency and repeat must be >= 1")
	}
	switch *mode {
	case "cold", "warm", "both":
	default:
		return fmt.Errorf("unknown mode %q (want cold, warm, or both)", *mode)
	}

	var workloads []string
	for _, w := range strings.Split(*workloadCSV, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workloads = append(workloads, w)
		}
	}
	if len(workloads) == 0 {
		return fmt.Errorf("no workloads")
	}

	if *parallel < 0 {
		return fmt.Errorf("negative -parallel %d", *parallel)
	}
	base := grid(workloads, *insts, *warm, *parallel)
	url := strings.TrimRight(*addr, "/") + "/v1/run"
	client := &http.Client{Timeout: *reqTimeout}

	// The server must be up before we measure anything.
	hc, err := client.Get(strings.TrimRight(*addr, "/") + "/healthz")
	if err != nil {
		return fmt.Errorf("mlpsimd not reachable at %s: %w", *addr, err)
	}
	hc.Body.Close()

	rec := benchRecord{
		Bench:      "serve",
		GridPoints: len(base),
		Repeat:     *repeat, Concurrency: *concurrency,
		Insts: *insts, Warm: *warm,
	}
	fmt.Fprintf(stdout, "grid: %d points (%s), %d passes, concurrency %d\n",
		len(base), strings.Join(workloads, ","), *repeat, *concurrency)

	baseURL := strings.TrimRight(*addr, "/")
	// timedPhase brackets a measured phase with /debug/obs/vars scrapes
	// so the stage histogram deltas attribute the phase's server-side
	// time: parse vs cache probe vs queue wait vs simulation. A server
	// without stage metrics degrades to a one-time warning, never a
	// failed load run.
	stageWarned := false
	timedPhase := func(reqs []server.RunRequest) (phaseStats, error) {
		before, errBefore := scrapeStages(ctx, client, baseURL)
		st, err := firePhase(ctx, client, url, reqs, *concurrency)
		if err != nil {
			return st, err
		}
		after, errAfter := scrapeStages(ctx, client, baseURL)
		if errBefore != nil || errAfter != nil {
			if !stageWarned {
				stageWarned = true
				scrapeErr := errBefore
				if scrapeErr == nil {
					scrapeErr = errAfter
				}
				fmt.Fprintf(stdout, "warning: stage breakdown unavailable: %v\n", scrapeErr)
			}
			return st, nil
		}
		st.Stages = stageDelta(before, after)
		return st, nil
	}

	repeated := func(nocache bool) []server.RunRequest {
		var reqs []server.RunRequest
		for pass := 0; pass < *repeat; pass++ {
			for _, r := range base {
				r.NoCache = nocache
				reqs = append(reqs, r)
			}
		}
		return reqs
	}

	if *mode == "cold" || *mode == "both" {
		st, err := timedPhase(repeated(true))
		if err != nil {
			return fmt.Errorf("cold phase: %w", err)
		}
		rec.Cold = st
		fmt.Fprintf(stdout, "cold: %d reqs in %.2fs  %.1f req/s  p50=%.1fms p95=%.1fms p99=%.1fms  segments=%d\n",
			st.Requests, st.ElapsedS, st.Throughput, st.P50MS, st.P95MS, st.P99MS, st.Segments)
		if len(st.Stages) > 0 {
			fmt.Fprintf(stdout, "cold stages: %s\n", formatStages(st.Stages))
		}
	}

	if *mode == "warm" || *mode == "both" {
		// Untimed priming pass fills the cache; the timed passes then
		// measure the steady warm state.
		if _, err := firePhase(ctx, client, url, base, *concurrency); err != nil {
			return fmt.Errorf("warm priming: %w", err)
		}
		st, err := timedPhase(repeated(false))
		if err != nil {
			return fmt.Errorf("warm phase: %w", err)
		}
		rec.WarmPhase = st
		fmt.Fprintf(stdout, "warm: %d reqs in %.2fs  %.1f req/s  p50=%.1fms p95=%.1fms p99=%.1fms  segments=%d  (%d cached, %d coalesced)\n",
			st.Requests, st.ElapsedS, st.Throughput, st.P50MS, st.P95MS, st.P99MS, st.Segments, st.Cached, st.Coalesced)
		if len(st.Stages) > 0 {
			fmt.Fprintf(stdout, "warm stages: %s\n", formatStages(st.Stages))
		}
	}

	if rec.Cold.Throughput > 0 && rec.WarmPhase.Throughput > 0 {
		rec.Speedup = rec.WarmPhase.Throughput / rec.Cold.Throughput
		fmt.Fprintf(stdout, "warm/cold speedup: %.1fx\n", rec.Speedup)
	}

	if *scrape {
		wantTraffic := rec.Cold.Requests+rec.WarmPhase.Requests > 0
		if err := scrapeCheck(ctx, client, baseURL, wantTraffic, stdout); err != nil {
			return err
		}
	}

	if *slowOut != "" {
		if err := fetchSlow(ctx, client, baseURL, *slowOut); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *slowOut)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	return nil
}
