// Command benchdiff compares fresh benchmark JSON (bench.sh output,
// BENCH_engine.json / BENCH_serve.json shape) against committed
// baselines and flags regressions with direction-aware per-metric
// tolerances: ns_per_op going UP is a regression, speedup_vs_baseline
// going DOWN is a regression, and metrics without a rule are
// informational only.
//
// Usage:
//
//	benchdiff [-mode gate|report] [-slack f] [-v] base.json new.json [base2.json new2.json ...]
//
// Files are compared pairwise. Exit status: 0 clean, 1 at least one
// regression in gate mode, 2 usage or I/O error. Report mode prints
// the same findings but always exits 0 (for smoke-sized runs whose
// numbers are too noisy to gate on); -slack multiplies every tolerance
// for loaded CI machines. DESIGN.md §17 documents the tolerance table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// A rule classifies metrics by a substring of the final path component
// and says which direction is a regression and how much relative drift
// is tolerated. First match wins, so more specific substrings come
// first.
type rule struct {
	match string
	// worse is +1 when a larger value is a regression (latency,
	// allocations), -1 when a smaller value is (throughput, speedup).
	worse float64
	tol   float64
}

// rules is the tolerance table (mirrored in DESIGN.md §17). The order
// matters: "insts_per_sec" must match before a hypothetical bare
// "insts" rule would, and exact-ish names precede generic suffixes.
var rules = []rule{
	{"errors", +1, 0},             // any new benchmark error gates
	{"allocs_per_op", +1, 0.01},   // allocation counts are near-deterministic
	{"ns_per_op", +1, 0.10},       // includes merge_ns_per_op, traced_ns_per_op
	{"insts_per_sec", -1, 0.10},   // throughput: down is a regression
	{"throughput_rps", -1, 0.25},  // serving throughput is noisier
	{"speedup", -1, 0.10},         // speedup_vs_baseline, speedup_vs_serial, speedup
	{"tracer_overhead", +1, 0.50}, // small fraction; only gate on blowups
	{"_ms", +1, 0.25},             // p50_ms/p95_ms/p99_ms latency percentiles
}

// ruleFor returns the first rule whose match is a substring of the
// metric's final path component, or nil (informational metric).
func ruleFor(path string) *rule {
	last := path
	if i := strings.LastIndexByte(last, '.'); i >= 0 {
		last = last[i+1:]
	}
	for i := range rules {
		if strings.Contains(last, rules[i].match) {
			return &rules[i]
		}
	}
	return nil
}

// flatten walks decoded JSON, collecting every numeric leaf under its
// dotted path ("parallel.segments[2].ns_per_op"). Non-numeric leaves
// (strings, bools, nulls) are ignored: the diff is about measurements.
func flatten(prefix string, v interface{}, out map[string]float64) {
	switch x := v.(type) {
	case map[string]interface{}:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, sub, out)
		}
	case []interface{}:
		for i, sub := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	case float64:
		out[prefix] = x
	}
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v interface{}
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]float64)
	flatten("", v, out)
	return out, nil
}

// finding is one gated metric whose drift exceeded its tolerance.
type finding struct {
	path        string
	base, fresh float64
	drift, tol  float64 // drift > 0 means "worse", in the rule's direction
}

// diff compares one baseline/fresh pair and returns regressions.
// Metrics present on only one side are reported to w but never gate:
// a new benchmark field must not fail CI retroactively.
func diff(base, fresh map[string]float64, slack float64, verbose bool, tag string, w io.Writer) []finding {
	paths := make([]string, 0, len(base))
	for p := range base {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var regs []finding
	for _, p := range paths {
		b := base[p]
		f, ok := fresh[p]
		if !ok {
			fmt.Fprintf(w, "NOTE    %s.%s: metric missing from fresh run\n", tag, p)
			continue
		}
		r := ruleFor(p)
		if r == nil {
			continue // informational metric, no direction defined
		}
		var drift float64
		if b > 0 || b < 0 {
			drift = r.worse * (f - b) / b
		} else {
			// Zero baseline (errors): anything nonzero is an infinite
			// relative drift in the worse direction, a clean
			// improvement otherwise; f == b == 0 stays drift 0.
			drift = r.worse * (f - b) * 1e12
		}
		tol := r.tol * slack
		switch {
		case drift > tol:
			regs = append(regs, finding{path: tag + "." + p, base: b, fresh: f, drift: drift, tol: tol})
			fmt.Fprintf(w, "REGRESS %s.%s: %g -> %g (%+.1f%% worse, tol %.0f%%)\n",
				tag, p, b, f, drift*100, tol*100)
		case verbose && drift < -tol:
			fmt.Fprintf(w, "IMPROVE %s.%s: %g -> %g (%.1f%% better)\n", tag, p, b, f, -drift*100)
		}
	}
	newPaths := make([]string, 0)
	for p := range fresh {
		if _, ok := base[p]; !ok {
			newPaths = append(newPaths, p)
		}
	}
	sort.Strings(newPaths)
	for _, p := range newPaths {
		fmt.Fprintf(w, "NOTE    %s.%s: new metric (no baseline)\n", tag, p)
	}
	return regs
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	mode := fs.String("mode", "gate", "gate (regressions exit 1) or report (always exit 0)")
	slack := fs.Float64("slack", 1.0, "multiply every tolerance (noisy or smoke-sized runs)")
	verbose := fs.Bool("v", false, "also print improvements")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: benchdiff [-mode gate|report] [-slack f] [-v] base.json new.json [base2 new2 ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mode != "gate" && *mode != "report" {
		fmt.Fprintf(errw, "benchdiff: unknown -mode %q (want gate or report)\n", *mode)
		return 2
	}
	files := fs.Args()
	if len(files) == 0 || len(files)%2 != 0 {
		fs.Usage()
		return 2
	}
	compared, regressed := 0, 0
	for i := 0; i < len(files); i += 2 {
		base, err := load(files[i])
		if err != nil {
			fmt.Fprintf(errw, "benchdiff: %v\n", err)
			return 2
		}
		fresh, err := load(files[i+1])
		if err != nil {
			fmt.Fprintf(errw, "benchdiff: %v\n", err)
			return 2
		}
		tag := strings.TrimSuffix(filepath.Base(files[i]), ".json")
		regressed += len(diff(base, fresh, *slack, *verbose, tag, out))
		compared += len(base)
	}
	fmt.Fprintf(out, "benchdiff: %d metrics compared, %d regressions (mode=%s, slack=%g)\n",
		compared, regressed, *mode, *slack)
	if regressed > 0 && *mode == "gate" {
		return 1
	}
	return 0
}
