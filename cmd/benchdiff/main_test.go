package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlattenPaths(t *testing.T) {
	m, err := load("testdata/engine_base.json")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"engine.ns_per_op":                       40000000,
		"parallel.merge_ns_per_op":               300,
		"parallel.segments[1].ns_per_op":         22000000,
		"parallel.segments[1].speedup_vs_serial": 1.8,
	}
	for p, v := range want {
		if got, ok := m[p]; !ok || got != v {
			t.Errorf("flatten[%q] = %v, %v; want %v, true", p, got, ok, v)
		}
	}
	if _, ok := m["bench"]; ok {
		t.Error("string leaf should not flatten to a metric")
	}
}

func TestRuleDirections(t *testing.T) {
	cases := []struct {
		path  string
		worse float64 // 0 = informational (no rule)
	}{
		{"engine.ns_per_op", +1},
		{"parallel.merge_ns_per_op", +1},
		{"engine.allocs_per_op", +1},
		{"engine.insts_per_sec", -1},
		{"engine.speedup_vs_baseline", -1},
		{"speedup", -1},
		{"cold.p99_ms", +1},
		{"cold.throughput_rps", -1},
		{"cold.errors", +1},
		{"engine.tracer_overhead", +1},
		{"engine.insts_per_op", 0}, // workload size, not a measurement
		{"parallel.num_cpu", 0},
		{"grid_points", 0},
	}
	for _, c := range cases {
		r := ruleFor(c.path)
		switch {
		case c.worse == 0 && r != nil:
			t.Errorf("ruleFor(%q) = %+v, want informational", c.path, r)
		case c.worse != 0 && r == nil:
			t.Errorf("ruleFor(%q) = nil, want worse=%v", c.path, c.worse)
		case r != nil && r.worse != c.worse:
			t.Errorf("ruleFor(%q).worse = %v, want %v", c.path, r.worse, c.worse)
		}
	}
}

// The acceptance fixture: a 20% ns_per_op regression (tolerance 10%)
// must trip the gate, and the matching throughput/speedup drops ride
// along. Report mode sees the same findings but exits 0.
func TestGateOnRegressionFixture(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-mode", "gate", "testdata/engine_base.json", "testdata/engine_regress.json"}, &out, &errw)
	if code != 1 {
		t.Fatalf("gate mode exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, want := range []string{
		"REGRESS engine_base.engine.ns_per_op",
		"REGRESS engine_base.engine.insts_per_sec",
		"REGRESS engine_base.engine.speedup_vs_baseline",
		"REGRESS engine_base.parallel.segments[0].ns_per_op",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Within-tolerance drift must stay quiet: merge 300->301,
	// segments[1] 22.0ms->22.1ms, speedup_vs_serial up.
	if strings.Contains(out.String(), "segments[1]") {
		t.Errorf("within-tolerance metric flagged:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{"-mode", "report", "testdata/engine_base.json", "testdata/engine_regress.json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("report mode exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "REGRESS") {
		t.Error("report mode should still print the regressions")
	}
}

// The committed baselines compared against themselves are clean — the
// shape bench.sh emits flows through flatten/diff without findings.
func TestCleanOnCommittedBaselines(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"../../BENCH_engine.json", "../../BENCH_engine.json",
		"../../BENCH_serve.json", "../../BENCH_serve.json",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if strings.Contains(out.String(), "REGRESS") || strings.Contains(out.String(), "NOTE") {
		t.Errorf("self-diff should be silent:\n%s", out.String())
	}
}

func TestSlackWidensTolerance(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-slack", "3", "testdata/engine_base.json", "testdata/engine_regress.json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("slack 3 exit = %d, want 0 (20%% drift under 30%% tolerance)\n%s", code, out.String())
	}
}

func TestZeroBaselineErrorsGate(t *testing.T) {
	base := map[string]float64{"cold.errors": 0}
	fresh := map[string]float64{"cold.errors": 1}
	var out bytes.Buffer
	if regs := diff(base, fresh, 1, false, "serve", &out); len(regs) != 1 {
		t.Fatalf("errors 0->1 findings = %d, want 1\n%s", len(regs), out.String())
	}
}

func TestMissingMetricNotesButPasses(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"testdata/serve_base.json", "testdata/engine_base.json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("disjoint files exit = %d, want 0 (missing metrics never gate)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "metric missing from fresh run") ||
		!strings.Contains(out.String(), "new metric (no baseline)") {
		t.Errorf("expected missing/new metric notes:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Errorf("odd file count exit = %d, want 2", code)
	}
	if code := run([]string{"-mode", "panic", "a.json", "b.json"}, &out, &errw); code != 2 {
		t.Errorf("bad mode exit = %d, want 2", code)
	}
	if code := run([]string{"testdata/nope.json", "testdata/engine_base.json"}, &out, &errw); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
}
