// Command mlpsimd is the long-running simulation service: an HTTP JSON
// daemon in front of the epoch MLP engine. It accepts single-run and
// sweep requests, executes them on a bounded worker pool, coalesces
// identical concurrent requests onto one engine execution, caches
// results by canonical config digest, and exposes Prometheus-text
// metrics.
//
// Endpoints:
//
//	POST /v1/run          one simulation point
//	POST /v1/sweep        many points, deduplicated and pool-bounded
//	GET  /healthz         liveness + pool/cache summary
//	GET  /metrics         Prometheus text exposition
//	GET  /debug/obs/trace run tracer as Chrome trace_event JSON
//	GET  /debug/obs/runs  live engine progress snapshots
//	GET  /debug/obs/vars  the metrics registry as JSON
//	GET  /debug/obs/slow  slowest requests with per-stage timings
//	GET  /debug/obs/req   one request's span tree as Chrome trace JSON (?id=<trace_id>)
//
// Every non-probe request gets a span tree (X-Trace-Id response
// header, trace_id on the completion log line); the slowest are
// retained in a bounded ring sized by -slow for post-hoc latency
// attribution. README "Explaining a slow request" walks the flow.
//
// Examples:
//
//	mlpsimd -addr :7743
//	mlpsimd -addr 127.0.0.1:0 -workers 8 -cache 1024 -log json
//	mlpsimd -addr :7743 -trace-out run.trace.json
//	curl -s localhost:7743/v1/run -d '{"workload":"tpcw","insts":500000}'
//	curl -s localhost:7743/debug/obs/slow | head
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener closes, in-
// flight requests drain (bounded by -drain), then remaining simulations
// are aborted via context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"storemlp/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mlpsimd: %v\n", err)
		os.Exit(1)
	}
}

// onReady is invoked with the bound address once the listener is up.
// Tests (and the check.sh smoke test via the printed line) use it to
// find a :0 port.
var onReady = func(addr string) {}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlpsimd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":7743", "listen address (host:port, :0 picks a free port)")
		workers  = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache    = fs.Int("cache", 4096, "result-cache entries (negative disables caching)")
		maxI     = fs.Int64("max-insts", 100_000_000, "per-request insts+warm ceiling")
		reqTO    = fs.Duration("timeout", 120*time.Second, "default per-request timeout")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		logFmt   = fs.String("log", "text", "log format: text or json")
		verbose  = fs.Bool("v", false, "debug logging (includes healthz/metrics probes)")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling; leave off in production)")
		trcCap   = fs.Int("trace-events", 0, "run-tracer ring capacity (0 = default 16384, negative disables tracing)")
		trcOut   = fs.String("trace-out", "", "write the tracer's Chrome trace_event JSON to this file on graceful shutdown")
		parallel = fs.Int("parallel", 1, "segments per simulation when a request carries no parallel field (0 = one per CPU core, 1 = serial)")
		slowN    = fs.Int("slow", 0, "slowest-request ring size behind /debug/obs/slow (0 = default 32, negative disables request span tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("negative -parallel %d", *parallel)
	}
	if *parallel == 0 {
		*parallel = runtime.NumCPU()
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	var handler slog.Handler
	switch *logFmt {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFmt)
	}
	log := slog.New(handler)

	svc := server.New(server.Config{
		Workers:         *workers,
		CacheEntries:    *cache,
		MaxInsts:        *maxI,
		DefaultTimeout:  *reqTO,
		Logger:          log,
		TraceEvents:     *trcCap,
		DefaultParallel: *parallel,
		SlowRequests:    *slowN,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	h := svc.Handler()
	if *pprofOn {
		// The service handler owns "/"; graft the pprof endpoints onto a
		// wrapping mux so nothing is exposed unless the flag is set.
		mux := http.NewServeMux()
		mux.Handle("/", h)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		h = mux
	}
	httpSrv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	bound := ln.Addr().String()
	fmt.Fprintf(stdout, "mlpsimd listening on %s\n", bound)
	log.Info("mlpsimd up", "addr", bound)
	onReady(bound)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight HTTP requests
	// (each still honors its own deadline), then abort whatever remains.
	log.Info("shutting down", "drain", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	svc.Close()
	if shutErr != nil && !errors.Is(shutErr, context.DeadlineExceeded) {
		return shutErr
	}
	if shutErr != nil {
		log.Warn("drain budget exceeded; aborted remaining simulations")
	}
	if *trcOut != "" {
		if err := dumpTrace(svc, *trcOut); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		log.Info("trace written", "path", *trcOut)
	}
	fmt.Fprintln(stdout, "mlpsimd stopped")
	return nil
}

// dumpTrace writes the service tracer's retained events as Chrome
// trace_event JSON (load it in chrome://tracing or Perfetto). A
// disabled tracer writes a valid empty trace.
func dumpTrace(svc *server.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := svc.Tracer().WriteChrome(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
