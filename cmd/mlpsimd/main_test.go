package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon on a free port and returns its base URL
// plus a cancel that triggers graceful shutdown and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ready := make(chan string, 1)
	prev := onReady
	onReady = func(addr string) { ready <- addr }
	t.Cleanup(func() { onReady = prev })

	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, extraArgs...)
	go func() { errc <- run(ctx, args, &out) }()

	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("daemon did not exit within 10s")
			}
		}
	case err := <-errc:
		t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

func TestDaemonEndToEnd(t *testing.T) {
	base, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	// One real (small) simulation, then a cache hit.
	body := `{"workload":"database","insts":60000,"warm":30000}`
	var digests [2]string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rr struct {
			Digest string `json:"digest"`
			Cached bool   `json:"cached"`
			Result struct {
				Epochs int64 `json:"epochs"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
		if rr.Result.Epochs <= 0 {
			t.Fatalf("run %d: epochs = %d", i, rr.Result.Epochs)
		}
		if want := i == 1; rr.Cached != want {
			t.Errorf("run %d: cached = %v, want %v", i, rr.Cached, want)
		}
		digests[i] = rr.Digest
	}
	if digests[0] != digests[1] {
		t.Errorf("digest changed between identical runs: %s vs %s", digests[0], digests[1])
	}

	// Metrics reflect the traffic.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	metrics := sb.String()
	for _, want := range []string{
		"mlpsimd_cache_hits_total 1",
		"mlpsimd_sims_executed_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// After shutdown the port must be closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

func TestDaemonGracefulShutdownUnderLoad(t *testing.T) {
	base, shutdown := startDaemon(t, "-workers", "2")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"workload":"tpcw","insts":50000,"warm":20000,"seed":%d}`, i+1)
			resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let requests land
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	wg.Wait()
}

// TestDaemonPprofFlag: the profiling endpoints exist only when -pprof
// is set.
func TestDaemonPprofFlag(t *testing.T) {
	base, shutdown := startDaemon(t)
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/cmdline returned %d, want 404", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	base, shutdown = startDaemon(t, "-pprof")
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/cmdline returned %d, want 200", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-log", "xml"}, &out); err == nil {
		t.Error("bad -log value should fail")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out); err == nil {
		t.Error("bad -addr should fail")
	}
}

// TestDaemonTraceOut: -trace-out dumps the run tracer as Chrome
// trace_event JSON at graceful shutdown, and the same data is live on
// /debug/obs/trace while serving.
func TestDaemonTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace.json")
	base, shutdown := startDaemon(t, "-trace-out", path)

	body := `{"workload":"database","insts":60000,"warm":30000}`
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}

	// The live endpoint already carries the run's engine spans.
	resp, err = http.Get(base + "/debug/obs/trace")
	if err != nil {
		t.Fatal(err)
	}
	var live struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := map[string]bool{}
	for _, ev := range live.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"parse", "simulate", "batch", "fold"} {
		if !names[want] {
			t.Errorf("/debug/obs/trace missing %q span (have %v)", want, names)
		}
	}

	// And /debug/obs/runs shows the finished run in its totals.
	resp, err = http.Get(base + "/debug/obs/runs")
	if err != nil {
		t.Fatal(err)
	}
	var runs struct {
		Totals struct {
			FinishedRuns int64 `json:"finished_runs"`
		} `json:"totals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if runs.Totals.FinishedRuns < 1 {
		t.Errorf("finished_runs = %d, want >= 1", runs.Totals.FinishedRuns)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var dumped struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &dumped); err != nil {
		t.Fatalf("trace file is not valid trace_event JSON: %v", err)
	}
	if len(dumped.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}
