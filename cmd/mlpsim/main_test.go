package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"storemlp"
)

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-workload", "tpcw", "-insts", "100000", "-warm", "50000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EPI", "store MLP", "off-chip CPI", "PC Sp1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunVerboseAndModes(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-workload", "specjbb", "-insts", "80000", "-warm", "40000",
		"-model", "wc", "-prefetch", "2", "-hws", "2", "-smac", "1024",
		"-sle", "-pps", "-v",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WC Sp2", "SLE", "PPS", "HWS2", "SMAC1K", "termination"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "nope"},
		{"-prefetch", "9"},
		{"-hws", "7"},
		{"-workload", "nope"},
		{"-trace", "/does/not/exist"},
		{"-sle", "-tm"}, // mutually exclusive
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(context.Background(), append(args, "-insts", "1000", "-warm", "0"), &out); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestRunFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storemlp.WriteTrace(f, storemlp.SPECweb(1), storemlp.DefaultConfig(), 60_000); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run(context.Background(), []string{"-trace", path, "-warm", "20000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EPI") {
		t.Errorf("trace run output:\n%s", out.String())
	}
}

func TestRunCycleValidator(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-workload", "tpcw", "-insts", "80000", "-warm", "40000", "-cycle"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cycle-level validator") ||
		!strings.Contains(out.String(), "epoch-vs-cycle EPI ratio") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunModelledPredictor(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-workload", "specjbb", "-insts", "60000", "-warm", "30000", "-bpred"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EPI") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunProgressTicker(t *testing.T) {
	// -progress routes a live ticker to stderr; substitute a buffer and
	// check the run still succeeds and the ticker line appeared. The
	// ticker fires every 250ms, so give the run enough instructions to
	// cross at least one tick on slow machines — but tolerate a fast
	// run that finishes before the first tick (blank output is legal).
	var out, errBuf strings.Builder
	old := stderr
	stderr = &errBuf
	defer func() { stderr = old }()

	err := run(context.Background(), []string{
		"-workload", "tpcw", "-insts", "400000", "-warm", "100000", "-progress",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EPI") {
		t.Errorf("run output missing stats:\n%s", out.String())
	}
	if got := errBuf.String(); got != "" && !strings.Contains(got, "progress:") {
		t.Errorf("ticker wrote something that is not a progress line: %q", got)
	}
}

func TestRunProgressTraceFile(t *testing.T) {
	// The -trace path goes through RunTraceContext, which attaches the
	// board via sim.Observe: -progress must not perturb the run.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storemlp.WorkloadByName("database", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storemlp.WriteTrace(f, w, storemlp.DefaultConfig(), 50_000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf strings.Builder
	old := stderr
	stderr = &errBuf
	defer func() { stderr = old }()
	if err := run(context.Background(), []string{"-trace", path, "-warm", "10000", "-progress"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EPI") {
		t.Errorf("trace run output missing stats:\n%s", out.String())
	}
}
