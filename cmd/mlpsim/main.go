// Command mlpsim runs one epoch-MLP simulation — the equivalent of one
// MLPsim invocation in the paper — and prints EPI, MLP, store MLP, the
// window-termination mix, and the off-chip CPI translation.
//
// Examples:
//
//	mlpsim -workload tpcw -insts 2000000 -warm 1000000
//	mlpsim -workload specjbb -model wc -prefetch 2 -sq 64
//	mlpsim -workload database -hws 2
//	mlpsim -workload specweb -smac 32768 -nodes 4
//	mlpsim -trace db.trace -warm 500000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"storemlp"
	"storemlp/internal/obs"
)

// stderr receives the -progress ticker; tests substitute a buffer.
var stderr io.Writer = os.Stderr

func main() {
	// Ctrl-C cancels the simulation context: the engine's instruction
	// loop observes it and the process exits cleanly instead of being
	// killed mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "mlpsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "mlpsim: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlpsim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "database", "workload: database, tpcw, specjbb, specweb")
		traceFile    = fs.String("trace", "", "run a binary trace file instead of a generator")
		insts        = fs.Int64("insts", 2_000_000, "measured instructions")
		warm         = fs.Int64("warm", 1_000_000, "cache warmup instructions (excluded from stats)")
		seed         = fs.Int64("seed", 1, "workload generator seed")
		model        = fs.String("model", "pc", "memory consistency model: pc (TSO) or wc (PowerPC)")
		prefetch     = fs.Int("prefetch", 1, "store prefetching: 0=none, 1=at retire, 2=at execute")
		sq           = fs.Int("sq", 32, "store queue entries (0 = unbounded)")
		sb           = fs.Int("sb", 16, "store buffer entries")
		rob          = fs.Int("rob", 64, "reorder buffer entries")
		coalesce     = fs.Int("coalesce", 8, "store coalescing granularity in bytes (0 = off)")
		sle          = fs.Bool("sle", false, "speculative lock elision")
		tm           = fs.Bool("tm", false, "transactional memory (alternative to -sle)")
		pps          = fs.Bool("pps", false, "prefetch past serializing instructions")
		hws          = fs.Int("hws", -1, "hardware scout: -1=off, 0=HWS0, 1=HWS1, 2=HWS2")
		smac         = fs.Int("smac", 0, "store miss accelerator entries (0 = none)")
		nodes        = fs.Int("nodes", 2, "multiprocessor nodes (coherence traffic)")
		penalty      = fs.Int("penalty", 500, "off-chip miss penalty in cycles")
		perfect      = fs.Bool("perfect", false, "stores never stall (perfect-stores baseline)")
		bpred        = fs.Bool("bpred", false, "model the gshare+BTB front end instead of calibrated mispredict flags")
		cycle        = fs.Bool("cycle", false, "also run the cycle-level validator and report overlap/overall CPI")
		parallel     = fs.Int("parallel", 1, "split the run into N concurrent segments merged associatively (0 = one per CPU core, 1 = serial); parallel results carry a small documented warm-up drift")
		progress     = fs.Bool("progress", false, "live one-line progress ticker on stderr (insts, insts/s, running MLP)")
		verbose      = fs.Bool("v", false, "print the full statistics dump")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("negative -parallel %d", *parallel)
	}
	if *parallel == 0 {
		*parallel = runtime.NumCPU()
	}

	if *progress {
		// The engine publishes live counters into the board via the
		// context; the ticker rewrites one stderr line from them.
		board := obs.NewBoard()
		ctx = obs.NewContext(ctx, &obs.Obs{Board: board})
		stopTicker := obs.StartTicker(stderr, board, 250*time.Millisecond)
		defer stopTicker()
	}

	cfg := storemlp.DefaultConfig()
	cfg.StoreQueue = *sq
	cfg.StoreBuffer = *sb
	cfg.ROB = *rob
	cfg.CoalesceBytes = *coalesce
	cfg.SLE = *sle
	cfg.TM = *tm
	cfg.PrefetchPastSerializing = *pps
	cfg.SMACEntries = *smac
	cfg.Nodes = *nodes
	cfg.MissPenalty = *penalty
	cfg.PerfectStores = *perfect
	cfg.ModelBranchPredictor = *bpred
	switch strings.ToLower(*model) {
	case "pc", "tso":
		cfg.Model = storemlp.PC
	case "wc", "powerpc":
		cfg.Model = storemlp.WC
	default:
		return fmt.Errorf("unknown model %q (want pc or wc)", *model)
	}
	switch *prefetch {
	case 0:
		cfg.StorePrefetch = storemlp.Sp0
	case 1:
		cfg.StorePrefetch = storemlp.Sp1
	case 2:
		cfg.StorePrefetch = storemlp.Sp2
	default:
		return fmt.Errorf("unknown prefetch mode %d", *prefetch)
	}
	switch *hws {
	case -1:
		cfg.HWS = storemlp.NoHWS
	case 0:
		cfg.HWS = storemlp.HWS0
	case 1:
		cfg.HWS = storemlp.HWS1
	case 2:
		cfg.HWS = storemlp.HWS2
	default:
		return fmt.Errorf("unknown hws mode %d", *hws)
	}

	var stats *storemlp.Stats
	var wk storemlp.Workload
	haveWorkload := false
	if *traceFile != "" {
		// Format is autodetected from the magic bytes; columnar traces
		// run through the mmap-backed random-access reader, so even
		// huge traces are paged in block by block.
		var err error
		stats, err = storemlp.RunTraceFileParallel(ctx, *traceFile, cfg, *warm, *parallel)
		if err != nil {
			return fmt.Errorf("running trace: %w", err)
		}
	} else {
		w, err := storemlp.WorkloadByName(strings.ToLower(*workloadName), *seed)
		if err != nil {
			return err
		}
		wk, haveWorkload = w, true
		stats, err = storemlp.RunContext(ctx, storemlp.RunSpec{
			Workload: w, Config: cfg, Insts: *insts, Warm: *warm, Parallel: *parallel,
		})
		if err != nil {
			return fmt.Errorf("running simulation: %w", err)
		}
	}

	fmt.Fprintf(stdout, "config: %s  penalty=%d\n", cfg.Name(), cfg.MissPenalty)
	fmt.Fprintf(stdout, "EPI          %8.3f epochs / 1000 insts\n", stats.EPI())
	fmt.Fprintf(stdout, "MLP          %8.3f\n", stats.MLP())
	fmt.Fprintf(stdout, "store MLP    %8.3f\n", stats.StoreMLP())
	fmt.Fprintf(stdout, "off-chip CPI %8.3f\n", stats.OffChipCPI(cfg.MissPenalty))
	fmt.Fprintf(stdout, "overlapped store fraction %.3f\n", stats.OverlappedStoreFraction())
	if *cycle {
		if !haveWorkload {
			return fmt.Errorf("-cycle requires a generated workload (not -trace)")
		}
		cyc, err := storemlp.RunCycleLevelContext(ctx, storemlp.RunSpec{
			Workload: wk, Config: cfg, Insts: *insts, Warm: *warm,
		})
		if err != nil {
			return fmt.Errorf("cycle-level run: %w", err)
		}
		fmt.Fprintf(stdout, "cycle-level validator: EPI=%.3f MLP=%.3f CPI=%.3f overlap=%.3f\n",
			cyc.EPI(), cyc.MLP(), cyc.CPI(), cyc.Overlap())
		fmt.Fprintf(stdout, "  epoch-vs-cycle EPI ratio: %.2f\n", stats.EPI()/cyc.EPI())
	}
	if *verbose {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, stats.String())
	}
	return nil
}
