package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-run", "table1,table3", "-insts", "100000", "-warm", "60000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table 1", "Table 3", "database", "specweb", "[table1 took", "[table3 took"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "Figure 2") {
		t.Error("unselected experiment ran")
	}
}

func TestRunNothingSelected(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-run", "bogus"}, &out); err == nil {
		t.Error("bogus selection should error")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "summary", "ablations"}
	if len(registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(registry), len(want))
	}
	for i, name := range want {
		if registry[i].name != name {
			t.Errorf("registry[%d] = %s, want %s", i, registry[i].name, name)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run(context.Background(), []string{"-run", "table2", "-insts", "60000", "-warm", "30000", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Workload,Overlapped") {
		t.Errorf("csv content:\n%s", data)
	}
}

func TestRunProgressTicker(t *testing.T) {
	// -progress attaches one board to the whole harness via the context;
	// the run must succeed unchanged with the ticker active.
	var out, errBuf strings.Builder
	old := stderr
	stderr = &errBuf
	defer func() { stderr = old }()

	err := run(context.Background(), []string{
		"-run", "table1", "-insts", "60000", "-warm", "30000", "-progress",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("output missing Table 1:\n%s", out.String())
	}
	if got := errBuf.String(); got != "" && !strings.Contains(got, "progress:") {
		t.Errorf("ticker wrote something that is not a progress line: %q", got)
	}
}
