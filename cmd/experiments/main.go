// Command experiments regenerates the paper's evaluation: Tables 1-3,
// Figures 2-8 and the ablation sweeps, printing text tables whose rows
// and series mirror the paper's.
//
// Examples:
//
//	experiments                      # everything, full scale (several minutes)
//	experiments -run table1,fig2     # a subset
//	experiments -insts 500000        # quicker, noisier
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"storemlp/internal/experiments"
	"storemlp/internal/obs"
)

// stderr receives the -progress ticker; tests substitute a buffer.
var stderr io.Writer = os.Stderr

func main() {
	// A full harness run takes minutes; SIGINT cancels the sweep context
	// so every in-flight engine loop aborts and the process exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	// run returns the rendered text plus named row sets for CSV export.
	run func(experiments.Config) (string, map[string]interface{}, error)
}

// registry lists every runnable experiment in presentation order.
var registry = []experiment{
	{"table1", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		rows, err := experiments.Table1(cfg)
		return experiments.RenderTable1(rows), map[string]interface{}{"table1": rows}, err
	}},
	{"table2", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		rows, err := experiments.Table2(cfg)
		return experiments.RenderTable2(rows), map[string]interface{}{"table2": rows}, err
	}},
	{"table3", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		rows, err := experiments.Table3(cfg)
		return experiments.RenderTable3(rows), map[string]interface{}{"table3": rows}, err
	}},
	{"fig2", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		cells, err := experiments.Figure2(cfg)
		return experiments.RenderFigure2(cells), map[string]interface{}{"fig2": cells}, err
	}},
	{"fig3", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		rows, err := experiments.Figure3(cfg)
		return experiments.RenderFigure3(rows), map[string]interface{}{"fig3": rows}, err
	}},
	{"fig4", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		rows, err := experiments.Figure4(cfg)
		return experiments.RenderFigure4(rows), map[string]interface{}{"fig4": rows}, err
	}},
	{"fig5", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		cells, err := experiments.Figure5(cfg)
		return experiments.RenderFigure5(cells), map[string]interface{}{"fig5": cells}, err
	}},
	{"fig6", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		cells, err := experiments.Figure6(cfg)
		return experiments.RenderFigure6(cells), map[string]interface{}{"fig6": cells}, err
	}},
	{"fig7", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		cells, err := experiments.Figure7(cfg)
		return experiments.RenderFigure7(cells), map[string]interface{}{"fig7": cells}, err
	}},
	{"fig8", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		cells, err := experiments.Figure8(cfg)
		return experiments.RenderFigure8(cells), map[string]interface{}{"fig8": cells}, err
	}},
	{"summary", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		rows, err := experiments.Summary(cfg)
		return experiments.RenderSummary(rows), map[string]interface{}{"summary": rows}, err
	}},
	{"ablations", func(cfg experiments.Config) (string, map[string]interface{}, error) {
		r, err := experiments.RunAblations(cfg)
		if err != nil {
			return "", nil, err
		}
		groups := map[string]interface{}{
			"ablation_coalescing":    r.Coalescing,
			"ablation_bandwidth":     r.Bandwidth,
			"ablation_scout_reach":   r.ScoutReach,
			"ablation_lock_elision":  r.LockElision,
			"ablation_shared_l2":     r.SharedL2,
			"ablation_smac_geometry": r.SMACGeometry,
		}
		return experiments.RenderAblations(r), groups, nil
	}},
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runList = fs.String("run", "all",
			"comma-separated: table1,table2,table3,fig2..fig8,summary,ablations or all")
		insts    = fs.Int64("insts", 2_000_000, "measured instructions per run")
		warm     = fs.Int64("warm", 1_000_000, "warmup instructions per run")
		seed     = fs.Int64("seed", 1, "workload seed")
		parallel = fs.Int("parallel", 0, "concurrent runs (0 = NumCPU)")
		csvDir   = fs.String("csv", "", "also write raw results as CSV files into this directory")
		progress = fs.Bool("progress", false, "live one-line progress ticker on stderr (active runs, insts/s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *progress {
		// Every sweep run inherits Config.Ctx, so one board observes the
		// whole harness: the ticker shows the active run set live.
		board := obs.NewBoard()
		ctx = obs.NewContext(ctx, &obs.Obs{Board: board})
		stopTicker := obs.StartTicker(stderr, board, 250*time.Millisecond)
		defer stopTicker()
	}

	cfg := experiments.Config{Seed: *seed, Insts: *insts, Warm: *warm, Parallelism: *parallel, Ctx: ctx}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]

	ranAny := false
	for _, e := range registry {
		if !all && !want[e.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		out, groups, err := e.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprint(stdout, out)
		fmt.Fprintf(stdout, "[%s took %.1fs]\n\n", e.name, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSVGroups(*csvDir, groups); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
	}
	if !ranAny {
		return fmt.Errorf("nothing selected by -run=%s", *runList)
	}
	return nil
}

// writeCSVGroups writes each named row set to dir/<name>.csv.
func writeCSVGroups(dir string, groups map[string]interface{}) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, rows := range groups {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		err = experiments.WriteCSV(f, rows)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s.csv: %w", name, err)
		}
	}
	return nil
}
