package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"storemlp"
)

func TestTracegenWritesTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.trace")
	var out strings.Builder
	err := run([]string{"-workload", "tpcw", "-n", "50000", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 50000 instructions") {
		t.Errorf("output: %s", out.String())
	}
	// The trace is readable and drivable.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := storemlp.RunTrace(f, storemlp.DefaultConfig(), 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Insts != 25_000 {
		t.Errorf("Insts = %d", stats.Insts)
	}
}

func TestTracegenWCAndSLE(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-workload", "specjbb", "-n", "30000", "-wc", "-sle",
		"-o", filepath.Join(dir, "x.trace")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model=WC") || !strings.Contains(out.String(), "sle=true") {
		t.Errorf("output: %s", out.String())
	}
}

func TestTracegenErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workload", "tpcw"}, &out); err == nil {
		t.Error("missing -o should error")
	}
	if err := run([]string{"-workload", "nope", "-o", "/tmp/x"}, &out); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-o", filepath.Join(t.TempDir(), "nodir", "x")}, &out); err == nil {
		t.Error("uncreatable file should error")
	}
}
