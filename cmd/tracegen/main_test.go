package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"storemlp"
)

func TestTracegenWritesTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.trace")
	var out strings.Builder
	err := run([]string{"-workload", "tpcw", "-n", "50000", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 50000 instructions") {
		t.Errorf("output: %s", out.String())
	}
	// The trace is readable and drivable.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := storemlp.RunTrace(f, storemlp.DefaultConfig(), 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Insts != 25_000 {
		t.Errorf("Insts = %d", stats.Insts)
	}
}

func TestTracegenWCAndSLE(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-workload", "specjbb", "-n", "30000", "-wc", "-sle",
		"-o", filepath.Join(dir, "x.trace")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model=WC") || !strings.Contains(out.String(), "sle=true") {
		t.Errorf("output: %s", out.String())
	}
}

// TestTracegenFormatRoundTrip proves the two formats carry the same
// instruction stream: generating columnar directly and converting a
// legacy trace to columnar must produce byte-identical files, and
// converting back must reproduce the legacy original exactly.
func TestTracegenFormatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "legacy.trace")
	columnar := filepath.Join(dir, "columnar.trace")
	converted := filepath.Join(dir, "converted.trace")
	roundtrip := filepath.Join(dir, "roundtrip.trace")

	gen := []string{"-workload", "tpcw", "-n", "30000", "-seed", "9"}
	var out strings.Builder
	if err := run(append(gen, "-format", "legacy", "-o", legacy), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "format=legacy") {
		t.Errorf("output: %s", out.String())
	}
	if err := run(append(gen, "-format", "columnar", "-o", columnar), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-convert", legacy, "-format", "columnar", "-o", converted}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "converted 30000 instructions") {
		t.Errorf("convert output: %s", out.String())
	}
	if err := run([]string{"-convert", converted, "-format", "legacy", "-o", roundtrip}, &out); err != nil {
		t.Fatal(err)
	}

	read := func(p string) []byte {
		t.Helper()
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(read(columnar), read(converted)) {
		t.Error("direct columnar generation and legacy->columnar conversion differ")
	}
	if !bytes.Equal(read(legacy), read(roundtrip)) {
		t.Error("legacy -> columnar -> legacy round trip is not byte-identical")
	}
}

func TestTracegenErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workload", "tpcw"}, &out); err == nil {
		t.Error("missing -o should error")
	}
	if err := run([]string{"-workload", "nope", "-o", "/tmp/x"}, &out); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-o", filepath.Join(t.TempDir(), "nodir", "x")}, &out); err == nil {
		t.Error("uncreatable file should error")
	}
	if err := run([]string{"-format", "parquet", "-o", "/tmp/x"}, &out); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-convert", filepath.Join(t.TempDir(), "missing"), "-o", "/tmp/x"}, &out); err == nil {
		t.Error("missing convert input should error")
	}
}
