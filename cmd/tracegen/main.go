// Command tracegen writes binary instruction traces for the four
// commercial workloads — the stand-in for the paper's full-system
// simulator trace capture. Traces are emitted for the TSO (PC) model by
// default; -wc applies the lock-idiom rewrite and -sle elides locks.
//
// Traces are written in the columnar block format by default (-format
// columnar); -format legacy emits the original record-at-a-time
// encoding, and -convert rewrites an existing trace of either format
// into the selected one without regenerating it.
//
// Example:
//
//	tracegen -workload database -n 10000000 -o database.trace
//	tracegen -workload specjbb -wc -o specjbb-wc.trace
//	tracegen -convert old-legacy.trace -o fast.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"storemlp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "database", "workload: database, tpcw, specjbb, specweb")
		n            = fs.Int64("n", 5_000_000, "instructions to generate")
		out          = fs.String("o", "", "output file (required)")
		seed         = fs.Int64("seed", 1, "generator seed")
		wc           = fs.Bool("wc", false, "rewrite lock idioms for weak consistency (PowerPC)")
		sle          = fs.Bool("sle", false, "apply speculative lock elision")
		formatName   = fs.String("format", "columnar", "output trace format: columnar or legacy")
		convert      = fs.String("convert", "", "re-encode this existing trace instead of generating (format autodetected)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o output file is required")
	}
	format, err := storemlp.ParseTraceFormat(*formatName)
	if err != nil {
		return err
	}

	if *convert != "" {
		in, err := os.Open(*convert)
		if err != nil {
			return err
		}
		defer in.Close()
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		converted, err := storemlp.ConvertTrace(f, in, format)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "converted %d instructions (format=%s) from %s to %s\n",
			converted, format, *convert, *out)
		return nil
	}

	w, err := storemlp.WorkloadByName(strings.ToLower(*workloadName), *seed)
	if err != nil {
		return err
	}
	cfg := storemlp.DefaultConfig()
	if *wc {
		cfg.Model = storemlp.WC
	}
	cfg.SLE = *sle

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	written, err := storemlp.WriteTraceFormat(f, w, cfg, *n, format)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d instructions (%s, model=%s, sle=%v, format=%s) to %s\n",
		written, w.Name, cfg.Model, *sle, format, *out)
	return nil
}
