package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"storemlp"
)

// writeTestTrace produces a PC trace with locks for the tool to find.
func writeTestTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := storemlp.WriteTrace(f, storemlp.SPECjbb(1), storemlp.DefaultConfig(), 100_000); err != nil {
		t.Fatal(err)
	}
}

func acquires(t *testing.T, out string) int {
	t.Helper()
	m := regexp.MustCompile(`lock acquires: (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no acquire count in %q", out)
	}
	var n int
	if _, err := fmtSscan(m[1], &n); err != nil {
		t.Fatal(err)
	}
	return n
}

func fmtSscan(s string, n *int) (int, error) {
	v := 0
	for _, c := range s {
		v = v*10 + int(c-'0')
	}
	*n = v
	return 1, nil
}

func TestDryRunDetects(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.trace")
	writeTestTrace(t, in)
	var out strings.Builder
	if err := run([]string{"-in", in}, &out); err != nil {
		t.Fatal(err)
	}
	if acquires(t, out.String()) == 0 {
		t.Errorf("no locks detected: %s", out.String())
	}
	if !strings.Contains(out.String(), "lock releases:") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRewriteVariants(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.trace")
	writeTestTrace(t, in)
	for _, mode := range []string{"wc", "sle", "tm"} {
		outPath := filepath.Join(dir, mode+".trace")
		var out strings.Builder
		if err := run([]string{"-in", in, "-rewrite", mode, "-out", outPath}, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(out.String(), "wrote") {
			t.Errorf("%s output: %s", mode, out.String())
		}
		fi, err := os.Stat(outPath)
		if err != nil || fi.Size() == 0 {
			t.Errorf("%s: output trace missing/empty", mode)
		}
		// TM removes all lock instructions.
		if mode == "tm" && acquires(t, out.String()) != 0 {
			t.Error("tm rewrite should leave no acquires")
		}
	}
}

func TestLockdetectErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in should error")
	}
	if err := run([]string{"-in", "/does/not/exist"}, &out); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.trace")
	writeTestTrace(t, in)
	if err := run([]string{"-in", in, "-rewrite", "bogus"}, &out); err == nil {
		t.Error("unknown rewrite should error")
	}
	// Not a trace file.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("JUNKJUNKJUNK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", junk}, &out); err == nil {
		t.Error("junk input should error")
	}
}
