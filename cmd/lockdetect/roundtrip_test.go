package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"storemlp/internal/isa"
	"storemlp/internal/trace"
)

// reparse reads a rewritten trace back through the binary codec,
// failing the test on any decode error, and returns the count of
// instructions without lock flags plus the total.
func reparse(t *testing.T, path string) (nonLock, total int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		t.Fatalf("%s does not re-parse: %v", filepath.Base(path), err)
	}
	for {
		in, ok := tr.Next()
		if !ok {
			break
		}
		if !in.Op.Valid() {
			t.Fatalf("%s: invalid opcode %d at instruction %d", filepath.Base(path), in.Op, total)
		}
		total++
		if !in.Flags.Has(isa.FlagLockAcquire) && !in.Flags.Has(isa.FlagLockRelease) {
			nonLock++
		}
	}
	if tr.Err() != nil {
		t.Fatalf("%s: decode error mid-stream: %v", filepath.Base(path), tr.Err())
	}
	return nonLock, total
}

// TestRewriteRoundTrip is the golden round-trip for the rewrite modes:
// each -rewrite output must re-parse cleanly through the codec, and
// since every transform only inserts, drops or retypes lock-flagged
// instructions (WC's barriers carry the lock flags of the idiom they
// expand), the count of non-lock instructions must survive unchanged.
func TestRewriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.trace")
	writeTestTrace(t, in)

	// Golden baseline: detection only, no rewrite. The marked trace
	// fixes which instructions are part of lock idioms.
	marked := filepath.Join(dir, "marked.trace")
	var out strings.Builder
	if err := run([]string{"-in", in, "-out", marked}, &out); err != nil {
		t.Fatal(err)
	}
	wantNonLock, baseTotal := reparse(t, marked)
	if wantNonLock == 0 || wantNonLock == baseTotal {
		t.Fatalf("degenerate baseline: %d non-lock of %d total (trace needs both kinds)",
			wantNonLock, baseTotal)
	}

	for _, mode := range []string{"wc", "sle", "tm"} {
		outPath := filepath.Join(dir, mode+".trace")
		var runOut strings.Builder
		if err := run([]string{"-in", in, "-rewrite", mode, "-out", outPath}, &runOut); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		nonLock, total := reparse(t, outPath)
		if nonLock != wantNonLock {
			t.Errorf("%s: non-lock instructions %d, want %d (rewrites must only touch lock idioms)",
				mode, nonLock, wantNonLock)
		}
		switch mode {
		case "wc":
			// WC expands acquire (1->3) and release (1->2) idioms.
			if total <= baseTotal {
				t.Errorf("wc: total %d should exceed baseline %d (barrier insertion)", total, baseTotal)
			}
		case "sle":
			// SLE keeps the acquire's validating load but drops the rest.
			if total >= baseTotal || total <= nonLock {
				t.Errorf("sle: total %d, want between non-lock %d and baseline %d",
					total, nonLock, baseTotal)
			}
		case "tm":
			// TM removes every lock instruction outright.
			if total != nonLock {
				t.Errorf("tm: total %d should equal non-lock count %d", total, nonLock)
			}
		}
	}
}
