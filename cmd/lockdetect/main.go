// Command lockdetect reproduces the paper's lock detection tool (§4.2):
// it scans a TSO (PC) binary trace, identifies every lock acquisition
// and release sequence structurally, and optionally rewrites them into
// the weak-consistency (PowerPC) idiom, elides them (SLE), or converts
// them to transactions (TM).
//
// Examples:
//
//	lockdetect -in db.trace -out db-marked.trace
//	lockdetect -in db.trace -rewrite wc -out db-wc.trace
//	lockdetect -in db.trace -rewrite sle -out db-sle.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"storemlp/internal/consistency"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lockdetect: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lockdetect", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "input trace file (required)")
		out     = fs.String("out", "", "output trace file (omit for a dry run)")
		rewrite = fs.String("rewrite", "", "rewrite after detection: '', 'wc', 'sle', or 'tm'")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in trace file is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	// Either trace format, autodetected by magic bytes; the output (if
	// any) stays in the legacy format, matching the detector's
	// streaming one-pass shape.
	reader, err := trace.NewAutoReader(f)
	if err != nil {
		return err
	}

	var src trace.Source = consistency.DetectLocks(reader)
	switch *rewrite {
	case "":
	case "wc":
		src = consistency.RewriteWC(src)
	case "sle":
		src = consistency.ElideLocks(src)
	case "tm":
		src = consistency.ApplyTM(src)
	default:
		return fmt.Errorf("unknown rewrite %q (want wc, sle or tm)", *rewrite)
	}

	// Count lock structure while streaming.
	var acquires, releases, total int64
	counted := trace.Map(src, func(inst isa.Inst) (isa.Inst, bool) {
		total++
		if inst.Flags.Has(isa.FlagLockAcquire) &&
			(inst.Op == isa.OpCASA || inst.Op == isa.OpLoadLocked || inst.Op == isa.OpLoad) {
			acquires++
		}
		if inst.Flags.Has(isa.FlagLockRelease) && inst.Op.IsStore() {
			releases++
		}
		return inst, true
	})

	if *out != "" {
		o, err := os.Create(*out)
		if err != nil {
			return err
		}
		n, err := trace.WriteAll(o, counted)
		if cerr := o.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Fprintf(stdout, "wrote %d instructions to %s\n", n, *out)
	} else {
		for {
			if _, ok := counted.Next(); !ok {
				break
			}
		}
	}
	if reader.Err() != nil {
		return fmt.Errorf("reading %s: %w", *in, reader.Err())
	}
	fmt.Fprintf(stdout, "instructions: %d\nlock acquires: %d\nlock releases: %d\n",
		total, acquires, releases)
	return nil
}
