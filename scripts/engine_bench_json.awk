# Turns `go test -bench` output for the engine suite into the
# BENCH_engine.json benchmark record. Shared by scripts/bench.sh
# (best-of-N numbers committed as the baseline) and scripts/check.sh
# (1-iteration smoke numbers diffed against the baseline with
# cmd/benchdiff in report mode).
#
# Inputs (all optional, via awk -v):
#   eng_base_ns      pre-optimization engine ns/op baseline
#   eng_base_allocs  pre-optimization engine allocs/op baseline
#   num_cpu          host CPU count recorded in the parallel section
BEGIN {
    # Pre-optimization engine baseline (map-based epoch records,
    # per-inst Next() trace pull), measured on the same 500k-instruction
    # benchmark. The trace codec needs no pinned constant: the legacy
    # decoder still exists and is measured live.
    if (eng_base_ns == 0) eng_base_ns = 80420000
    if (eng_base_allocs == 0) eng_base_allocs = 10349
    if (num_cpu == 0) num_cpu = 1
}
$1 ~ /^BenchmarkEngine(-[0-9]+)?$/                { if (eng_ns == 0 || $3 < eng_ns) { eng_ns = $3; eng_allocs = $(NF-1) } }
$1 ~ /^BenchmarkEngineTraced(-[0-9]+)?$/          { if (trc_ns == 0 || $3 < trc_ns) { trc_ns = $3; trc_allocs = $(NF-1) } }
$1 ~ /^BenchmarkEngineTraceDriven(-[0-9]+)?$/     { if (td_ns == 0  || $3 < td_ns)  { td_ns = $3;  td_allocs = $(NF-1) } }
$1 ~ /^BenchmarkTraceDecodeLegacy(-[0-9]+)?$/     { if (leg_ns == 0 || $3 < leg_ns) { leg_ns = $3; leg_allocs = $(NF-1) } }
$1 ~ /^BenchmarkTraceDecodeColumnar(-[0-9]+)?$/   { if (col_ns == 0 || $3 < col_ns) { col_ns = $3; col_allocs = $(NF-1) } }
$1 ~ /^BenchmarkEngineParallel\/k=[0-9]+(-[0-9]+)?$/ {
    k = $1; sub(/^BenchmarkEngineParallel\/k=/, "", k); sub(/-[0-9]+$/, "", k)
    if (!(k in par_ns)) { par_ks[++par_n] = k }
    if (par_ns[k] == 0 || $3 < par_ns[k]) { par_ns[k] = $3 }
}
$1 ~ /^BenchmarkStatsMerge(-[0-9]+)?$/            { if (mrg_ns == 0 || $3 < mrg_ns) { mrg_ns = $3 } }
END {
    if (eng_ns == 0 || trc_ns == 0 || td_ns == 0 || leg_ns == 0 || col_ns == 0 || par_n == 0 || mrg_ns == 0 || par_ns[1] == 0) {
        print "bench parse failure" > "/dev/stderr"; exit 1
    }
    eng_insts = 500000; cod_insts = 200000
    printf "{\n"
    printf "  \"engine\": {\n"
    printf "    \"ns_per_op\": %d,\n    \"insts_per_op\": %d,\n", eng_ns, eng_insts
    printf "    \"insts_per_sec\": %.0f,\n    \"allocs_per_op\": %d,\n", eng_insts * 1e9 / eng_ns, eng_allocs
    printf "    \"baseline_ns_per_op\": %d,\n    \"baseline_insts_per_sec\": %.0f,\n", eng_base_ns, eng_insts * 1e9 / eng_base_ns
    printf "    \"baseline_allocs_per_op\": %d,\n", eng_base_allocs
    printf "    \"speedup_vs_baseline\": %.3f,\n", eng_base_ns / eng_ns
    printf "    \"traced_ns_per_op\": %d,\n    \"traced_allocs_per_op\": %d,\n", trc_ns, trc_allocs
    printf "    \"tracer_overhead\": %.4f,\n", trc_ns / eng_ns - 1
    printf "    \"trace_driven_ns_per_op\": %d,\n    \"trace_driven_allocs_per_op\": %d,\n", td_ns, td_allocs
    printf "    \"trace_driven_insts_per_sec\": %.0f,\n", eng_insts * 1e9 / td_ns
    printf "    \"trace_driven_vs_synthetic\": %.3f\n  },\n", td_ns / eng_ns
    printf "  \"trace_codec\": {\n"
    printf "    \"ns_per_op\": %d,\n    \"insts_per_op\": %d,\n", col_ns, cod_insts
    printf "    \"insts_per_sec\": %.0f,\n    \"allocs_per_op\": %d,\n", cod_insts * 1e9 / col_ns, col_allocs
    printf "    \"baseline_ns_per_op\": %d,\n    \"baseline_allocs_per_op\": %d,\n", leg_ns, leg_allocs
    printf "    \"speedup_vs_baseline\": %.3f\n  },\n", leg_ns / col_ns
    printf "  \"parallel\": {\n"
    printf "    \"num_cpu\": %d,\n    \"insts_per_op\": %d,\n", num_cpu, eng_insts
    printf "    \"merge_ns_per_op\": %d,\n", mrg_ns
    printf "    \"segments\": [\n"
    for (i = 1; i <= par_n; i++) {
        k = par_ks[i]
        printf "      {\"k\": %d, \"ns_per_op\": %d, \"speedup_vs_serial\": %.3f}%s\n", \
            k, par_ns[k], par_ns[1] / par_ns[k], (i < par_n ? "," : "")
    }
    printf "    ]\n  }\n"
    printf "}\n"
}
