#!/bin/sh
# The repository's CI gate: build, vet (standard + repo-specific), and
# the race-enabled test suite. Run from anywhere inside the module.
# Fails fast: the first failing stage stops the run with its exit code.
set -eu

cd "$(dirname "$0")/.."

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> storemlpvet ./...'
go run ./cmd/storemlpvet ./...

echo '>> go test -race ./...'
go test -race "$@" ./...

echo 'check: OK'
