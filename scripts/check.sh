#!/bin/sh
# The repository's CI gate: build, vet (standard + repo-specific), and
# the race-enabled test suite. Run from anywhere inside the module.
# Fails fast: the first failing stage stops the run with its exit code.
set -eu

cd "$(dirname "$0")/.."

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

tmpdir=$(mktemp -d)
smoke_cleanup() {
    [ -n "${smoke_pid:-}" ] && kill "$smoke_pid" 2>/dev/null || true
    # When OBS_ARTIFACT_DIR is set (CI), preserve the smoke run's
    # observability outputs — shutdown Chrome trace, slow-request
    # listing, daemon log — so a failed gate leaves the evidence behind.
    if [ -n "${OBS_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$OBS_ARTIFACT_DIR"
        for f in run.trace.json slow.json mlpsimd.log BENCH_engine_smoke.json; do
            [ -f "$tmpdir/$f" ] && cp "$tmpdir/$f" "$OBS_ARTIFACT_DIR/" 2>/dev/null || true
        done
    fi
    rm -rf "$tmpdir"
}
trap smoke_cleanup EXIT

echo '>> storemlpvet build'
# Compile the vet tool on its own first: a broken analyzer must fail
# loudly as a build error, never be mistaken for (or hide) findings.
go build -o "$tmpdir/storemlpvet" ./cmd/storemlpvet || {
    echo 'storemlpvet: the vet tool itself failed to build (fix cmd/storemlpvet and internal/analysis before trusting any findings)'
    exit 3
}

echo '>> storemlpvet -list (seventeen rules)'
# The -list smoke proves every analyzer is actually wired into the
# default suite — a rule dropped from DefaultAnalyzers would otherwise
# pass the clean-tree check by silently not running. The count check
# catches the converse drift: a rule added to the suite without being
# added here.
vet_rules=$("$tmpdir/storemlpvet" -list)
echo "$vet_rules"
for rule in exhaustive-enum validate-coverage stats-drift floatcmp ctxmut \
    resetcomplete guardedby hotpath ctxpoll \
    lockorder atomicfield goleak digestcover \
    lockbalance sharedcapture mergecomplete closeall; do
    echo "$vet_rules" | grep -q "^$rule " || {
        echo "storemlpvet: rule $rule missing from -list (not wired into DefaultAnalyzers?)"
        exit 1
    }
done
rule_count=$(echo "$vet_rules" | wc -l)
[ "$rule_count" -eq 17 ] || {
    echo "storemlpvet: -list reports $rule_count rules, want 17 (update scripts/check.sh when adding rules)"
    exit 1
}

echo '>> storemlpvet ./... (-json -timing)'
# The -json contract is part of the gate: a clean run exits 0 AND emits
# an empty array. Findings (exit 1) or a load error (exit 2) fail here;
# hotpath consults go build -gcflags=-m=2, so this also gates the
# allocation-free/inlining claims of the hot paths. -timing surfaces
# the per-rule and total vet cost on every run, so a rule that turns
# quadratic is caught by eye before it is caught by a CI timeout.
# STOREMLPVET_JSON (set by CI) captures the findings for upload.
vet_out=$("$tmpdir/storemlpvet" -json -timing ./...) && vet_code=0 || vet_code=$?
if [ -n "${STOREMLPVET_JSON:-}" ]; then
    printf '%s\n' "$vet_out" >"$STOREMLPVET_JSON"
fi
case $vet_code in
0) ;;
1)
    echo "$vet_out"
    echo 'storemlpvet: findings reported'
    exit 1
    ;;
*)
    echo "$vet_out"
    echo "storemlpvet: load/internal error (exit $vet_code)"
    exit "$vet_code"
    ;;
esac
[ "$vet_out" = "[]" ] || {
    echo "$vet_out"
    echo 'storemlpvet: non-empty JSON despite clean exit'
    exit 1
}

echo '>> go test -race ./...'
go test -race "$@" ./...

echo '>> go test -race -cpu 1,2,4 -short (parallel fan-out, merge algebra, span trees)'
# The parallel intra-run path fans one simulation out over goroutines
# that share the engine pool and the trace mmap, and every request's
# span tree is written from sweep points and segment goroutines
# concurrently; re-run their tests at several GOMAXPROCS values so real
# interleavings (not just the single-P schedule) pass the race
# detector. -short drops the golden accuracy grid and overlap sweep —
# they measure drift, not concurrency, and already ran once in the full
# -race stage above.
go test -race -short -cpu 1,2,4 \
    -run 'TestParallel|TestSplitRun|TestSegments|TestOverlapSweep|TestMerge|TestDefaultParallel|TestSpan' \
    ./internal/sim/ ./internal/server/ .

echo '>> benchmark smoke (1 iteration) + benchdiff report'
go test -run '^$' \
    -bench '^(BenchmarkEngine|BenchmarkEngineTraced|BenchmarkEngineTraceDriven|BenchmarkEngineParallel|BenchmarkStatsMerge|BenchmarkTraceDecodeLegacy|BenchmarkTraceDecodeColumnar)$' \
    -benchtime 1x -benchmem . | tee "$tmpdir/smokebench.out"
# Shape the 1-iteration numbers with the shared awk and diff them
# against the committed baseline. Report mode only: single-iteration
# timings are far too noisy to gate CI, but the report makes a creeping
# regression visible in every log; `make benchdiff` against a real
# bench.sh run is the gating form (DESIGN.md §17).
go build -o "$tmpdir/benchdiff" ./cmd/benchdiff
awk -f scripts/engine_bench_json.awk "$tmpdir/smokebench.out" >"$tmpdir/BENCH_engine_smoke.json"
"$tmpdir/benchdiff" -mode report -slack 3 BENCH_engine.json "$tmpdir/BENCH_engine_smoke.json"

echo '>> trace format smoke (legacy vs columnar)'
# The two on-disk codecs must be interchangeable: converting a legacy
# trace must reproduce the direct columnar encoding byte for byte, and
# mlpsim must report identical statistics from either file.
go build -o "$tmpdir/tracegen" ./cmd/tracegen
go build -o "$tmpdir/mlpsim" ./cmd/mlpsim
"$tmpdir/tracegen" -workload tpcw -n 30000 -format legacy -o "$tmpdir/smoke-legacy.trace"
"$tmpdir/tracegen" -workload tpcw -n 30000 -format columnar -o "$tmpdir/smoke-columnar.trace"
"$tmpdir/tracegen" -convert "$tmpdir/smoke-legacy.trace" -format columnar -o "$tmpdir/smoke-converted.trace"
cmp "$tmpdir/smoke-columnar.trace" "$tmpdir/smoke-converted.trace" || {
    echo 'legacy->columnar conversion differs from direct columnar generation'
    exit 1
}
"$tmpdir/mlpsim" -trace "$tmpdir/smoke-legacy.trace" -warm 10000 -v >"$tmpdir/legacy.stats"
"$tmpdir/mlpsim" -trace "$tmpdir/smoke-columnar.trace" -warm 10000 -v >"$tmpdir/columnar.stats"
diff "$tmpdir/legacy.stats" "$tmpdir/columnar.stats" || {
    echo 'mlpsim statistics diverge between trace formats'
    exit 1
}
echo 'trace formats: OK (byte-identical conversion, identical statistics)'

echo '>> mlpsimd smoke test (with observability checks)'
go build -o "$tmpdir/mlpsimd" ./cmd/mlpsimd
go build -o "$tmpdir/mlpload" ./cmd/mlpload
"$tmpdir/mlpsimd" -addr 127.0.0.1:0 -drain 10s -trace-out "$tmpdir/run.trace.json" \
    >"$tmpdir/mlpsimd.out" 2>"$tmpdir/mlpsimd.log" &
smoke_pid=$!
addr=''
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^mlpsimd listening on //p' "$tmpdir/mlpsimd.out")
    [ -n "$addr" ] && break
    kill -0 "$smoke_pid" 2>/dev/null || { echo 'mlpsimd died at startup'; cat "$tmpdir/mlpsimd.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo 'mlpsimd never became ready'; exit 1; }
# /healthz + real runs through the client (also exercises the cache
# path); -scrape then grammar-checks /metrics and pulls the run trace;
# -slow-out captures the slowest-request listing as an artifact.
"$tmpdir/mlpload" -addr "http://$addr" -workloads database -insts 20000 -warm 10000 \
    -repeat 1 -concurrency 2 -mode warm -scrape -slow-out "$tmpdir/slow.json"
kill -INT "$smoke_pid"
wait "$smoke_pid" || { echo 'mlpsimd did not shut down cleanly'; cat "$tmpdir/mlpsimd.log"; exit 1; }
smoke_pid=''
grep -q 'mlpsimd stopped' "$tmpdir/mlpsimd.out" || { echo 'missing clean-shutdown marker'; exit 1; }
# -trace-out must have dumped a non-empty Chrome trace at shutdown.
[ -s "$tmpdir/run.trace.json" ] || { echo 'trace-out file missing or empty'; exit 1; }
grep -q '"traceEvents"' "$tmpdir/run.trace.json" || { echo 'trace-out file lacks traceEvents'; exit 1; }
grep -q '"name":"simulate"' "$tmpdir/run.trace.json" || { echo 'trace-out has no simulate spans'; exit 1; }
# The slow-request ring must have retained the load run's requests with
# per-stage attributions, and the trace IDs it reports must be the same
# ones stitched into the daemon's completion log lines.
[ -s "$tmpdir/slow.json" ] || { echo 'slow.json missing or empty'; exit 1; }
grep -q '"stages_ms"' "$tmpdir/slow.json" || { echo 'slow.json lacks per-stage timings'; exit 1; }
grep -q '"simulate"' "$tmpdir/slow.json" || { echo 'slow.json has no simulate stage'; exit 1; }
slow_trace_id=$(sed -n 's/.*"trace_id": *"\([^"]*\)".*/\1/p' "$tmpdir/slow.json" | head -n 1)
[ -n "$slow_trace_id" ] || { echo 'slow.json has no trace_id'; exit 1; }
grep -q "trace_id=$slow_trace_id" "$tmpdir/mlpsimd.log" || {
    echo "trace $slow_trace_id from /debug/obs/slow not stitched into the request log"
    exit 1
}
echo 'smoke: OK (incl. metrics grammar, trace export, slow-request capture)'

echo 'check: OK'
