#!/bin/sh
# Repository benchmarks, two stages:
#
#  1. Engine microbenchmarks: BenchmarkEngine + BenchmarkEngineTraced +
#     BenchmarkEngineTraceDriven + BenchmarkTraceDecode{Legacy,Columnar}
#     + BenchmarkEngineParallel/k=* + BenchmarkStatsMerge
#     via `go test -bench`, best-of-N, written to BENCH_engine.json in
#     the repo root. The engine section carries the delta against the
#     committed pre-optimization baseline, the tracer-enabled overhead,
#     and the trace-driven vs synthetic-generator ratio; the trace_codec
#     section measures the legacy decoder as the baseline and the
#     columnar decoder as current, so the speedup is between real
#     codecs, not a stale constant (BENCH_COUNT overrides N, default 3).
#     The parallel section records the intra-run segment-scaling curve
#     (ns_per_op and speedup_vs_serial per K) plus the Stats merge cost,
#     with num_cpu alongside: on a single-CPU host the curve measures
#     warm-up overlap overhead, not parallel speedup.
#  2. Serving-layer benchmark: start a local mlpsimd, replay the
#     repeated Figure-2-style 64-point grid with mlpload, and write the
#     measurements (cold vs warm throughput, tail latencies, speedup)
#     to BENCH_serve.json.
#
# Usage: scripts/bench.sh [extra mlpload flags]
#   e.g. scripts/bench.sh -repeat 5 -concurrency 16
#   BENCH_ONLY=engine scripts/bench.sh   # stage 1 only (skip the daemon)
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
bench_cleanup() {
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap bench_cleanup EXIT

# Pre-optimization engine baseline (map-based epoch records, per-inst
# Next() trace pull), measured on the same 500k-instruction benchmark.
# The trace codec needs no pinned constant: the legacy decoder still
# exists, so it is measured live as the columnar decoder's baseline.
ENGINE_BASE_NS=80420000
ENGINE_BASE_ALLOCS=10349

echo '>> engine microbenchmarks (best of '"${BENCH_COUNT:-3}"')'
go test -run '^$' \
    -bench '^(BenchmarkEngine|BenchmarkEngineTraced|BenchmarkEngineTraceDriven|BenchmarkEngineParallel|BenchmarkStatsMerge|BenchmarkTraceDecodeLegacy|BenchmarkTraceDecodeColumnar)$' \
    -benchmem -count "${BENCH_COUNT:-3}" . | tee "$tmpdir/bench.out"

NUM_CPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

awk -v eng_base_ns="$ENGINE_BASE_NS" -v eng_base_allocs="$ENGINE_BASE_ALLOCS" -v num_cpu="$NUM_CPU" '
$1 ~ /^BenchmarkEngine(-[0-9]+)?$/                { if (eng_ns == 0 || $3 < eng_ns) { eng_ns = $3; eng_allocs = $(NF-1) } }
$1 ~ /^BenchmarkEngineTraced(-[0-9]+)?$/          { if (trc_ns == 0 || $3 < trc_ns) { trc_ns = $3; trc_allocs = $(NF-1) } }
$1 ~ /^BenchmarkEngineTraceDriven(-[0-9]+)?$/     { if (td_ns == 0  || $3 < td_ns)  { td_ns = $3;  td_allocs = $(NF-1) } }
$1 ~ /^BenchmarkTraceDecodeLegacy(-[0-9]+)?$/     { if (leg_ns == 0 || $3 < leg_ns) { leg_ns = $3; leg_allocs = $(NF-1) } }
$1 ~ /^BenchmarkTraceDecodeColumnar(-[0-9]+)?$/   { if (col_ns == 0 || $3 < col_ns) { col_ns = $3; col_allocs = $(NF-1) } }
$1 ~ /^BenchmarkEngineParallel\/k=[0-9]+(-[0-9]+)?$/ {
    k = $1; sub(/^BenchmarkEngineParallel\/k=/, "", k); sub(/-[0-9]+$/, "", k)
    if (!(k in par_ns)) { par_ks[++par_n] = k }
    if (par_ns[k] == 0 || $3 < par_ns[k]) { par_ns[k] = $3 }
}
$1 ~ /^BenchmarkStatsMerge(-[0-9]+)?$/            { if (mrg_ns == 0 || $3 < mrg_ns) { mrg_ns = $3 } }
END {
    if (eng_ns == 0 || trc_ns == 0 || td_ns == 0 || leg_ns == 0 || col_ns == 0 || par_n == 0 || mrg_ns == 0 || par_ns[1] == 0) {
        print "bench parse failure" > "/dev/stderr"; exit 1
    }
    eng_insts = 500000; cod_insts = 200000
    printf "{\n"
    printf "  \"engine\": {\n"
    printf "    \"ns_per_op\": %d,\n    \"insts_per_op\": %d,\n", eng_ns, eng_insts
    printf "    \"insts_per_sec\": %.0f,\n    \"allocs_per_op\": %d,\n", eng_insts * 1e9 / eng_ns, eng_allocs
    printf "    \"baseline_ns_per_op\": %d,\n    \"baseline_insts_per_sec\": %.0f,\n", eng_base_ns, eng_insts * 1e9 / eng_base_ns
    printf "    \"baseline_allocs_per_op\": %d,\n", eng_base_allocs
    printf "    \"speedup_vs_baseline\": %.3f,\n", eng_base_ns / eng_ns
    printf "    \"traced_ns_per_op\": %d,\n    \"traced_allocs_per_op\": %d,\n", trc_ns, trc_allocs
    printf "    \"tracer_overhead\": %.4f,\n", trc_ns / eng_ns - 1
    printf "    \"trace_driven_ns_per_op\": %d,\n    \"trace_driven_allocs_per_op\": %d,\n", td_ns, td_allocs
    printf "    \"trace_driven_insts_per_sec\": %.0f,\n", eng_insts * 1e9 / td_ns
    printf "    \"trace_driven_vs_synthetic\": %.3f\n  },\n", td_ns / eng_ns
    printf "  \"trace_codec\": {\n"
    printf "    \"ns_per_op\": %d,\n    \"insts_per_op\": %d,\n", col_ns, cod_insts
    printf "    \"insts_per_sec\": %.0f,\n    \"allocs_per_op\": %d,\n", cod_insts * 1e9 / col_ns, col_allocs
    printf "    \"baseline_ns_per_op\": %d,\n    \"baseline_allocs_per_op\": %d,\n", leg_ns, leg_allocs
    printf "    \"speedup_vs_baseline\": %.3f\n  },\n", leg_ns / col_ns
    printf "  \"parallel\": {\n"
    printf "    \"num_cpu\": %d,\n    \"insts_per_op\": %d,\n", num_cpu, eng_insts
    printf "    \"merge_ns_per_op\": %d,\n", mrg_ns
    printf "    \"segments\": [\n"
    for (i = 1; i <= par_n; i++) {
        k = par_ks[i]
        printf "      {\"k\": %d, \"ns_per_op\": %d, \"speedup_vs_serial\": %.3f}%s\n", \
            k, par_ns[k], par_ns[1] / par_ns[k], (i < par_n ? "," : "")
    }
    printf "    ]\n  }\n"
    printf "}\n"
}' "$tmpdir/bench.out" >BENCH_engine.json

echo '>> BENCH_engine.json'
cat BENCH_engine.json

if [ "${BENCH_ONLY:-}" = engine ]; then
    exit 0
fi

echo '>> building mlpsimd + mlpload'
go build -o "$tmpdir/mlpsimd" ./cmd/mlpsimd
go build -o "$tmpdir/mlpload" ./cmd/mlpload

"$tmpdir/mlpsimd" -addr 127.0.0.1:0 >"$tmpdir/mlpsimd.out" 2>"$tmpdir/mlpsimd.log" &
daemon_pid=$!
addr=''
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^mlpsimd listening on //p' "$tmpdir/mlpsimd.out")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo 'mlpsimd died at startup'; cat "$tmpdir/mlpsimd.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo 'mlpsimd never became ready'; exit 1; }
echo ">> mlpsimd up at $addr"

echo '>> driving the repeated 64-point grid (cold, then warm)'
"$tmpdir/mlpload" -addr "http://$addr" -json BENCH_serve.json "$@"

kill -INT "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=''

echo '>> BENCH_serve.json'
cat BENCH_serve.json
