#!/bin/sh
# Serving-layer benchmark: start a local mlpsimd, replay the repeated
# Figure-2-style 64-point grid with mlpload, and write the measurements
# (cold vs warm throughput, tail latencies, speedup) to BENCH_serve.json
# in the repo root.
#
# Usage: scripts/bench.sh [extra mlpload flags]
#   e.g. scripts/bench.sh -repeat 5 -concurrency 16
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
bench_cleanup() {
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap bench_cleanup EXIT

echo '>> building mlpsimd + mlpload'
go build -o "$tmpdir/mlpsimd" ./cmd/mlpsimd
go build -o "$tmpdir/mlpload" ./cmd/mlpload

"$tmpdir/mlpsimd" -addr 127.0.0.1:0 >"$tmpdir/mlpsimd.out" 2>"$tmpdir/mlpsimd.log" &
daemon_pid=$!
addr=''
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^mlpsimd listening on //p' "$tmpdir/mlpsimd.out")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo 'mlpsimd died at startup'; cat "$tmpdir/mlpsimd.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo 'mlpsimd never became ready'; exit 1; }
echo ">> mlpsimd up at $addr"

echo '>> driving the repeated 64-point grid (cold, then warm)'
"$tmpdir/mlpload" -addr "http://$addr" -json BENCH_serve.json "$@"

kill -INT "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=''

echo '>> BENCH_serve.json'
cat BENCH_serve.json
