#!/bin/sh
# Repository benchmarks, two stages:
#
#  1. Engine microbenchmarks: BenchmarkEngine + BenchmarkEngineTraced +
#     BenchmarkEngineTraceDriven + BenchmarkTraceDecode{Legacy,Columnar}
#     + BenchmarkEngineParallel/k=* + BenchmarkStatsMerge
#     via `go test -bench`, best-of-N, written to BENCH_engine.json in
#     the repo root. The engine section carries the delta against the
#     committed pre-optimization baseline, the tracer-enabled overhead,
#     and the trace-driven vs synthetic-generator ratio; the trace_codec
#     section measures the legacy decoder as the baseline and the
#     columnar decoder as current, so the speedup is between real
#     codecs, not a stale constant (BENCH_COUNT overrides N, default 3).
#     The parallel section records the intra-run segment-scaling curve
#     (ns_per_op and speedup_vs_serial per K) plus the Stats merge cost,
#     with num_cpu alongside: on a single-CPU host the curve measures
#     warm-up overlap overhead, not parallel speedup.
#  2. Serving-layer benchmark: start a local mlpsimd, replay the
#     repeated Figure-2-style 64-point grid with mlpload, and write the
#     measurements (cold vs warm throughput, tail latencies, speedup)
#     to BENCH_serve.json.
#
# Usage: scripts/bench.sh [extra mlpload flags]
#   e.g. scripts/bench.sh -repeat 5 -concurrency 16
#   BENCH_ONLY=engine scripts/bench.sh   # stage 1 only (skip the daemon)
#   BENCH_ENGINE_OUT / BENCH_SERVE_OUT override the output paths (used
#   by check.sh to write throwaway smoke records for cmd/benchdiff
#   instead of clobbering the committed baselines).
set -eu

cd "$(dirname "$0")/.."

BENCH_ENGINE_OUT=${BENCH_ENGINE_OUT:-BENCH_engine.json}
BENCH_SERVE_OUT=${BENCH_SERVE_OUT:-BENCH_serve.json}

tmpdir=$(mktemp -d)
bench_cleanup() {
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap bench_cleanup EXIT

echo '>> engine microbenchmarks (best of '"${BENCH_COUNT:-3}"')'
go test -run '^$' \
    -bench '^(BenchmarkEngine|BenchmarkEngineTraced|BenchmarkEngineTraceDriven|BenchmarkEngineParallel|BenchmarkStatsMerge|BenchmarkTraceDecodeLegacy|BenchmarkTraceDecodeColumnar)$' \
    -benchmem -count "${BENCH_COUNT:-3}" . | tee "$tmpdir/bench.out"

NUM_CPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# The bench-output-to-JSON conversion lives in engine_bench_json.awk so
# check.sh can apply it to smoke numbers and diff them with benchdiff.
awk -v num_cpu="$NUM_CPU" -f scripts/engine_bench_json.awk \
    "$tmpdir/bench.out" >"$BENCH_ENGINE_OUT"

echo ">> $BENCH_ENGINE_OUT"
cat "$BENCH_ENGINE_OUT"

if [ "${BENCH_ONLY:-}" = engine ]; then
    exit 0
fi

echo '>> building mlpsimd + mlpload'
go build -o "$tmpdir/mlpsimd" ./cmd/mlpsimd
go build -o "$tmpdir/mlpload" ./cmd/mlpload

"$tmpdir/mlpsimd" -addr 127.0.0.1:0 >"$tmpdir/mlpsimd.out" 2>"$tmpdir/mlpsimd.log" &
daemon_pid=$!
addr=''
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^mlpsimd listening on //p' "$tmpdir/mlpsimd.out")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo 'mlpsimd died at startup'; cat "$tmpdir/mlpsimd.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo 'mlpsimd never became ready'; exit 1; }
echo ">> mlpsimd up at $addr"

echo '>> driving the repeated 64-point grid (cold, then warm)'
"$tmpdir/mlpload" -addr "http://$addr" -json "$BENCH_SERVE_OUT" "$@"

kill -INT "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=''

echo ">> $BENCH_SERVE_OUT"
cat "$BENCH_SERVE_OUT"
