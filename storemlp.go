// Package storemlp reproduces "Store Memory-Level Parallelism
// Optimizations for Commercial Applications" (Chou, Spracklen, Abraham —
// MICRO 2005).
//
// The package is a Go implementation of MLPsim, the paper's epoch
// memory-level-parallelism simulator, together with every system it
// depends on: synthetic commercial workload generators calibrated to the
// paper's Table 1 (database/OLTP, TPC-W, SPECjbb2000, SPECweb99), a
// cache hierarchy with MESI states, cross-chip coherence traffic, the
// SPARC-TSO and PowerPC memory consistency models with the paper's
// lock-detection/rewriting tool, and the store optimizations the paper
// proposes and evaluates: store coalescing, store prefetching (at retire
// and at execute), the Store Miss Accelerator (SMAC), Speculative Lock
// Elision, prefetch past serializing instructions, and Hardware Scout
// including the HWS2 store-stall trigger.
//
// Quick start:
//
//	stats, err := storemlp.Run(storemlp.RunSpec{
//		Workload: storemlp.Database(1),
//		Config:   storemlp.DefaultConfig(),
//		Insts:    2_000_000,
//		Warm:     1_000_000,
//	})
//	fmt.Printf("EPI = %.2f epochs/1000 insts\n", stats.EPI())
//
// The experiment harness (Table1 .. Figure8, plus ablations) regenerates
// every table and figure of the paper's evaluation; see EXPERIMENTS.md
// for measured-vs-paper results.
package storemlp

import (
	"context"
	"errors"
	"fmt"
	"io"

	"storemlp/internal/consistency"
	"storemlp/internal/cyclesim"
	"storemlp/internal/digest"
	"storemlp/internal/epoch"
	"storemlp/internal/experiments"
	"storemlp/internal/onchip"
	"storemlp/internal/sim"
	"storemlp/internal/trace"
	"storemlp/internal/trace/colv1"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// Workload calibrates a synthetic commercial workload generator.
type Workload = workload.Params

// Config is the simulated machine description (§4.3 of the paper plus
// every optimization knob).
type Config = uarch.Config

// Stats is the output of one simulation run: EPI, MLP, store MLP,
// termination-condition and MLP distributions, and substrate counters.
type Stats = epoch.Stats

// Memory consistency models.
const (
	// PC is processor consistency (SPARC TSO).
	PC = consistency.PC
	// WC is weak consistency (PowerPC).
	WC = consistency.WC
)

// PrefetchMode selects when (if at all) a store's ownership request is
// prefetched ahead of its store-queue-head turn.
type PrefetchMode = uarch.PrefetchMode

// Store prefetching modes (§3.3.2).
const (
	Sp0 = uarch.Sp0 // no store prefetching
	Sp1 = uarch.Sp1 // prefetch at retire
	Sp2 = uarch.Sp2 // prefetch at execute
)

// Hardware Scout modes (§3.3.5, §5.4).
const (
	NoHWS = uarch.NoHWS
	HWS0  = uarch.HWS0
	HWS1  = uarch.HWS1
	HWS2  = uarch.HWS2 // + scout on store-stall: the paper's proposal
)

// Workload constructors (the paper's four benchmarks).
var (
	Database = workload.Database
	TPCW     = workload.TPCW
	SPECjbb  = workload.SPECjbb
	SPECweb  = workload.SPECweb
)

// AllWorkloads returns the four workloads in the paper's order.
func AllWorkloads(seed int64) []Workload { return workload.All(seed) }

// WorkloadByName resolves "database", "tpcw", "specjbb" or "specweb".
func WorkloadByName(name string, seed int64) (Workload, error) {
	return workload.ByName(name, seed)
}

// DefaultConfig returns the paper's default processor configuration:
// 64-entry ROB, 16-entry store buffer, 32-entry store queue, store
// prefetch at retire, 8-byte coalescing, processor consistency, 500
// cycle miss penalty, 2 MB shared L2.
func DefaultConfig() Config { return uarch.Default() }

// RunSpec describes one simulation run.
type RunSpec struct {
	Workload Workload
	Config   Config
	// Insts is the number of measured instructions; Warm the cache
	// warmup prefix excluded from statistics.
	Insts int64
	Warm  int64
	// DisableTraffic suppresses remote-node coherence snoops.
	DisableTraffic bool
	// SharedCore co-schedules a second copy of the workload on the other
	// core of the CMP, sharing the L2 (the paper's two-cores-per-L2
	// configuration); it exerts cache pressure only.
	SharedCore bool
	// Parallel splits the run into that many contiguous segments
	// simulated concurrently and merged associatively; 0 or 1 runs
	// serially. Segments re-simulate an unmeasured warm-up overlap to
	// reconstruct machine state at their boundaries, so parallel
	// results approximate the serial run (see internal/sim.WarmupOverlap
	// for the accuracy contract) — the knob is therefore digest-visible.
	Parallel int
}

// Run executes one simulation: the workload generator's TSO trace is
// rewritten for WC and/or SLE as the configuration requires, then driven
// through the epoch MLP engine.
func Run(s RunSpec) (*Stats, error) {
	return RunContext(context.Background(), s)
}

// RunContext is Run with cancellation: the engine polls ctx every few
// thousand instructions and abandons the simulation — returning ctx's
// error — once the context is done. Long sweeps become interruptible
// and service requests can carry deadlines.
func RunContext(ctx context.Context, s RunSpec) (*Stats, error) {
	return sim.RunContext(ctx, sim.Spec{
		Workload:       s.Workload,
		Uarch:          s.Config,
		Insts:          s.Insts,
		Warm:           s.Warm,
		DisableTraffic: s.DisableTraffic,
		SharedCore:     s.SharedCore,
		Parallel:       s.Parallel,
	})
}

// ConfigDigest returns a stable hex digest canonically identifying the
// run: the workload calibration (including its seed), the full machine
// configuration, and the instruction budget. Two RunSpecs digest
// equally iff they describe the same simulation, independent of struct
// field declaration order or map iteration order, so the digest is a
// sound coalescing/cache key for the serving layer (any single-field
// change yields a different digest).
func ConfigDigest(s RunSpec) string {
	return digest.Sum(map[string]interface{}{
		"workload":       s.Workload,
		"config":         s.Config,
		"insts":          s.Insts,
		"warm":           s.Warm,
		"disableTraffic": s.DisableTraffic,
		"sharedCore":     s.SharedCore,
		"parallel":       s.Parallel,
	})
}

// Segments reports the number of segments a run of s actually fans out
// to: the Parallel knob clamped so every segment measures a worthwhile
// slice. 1 means the run executes serially. The serving layer surfaces
// this in responses and accounts segment engines in its saturation
// metric.
func Segments(s RunSpec) int {
	return sim.Segments(sim.Spec{Insts: s.Insts, Parallel: s.Parallel})
}

// TraceFormat selects an on-disk trace encoding for WriteTraceFormat
// and ConvertTrace.
type TraceFormat = trace.Format

// Trace formats: the legacy record-at-a-time varint codec and the
// columnar block codec (delta/varint columns, run-length kinds, seek
// index, O(blocks) decode allocations). Readers autodetect either by
// magic bytes; the columnar format is what tracegen emits by default.
const (
	TraceLegacy   = trace.FormatLegacy
	TraceColumnar = trace.FormatColumnar
)

// ParseTraceFormat resolves "legacy" or "columnar".
func ParseTraceFormat(s string) (TraceFormat, error) { return trace.ParseFormat(s) }

// WriteTrace generates n instructions of the workload — transformed for
// the configuration's consistency model and SLE setting — into w using
// the legacy binary trace format. It returns the number of records
// written. New traces should prefer WriteTraceFormat with
// TraceColumnar.
func WriteTrace(w io.Writer, wk Workload, cfg Config, n int64) (int64, error) {
	return WriteTraceFormat(w, wk, cfg, n, TraceLegacy)
}

// WriteTraceFormat is WriteTrace with an explicit on-disk format.
func WriteTraceFormat(w io.Writer, wk Workload, cfg Config, n int64, f TraceFormat) (int64, error) {
	if err := wk.Validate(); err != nil {
		return 0, err
	}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("storemlp: non-positive trace length %d", n)
	}
	return trace.WriteAllFormat(w, sim.BuildSource(wk, cfg, n), f)
}

// ConvertTrace re-encodes the trace on r (either format, autodetected
// by magic bytes) into w in the target format, preserving the
// instruction stream exactly, and returns the instruction count.
func ConvertTrace(w io.Writer, r io.Reader, f TraceFormat) (int64, error) {
	return trace.Convert(w, r, f)
}

// RunTrace drives a previously written binary trace — either format,
// autodetected by magic bytes — through the epoch engine. The trace is
// used as-is: no consistency rewriting is applied (use cmd/lockdetect
// or WriteTraceFormat for that).
func RunTrace(r io.Reader, cfg Config, warm int64) (*Stats, error) {
	return RunTraceContext(context.Background(), r, cfg, warm)
}

// RunTraceContext is RunTrace with cancellation. Like RunContext, it
// publishes tracer spans and live progress when ctx carries an
// *obs.Obs (obs.NewContext); the planned total is unknown for a
// streamed trace, so progress reports instructions only.
func RunTraceContext(ctx context.Context, r io.Reader, cfg Config, warm int64) (*Stats, error) {
	tr, err := trace.NewAutoReader(r)
	if err != nil {
		return nil, err
	}
	return runTraceSource(ctx, tr, cfg, warm)
}

// RunTraceFile runs the trace stored at path. Columnar traces go
// through the memory-mapped random-access backend, so the file is
// paged in block by block as the engine consumes it; legacy traces
// stream through the descriptor.
func RunTraceFile(path string, cfg Config, warm int64) (*Stats, error) {
	return RunTraceFileContext(context.Background(), path, cfg, warm)
}

// RunTraceFileContext is RunTraceFile with cancellation.
func RunTraceFileContext(ctx context.Context, path string, cfg Config, warm int64) (*Stats, error) {
	tr, closer, err := trace.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	return runTraceSource(ctx, tr, cfg, warm)
}

// RunTraceFileParallel is RunTraceFileContext fanned out across
// segments concurrent segment engines. Columnar traces parallelize for
// real: the file is memory-mapped once and every worker gets an
// independent random-access reader over the shared image, positioned in
// O(1) by the footer seek index, so decode scales with the simulation.
// Legacy traces have no random access — they fall back to the serial
// path, as does segments <= 1. Parallel results approximate the serial
// run within the documented overlap tolerance (see RunSpec.Parallel).
func RunTraceFileParallel(ctx context.Context, path string, cfg Config, warm int64, segments int) (*Stats, error) {
	if segments <= 1 {
		return RunTraceFileContext(ctx, path, cfg, warm)
	}
	cf, err := colv1.Open(path)
	if errors.Is(err, colv1.ErrBadMagic) {
		// Not columnar: a legacy trace streams through the serial path.
		return RunTraceFileContext(ctx, path, cfg, warm)
	}
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	return RunTraceBytesParallel(ctx, cf.Data(), cfg, warm, segments)
}

// RunTraceBytesParallel runs a complete in-memory columnar trace image
// across segments concurrent segment engines (see RunTraceFileParallel).
func RunTraceBytesParallel(ctx context.Context, data []byte, cfg Config, warm int64, segments int) (*Stats, error) {
	return sim.NewPool().RunTraceParallel(ctx, data, cfg, warm, segments)
}

// tracePool recycles engines across the package-level trace entry
// points: repeated RunTrace calls (replay sweeps, benchmarks) stop
// paying the cache-hierarchy and ring construction cost per trace.
var tracePool = sim.NewPool()

// runTraceSource is the shared tail of the trace-driven entry points:
// check an engine out of the pool, attach observability, drive the
// decoded stream through it, and surface any decode error the source
// hit.
func runTraceSource(ctx context.Context, tr trace.FileSource, cfg Config, warm int64) (*Stats, error) {
	return tracePool.RunTraceSource(ctx, tr, cfg, warm)
}

// OverallCPI combines an on-chip CPI, its overlap fraction, and a run's
// epochs-per-instruction into overall CPI (§3.4).
func OverallCPI(cpiOnChip, overlap float64, s *Stats, missPenalty int) float64 {
	if s.Insts == 0 {
		return 0
	}
	return onchip.OverallCPI(cpiOnChip, overlap, float64(s.Epochs)/float64(s.Insts), missPenalty)
}

// CycleStats is the output of the simplified cycle-level validator.
type CycleStats = cyclesim.Stats

// RunCycleLevel drives the same workload through the simplified
// cycle-level simulator (internal/cyclesim) that cross-validates the
// epoch engine, the way the paper validates MLPsim against its
// cycle-accurate simulator. Its Overlap() output is the §3.4 Overlap
// term for translating EPI into overall CPI.
func RunCycleLevel(s RunSpec) (*CycleStats, error) {
	return RunCycleLevelContext(context.Background(), s)
}

// RunCycleLevelContext is RunCycleLevel with cancellation.
func RunCycleLevelContext(ctx context.Context, s RunSpec) (*CycleStats, error) {
	cfg := s.Config
	cfg.WarmInsts = s.Warm
	cs, err := cyclesim.New(cfg)
	if err != nil {
		return nil, err
	}
	return cs.RunContext(ctx, sim.BuildSource(s.Workload, cfg, s.Warm+s.Insts))
}

// ExperimentConfig sizes the table/figure harness.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the full-scale harness configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// The experiment harness: one function per table and figure of the
// paper's evaluation, plus ablations. See internal/experiments for the
// row types.
var (
	Table1               = experiments.Table1
	Table2               = experiments.Table2
	Table3               = experiments.Table3
	Figure2              = experiments.Figure2
	Figure3              = experiments.Figure3
	Figure4              = experiments.Figure4
	Figure5              = experiments.Figure5
	Figure6              = experiments.Figure6
	Figure7              = experiments.Figure7
	Figure8              = experiments.Figure8
	AblationCoalescing   = experiments.AblationCoalescing
	AblationBandwidth    = experiments.AblationBandwidth
	AblationScoutReach   = experiments.AblationScoutReach
	AblationLockElision  = experiments.AblationLockElision
	AblationSharedL2     = experiments.AblationSharedL2
	AblationSMACGeometry = experiments.AblationSMACGeometry
	RunAblations         = experiments.RunAblations
)
