package storemlp

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"
)

func TestRunFacade(t *testing.T) {
	s, err := Run(RunSpec{
		Workload: TPCW(1),
		Config:   DefaultConfig(),
		Insts:    200_000,
		Warm:     100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != 200_000 {
		t.Errorf("Insts = %d", s.Insts)
	}
	if s.EPI() <= 0 || s.MLP() <= 0 {
		t.Errorf("EPI=%v MLP=%v", s.EPI(), s.MLP())
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("specweb", 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "specweb" {
		t.Errorf("Name = %q", w.Name)
	}
	if _, err := WorkloadByName("nope", 3); err == nil {
		t.Error("unknown workload should error")
	}
	if got := AllWorkloads(1); len(got) != 4 {
		t.Errorf("AllWorkloads = %d entries", len(got))
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	n, err := WriteTrace(&buf, SPECjbb(2), cfg, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 150_000 {
		t.Fatalf("wrote %d records", n)
	}
	s, err := RunTrace(&buf, cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != 100_000 {
		t.Errorf("measured %d insts", s.Insts)
	}
	if s.EPI() <= 0 {
		t.Error("trace-driven run should produce epochs")
	}
}

// TestTraceFormatsEquivalent is the codec-neutrality gate: the same
// generated stream encoded legacy and columnar must drive the epoch
// engine to bit-identical statistics. Any divergence means one codec
// altered the instruction stream.
func TestTraceFormatsEquivalent(t *testing.T) {
	cfg := DefaultConfig()
	var legacy, columnar bytes.Buffer
	if _, err := WriteTraceFormat(&legacy, Database(5), cfg, 120_000, TraceLegacy); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTraceFormat(&columnar, Database(5), cfg, 120_000, TraceColumnar); err != nil {
		t.Fatal(err)
	}
	sLegacy, err := RunTrace(&legacy, cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	sColumnar, err := RunTrace(&columnar, cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sLegacy, sColumnar) {
		t.Errorf("stats diverge between codecs:\nlegacy:   %+v\ncolumnar: %+v", sLegacy, sColumnar)
	}
	if sLegacy.Insts != 100_000 {
		t.Errorf("measured %d insts, want 100000", sLegacy.Insts)
	}
}

// TestConvertTraceFacade checks the facade-level converter preserves
// counts and produces the requested encoding.
func TestConvertTraceFacade(t *testing.T) {
	cfg := DefaultConfig()
	var legacy bytes.Buffer
	if _, err := WriteTraceFormat(&legacy, TPCW(3), cfg, 60_000, TraceLegacy); err != nil {
		t.Fatal(err)
	}
	var col bytes.Buffer
	n, err := ConvertTrace(&col, bytes.NewReader(legacy.Bytes()), TraceColumnar)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60_000 {
		t.Errorf("converted %d insts, want 60000", n)
	}
	if got := string(col.Bytes()[:4]); got != "SMLC" {
		t.Errorf("converted magic = %q, want SMLC", got)
	}
	s, err := RunTrace(&col, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != 60_000 {
		t.Errorf("converted trace drove %d insts, want 60000", s.Insts)
	}
	if _, err := ParseTraceFormat("nope"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestWriteTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	bad := Database(1)
	bad.Name = ""
	if _, err := WriteTrace(&buf, bad, DefaultConfig(), 10); err == nil {
		t.Error("invalid workload should error")
	}
	cfg := DefaultConfig()
	cfg.ROB = 0
	if _, err := WriteTrace(&buf, Database(1), cfg, 10); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := WriteTrace(&buf, Database(1), DefaultConfig(), 0); err == nil {
		t.Error("zero length should error")
	}
	if _, err := RunTrace(bytes.NewBufferString("JUNKJUNK"), DefaultConfig(), 0); err == nil {
		t.Error("junk trace should error")
	}
}

func TestWCTraceGeneration(t *testing.T) {
	var pcBuf, wcBuf bytes.Buffer
	pcCfg := DefaultConfig()
	if _, err := WriteTrace(&pcBuf, TPCW(1), pcCfg, 50_000); err != nil {
		t.Fatal(err)
	}
	wcCfg := DefaultConfig()
	wcCfg.Model = WC
	if _, err := WriteTrace(&wcBuf, TPCW(1), wcCfg, 50_000); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pcBuf.Bytes(), wcBuf.Bytes()) {
		t.Error("WC trace should differ from PC trace")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunSpec{
		Workload: Database(1), Config: DefaultConfig(), Insts: 1_000_000, Warm: 0,
	})
	if err == nil {
		t.Fatal("cancelled run should error")
	}
	if ctx.Err() == nil || err.Error() != ctx.Err().Error() {
		t.Errorf("err = %v, want %v", err, ctx.Err())
	}
}

func baseSpec() RunSpec {
	return RunSpec{Workload: Database(1), Config: DefaultConfig(), Insts: 1000, Warm: 100}
}

func TestConfigDigestStable(t *testing.T) {
	a, b := ConfigDigest(baseSpec()), ConfigDigest(baseSpec())
	if a != b {
		t.Fatalf("identical specs digest differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("digest %q is not sha256 hex", a)
	}
	for i := 0; i < 50; i++ { // map iteration order must not leak in
		if ConfigDigest(baseSpec()) != a {
			t.Fatal("digest unstable across calls")
		}
	}
}

// perturb returns a changed copy of the scalar leaf v.
func perturb(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		return false
	}
	return true
}

// forEachLeaf visits every settable scalar leaf under v, recursing into
// nested structs, and calls fn with the dotted path.
func forEachLeaf(path string, v reflect.Value, fn func(path string, leaf reflect.Value)) {
	if v.Kind() == reflect.Struct {
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			forEachLeaf(path+"."+t.Field(i).Name, v.Field(i), fn)
		}
		return
	}
	fn(path, v)
}

// TestConfigDigestSensitivity is the cache-correctness keystone: every
// single scalar field of the RunSpec — workload calibration, machine
// configuration (including nested cache/branch/SMAC geometry), and the
// run scalars — must change the digest when changed. A field the digest
// ignores is a field on which the serving cache would silently return a
// wrong result.
func TestConfigDigestSensitivity(t *testing.T) {
	base := ConfigDigest(baseSpec())
	seen := map[string]string{"": base}
	count := 0
	spec := baseSpec()
	forEachLeaf("spec", reflect.ValueOf(&spec).Elem(), func(path string, _ reflect.Value) {
		fresh := baseSpec()
		// Re-resolve the same path on a fresh copy and perturb it.
		leaf := reflect.ValueOf(&fresh).Elem()
		for _, name := range splitPath(path)[1:] {
			leaf = leaf.FieldByName(name)
		}
		if !perturb(leaf) {
			t.Fatalf("%s: unperturbable kind %s", path, leaf.Kind())
		}
		d := ConfigDigest(fresh)
		if prev, dup := seen[d]; dup {
			t.Errorf("%s: perturbation did not change digest (collides with %q)", path, prev)
		}
		seen[d] = path
		count++
	})
	if count < 40 {
		t.Fatalf("visited only %d leaves; RunSpec traversal is broken", count)
	}
}

func splitPath(p string) []string {
	var parts []string
	for len(p) > 0 {
		i := 0
		for i < len(p) && p[i] != '.' {
			i++
		}
		if p[:i] != "" {
			parts = append(parts, p[:i])
		}
		if i == len(p) {
			break
		}
		p = p[i+1:]
	}
	return parts
}

func TestOverallCPI(t *testing.T) {
	s, err := Run(RunSpec{Workload: SPECweb(1), Config: DefaultConfig(), Insts: 100_000, Warm: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	overall := OverallCPI(1.38, 0.2, s, 500)
	if overall <= 1.38*0.8 {
		t.Errorf("overall CPI = %v should exceed the on-chip part", overall)
	}
	var zero Stats
	if OverallCPI(1.0, 0, &zero, 500) != 0 {
		t.Error("zero stats should give 0")
	}
}

// TestParallelFacade covers the root-level fan-out entry points with
// the accuracy contract from RunSpec.Parallel: overlap-invariant
// counters (instructions, accesses) are exact, EPI stays within the
// documented 0.5% of the serial run. Segments here are much shorter
// than the production default, so this also exercises overlap clamping
// near the stream start.
func TestParallelFacade(t *testing.T) {
	const tol = 0.005
	drift := func(got, want float64) float64 {
		if want == 0 {
			return 0
		}
		return math.Abs(got-want) / want
	}
	cfg := DefaultConfig()
	serial, err := Run(RunSpec{Workload: SPECweb(3), Config: cfg, Insts: 60_000, Warm: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(RunSpec{Workload: SPECweb(3), Config: cfg, Insts: 60_000, Warm: 20_000, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if par.Insts != serial.Insts || par.Hierarchy.Loads != serial.Hierarchy.Loads ||
		par.Hierarchy.Stores != serial.Hierarchy.Stores {
		t.Errorf("overlap-invariant counters diverge:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	if d := drift(par.EPI(), serial.EPI()); d > tol {
		t.Errorf("generated run EPI drift %.4f%% exceeds %.2f%% (serial %.4f, parallel %.4f)",
			100*d, 100*tol, serial.EPI(), par.EPI())
	}

	var buf bytes.Buffer
	if _, err := WriteTraceFormat(&buf, Database(9), cfg, 80_000, TraceColumnar); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sSerial, err := RunTrace(bytes.NewReader(data), cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	sPar, err := RunTraceBytesParallel(context.Background(), data, cfg, 20_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sPar.Insts != 60_000 {
		t.Errorf("measured %d insts, want 60000", sPar.Insts)
	}
	if sPar.Hierarchy.Loads != sSerial.Hierarchy.Loads || sPar.Hierarchy.Stores != sSerial.Hierarchy.Stores {
		t.Errorf("trace overlap-invariant counters diverge:\nserial:   %+v\nparallel: %+v", sSerial, sPar)
	}
	if d := drift(sPar.EPI(), sSerial.EPI()); d > tol {
		t.Errorf("trace run EPI drift %.4f%% exceeds %.2f%% (serial %.4f, parallel %.4f)",
			100*d, 100*tol, sSerial.EPI(), sPar.EPI())
	}
}
