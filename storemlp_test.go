package storemlp

import (
	"bytes"
	"testing"
)

func TestRunFacade(t *testing.T) {
	s, err := Run(RunSpec{
		Workload: TPCW(1),
		Config:   DefaultConfig(),
		Insts:    200_000,
		Warm:     100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != 200_000 {
		t.Errorf("Insts = %d", s.Insts)
	}
	if s.EPI() <= 0 || s.MLP() <= 0 {
		t.Errorf("EPI=%v MLP=%v", s.EPI(), s.MLP())
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("specweb", 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "specweb" {
		t.Errorf("Name = %q", w.Name)
	}
	if _, err := WorkloadByName("nope", 3); err == nil {
		t.Error("unknown workload should error")
	}
	if got := AllWorkloads(1); len(got) != 4 {
		t.Errorf("AllWorkloads = %d entries", len(got))
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	n, err := WriteTrace(&buf, SPECjbb(2), cfg, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 150_000 {
		t.Fatalf("wrote %d records", n)
	}
	s, err := RunTrace(&buf, cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != 100_000 {
		t.Errorf("measured %d insts", s.Insts)
	}
	if s.EPI() <= 0 {
		t.Error("trace-driven run should produce epochs")
	}
}

func TestWriteTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	bad := Database(1)
	bad.Name = ""
	if _, err := WriteTrace(&buf, bad, DefaultConfig(), 10); err == nil {
		t.Error("invalid workload should error")
	}
	cfg := DefaultConfig()
	cfg.ROB = 0
	if _, err := WriteTrace(&buf, Database(1), cfg, 10); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := WriteTrace(&buf, Database(1), DefaultConfig(), 0); err == nil {
		t.Error("zero length should error")
	}
	if _, err := RunTrace(bytes.NewBufferString("JUNKJUNK"), DefaultConfig(), 0); err == nil {
		t.Error("junk trace should error")
	}
}

func TestWCTraceGeneration(t *testing.T) {
	var pcBuf, wcBuf bytes.Buffer
	pcCfg := DefaultConfig()
	if _, err := WriteTrace(&pcBuf, TPCW(1), pcCfg, 50_000); err != nil {
		t.Fatal(err)
	}
	wcCfg := DefaultConfig()
	wcCfg.Model = WC
	if _, err := WriteTrace(&wcBuf, TPCW(1), wcCfg, 50_000); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pcBuf.Bytes(), wcBuf.Bytes()) {
		t.Error("WC trace should differ from PC trace")
	}
}

func TestOverallCPI(t *testing.T) {
	s, err := Run(RunSpec{Workload: SPECweb(1), Config: DefaultConfig(), Insts: 100_000, Warm: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	overall := OverallCPI(1.38, 0.2, s, 500)
	if overall <= 1.38*0.8 {
		t.Errorf("overall CPI = %v should exceed the on-chip part", overall)
	}
	var zero Stats
	if OverallCPI(1.0, 0, &zero, 500) != 0 {
		t.Error("zero stats should give 0")
	}
}
