// OLTP store-handling tuning: reproduce the Figure 2 trade-off for the
// database workload — how much do store prefetching, store queue size
// and store buffer size each buy?
//
// The paper's conclusion, visible in this sweep: store prefetching is
// the big lever; once it is on, enlarging the store queue past 32-64
// entries and the store buffer past 8-16 entries returns little,
// because serializing instructions (not capacity) become the limiter.
package main

import (
	"fmt"
	"log"

	"storemlp"
)

const (
	insts = 1_000_000
	warm  = 500_000
)

func run(mutate func(*storemlp.Config)) *storemlp.Stats {
	cfg := storemlp.DefaultConfig()
	mutate(&cfg)
	s, err := storemlp.Run(storemlp.RunSpec{
		Workload: storemlp.Database(1), Config: cfg, Insts: insts, Warm: warm,
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	fmt.Println("database workload: EPI (epochs/1000 insts), lower is better")
	fmt.Println()

	fmt.Println("store prefetching (SB16, SQ32):")
	for mode, name := range map[int]string{0: "Sp0 none      ", 1: "Sp1 at retire ", 2: "Sp2 at execute"} {
		m := mode
		s := run(func(c *storemlp.Config) {
			switch m {
			case 0:
				c.StorePrefetch = storemlp.Sp0
			case 1:
				c.StorePrefetch = storemlp.Sp1
			case 2:
				c.StorePrefetch = storemlp.Sp2
			}
		})
		fmt.Printf("  %s EPI=%.3f  storeMLP=%.2f\n", name, s.EPI(), s.StoreMLP())
	}

	fmt.Println("\nstore queue size (Sp1, SB16):")
	for _, sq := range []int{16, 32, 64, 256} {
		q := sq
		s := run(func(c *storemlp.Config) { c.StoreQueue = q })
		fmt.Printf("  SQ%-4d EPI=%.3f\n", sq, s.EPI())
	}

	fmt.Println("\nstore buffer size (Sp1, SQ32):")
	for _, sb := range []int{8, 16, 32} {
		b := sb
		s := run(func(c *storemlp.Config) { c.StoreBuffer = b })
		fmt.Printf("  SB%-4d EPI=%.3f\n", sb, s.EPI())
	}

	perfect := run(func(c *storemlp.Config) { c.PerfectStores = true })
	fmt.Printf("\nfloor (stores never stall): EPI=%.3f\n", perfect.EPI())
}
