// OLTP store-handling tuning: reproduce the Figure 2 trade-off for the
// database workload — how much do store prefetching, store queue size
// and store buffer size each buy?
//
// The paper's conclusion, visible in this sweep: store prefetching is
// the big lever; once it is on, enlarging the store queue past 32-64
// entries and the store buffer past 8-16 entries returns little,
// because serializing instructions (not capacity) become the limiter.
package main

import (
	"fmt"
	"log"

	"storemlp"
)

const (
	insts = 1_000_000
	warm  = 500_000
)

func run(with func(storemlp.Config) storemlp.Config) *storemlp.Stats {
	cfg := with(storemlp.DefaultConfig())
	s, err := storemlp.Run(storemlp.RunSpec{
		Workload: storemlp.Database(1), Config: cfg, Insts: insts, Warm: warm,
	})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	fmt.Println("database workload: EPI (epochs/1000 insts), lower is better")
	fmt.Println()

	fmt.Println("store prefetching (SB16, SQ32):")
	for _, pf := range []struct {
		mode storemlp.PrefetchMode
		name string
	}{
		{storemlp.Sp0, "Sp0 none      "},
		{storemlp.Sp1, "Sp1 at retire "},
		{storemlp.Sp2, "Sp2 at execute"},
	} {
		mode := pf.mode
		s := run(func(c storemlp.Config) storemlp.Config {
			c.StorePrefetch = mode
			return c
		})
		fmt.Printf("  %s EPI=%.3f  storeMLP=%.2f\n", pf.name, s.EPI(), s.StoreMLP())
	}

	fmt.Println("\nstore queue size (Sp1, SB16):")
	for _, sq := range []int{16, 32, 64, 256} {
		q := sq
		s := run(func(c storemlp.Config) storemlp.Config {
			c.StoreQueue = q
			return c
		})
		fmt.Printf("  SQ%-4d EPI=%.3f\n", sq, s.EPI())
	}

	fmt.Println("\nstore buffer size (Sp1, SQ32):")
	for _, sb := range []int{8, 16, 32} {
		b := sb
		s := run(func(c storemlp.Config) storemlp.Config {
			c.StoreBuffer = b
			return c
		})
		fmt.Printf("  SB%-4d EPI=%.3f\n", sb, s.EPI())
	}

	perfect := run(func(c storemlp.Config) storemlp.Config {
		c.PerfectStores = true
		return c
	})
	fmt.Printf("\nfloor (stores never stall): EPI=%.3f\n", perfect.EPI())
}
