// Consistency-gap study: quantify the store-performance gap between
// processor consistency (SPARC TSO) and weak consistency (PowerPC) for
// the four commercial workloads, and how far Speculative Lock Elision
// plus prefetch-past-serializing closes it (the paper's Figure 7).
package main

import (
	"fmt"
	"log"

	"storemlp"
)

const (
	insts = 800_000
	warm  = 400_000
)

func epi(w storemlp.Workload, with func(storemlp.Config) storemlp.Config) float64 {
	cfg := with(storemlp.DefaultConfig())
	s, err := storemlp.Run(storemlp.RunSpec{Workload: w, Config: cfg, Insts: insts, Warm: warm})
	if err != nil {
		log.Fatal(err)
	}
	return s.EPI()
}

func main() {
	fmt.Println("EPI (epochs/1000 insts) under the two consistency models,")
	fmt.Println("default configuration (store prefetch at retire):")
	fmt.Println()
	fmt.Printf("%-10s %8s %8s %8s %8s %10s %10s\n",
		"workload", "PC1", "WC1", "PC3", "WC3", "PC1-WC1", "PC3-WC3")
	for _, w := range storemlp.AllWorkloads(1) {
		pc1 := epi(w, func(c storemlp.Config) storemlp.Config { return c })
		wc1 := epi(w, func(c storemlp.Config) storemlp.Config {
			c.Model = storemlp.WC
			return c
		})
		pc3 := epi(w, func(c storemlp.Config) storemlp.Config {
			c.SLE = true
			c.PrefetchPastSerializing = true
			return c
		})
		wc3 := epi(w, func(c storemlp.Config) storemlp.Config {
			c.Model = storemlp.WC
			c.SLE = true
			c.PrefetchPastSerializing = true
			return c
		})
		fmt.Printf("%-10s %8.3f %8.3f %8.3f %8.3f %10.3f %10.3f\n",
			w.Name, pc1, wc1, pc3, wc3, pc1-wc1, pc3-wc3)
	}
	fmt.Println()
	fmt.Println("PC1/WC1: plain TSO vs PowerPC lock idioms.")
	fmt.Println("PC3/WC3: + speculative lock elision + prefetch past serializing.")
	fmt.Println("SLE converts lock acquires to plain loads and elides releases,")
	fmt.Println("removing the store-queue drains that serialize TSO critical sections.")
}
