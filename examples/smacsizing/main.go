// SMAC sizing study: explore the Store Miss Accelerator design space
// (the paper's Figures 5 and 6) — how large must the E-state tag cache
// be to accelerate a workload's store misses, and what does cross-chip
// coherence traffic cost it?
//
// The run uses the time-compressed SMAC calibration described in
// DESIGN.md: store-miss density x4 and a churn working set whose
// evict-then-revisit cycle fits in a few million instructions.
package main

import (
	"fmt"
	"log"

	"storemlp"
)

func main() {
	w := storemlp.Database(1)
	// Time-compress the store-miss reuse cycle (see DESIGN.md §SMAC).
	w.StoreMissPer100 *= 4
	w.StoreWSBytes = 2 << 20
	w.SharedWSBytes = 128 << 10

	const (
		insts = 2_000_000
		warm  = 3_500_000
	)

	run := func(entries, nodes int) *storemlp.Stats {
		cfg := storemlp.DefaultConfig()
		cfg.StorePrefetch = storemlp.Sp0 // SMAC's value shows best without prefetching
		cfg.SMACEntries = entries
		cfg.Nodes = nodes
		s, err := storemlp.Run(storemlp.RunSpec{Workload: w, Config: cfg, Insts: insts, Warm: warm})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	fmt.Println("database workload (time-compressed), Sp0, 2-node system")
	fmt.Printf("%-10s %8s %12s %12s %14s\n", "SMAC", "EPI", "accelerated", "hit-invalid", "inval/1000")
	for _, entries := range []int{0, 256, 512, 1024, 2048, 4096} {
		s := run(entries, 2)
		label := "none"
		if entries > 0 {
			label = fmt.Sprintf("%d", entries)
		}
		var pctInvalid float64
		if s.SMAC.Probes > 0 {
			pctInvalid = 100 * float64(s.SMAC.HitInvalidated) / float64(s.SMAC.Probes)
		}
		fmt.Printf("%-10s %8.3f %12d %11.1f%% %14.3f\n",
			label, s.EPI(), s.SMACAccelerated, pctInvalid,
			1000*float64(s.SMAC.CoherenceInvalidates)/float64(s.Insts))
	}

	fmt.Println("\nnode scaling at 4K entries (coherence pressure):")
	for _, nodes := range []int{2, 4} {
		s := run(4096, nodes)
		fmt.Printf("  %d-node: EPI=%.3f accelerated=%d invalidates/1000=%.3f\n",
			nodes, s.EPI(), s.SMACAccelerated,
			1000*float64(s.SMAC.CoherenceInvalidates)/float64(s.Insts))
	}

	fmt.Println("\nThe SMAC reaches prefetch-level store performance without the")
	fmt.Println("prefetch-for-write traffic; compare cmd/experiments -run ablations.")
}
