// CPI breakdown: put the paper's §3.4 equation to work —
//
//	CPIoverall = CPIon-chip x (1 - Overlap) + EPI x MissPenalty
//
// using the analytical on-chip model (Table 3), the epoch engine's EPI,
// and the Overlap term measured by the cycle-level validator, for every
// workload and for three store-handling configurations.
package main

import (
	"fmt"
	"log"

	"storemlp"
)

const (
	insts = 600_000
	warm  = 300_000
)

// table3 holds the paper's CPIon-chip constants (reproduced by our
// analytical model; see EXPERIMENTS.md).
var table3 = map[string]float64{
	"database": 1.11, "tpcw": 1.12, "specjbb": 0.95, "specweb": 1.38,
}

func main() {
	fmt.Println("Overall CPI via the epoch model (CPIonchip(1-Overlap) + EPI*penalty):")
	fmt.Printf("%-10s %-14s %8s %8s %10s %11s\n",
		"workload", "config", "EPI", "overlap", "offchipCPI", "overallCPI")
	for _, w := range storemlp.AllWorkloads(1) {
		for _, mode := range []struct {
			name string
			with func(storemlp.Config) storemlp.Config
		}{
			{"Sp0", func(c storemlp.Config) storemlp.Config {
				c.StorePrefetch = storemlp.Sp0
				return c
			}},
			{"Sp1 (default)", func(c storemlp.Config) storemlp.Config { return c }},
			{"Sp1+HWS2", func(c storemlp.Config) storemlp.Config {
				c.HWS = storemlp.HWS2
				return c
			}},
		} {
			cfg := mode.with(storemlp.DefaultConfig())
			spec := storemlp.RunSpec{Workload: w, Config: cfg, Insts: insts, Warm: warm}
			stats, err := storemlp.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			cyc, err := storemlp.RunCycleLevel(spec)
			if err != nil {
				log.Fatal(err)
			}
			onchip := table3[w.Name]
			overall := storemlp.OverallCPI(onchip, cyc.Overlap(), stats, cfg.MissPenalty)
			fmt.Printf("%-10s %-14s %8.3f %8.3f %10.3f %11.3f\n",
				w.Name, mode.name, stats.EPI(), cyc.Overlap(),
				stats.OffChipCPI(cfg.MissPenalty), overall)
		}
	}
	fmt.Println("\nOff-chip CPI dominates overall CPI at 500-cycle latencies — the")
	fmt.Println("paper's motivation for optimizing store MLP in the first place.")
}
