// Quickstart: run the epoch MLP simulator on one commercial workload
// with the paper's default processor configuration and print the
// headline metrics.
package main

import (
	"fmt"
	"log"

	"storemlp"
)

func main() {
	w := storemlp.Database(1)
	cfg := storemlp.DefaultConfig()

	stats, err := storemlp.Run(storemlp.RunSpec{
		Workload: w,
		Config:   cfg,
		Insts:    1_000_000,
		Warm:     500_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, config: %s\n\n", w.Name, cfg.Name())
	fmt.Printf("EPI:          %6.3f epochs / 1000 instructions\n", stats.EPI())
	fmt.Printf("MLP:          %6.3f\n", stats.MLP())
	fmt.Printf("store MLP:    %6.3f\n", stats.StoreMLP())
	fmt.Printf("off-chip CPI: %6.3f (at %d-cycle miss penalty)\n",
		stats.OffChipCPI(cfg.MissPenalty), cfg.MissPenalty)

	// How much of that is stores? Compare against the perfect-stores
	// baseline (stores never stall the processor).
	perfect := cfg
	perfect.PerfectStores = true
	base, err := storemlp.Run(storemlp.RunSpec{
		Workload: w, Config: perfect, Insts: 1_000_000, Warm: 500_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperfect-stores EPI: %.3f\n", base.EPI())
	fmt.Printf("store contribution to off-chip CPI: %.0f%%\n",
		100*(stats.EPI()-base.EPI())/stats.EPI())
}
