module storemlp

go 1.22
