package storemlp

// One benchmark per table and figure of the paper's evaluation. Each
// drives the same harness code that cmd/experiments uses, at a reduced
// per-run instruction count so the full suite completes in minutes; run
// cmd/experiments for full-scale numbers (EXPERIMENTS.md records those).
// Headline results are attached as custom benchmark metrics.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"storemlp/internal/epoch"
	"storemlp/internal/experiments"
	"storemlp/internal/isa"
	"storemlp/internal/obs"
	"storemlp/internal/sim"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// benchConfig sizes one harness invocation for benchmarking.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Insts: 150_000, Warm: 100_000}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].StoreFreq, "dbStoreFreq/100")
			b.ReportMetric(rows[0].StoreMiss, "dbStoreMiss/100")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[1].Overlapped, "tpcwOverlapped")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].CPIOnChip, "dbCPIonchip")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if !c.Perfect && c.Prefetch == uarch.Sp1 && c.SB == 16 && c.SQ == 32 {
					b.ReportMetric(c.EPI, "tpcwSp1EPI")
				}
			}
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.SPECjbb(1)}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Variant == "A" {
					b.ReportMetric(r.Fractions[4], "jbbStoreSerializeFrac") // TermStoreSerialize
				}
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].StoreMLP, "dbStoreMLP")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if !c.Perfect && c.Prefetch == uarch.Sp0 && c.SMACEntries == 4<<10 {
					b.ReportMetric(c.EPI, "dbSp0Smac4kEPI")
				}
			}
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if c.Nodes == 4 && c.SMACEntries == 4<<10 {
					b.ReportMetric(c.InvalPer1000, "tpcw4nodeInval/1000")
				}
			}
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.SPECweb(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var pc1, wc1 float64
			for _, c := range cells {
				if !c.Perfect && c.Prefetch == uarch.Sp1 {
					switch c.Config {
					case "PC1":
						pc1 = c.EPI
					case "WC1":
						wc1 = c.EPI
					}
				}
			}
			b.ReportMetric(pc1-wc1, "webConsistencyGapEPI")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if !c.Perfect && c.Model.String() == "PC" && c.HWS == uarch.HWS2 {
					b.ReportMetric(c.EPI, "tpcwPcHws2EPI")
				}
			}
		}
	}
}

func BenchmarkAblationCoalescing(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCoalescing(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBandwidth(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBandwidth(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScoutReach(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScoutReach(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine measures raw simulator throughput: instructions
// simulated per second through the full epoch engine (default
// configuration, database workload).
func BenchmarkEngine(b *testing.B) {
	const n = 500_000
	w := workload.Database(1)
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunSpec{Workload: w, Config: DefaultConfig(), Insts: n, Warm: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTraced is BenchmarkEngine with the observability
// sinks attached: a live run tracer (16Ki-event ring) and a progress
// board, exactly as mlpsimd runs them. The delta against
// BenchmarkEngine is the cost of *enabled* tracing; a disabled (nil)
// tracer costs only a nil check and is proven allocation-free by
// TestStepZeroAllocTracerDisabled in internal/epoch.
func BenchmarkEngineTraced(b *testing.B) {
	const n = 500_000
	w := workload.Database(1)
	ctx := obs.NewContext(context.Background(), &obs.Obs{
		Tracer: obs.NewTracer(1 << 14),
		Board:  obs.NewBoard(),
	})
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		if _, err := RunContext(ctx, RunSpec{Workload: w, Config: DefaultConfig(), Insts: n, Warm: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReplay measures the steady-state serving path: the
// trace is pre-materialized and one engine is recycled through
// Reconfigure, isolating the simulator core from trace generation and
// from construction-time allocation. The gap between this and
// BenchmarkEngine is what the trace generator and per-run setup cost.
func BenchmarkEngineReplay(b *testing.B) {
	const n = 500_000
	cfg := DefaultConfig()
	sl := trace.Collect(sim.BuildSource(workload.Database(1), cfg, n))
	eng, err := epoch.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reconfigure(cfg); err != nil {
			b.Fatal(err)
		}
		sl.Reset()
		if _, err := eng.Run(sl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTraceDriven is BenchmarkEngine fed from a
// pre-encoded columnar trace instead of the synthetic generator: the
// delta against BenchmarkEngine is the full cost of the trace path
// (decode + batch plumbing). scripts/bench.sh records the ratio as
// trace_driven_vs_synthetic; the columnar decoder is cheap enough that
// it should stay within 20% of the generator path.
func BenchmarkEngineTraceDriven(b *testing.B) {
	const n = 500_000
	var buf bytes.Buffer
	if _, err := WriteTraceFormat(&buf, Database(1), DefaultConfig(), n, TraceColumnar); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := RunTrace(bytes.NewReader(enc), DefaultConfig(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if s.Insts != n {
			b.Fatalf("trace run measured %d insts, want %d", s.Insts, n)
		}
	}
}

// BenchmarkEngineParallel is BenchmarkEngine split across K segment
// engines (the -parallel knob): the scaling curve ns_per_op(K) is the
// intra-run parallelization win. Each segment after the first pays an
// unmeasured warm-up overlap re-simulation, so perfect scaling is not
// expected even with K idle cores; on a single-CPU host the curve
// records the overlap overhead instead (scripts/bench.sh stores
// num_cpu alongside so the two cases are distinguishable).
func BenchmarkEngineParallel(b *testing.B) {
	const n = 500_000
	w := workload.Database(1)
	ks := []int{1, 2, 4}
	if c := runtime.NumCPU(); c != 1 && c != 2 && c != 4 {
		ks = append(ks, c)
	}
	for _, k := range ks {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				s, err := Run(RunSpec{Workload: w, Config: DefaultConfig(), Insts: n, Warm: 0, Parallel: k})
				if err != nil {
					b.Fatal(err)
				}
				if s.Insts != n {
					b.Fatalf("parallel run measured %d insts, want %d", s.Insts, n)
				}
			}
		})
	}
}

// BenchmarkStatsMerge isolates the fan-in cost of a parallel run: one
// op folds four real per-segment Stats into an accumulator, exactly
// the merge a K=4 run performs after its segments finish. It bounds
// the serial tail of the parallelization (Amdahl): merge cost per run
// is this number, independent of instruction count.
func BenchmarkStatsMerge(b *testing.B) {
	const n = 40_000
	parts := make([]*Stats, 4)
	for i := range parts {
		s, err := Run(RunSpec{Workload: workload.Database(int64(i + 1)), Config: DefaultConfig(), Insts: n, Warm: 0})
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = s
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var acc Stats
		for _, p := range parts {
			acc.Merge(p)
		}
		if acc.Insts != 4*n {
			b.Fatalf("merged %d insts, want %d", acc.Insts, 4*n)
		}
	}
}

// encodedBenchTrace builds one n-instruction TPC-W trace in the given
// format, outside the timed region.
func encodedBenchTrace(b *testing.B, n int64, f TraceFormat) []byte {
	b.Helper()
	var buf bytes.Buffer
	if _, err := WriteTraceFormat(&buf, TPCW(1), DefaultConfig(), n, f); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchTraceDecode measures pure decode throughput: a pre-encoded
// trace pulled through ReadBatch into the engine's 4096-inst batch
// buffer, exactly the shape RunTrace uses. The legacy codec allocates
// per instruction (~200k allocs here); the columnar codec decodes the
// same stream in O(blocks) allocations.
func benchTraceDecode(b *testing.B, f TraceFormat) {
	const n = 200_000
	enc := encodedBenchTrace(b, n, f)
	batch := make([]isa.Inst, 4096)
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.NewAutoReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		for {
			k := src.ReadBatch(batch)
			if k == 0 {
				break
			}
			total += int64(k)
		}
		if err := src.Err(); err != nil {
			b.Fatal(err)
		}
		if total != n {
			b.Fatalf("decoded %d insts, want %d", total, n)
		}
	}
}

func BenchmarkTraceDecodeLegacy(b *testing.B)   { benchTraceDecode(b, TraceLegacy) }
func BenchmarkTraceDecodeColumnar(b *testing.B) { benchTraceDecode(b, TraceColumnar) }

// benchTraceEncode measures generation + encoding into a discarding
// writer, the tracegen hot path.
func benchTraceEncode(b *testing.B, f TraceFormat) {
	const n = 200_000
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sink countWriter
		if _, err := WriteTraceFormat(&sink, TPCW(1), DefaultConfig(), n, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncodeLegacy(b *testing.B)   { benchTraceEncode(b, TraceLegacy) }
func BenchmarkTraceEncodeColumnar(b *testing.B) { benchTraceEncode(b, TraceColumnar) }

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
