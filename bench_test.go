package storemlp

// One benchmark per table and figure of the paper's evaluation. Each
// drives the same harness code that cmd/experiments uses, at a reduced
// per-run instruction count so the full suite completes in minutes; run
// cmd/experiments for full-scale numbers (EXPERIMENTS.md records those).
// Headline results are attached as custom benchmark metrics.

import (
	"context"
	"testing"

	"storemlp/internal/epoch"
	"storemlp/internal/experiments"
	"storemlp/internal/obs"
	"storemlp/internal/sim"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// benchConfig sizes one harness invocation for benchmarking.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Insts: 150_000, Warm: 100_000}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].StoreFreq, "dbStoreFreq/100")
			b.ReportMetric(rows[0].StoreMiss, "dbStoreMiss/100")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[1].Overlapped, "tpcwOverlapped")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].CPIOnChip, "dbCPIonchip")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if !c.Perfect && c.Prefetch == uarch.Sp1 && c.SB == 16 && c.SQ == 32 {
					b.ReportMetric(c.EPI, "tpcwSp1EPI")
				}
			}
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.SPECjbb(1)}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Variant == "A" {
					b.ReportMetric(r.Fractions[4], "jbbStoreSerializeFrac") // TermStoreSerialize
				}
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].StoreMLP, "dbStoreMLP")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if !c.Perfect && c.Prefetch == uarch.Sp0 && c.SMACEntries == 4<<10 {
					b.ReportMetric(c.EPI, "dbSp0Smac4kEPI")
				}
			}
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if c.Nodes == 4 && c.SMACEntries == 4<<10 {
					b.ReportMetric(c.InvalPer1000, "tpcw4nodeInval/1000")
				}
			}
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.SPECweb(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var pc1, wc1 float64
			for _, c := range cells {
				if !c.Perfect && c.Prefetch == uarch.Sp1 {
					switch c.Config {
					case "PC1":
						pc1 = c.EPI
					case "WC1":
						wc1 = c.EPI
					}
				}
			}
			b.ReportMetric(pc1-wc1, "webConsistencyGapEPI")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if !c.Perfect && c.Model.String() == "PC" && c.HWS == uarch.HWS2 {
					b.ReportMetric(c.EPI, "tpcwPcHws2EPI")
				}
			}
		}
	}
}

func BenchmarkAblationCoalescing(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCoalescing(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBandwidth(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.Database(1)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBandwidth(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScoutReach(b *testing.B) {
	cfg := benchConfig()
	cfg.Workloads = []workload.Params{workload.TPCW(1)}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScoutReach(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine measures raw simulator throughput: instructions
// simulated per second through the full epoch engine (default
// configuration, database workload).
func BenchmarkEngine(b *testing.B) {
	const n = 500_000
	w := workload.Database(1)
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunSpec{Workload: w, Config: DefaultConfig(), Insts: n, Warm: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTraced is BenchmarkEngine with the observability
// sinks attached: a live run tracer (16Ki-event ring) and a progress
// board, exactly as mlpsimd runs them. The delta against
// BenchmarkEngine is the cost of *enabled* tracing; a disabled (nil)
// tracer costs only a nil check and is proven allocation-free by
// TestStepZeroAllocTracerDisabled in internal/epoch.
func BenchmarkEngineTraced(b *testing.B) {
	const n = 500_000
	w := workload.Database(1)
	ctx := obs.NewContext(context.Background(), &obs.Obs{
		Tracer: obs.NewTracer(1 << 14),
		Board:  obs.NewBoard(),
	})
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		if _, err := RunContext(ctx, RunSpec{Workload: w, Config: DefaultConfig(), Insts: n, Warm: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReplay measures the steady-state serving path: the
// trace is pre-materialized and one engine is recycled through
// Reconfigure, isolating the simulator core from trace generation and
// from construction-time allocation. The gap between this and
// BenchmarkEngine is what the trace generator and per-run setup cost.
func BenchmarkEngineReplay(b *testing.B) {
	const n = 500_000
	cfg := DefaultConfig()
	sl := trace.Collect(sim.BuildSource(workload.Database(1), cfg, n))
	eng, err := epoch.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reconfigure(cfg); err != nil {
			b.Fatal(err)
		}
		sl.Reset()
		if _, err := eng.Run(sl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCodec measures the binary trace round-trip rate.
func BenchmarkTraceCodec(b *testing.B) {
	const n = 200_000
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		var sink countWriter
		if _, err := WriteTrace(&sink, TPCW(1), DefaultConfig(), n); err != nil {
			b.Fatal(err)
		}
	}
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
