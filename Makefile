GO ?= go

.PHONY: build test check vet storemlpvet lint bench bench-serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full CI gate: build + go vet + storemlpvet + race-enabled tests.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

storemlpvet:
	$(GO) run ./cmd/storemlpvet ./...

# Standalone lint: stock go vet plus the seventeen storemlpvet rules.
# -list first so the log names every rule that ran.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/storemlpvet -list
	$(GO) run ./cmd/storemlpvet ./...

bench:
	$(GO) test -bench=. -benchmem

# Serving-layer benchmark: local mlpsimd + the repeated Figure-2 grid
# via mlpload; writes BENCH_serve.json.
bench-serve:
	./scripts/bench.sh
