GO ?= go

.PHONY: build test check vet storemlpvet lint bench bench-serve benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full CI gate: build + go vet + storemlpvet + race-enabled tests.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

storemlpvet:
	$(GO) run ./cmd/storemlpvet ./...

# Standalone lint: stock go vet plus the seventeen storemlpvet rules.
# -list first so the log names every rule that ran.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/storemlpvet -list
	$(GO) run ./cmd/storemlpvet ./...

bench:
	$(GO) test -bench=. -benchmem

# Serving-layer benchmark: local mlpsimd + the repeated Figure-2 grid
# via mlpload; writes BENCH_serve.json.
bench-serve:
	./scripts/bench.sh

# Perf-regression gate: re-run the full benchmark suite into throwaway
# files and diff them against the committed baselines with per-metric,
# direction-aware tolerances (DESIGN.md §17). Exits nonzero on any
# regression beyond tolerance — run before refreshing the baselines.
benchdiff:
	BENCH_ENGINE_OUT=/tmp/BENCH_engine.new.json \
	BENCH_SERVE_OUT=/tmp/BENCH_serve.new.json \
		./scripts/bench.sh
	$(GO) run ./cmd/benchdiff -mode gate \
		BENCH_engine.json /tmp/BENCH_engine.new.json \
		BENCH_serve.json /tmp/BENCH_serve.new.json
