package smac

import (
	"testing"
	"testing/quick"
)

func tiny() *SMAC {
	// 16 entries, 2-way (8 sets), 2048B super-lines, 64B sub-blocks.
	return New(Params{Entries: 16, Ways: 2, SuperLineBytes: 2048, SubBlockBytes: 64})
}

func TestParams(t *testing.T) {
	p := DefaultParams(8192)
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.SubBlocks() != 32 {
		t.Errorf("SubBlocks = %d, want 32", p.SubBlocks())
	}
	if p.CoverageBytes() != 16<<20 {
		t.Errorf("Coverage = %d, want 16 MB", p.CoverageBytes())
	}
	bad := []Params{
		{Entries: 0, Ways: 8, SuperLineBytes: 2048, SubBlockBytes: 64},
		{Entries: 100, Ways: 8, SuperLineBytes: 2048, SubBlockBytes: 64},  // not divisible
		{Entries: 24, Ways: 8, SuperLineBytes: 2048, SubBlockBytes: 64},   // sets=3
		{Entries: 16, Ways: 8, SuperLineBytes: 2000, SubBlockBytes: 64},   // non-pow2
		{Entries: 16, Ways: 8, SuperLineBytes: 2048, SubBlockBytes: 16},   // 128 sub-blocks
		{Entries: 16, Ways: 8, SuperLineBytes: 2048, SubBlockBytes: 4096}, // 0 sub-blocks
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on bad params")
		}
	}()
	New(Params{Entries: 7, Ways: 2, SuperLineBytes: 2048, SubBlockBytes: 64})
}

func TestNilSMAC(t *testing.T) {
	var s *SMAC
	s.RecordEviction(0x1000) // must not panic
	if got := s.ProbeStore(0x1000); got != Miss {
		t.Errorf("nil probe = %v", got)
	}
	if s.SnoopInvalidate(0x1000) {
		t.Error("nil snoop should report false")
	}
	if s.OwnedSubBlocks() != 0 {
		t.Error("nil owned != 0")
	}
}

func TestEvictionThenHit(t *testing.T) {
	s := tiny()
	if got := s.ProbeStore(0x10040); got != Miss {
		t.Fatalf("cold probe = %v", got)
	}
	s.RecordEviction(0x10040)
	if s.OwnedSubBlocks() != 1 {
		t.Fatalf("owned = %d", s.OwnedSubBlocks())
	}
	if got := s.ProbeStore(0x10040); got != Hit {
		t.Fatalf("probe after eviction = %v", got)
	}
	// Ownership is consumed by the hit.
	if got := s.ProbeStore(0x10040); got != Miss {
		t.Fatalf("second probe = %v", got)
	}
	if s.Stats.Hits != 1 || s.Stats.Misses != 2 || s.Stats.Probes != 3 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestSubBlockGranularity(t *testing.T) {
	s := tiny()
	s.RecordEviction(0x10000) // sub-block 0 of super-line 0x10000
	// Same super-line, different sub-block: miss.
	if got := s.ProbeStore(0x10040); got != Miss {
		t.Errorf("different sub-block = %v", got)
	}
	// Same sub-block, different offset inside it: hit.
	s.RecordEviction(0x10000)
	if got := s.ProbeStore(0x1003f); got != Hit {
		t.Errorf("same sub-block offset = %v", got)
	}
}

func TestSnoopInvalidate(t *testing.T) {
	s := tiny()
	s.RecordEviction(0x20000)
	if !s.SnoopInvalidate(0x20000) {
		t.Fatal("snoop should invalidate owned sub-block")
	}
	if s.SnoopInvalidate(0x20000) {
		t.Error("second snoop should be a no-op")
	}
	if got := s.ProbeStore(0x20000); got != HitInvalidated {
		t.Errorf("probe after snoop = %v", got)
	}
	if s.Stats.CoherenceInvalidates != 1 || s.Stats.HitInvalidated != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
	// Re-eviction restores ownership and clears the invalidated mark.
	s.RecordEviction(0x20000)
	if got := s.ProbeStore(0x20000); got != Hit {
		t.Errorf("probe after re-eviction = %v", got)
	}
}

func TestSnoopAbsent(t *testing.T) {
	s := tiny()
	if s.SnoopInvalidate(0x999000) {
		t.Error("snoop on absent entry should report false")
	}
}

func TestCapacityEviction(t *testing.T) {
	s := tiny() // 8 sets x 2 ways; set = (addr>>11) & 7
	// Three super-lines mapping to set 0: tags 0, 8, 16.
	a := uint64(0 * 2048)
	b := uint64(8 * 2048)
	c := uint64(16 * 2048)
	s.RecordEviction(a)
	s.RecordEviction(b)
	s.ProbeStore(a) // consumes a's bit but refreshes a's LRU
	s.RecordEviction(a)
	s.RecordEviction(c) // must evict b (LRU)
	if s.Stats.EntryEvictions != 1 {
		t.Fatalf("EntryEvictions = %d", s.Stats.EntryEvictions)
	}
	if got := s.ProbeStore(b); got != Miss {
		t.Errorf("evicted entry probe = %v", got)
	}
	if got := s.ProbeStore(a); got != Hit {
		t.Errorf("retained entry probe = %v", got)
	}
	if got := s.ProbeStore(c); got != Hit {
		t.Errorf("new entry probe = %v", got)
	}
}

func TestProbeResultString(t *testing.T) {
	if Miss.String() != "miss" || Hit.String() != "hit" || HitInvalidated.String() != "hit-invalidated" {
		t.Error("ProbeResult strings wrong")
	}
}

// Property: RecordEviction(a) followed immediately by ProbeStore(a) is
// always a Hit, and ownership is single-use.
func TestEvictProbeProperty(t *testing.T) {
	s := New(DefaultParams(1024))
	f := func(a uint32) bool {
		addr := uint64(a)
		s.RecordEviction(addr)
		if s.ProbeStore(addr) != Hit {
			return false
		}
		return s.ProbeStore(addr) != Hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: owned sub-block count never exceeds entries*subblocks and
// never goes negative through any operation sequence.
func TestOwnedBoundsProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		s := tiny()
		max := 16 * 32
		for _, op := range ops {
			addr := uint64(op &^ 3)
			switch op % 3 {
			case 0:
				s.RecordEviction(addr)
			case 1:
				s.ProbeStore(addr)
			case 2:
				s.SnoopInvalidate(addr)
			}
			if n := s.OwnedSubBlocks(); n < 0 || n > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
