// Package smac implements the Store Miss ACcelerator proposed in §3.3.3
// of the paper.
//
// The SMAC decouples line *ownership* from line *data*: when a Modified
// line is evicted from the L2 (losing both), the data is written back to
// memory but the ownership is retained as an Exclusive-state bit in the
// SMAC. A later store that misses the L2 but hits an owned sub-block in
// the SMAC can proceed without paying the cross-chip invalidation
// penalty, exactly as in a single-chip system — the L2 buffers the store
// data and merges it with the rest of the line in the background.
//
// To amortize tag cost, the SMAC is a heavily sub-blocked set-associative
// structure: each entry (tag) covers a 2048-byte super-line divided into
// 32 sub-blocks of 64 bytes, with one ownership bit per sub-block. An
// 8K-entry SMAC therefore covers 16 MB of address space in 64 KB of
// state (64 bits per entry).
package smac

import (
	"fmt"
	"math/bits"
)

// Params sizes a SMAC.
type Params struct {
	Entries        int // number of tags (8K..128K in the paper)
	Ways           int // associativity
	SuperLineBytes int // bytes covered per tag (2048 in the paper)
	SubBlockBytes  int // ownership granularity (the 64 B L2 line size)
}

// DefaultParams returns the paper's geometry for the given entry count.
func DefaultParams(entries int) Params {
	return Params{Entries: entries, Ways: 8, SuperLineBytes: 2048, SubBlockBytes: 64}
}

// SubBlocks returns the number of sub-blocks per entry.
func (p Params) SubBlocks() int { return p.SuperLineBytes / p.SubBlockBytes }

// CoverageBytes returns the address-space coverage of the SMAC.
func (p Params) CoverageBytes() int64 { return int64(p.Entries) * int64(p.SuperLineBytes) }

// Validate checks the geometry.
func (p Params) Validate() error {
	if p.Entries <= 0 || p.Ways <= 0 {
		return fmt.Errorf("smac: non-positive entries/ways %+v", p)
	}
	if p.Entries%p.Ways != 0 {
		return fmt.Errorf("smac: entries %d not divisible by ways %d", p.Entries, p.Ways)
	}
	sets := p.Entries / p.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("smac: set count %d not a power of two", sets)
	}
	if p.SuperLineBytes <= 0 || p.SuperLineBytes&(p.SuperLineBytes-1) != 0 {
		return fmt.Errorf("smac: super-line %d not a power of two", p.SuperLineBytes)
	}
	if p.SubBlockBytes <= 0 || p.SubBlockBytes&(p.SubBlockBytes-1) != 0 {
		return fmt.Errorf("smac: sub-block %d not a power of two", p.SubBlockBytes)
	}
	n := p.SubBlocks()
	if n < 1 || n > 64 {
		return fmt.Errorf("smac: %d sub-blocks per entry unsupported (need 1..64)", n)
	}
	return nil
}

type entry struct {
	tag   uint64
	owned uint64 // per-sub-block E bits
	inval uint64 // sub-blocks that were owned but lost to a remote snoop
	lru   uint64
	valid bool
}

// Stats counts SMAC events; the two Figure 6 series are
// CoherenceInvalidates (left graph, per 1000 instructions) and
// HitInvalidated vs total store-miss probes (right graph).
type Stats struct {
	Evictions            int64 // M-line evictions recorded from the L2
	Probes               int64 // store-miss lookups
	Hits                 int64 // store misses accelerated (owned sub-block)
	HitInvalidated       int64 // matching entry, but sub-block was invalidated by coherence
	Misses               int64 // no useful entry
	CoherenceInvalidates int64 // owned sub-blocks lost to remote snoops
	EntryEvictions       int64 // SMAC tags displaced by capacity
}

// Add returns the counter-wise sum of s and o, for folding statistics
// from sharded runs.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Evictions:            s.Evictions + o.Evictions,
		Probes:               s.Probes + o.Probes,
		Hits:                 s.Hits + o.Hits,
		HitInvalidated:       s.HitInvalidated + o.HitInvalidated,
		Misses:               s.Misses + o.Misses,
		CoherenceInvalidates: s.CoherenceInvalidates + o.CoherenceInvalidates,
		EntryEvictions:       s.EntryEvictions + o.EntryEvictions,
	}
}

// SMAC is the store-miss accelerator structure. A nil *SMAC behaves as
// "no SMAC": probes always miss and recording is a no-op, so the epoch
// engine can hold one unconditionally.
type SMAC struct {
	params     Params  //storemlp:keep (geometry, fixed at construction)
	sets       []entry // sets*ways, set-major
	ways       int     //storemlp:keep
	superShift uint    //storemlp:keep
	subShift   uint    //storemlp:keep
	subMask    uint64  //storemlp:keep
	setMask    uint64  //storemlp:keep
	clock      uint64

	Stats Stats
}

// New builds a SMAC; it panics on invalid geometry.
func New(p Params) *SMAC {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	sets := p.Entries / p.Ways
	return &SMAC{
		params:     p,
		sets:       make([]entry, p.Entries),
		ways:       p.Ways,
		superShift: uint(bits.TrailingZeros(uint(p.SuperLineBytes))),
		subShift:   uint(bits.TrailingZeros(uint(p.SubBlockBytes))),
		subMask:    uint64(p.SubBlocks() - 1),
		setMask:    uint64(sets - 1),
	}
}

// Params returns the geometry the SMAC was built with.
func (s *SMAC) Params() Params { return s.params }

func (s *SMAC) index(addr uint64) (set []entry, tag uint64, bit uint64) {
	tag = addr >> s.superShift
	setIdx := tag & s.setMask
	bit = 1 << ((addr >> s.subShift) & s.subMask)
	return s.sets[setIdx*uint64(s.ways) : (setIdx+1)*uint64(s.ways)], tag, bit
}

func (s *SMAC) find(set []entry, tag uint64) *entry {
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// RecordEviction notes that a Modified line at addr was evicted from the
// L2: its data goes to memory but this chip keeps ownership of the
// sub-block. Allocates (possibly evicting) a SMAC entry.
func (s *SMAC) RecordEviction(addr uint64) {
	if s == nil {
		return
	}
	s.Stats.Evictions++
	set, tag, bit := s.index(addr)
	s.clock++
	if e := s.find(set, tag); e != nil {
		e.owned |= bit
		e.inval &^= bit
		e.lru = s.clock
		return
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		s.Stats.EntryEvictions++
	}
	set[victim] = entry{tag: tag, owned: bit, lru: s.clock, valid: true}
}

// ProbeResult classifies a store-miss lookup.
type ProbeResult uint8

const (
	// Miss: no matching entry (or sub-block never owned) — the store miss
	// pays the full invalidation penalty.
	Miss ProbeResult = iota
	// Hit: the sub-block is held in Exclusive state — the store miss is
	// accelerated and skips the invalidation penalty.
	Hit
	// HitInvalidated: a matching entry exists but the sub-block was
	// invalidated by a coherence event from another node (the Figure 6
	// right-hand metric).
	HitInvalidated
)

func (r ProbeResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case HitInvalidated:
		return "hit-invalidated"
	default:
		return "miss"
	}
}

// ProbeStore is called for a store that missed the L2. On Hit the
// ownership bit is consumed (the line returns to the L2 in Modified
// state, so the SMAC no longer needs to track it).
func (s *SMAC) ProbeStore(addr uint64) ProbeResult {
	if s == nil {
		return Miss
	}
	s.Stats.Probes++
	set, tag, bit := s.index(addr)
	e := s.find(set, tag)
	if e == nil {
		s.Stats.Misses++
		return Miss
	}
	s.clock++
	e.lru = s.clock
	switch {
	case e.owned&bit != 0:
		s.Stats.Hits++
		e.owned &^= bit // ownership transfers back to the L2 proper
		return Hit
	case e.inval&bit != 0:
		s.Stats.HitInvalidated++
		return HitInvalidated
	default:
		s.Stats.Misses++
		return Miss
	}
}

// SnoopInvalidate applies a remote node's snoop (request-to-own or
// shared read) to the SMAC: an owned sub-block is invalidated, since
// ownership can no longer be asserted. It reports whether an owned
// sub-block was lost.
func (s *SMAC) SnoopInvalidate(addr uint64) bool {
	if s == nil {
		return false
	}
	set, tag, bit := s.index(addr)
	e := s.find(set, tag)
	if e == nil || e.owned&bit == 0 {
		return false
	}
	e.owned &^= bit
	e.inval |= bit
	s.Stats.CoherenceInvalidates++
	return true
}

// OwnedSubBlocks returns the total number of owned sub-blocks (tests).
func (s *SMAC) OwnedSubBlocks() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.sets {
		if s.sets[i].valid {
			n += bits.OnesCount64(s.sets[i].owned)
		}
	}
	return n
}

// Reset empties the SMAC and zeroes its statistics, returning it to its
// as-constructed state without reallocating.
func (s *SMAC) Reset() {
	for i := range s.sets {
		s.sets[i] = entry{}
	}
	s.clock = 0
	s.Stats = Stats{}
}
