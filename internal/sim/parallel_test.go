package sim

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"storemlp/internal/epoch"
	"storemlp/internal/trace"
	"storemlp/internal/trace/colv1"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

func TestSplitRunInvariants(t *testing.T) {
	for _, tc := range []struct {
		warm, insts int64
		k           int
		overlap     int64
	}{
		{10_000, 20_000, 4, 16_384},
		{0, 500_000, 8, 16_384},
		{1_000_000, 500_000, 3, 4_096},
		{5, 7, 2, 3},
		{0, 1, 1, 16_384},
	} {
		segs := splitRun(tc.warm, tc.insts, tc.k, tc.overlap)
		if len(segs) != tc.k {
			t.Fatalf("splitRun(%+v): %d segments, want %d", tc, len(segs), tc.k)
		}
		var measured int64
		for i, sg := range segs {
			if sg.start < 0 || sg.start > sg.meas || sg.meas >= sg.end {
				t.Fatalf("segment %d malformed: %+v", i, sg)
			}
			if i == 0 {
				if sg.start != 0 || sg.meas != tc.warm {
					t.Fatalf("segment 0 must absorb the warmup: %+v", sg)
				}
			} else {
				if sg.meas != segs[i-1].end {
					t.Fatalf("segment %d does not abut its predecessor: %+v after %+v", i, sg, segs[i-1])
				}
				if ov := sg.meas - sg.start; ov != tc.overlap && sg.start != 0 {
					t.Fatalf("segment %d overlap %d, want %d (or clamped to stream start)", i, ov, tc.overlap)
				}
			}
			measured += sg.end - sg.meas
		}
		if measured != tc.insts {
			t.Fatalf("segments measure %d insts, want %d", measured, tc.insts)
		}
		if last := segs[len(segs)-1]; last.end != tc.warm+tc.insts {
			t.Fatalf("last segment ends at %d, want %d", last.end, tc.warm+tc.insts)
		}
	}
}

func TestSegmentsClamp(t *testing.T) {
	for _, tc := range []struct {
		insts int64
		k     int
		want  int
	}{
		{500_000, 0, 1},
		{500_000, 1, 1},
		{500_000, 4, 4},
		{20_000, 4, 4},
		{8_192, 4, 2},
		{4_096, 8, 1},
		{100, 8, 1},
	} {
		s := Spec{Insts: tc.insts, Parallel: tc.k}
		if got := Segments(s); got != tc.want {
			t.Errorf("Segments(insts=%d, parallel=%d) = %d, want %d", tc.insts, tc.k, got, tc.want)
		}
	}
}

// TestParallelSingleSegmentBitExact: one segment is the whole serial
// run — same stream, same warmup, same engine path — so the parallel
// plumbing at K=1 must be bit-identical to RunContext.
func TestParallelSingleSegmentBitExact(t *testing.T) {
	spec := Spec{Workload: workload.Database(1), Uarch: uarch.Default(), Insts: 20_000, Warm: 10_000}
	want, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPool().runParallel(context.Background(), spec, WarmupOverlap(spec.Uarch), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", *got) != fmt.Sprintf("%+v", *want) {
		t.Errorf("K=1 parallel diverges from serial:\n got %+v\nwant %+v", *got, *want)
	}
}

// exactCounters are the overlap-invariant counters: they depend only on
// the measured instruction range, not on machine state carried across a
// segment boundary, so parallel simulation must reproduce them exactly.
func exactCounters(t *testing.T, name string, got, want *epoch.Stats) {
	t.Helper()
	if got.Insts != want.Insts {
		t.Errorf("%s: Insts = %d, want %d", name, got.Insts, want.Insts)
	}
	if got.Hierarchy.Fetches != want.Hierarchy.Fetches {
		t.Errorf("%s: Fetches = %d, want %d", name, got.Hierarchy.Fetches, want.Hierarchy.Fetches)
	}
	if got.Hierarchy.Loads != want.Hierarchy.Loads {
		t.Errorf("%s: Loads = %d, want %d", name, got.Hierarchy.Loads, want.Hierarchy.Loads)
	}
	if got.Hierarchy.Stores != want.Hierarchy.Stores {
		t.Errorf("%s: Stores = %d, want %d", name, got.Hierarchy.Stores, want.Hierarchy.Stores)
	}
	if got.Snoops != want.Snoops {
		t.Errorf("%s: Snoops = %d, want %d", name, got.Snoops, want.Snoops)
	}
}

// relDrift returns |got-want| / want (0 when both are 0).
func relDrift(got, want int64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// driftTolerance is the documented accuracy contract for parallel runs
// at WarmupOverlap: EPI and total charged misses stay within 0.5% of
// the serial run (DESIGN.md §15).
const driftTolerance = 0.005

// TestParallelGoldenEquivalence runs the full 104-config golden grid
// at K=4 and checks the contract against the serial engine: exact for
// overlap-invariant counters, <=0.5% EPI and total-miss drift for the
// state-dependent rest.
func TestParallelGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is a few seconds of simulation")
	}
	pool := NewPool()
	var worstEPI, worstMiss float64
	var worstName string
	for _, gs := range goldenSpecs() {
		serial, err := Run(gs.spec)
		if err != nil {
			t.Fatalf("%s: serial: %v", gs.name, err)
		}
		spec := gs.spec
		spec.Parallel = 4
		par, err := pool.RunContext(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: parallel: %v", gs.name, err)
		}
		exactCounters(t, gs.name, par, serial)
		epiDrift := math.Abs(par.EPI()-serial.EPI()) / math.Max(serial.EPI(), 1e-9)
		missDrift := relDrift(par.Misses(), serial.Misses())
		if epiDrift > worstEPI {
			worstEPI, worstName = epiDrift, gs.name
		}
		if missDrift > worstMiss {
			worstMiss = missDrift
		}
		if epiDrift > driftTolerance {
			t.Errorf("%s: EPI drift %.4f%% exceeds %.2f%% (serial %.4f, parallel %.4f)",
				gs.name, 100*epiDrift, 100*driftTolerance, serial.EPI(), par.EPI())
		}
		if missDrift > driftTolerance {
			t.Errorf("%s: miss drift %.4f%% exceeds %.2f%% (serial %d, parallel %d)",
				gs.name, 100*missDrift, 100*driftTolerance, serial.Misses(), par.Misses())
		}
	}
	t.Logf("worst EPI drift %.4f%% (%s), worst miss drift %.4f%% at overlap %d",
		100*worstEPI, worstName, 100*worstMiss, WarmupOverlap(uarch.Default()))
}

// TestOverlapSweep documents how accuracy scales with the overlap
// length at production scale — the sweep that chose overlapPerL2Line.
// The golden grid is useless for this choice: its runs are short
// enough that any overlap past ~32k clamps every segment back to the
// stream start, making state reconstruction trivially exact. Accuracy
// must instead be measured on runs long enough that segments start
// mid-stream with only the overlap to rebuild L2 residency. Run with
// -v to see the curve; the contract is asserted at WarmupOverlap and
// beyond, across every workload at 500k and 2M instructions.
func TestOverlapSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is several seconds of simulation")
	}
	cases := []struct {
		name  string
		w     workload.Params
		insts int64
	}{
		{"tpcw-500k", workload.TPCW(1), 500_000},
		{"database-500k", workload.Database(1), 500_000},
		{"specjbb-500k", workload.SPECjbb(1), 500_000},
		{"specweb-500k", workload.SPECweb(1), 500_000},
		{"tpcw-2M", workload.TPCW(1), 2_000_000},
		{"database-2M", workload.Database(1), 2_000_000},
	}
	pool := NewPool()
	def := WarmupOverlap(uarch.Default())
	for _, overlap := range []int64{32_768, 65_536, 131_072, def, 2 * def} {
		var worst float64
		var worstName string
		for _, tc := range cases {
			spec := Spec{Workload: tc.w, Uarch: uarch.Default(), Insts: tc.insts, Warm: tc.insts / 5}
			serial, err := Run(spec)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			spec.Parallel = 4
			par, err := pool.runParallel(context.Background(), spec, overlap, 0)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			d := math.Abs(par.EPI()-serial.EPI()) / math.Max(serial.EPI(), 1e-9)
			if d > worst {
				worst, worstName = d, tc.name
			}
		}
		t.Logf("overlap %6d: worst EPI drift %.4f%% (%s)", overlap, 100*worst, worstName)
		if overlap >= def && worst > driftTolerance {
			t.Errorf("overlap %d: worst EPI drift %.4f%% exceeds the %.2f%% contract",
				overlap, 100*worst, 100*driftTolerance)
		}
	}
}

// TestParallelTrace drives the same columnar trace through the serial
// and parallel trace paths: K=1 must be bit-exact; K=4 keeps the
// overlap-invariant counters exact and the rest within tolerance.
func TestParallelTrace(t *testing.T) {
	const (
		insts = 40_000
		warm  = 8_000
	)
	cfg := uarch.Default()
	var buf bytes.Buffer
	if _, err := trace.WriteAllFormat(&buf, BuildSource(workload.TPCW(1), cfg, insts+warm), trace.FormatColumnar); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	serialR, err := colv1.NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := cfg
	serialCfg.WarmInsts = warm
	eng, err := epoch.New(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := eng.RunContext(context.Background(), serialR)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool()
	one, err := pool.RunTraceParallel(context.Background(), data, cfg, warm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", *one) != fmt.Sprintf("%+v", *serial) {
		t.Errorf("K=1 trace parallel diverges from serial:\n got %+v\nwant %+v", *one, *serial)
	}

	par, err := pool.RunTraceParallel(context.Background(), data, cfg, warm, 4)
	if err != nil {
		t.Fatal(err)
	}
	exactCounters(t, "trace K=4", par, serial)
	if d := math.Abs(par.EPI()-serial.EPI()) / math.Max(serial.EPI(), 1e-9); d > driftTolerance {
		t.Errorf("trace K=4: EPI drift %.4f%% exceeds %.2f%%", 100*d, 100*driftTolerance)
	}
}

// TestParallelCancel: a cancelled context must surface as the
// context's error from every entry point, with all segment goroutines
// joined before return (the race detector would catch stragglers).
func TestParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Spec{Workload: workload.Database(1), Uarch: uarch.Default(),
		Insts: 100_000, Warm: 0, Parallel: 4}
	if _, err := NewPool().RunContext(ctx, spec); err != context.Canceled {
		t.Errorf("cancelled parallel run: err = %v, want context.Canceled", err)
	}
}

// TestParallelValidate: the knob is validated like every other field.
func TestParallelValidate(t *testing.T) {
	spec := Spec{Workload: workload.Database(1), Uarch: uarch.Default(), Insts: 1000, Parallel: -1}
	if err := spec.Validate(); err == nil {
		t.Error("negative Parallel passed Validate")
	}
}
