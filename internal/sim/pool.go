// Engine pooling for the serving layer: one simulation request no
// longer pays for building the multi-megabyte cache hierarchy, the
// structure rings and the epoch-record window — engines are recycled
// through epoch.Engine.Reconfigure, which resets them to an
// observationally fresh state while keeping every allocation whose
// geometry still fits the next request's configuration.
package sim

import (
	"context"
	"sync"

	"storemlp/internal/epoch"
	"storemlp/internal/obs"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
)

// Pool recycles epoch engines across simulation runs. The zero value
// is ready to use; Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free []*epoch.Engine // guarded by mu
}

// NewPool returns an empty engine pool.
func NewPool() *Pool { return &Pool{} }

func (p *Pool) get() *epoch.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return e
	}
	return new(epoch.Engine)
}

func (p *Pool) put(e *epoch.Engine) {
	p.mu.Lock()
	p.free = append(p.free, e)
	p.mu.Unlock()
}

// Idle returns the number of engines currently parked in the pool
// (for tests and metrics).
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Run executes the simulation on a pooled engine.
func (p *Pool) Run(s Spec) (*epoch.Stats, error) {
	return p.RunContext(context.Background(), s)
}

// RunContext is Run with cancellation. It is a drop-in replacement for
// the package-level RunContext: the recycled engine is reconfigured to
// an observationally fresh state first, so results are identical.
func (p *Pool) RunContext(ctx context.Context, s Spec) (*epoch.Stats, error) {
	parseStart := obs.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if Segments(s) > 1 {
		return p.runParallel(ctx, s, WarmupOverlap(s.Uarch), parseStart)
	}
	cfg, opts := prepare(s)
	e := p.get()
	// A failed Reconfigure (or a cancelled run) leaves mid-run state
	// behind, but the next Reconfigure discards it, so the engine goes
	// back to the pool on every path.
	defer p.put(e)
	if err := e.Reconfigure(cfg, opts...); err != nil {
		return nil, err
	}
	src := BuildSource(s.Workload, cfg, s.Warm+s.Insts)
	release := observeFrom(obs.FromContext(ctx), e, runLabel(s), s.Warm+s.Insts, parseStart)
	rt, parent := obs.SpanFrom(ctx)
	sp := rt.StartSpan(obs.StageSimulate, parent)
	st, err := e.RunContext(ctx, src)
	rt.EndSpan(sp, s.Insts)
	release()
	if err != nil {
		return nil, err
	}
	// The engine exposes its own stats field; copy before the engine is
	// handed to the next request.
	out := *st
	return &out, nil
}

// RunTraceSource executes one trace-driven simulation on a pooled
// engine: Reconfigure resets the recycled engine to an observationally
// fresh state, so the result matches a fresh epoch.New run while
// steady-state replay reuses the cache hierarchy, the structure rings
// and the decode batch instead of rebuilding them per trace.
func (p *Pool) RunTraceSource(ctx context.Context, src trace.FileSource, cfg uarch.Config, warm int64) (*epoch.Stats, error) {
	cfg.WarmInsts = warm
	e := p.get()
	defer p.put(e)
	if err := e.Reconfigure(cfg); err != nil {
		return nil, err
	}
	// Build the run label (it allocates) only when someone is watching.
	release := func() {}
	if o := obs.FromContext(ctx); o != nil && (o.Tracer != nil || o.Board != nil) {
		release = observeFrom(o, e, "trace "+cfg.Name(), 0, 0)
	}
	st, err := e.RunContext(ctx, src)
	release()
	if err != nil {
		return nil, err
	}
	if src.Err() != nil {
		return nil, src.Err()
	}
	out := *st
	return &out, nil
}
