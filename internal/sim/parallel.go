// Parallel intra-run simulation: one run split into K contiguous
// segments simulated concurrently on per-core engines checked out of
// the Pool, merged with epoch.Stats.Merge. The epoch model makes this
// sound — per-epoch records fold into Stats associatively — and the
// warm-up overlap makes it accurate: each segment after the first
// re-simulates an unmeasured prefix so window, cache, SMAC and branch
// state are reconstructed at its boundary, reusing the engine's
// existing WarmInsts machinery (baselines snapshot at the
// warmup→measurement transition exactly as for prewarming).
//
// Exactness contract. Counters that depend only on the measured
// instruction range — Stats.Insts, the Hierarchy operation counts
// (Fetches/Loads/Stores) and Snoops (the traffic clock is
// fast-forwarded bit-exactly, see coherence.Traffic.Skip) — match the
// serial run exactly. Two boundary artifacts are corrected at the
// trailing edge of every segment but the last: an unmeasured drain
// suffix of one overlap window (epoch.WithMeasureLimit) lets stores
// still open at the measurement boundary reach the same
// overlapped/exposed disposition the serial run gives them, and the
// continuation correction (epoch.WithWarmContinuation) stops an epoch
// straddling the boundary from being counted by both sides. What
// remains is genuine warm-up error: counters that depend on machine
// state reconstructed through the overlap prefix (miss counts, Epochs,
// SMAC hits, branch-predictor outcomes) drift by a bounded amount.
// DESIGN.md §15 documents the measured drift at WarmupOverlap; the
// golden-fixture equivalence test pins it.
package sim

import (
	"context"
	"fmt"
	"sync"

	"storemlp/internal/epoch"
	"storemlp/internal/isa"
	"storemlp/internal/obs"
	"storemlp/internal/trace"
	"storemlp/internal/trace/colv1"
	"storemlp/internal/uarch"
)

const (
	// overlapPerL2Line scales the warm-up overlap with the L2's line
	// count. Miss counts are dominated by L2 residency, so the overlap
	// must be long enough for the measured slice's prefix to refill the
	// L2 the way the serial run left it — a horizon set by the machine
	// (lines x instructions per fill), not by the run length. Eight
	// instructions per line holds EPI and total-miss drift under 0.5%
	// at 500k and 2M-instruction scale across all four workloads
	// (TestOverlapSweep records the curve); for the default 2 MB / 64 B
	// L2 this yields 262144 overlap instructions.
	overlapPerL2Line = 8

	// minOverlap floors WarmupOverlap for degenerate (tiny-cache)
	// configurations.
	minOverlap = 32768

	// minSegment is the smallest measured slice worth a segment: below
	// one engine batch the fan-out overhead and the overlap redundancy
	// dwarf the work, so Segments clamps the requested split.
	minSegment = 4096

	// ffBlock is the fast-forward block size (matches the engine's
	// batch length; 4096 x 24 B stays cache-resident).
	ffBlock = 4096
)

// WarmupOverlap is the warm-up overlap prefix, in instructions,
// re-simulated (unmeasured) ahead of every segment but the first:
// overlapPerL2Line instructions per L2 line. Short runs clamp the
// overlap to the stream start — state reconstruction is then bit-exact
// and only the corrected boundary residue remains; long runs pay a
// constant (K-1) x WarmupOverlap redundant instructions, amortized as
// runs grow past the L2 horizon.
func WarmupOverlap(cfg uarch.Config) int64 {
	l2 := cfg.Hierarchy.L2
	ov := int64(l2.SizeBytes/l2.LineBytes) * overlapPerL2Line
	if ov < minOverlap {
		ov = minOverlap
	}
	return ov
}

// segment is one contiguous slice of a run's instruction stream.
type segment struct {
	start int64 // first stream position fed to the engine (overlap prefix included)
	meas  int64 // stream position where measurement begins: Warm + segment offset
	end   int64 // one past the segment's last stream position
}

// clampSegments bounds a requested segment count so every segment
// measures at least minSegment instructions; at least 1.
func clampSegments(insts int64, k int) int {
	if k < 1 {
		k = 1
	}
	if maxK := insts / minSegment; int64(k) > maxK {
		k = int(maxK)
		if k < 1 {
			k = 1
		}
	}
	return k
}

// Segments reports the number of segments RunContext will actually use
// for s: the Parallel knob clamped so every segment measures at least
// minSegment instructions. 1 means the run executes serially. The
// serving layer uses this to account segment engines in its saturation
// metric and to surface the fan-out in responses.
func Segments(s Spec) int {
	return clampSegments(s.Insts, s.Parallel)
}

// splitRun partitions warm+insts stream positions into k segments:
// measured instructions are split as evenly as possible (earlier
// segments take the remainder), the first segment absorbs the whole
// warmup prefix, and every later segment is fronted by min(overlap,
// meas) unmeasured overlap instructions.
func splitRun(warm, insts int64, k int, overlap int64) []segment {
	segs := make([]segment, 0, k)
	base := insts / int64(k)
	rem := insts % int64(k)
	off := int64(0)
	for i := 0; i < k; i++ {
		n := base
		if int64(i) < rem {
			n++
		}
		meas := warm + off
		start := meas - overlap
		if i == 0 || start < 0 {
			start = 0
		}
		if i == 0 {
			start = 0 // the warmup prefix is segment 0's overlap
		}
		segs = append(segs, segment{start: start, meas: meas, end: meas + n})
		off += n
	}
	return segs
}

// discard advances src past n instructions, polling ctx once per block
// so a cancelled request abandons the fast-forward promptly. This is
// how synthetic segments position their stream: the deterministic
// generator (and the consistency transform chain, whose rewrites
// change instruction counts) cannot be seeked, so the segment re-emits
// and drops the prefix — exact by construction.
func discard(ctx context.Context, src trace.Source, n int64) error {
	if n <= 0 {
		return nil
	}
	buf := make([]isa.Inst, ffBlock)
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := len(buf)
		if n < int64(want) {
			want = int(n)
		}
		got := trace.Fill(src, buf[:want])
		if got == 0 {
			return fmt.Errorf("sim: stream ended %d instructions before segment start", n)
		}
		n -= int64(got)
	}
	return nil
}

// runParallel fans a validated spec out across Segments(s) segment
// engines and merges their Stats. Every segment checks its engine out
// of the pool, so a saturated serving layer recycles allocations
// across both requests and segments.
func (p *Pool) runParallel(ctx context.Context, s Spec, overlap, parseStart int64) (*epoch.Stats, error) {
	segs := splitRun(s.Warm, s.Insts, Segments(s), overlap)
	o := obs.FromContext(ctx)
	var run uint32
	if o != nil && o.Tracer != nil {
		run = o.Tracer.NewRun()
		if parseStart != 0 {
			o.Tracer.Complete(obs.EvParse, run, parseStart, s.Warm+s.Insts)
		}
	}
	return fanOutMerge(ctx, o, run, len(segs), func(i int) (*epoch.Stats, error) {
		return p.runSegment(ctx, s, segs[i], o, run, i, len(segs))
	})
}

// runSegment simulates one slice of the run on a pooled engine: build
// the stream up to the segment's end (plus the drain suffix), drop the
// prefix, reconstruct state through the overlap (WarmInsts), measure
// the slice, and drain.
func (p *Pool) runSegment(ctx context.Context, s Spec, sg segment, o *obs.Obs, run uint32, i, k int) (*epoch.Stats, error) {
	var segStart int64
	if o != nil && o.Tracer != nil {
		segStart = obs.Now()
	}
	rt, parent := obs.SpanFrom(ctx)
	seg := rt.StartSpan(obs.StageSegment, parent)
	defer func() { rt.EndSpan(seg, int64(i)) }()
	cfg := s.Uarch
	cfg.WarmInsts = sg.meas - sg.start
	opts, err := segmentOptions(ctx, s, sg.start)
	if err != nil {
		return nil, err
	}
	feedEnd := sg.end
	if i < k-1 {
		// Drain suffix: simulate one overlap window past the measured
		// range, unmeasured, so open stores reach their natural serial
		// disposition instead of being conservatively exposed at stream
		// end. The last segment ends where the serial stream ends, so its
		// finalize matches the serial finalize exactly.
		feedEnd += cfg.OverlapWindow()
		opts = append(opts, epoch.WithMeasureLimit(sg.end-sg.meas))
	}
	if i > 0 {
		opts = append(opts, epoch.WithWarmContinuation())
	}
	e := p.get()
	defer p.put(e)
	if err := e.Reconfigure(cfg, opts...); err != nil {
		return nil, err
	}
	src := BuildSource(s.Workload, cfg, feedEnd)
	if err := discard(ctx, src, sg.start); err != nil {
		return nil, err
	}
	label := fmt.Sprintf("%s [seg %d/%d]", runLabel(s), i+1, k)
	release := observeFrom(o, e, label, feedEnd-sg.start, 0)
	sim := rt.StartSpan(obs.StageSimulate, seg)
	st, err := e.RunContext(ctx, src)
	rt.EndSpan(sim, sg.end-sg.meas)
	release()
	if err != nil {
		return nil, err
	}
	out := *st
	if o != nil && o.Tracer != nil {
		o.Tracer.Complete(obs.EvSegment, run, segStart, out.Insts)
	}
	return &out, nil
}

// RunTraceParallel splits a complete in-memory columnar trace across
// segment engines: every worker gets its own random-access reader over
// the shared bytes (typically an mmap via colv1.Open — see
// File.Data), positions it with the footer seek index, and decodes its
// blocks independently, so trace decode parallelizes with the
// simulation. warm instructions at the head of the trace are excluded
// from statistics, exactly as in the serial trace path.
func (p *Pool) RunTraceParallel(ctx context.Context, data []byte, cfg uarch.Config, warm int64, segments int) (*epoch.Stats, error) {
	parseStart := obs.Now()
	probe, err := colv1.NewBytesReader(data)
	if err != nil {
		return nil, err
	}
	total := probe.NumInsts()
	insts := total - warm
	if insts <= 0 {
		return nil, fmt.Errorf("sim: trace holds %d instructions, warmup %d leaves nothing to measure", total, warm)
	}
	k := clampSegments(insts, segments)
	segs := splitRun(warm, insts, k, WarmupOverlap(cfg))
	o := obs.FromContext(ctx)
	var run uint32
	if o != nil && o.Tracer != nil {
		run = o.Tracer.NewRun()
		o.Tracer.Complete(obs.EvParse, run, parseStart, total)
	}
	return fanOutMerge(ctx, o, run, len(segs), func(i int) (*epoch.Stats, error) {
		return p.runTraceSegment(ctx, data, cfg, segs[i], o, run, i, len(segs))
	})
}

// runTraceSegment decodes and simulates one instruction range of the
// shared trace image on a pooled engine.
func (p *Pool) runTraceSegment(ctx context.Context, data []byte, cfg uarch.Config, sg segment, o *obs.Obs, run uint32, i, k int) (*epoch.Stats, error) {
	var segStart int64
	if o != nil && o.Tracer != nil {
		segStart = obs.Now()
	}
	rt, parent := obs.SpanFrom(ctx)
	seg := rt.StartSpan(obs.StageSegment, parent)
	defer func() { rt.EndSpan(seg, int64(i)) }()
	r, err := colv1.NewBytesReader(data)
	if err != nil {
		return nil, err
	}
	if err := r.SeekInst(sg.start); err != nil {
		return nil, err
	}
	segCfg := cfg
	segCfg.WarmInsts = sg.meas - sg.start
	var opts []epoch.Option
	feedEnd := sg.end
	if i < k-1 {
		// Drain suffix, clamped to the trace's actual length (see
		// runSegment for why the last segment never gets one).
		if feedEnd += segCfg.OverlapWindow(); feedEnd > r.NumInsts() {
			feedEnd = r.NumInsts()
		}
		opts = append(opts, epoch.WithMeasureLimit(sg.end-sg.meas))
	}
	if i > 0 {
		opts = append(opts, epoch.WithWarmContinuation())
	}
	e := p.get()
	defer p.put(e)
	if err := e.Reconfigure(segCfg, opts...); err != nil {
		return nil, err
	}
	src := trace.Limit(r, feedEnd-sg.start)
	label := fmt.Sprintf("trace %s [seg %d/%d]", cfg.Name(), i+1, k)
	release := observeFrom(o, e, label, feedEnd-sg.start, 0)
	st, err := e.RunContext(ctx, src)
	release()
	if err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	out := *st
	if o != nil && o.Tracer != nil {
		o.Tracer.Complete(obs.EvSegment, run, segStart, out.Insts)
	}
	return &out, nil
}

// fanOutMerge runs n segment workers concurrently, waits for all of
// them, and merges their Stats in segment order (Merge is associative
// and commutative over every counter, but a fixed order keeps the
// result deterministic bit for bit). The first error by segment index
// wins; a cancelled context surfaces as every worker's error. When ctx
// carries a request span (obs.WithSpan), the merge records a
// StageMerge span on it; the workers record their own segment spans.
func fanOutMerge(ctx context.Context, o *obs.Obs, run uint32, n int, f func(i int) (*epoch.Stats, error)) (*epoch.Stats, error) {
	results := make([]*epoch.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	mergeStart := obs.Now()
	rt, parent := obs.SpanFrom(ctx)
	msp := rt.StartSpan(obs.StageMerge, parent)
	merged := results[0]
	for _, st := range results[1:] {
		merged.Merge(st)
	}
	rt.EndSpan(msp, int64(n))
	if o != nil && o.Tracer != nil {
		o.Tracer.Complete(obs.EvMerge, run, mergeStart, int64(n))
	}
	return merged, nil
}
