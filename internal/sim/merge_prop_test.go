package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"storemlp/internal/epoch"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// randomSplit partitions a warm+insts run at random measurement
// boundaries into k contiguous segments, shaped exactly like splitRun's
// output (segment 0 absorbs the warmup, later segments front an
// overlap prefix clamped to the stream start) but with arbitrary
// instead of even widths.
func randomSplit(rng *rand.Rand, warm, insts, overlap int64, k int) []segment {
	// k-1 distinct interior cut points across the measured range.
	cuts := map[int64]bool{}
	for len(cuts) < k-1 {
		c := 1 + rng.Int63n(insts-1)
		cuts[c] = true
	}
	offs := make([]int64, 0, k+1)
	offs = append(offs, 0)
	for c := range cuts {
		offs = append(offs, c)
	}
	offs = append(offs, insts)
	for i := range offs { // insertion sort; k is tiny
		for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
	segs := make([]segment, 0, k)
	for i := 0; i < k; i++ {
		meas := warm + offs[i]
		start := meas - overlap
		if i == 0 || start < 0 {
			start = 0
		}
		segs = append(segs, segment{start: start, meas: meas, end: warm + offs[i+1]})
	}
	return segs
}

// TestMergeAssociativityProperty is the algebraic contract behind
// parallel fan-out: per-segment Stats from a real run must merge into
// the same totals whatever the association or order, and the zero
// Stats must be the identity. Segments come from randomized (not even)
// splits so the property is exercised on uneven real data, not just
// the splits runParallel happens to produce.
func TestMergeAssociativityProperty(t *testing.T) {
	const warm, insts, overlap = 4_096, 40_960, 8_192
	spec := Spec{Workload: workload.Database(7), Uarch: uarch.Default(), Insts: insts, Warm: warm}
	pool := NewPool()
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 3; trial++ {
		k := 2 + rng.Intn(3) // 2..4 segments
		segs := randomSplit(rng, warm, insts, overlap, k)
		parts := make([]*epoch.Stats, len(segs))
		for i, sg := range segs {
			st, err := pool.runSegment(context.Background(), spec, sg, nil, 0, i, len(segs))
			if err != nil {
				t.Fatalf("trial %d segment %d: %v", trial, i, err)
			}
			parts[i] = st
		}

		// Identity: zero ⊕ s == s and s ⊕ zero == s.
		for i, p := range parts {
			var zero epoch.Stats
			zero.Merge(p)
			if !reflect.DeepEqual(zero, *p) {
				t.Fatalf("trial %d: zero.Merge(seg %d) != seg", trial, i)
			}
			cp := *p
			cp.Merge(&epoch.Stats{})
			if !reflect.DeepEqual(cp, *p) {
				t.Fatalf("trial %d: seg %d .Merge(zero) changed it", trial, i)
			}
		}

		// Associativity + commutativity: left fold, right fold, and a
		// shuffled-order fold must agree exactly.
		leftFold := func(ps []*epoch.Stats) epoch.Stats {
			var acc epoch.Stats
			for _, p := range ps {
				acc.Merge(p)
			}
			return acc
		}
		left := leftFold(parts)

		var right epoch.Stats
		for i := len(parts) - 1; i >= 0; i-- {
			// (p_i ⊕ accumulated-suffix): merge into a copy so the parts
			// stay pristine.
			cp := *parts[i]
			cp.Merge(&right)
			right = cp
		}
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: left fold != right fold\nleft:  %+v\nright: %+v", trial, left, right)
		}

		shuffled := append([]*epoch.Stats(nil), parts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if perm := leftFold(shuffled); !reflect.DeepEqual(left, perm) {
			t.Fatalf("trial %d: shuffled merge order changed the result", trial)
		}

		// The merged whole must account for every measured instruction.
		if left.Insts != insts {
			t.Fatalf("trial %d: merged Insts = %d, want %d", trial, left.Insts, insts)
		}
	}
}
