package sim

import (
	"testing"

	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// With the modelled gshare front end, EPI should land near the
// flag-based calibration (the generator's outcome patterns are tuned to
// give commercial-workload misprediction rates), and the predictor must
// actually be exercised.
func TestModelledBranchPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	w := workload.SPECweb(4)
	flagged := run(t, w, uarch.Default())
	cfg := uarch.Default()
	cfg.ModelBranchPredictor = true
	modelled := run(t, w, cfg)
	ratio := modelled.EPI() / flagged.EPI()
	if ratio < 0.85 || ratio > 1.35 {
		t.Errorf("modelled-predictor EPI %.3f vs flagged %.3f (ratio %.2f) out of band",
			modelled.EPI(), flagged.EPI(), ratio)
	}
}
