// Package sim composes a workload generator, the memory-consistency
// trace transforms, remote coherence traffic and the epoch engine into a
// single runnable simulation — the equivalent of one MLPsim invocation.
package sim

import (
	"context"
	"fmt"

	"storemlp/internal/consistency"
	"storemlp/internal/epoch"
	"storemlp/internal/obs"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// Spec describes one simulation run.
type Spec struct {
	// Workload selects and calibrates the trace generator.
	Workload workload.Params
	// Uarch is the machine configuration. Spec.Run sets its WarmInsts
	// from Warm below.
	Uarch uarch.Config
	// Insts is the number of measured instructions (after warmup).
	Insts int64
	// Warm is the cache warmup prefix, excluded from statistics.
	Warm int64
	// DisableTraffic turns off remote coherence snoops even when
	// Uarch.Nodes > 1 (single-node behaviour).
	DisableTraffic bool // storemlpvet:novalidate (both states valid)
	// SharedCore co-schedules a second copy of the workload (different
	// seed) on the other core of the CMP, sharing the L2 — the paper's
	// two-cores-per-L2 configuration.
	SharedCore bool // storemlpvet:novalidate (both states valid)
	// Parallel splits the run into that many contiguous segments
	// simulated concurrently on per-core engines and merged with
	// epoch.Stats.Merge; 0 or 1 runs serially. Each segment after the
	// first re-simulates an unmeasured warm-up overlap prefix to
	// reconstruct machine state at its boundary, so parallel results
	// are approximate (see WarmupOverlap for the tolerance contract) —
	// which is why the knob is digest-visible: a parallel run must not
	// share a cache key with the serial run it approximates.
	Parallel int
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if err := s.Uarch.Validate(); err != nil {
		return err
	}
	if s.Insts <= 0 {
		return fmt.Errorf("sim: non-positive instruction count %d", s.Insts)
	}
	if s.Warm < 0 {
		return fmt.Errorf("sim: negative warmup %d", s.Warm)
	}
	if s.Parallel < 0 {
		return fmt.Errorf("sim: negative segment count %d", s.Parallel)
	}
	return nil
}

// BuildSource constructs the instruction stream for the spec's memory
// model: the generator emits a TSO (PC) trace; under WC the lock idioms
// are rewritten to lwarx/stwcx/isync + lwsync exactly as the paper's
// lock-detection tool does; under SLE the lock acquires become plain
// loads and the releases vanish.
func BuildSource(w workload.Params, cfg uarch.Config, total int64) trace.Source {
	var src trace.Source = workload.NewGenerator(w)
	if cfg.Model == consistency.WC {
		src = consistency.RewriteWC(src)
	}
	if cfg.SLE {
		src = consistency.ElideLocks(src)
	}
	if cfg.TM {
		src = consistency.ApplyTM(src)
	}
	return trace.Limit(src, total)
}

// Run executes the simulation and returns the epoch statistics.
func Run(s Spec) (*epoch.Stats, error) {
	return RunContext(context.Background(), s)
}

// prepare derives the engine configuration and options from a
// validated spec; it is shared by the one-shot RunContext and the
// engine Pool. It is segmentOptions at stream position zero — the
// whole-run case.
func prepare(s Spec) (uarch.Config, []epoch.Option) {
	cfg := s.Uarch
	cfg.WarmInsts = s.Warm
	// At stream position 0 no fast-forward runs, so no error or
	// cancellation is possible.
	opts, _ := segmentOptions(context.Background(), s, 0)
	return cfg, opts
}

// segmentOptions builds the engine options for a run (or run segment)
// whose instruction stream begins at position start: coherence traffic
// is fast-forwarded so the snoop sequence aligns with the serial run,
// and the shared-core co-runner's generator is advanced past the same
// prefix. start 0 reproduces the serial options exactly.
func segmentOptions(ctx context.Context, s Spec, start int64) ([]epoch.Option, error) {
	var opts []epoch.Option
	if !s.DisableTraffic && s.Uarch.Nodes > 1 && s.Workload.SnoopsPerKiloInst > 0 {
		opts = append(opts, epoch.WithTrafficSkip(s.Workload.Traffic(), s.Workload.Seed+1, start))
	}
	if s.SharedCore {
		co := s.Workload
		co.Seed += 13
		// The co-runner is a separate process: disjoint address space.
		co.AddrOffset = 1 << 44
		var bg trace.Source = workload.NewGenerator(co)
		if start > 0 {
			// The co-runner advances one instruction per primary step, so
			// a segment starting at stream position start has consumed
			// exactly start co-runner instructions.
			if err := discard(ctx, bg, start); err != nil {
				return nil, err
			}
		}
		opts = append(opts, epoch.WithSharedCore(bg))
	}
	return opts, nil
}

// RunContext is Run with cancellation: the epoch engine polls ctx and
// abandons the simulation once it is done, returning ctx's error.
// When ctx carries an *obs.Obs (obs.NewContext), the run publishes
// tracer spans and live progress snapshots into it. A Spec with
// Parallel > 1 fans out across segment engines (see parallel.go).
func RunContext(ctx context.Context, s Spec) (*epoch.Stats, error) {
	parseStart := obs.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if Segments(s) > 1 {
		return NewPool().runParallel(ctx, s, WarmupOverlap(s.Uarch), parseStart)
	}
	cfg, opts := prepare(s)
	eng, err := epoch.New(cfg, opts...)
	if err != nil {
		return nil, err
	}
	src := BuildSource(s.Workload, cfg, s.Warm+s.Insts)
	release := observeFrom(obs.FromContext(ctx), eng, runLabel(s), s.Warm+s.Insts, parseStart)
	defer release()
	rt, parent := obs.SpanFrom(ctx)
	sp := rt.StartSpan(obs.StageSimulate, parent)
	defer rt.EndSpan(sp, s.Insts)
	return eng.RunContext(ctx, src)
}

// runLabel names a run the way the paper labels bars: workload plus
// machine configuration.
func runLabel(s Spec) string {
	return s.Workload.Name + " " + s.Uarch.Name()
}

// Observe attaches the observability sinks carried by ctx (if any) to
// eng for one run: a fresh tracer run ID and a progress entry on the
// board, labelled label with a planned instruction count of total. The
// returned release function (never nil) retires the board entry and
// detaches the sinks; callers defer it around the run. Callers that go
// through RunContext or Pool.RunContext get this automatically; the
// export exists for paths that drive an engine directly (trace replay,
// storemlp.RunTraceContext).
func Observe(ctx context.Context, eng *epoch.Engine, label string, total int64) func() {
	return observeFrom(obs.FromContext(ctx), eng, label, total, 0)
}

// observeFrom implements Observe; a non-zero parseStart additionally
// records the parse/build span that began then under the new run ID.
func observeFrom(o *obs.Obs, eng *epoch.Engine, label string, total, parseStart int64) func() {
	if o == nil || (o.Tracer == nil && o.Board == nil) {
		return func() {}
	}
	run := o.Tracer.NewRun()
	if parseStart != 0 {
		o.Tracer.Complete(obs.EvParse, run, parseStart, total)
	}
	p := o.Board.Start(label, total)
	eng.SetObs(o.Tracer, run, p)
	return func() {
		o.Board.Finish(p)
		eng.SetObs(nil, 0, nil)
	}
}
