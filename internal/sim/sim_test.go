package sim

import (
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/epoch"
	"storemlp/internal/isa"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

const (
	testInsts = 400_000
	testWarm  = 200_000
)

func run(t *testing.T, w workload.Params, cfg uarch.Config) *epoch.Stats {
	t.Helper()
	s, err := Run(Spec{Workload: w, Uarch: cfg, Insts: testInsts, Warm: testWarm})
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", w.Name, cfg.Name(), err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Workload: workload.TPCW(1), Uarch: uarch.Default(), Insts: 10, Warm: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec invalid: %v", err)
	}
	bad := good
	bad.Insts = 0
	if bad.Validate() == nil {
		t.Error("zero insts should be invalid")
	}
	bad = good
	bad.Warm = -1
	if bad.Validate() == nil {
		t.Error("negative warm should be invalid")
	}
	bad = good
	bad.Uarch.ROB = 0
	if bad.Validate() == nil {
		t.Error("bad uarch should be invalid")
	}
	bad = good
	bad.Workload.Name = ""
	if bad.Validate() == nil {
		t.Error("bad workload should be invalid")
	}
	if _, err := Run(bad); err == nil {
		t.Error("Run should propagate validation errors")
	}
}

func TestBuildSourceTransforms(t *testing.T) {
	w := workload.SPECjbb(5)
	count := func(cfg uarch.Config, op isa.Op) int {
		src := BuildSource(w, cfg, 100_000)
		n := 0
		for {
			in, ok := src.Next()
			if !ok {
				break
			}
			if in.Op == op {
				n++
			}
		}
		return n
	}
	pc := uarch.Default()
	if count(pc, isa.OpCASA) == 0 {
		t.Error("PC source should contain casa")
	}
	if count(pc, isa.OpISync) != 0 {
		t.Error("PC source should not contain isync")
	}
	wc := uarch.Default()
	wc.Model = consistency.WC
	if count(wc, isa.OpCASA) != 0 {
		t.Error("WC source should have no casa (rewritten)")
	}
	if count(wc, isa.OpISync) == 0 || count(wc, isa.OpLWSync) == 0 {
		t.Error("WC source should contain isync and lwsync")
	}
	sle := uarch.Default()
	sle.SLE = true
	if count(sle, isa.OpCASA) != 0 {
		t.Error("SLE source should have no lock casa")
	}
	wcSLE := wc
	wcSLE.SLE = true
	if count(wcSLE, isa.OpISync) != 0 {
		t.Error("WC+SLE source should have no lock isync")
	}
}

// Directional results from the paper, asserted for every workload:
// store prefetching helps (Sp2 <= Sp1 <= Sp0), perfect stores lower-bound
// everything, and WC beats PC.
func TestPrefetchOrderingAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	for _, w := range workload.All(1) {
		epi := map[uarch.PrefetchMode]float64{}
		for _, m := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			cfg := uarch.Default()
			cfg.StorePrefetch = m
			epi[m] = run(t, w, cfg).EPI()
		}
		perfCfg := uarch.Default()
		perfCfg.PerfectStores = true
		perfect := run(t, w, perfCfg).EPI()

		if epi[uarch.Sp1] > epi[uarch.Sp0]*1.02 {
			t.Errorf("%s: Sp1 (%.2f) should not exceed Sp0 (%.2f)", w.Name, epi[uarch.Sp1], epi[uarch.Sp0])
		}
		if epi[uarch.Sp2] > epi[uarch.Sp1]*1.02 {
			t.Errorf("%s: Sp2 (%.2f) should not exceed Sp1 (%.2f)", w.Name, epi[uarch.Sp2], epi[uarch.Sp1])
		}
		if perfect > epi[uarch.Sp2]*1.02 {
			t.Errorf("%s: perfect (%.2f) should lower-bound Sp2 (%.2f)", w.Name, perfect, epi[uarch.Sp2])
		}
		// Missing stores contribute a significant share without
		// prefetching (paper: 17%-46%).
		contrib := (epi[uarch.Sp0] - perfect) / epi[uarch.Sp0]
		if contrib < 0.08 {
			t.Errorf("%s: Sp0 store contribution = %.2f, want noticeable", w.Name, contrib)
		}
	}
}

func TestWCBeatsPC(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	for _, w := range workload.All(2) {
		pc := run(t, w, uarch.Default()).EPI()
		wcCfg := uarch.Default()
		wcCfg.Model = consistency.WC
		wc := run(t, w, wcCfg).EPI()
		if wc >= pc {
			t.Errorf("%s: WC EPI (%.2f) should be below PC (%.2f)", w.Name, wc, pc)
		}
	}
}

func TestSLENarrowsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	// For the lock-bound workloads, SLE + prefetch-past-serializing (PC3)
	// must close most of the PC1-WC1 gap.
	w := workload.SPECjbb(3)
	pc1 := run(t, w, uarch.Default()).EPI()
	wcCfg := uarch.Default()
	wcCfg.Model = consistency.WC
	wc1 := run(t, w, wcCfg).EPI()
	pc3Cfg := uarch.Default()
	pc3Cfg.SLE = true
	pc3Cfg.PrefetchPastSerializing = true
	pc3 := run(t, w, pc3Cfg).EPI()
	if pc3 >= pc1 {
		t.Errorf("PC3 (%.2f) should improve on PC1 (%.2f)", pc3, pc1)
	}
	gap1 := pc1 - wc1
	wc3Cfg := wcCfg
	wc3Cfg.SLE = true
	wc3Cfg.PrefetchPastSerializing = true
	wc3 := run(t, w, wc3Cfg).EPI()
	gap3 := pc3 - wc3
	if gap1 <= 0 {
		t.Fatalf("no PC-WC gap to close (pc1=%.2f wc1=%.2f)", pc1, wc1)
	}
	if gap3 > 0.6*gap1 {
		t.Errorf("SLE should narrow the consistency gap: gap1=%.3f gap3=%.3f", gap1, gap3)
	}
}

func TestHWSOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	w := workload.TPCW(4)
	epi := map[uarch.HWSMode]float64{}
	for _, m := range []uarch.HWSMode{uarch.NoHWS, uarch.HWS0, uarch.HWS1, uarch.HWS2} {
		cfg := uarch.Default()
		cfg.HWS = m
		epi[m] = run(t, w, cfg).EPI()
	}
	if epi[uarch.HWS0] > epi[uarch.NoHWS]*1.02 {
		t.Errorf("HWS0 (%.3f) should not exceed NoHWS (%.3f)", epi[uarch.HWS0], epi[uarch.NoHWS])
	}
	if epi[uarch.HWS1] > epi[uarch.HWS0]*1.02 {
		t.Errorf("HWS1 (%.3f) should not exceed HWS0 (%.3f)", epi[uarch.HWS1], epi[uarch.HWS0])
	}
	if epi[uarch.HWS2] > epi[uarch.HWS1]*1.02 {
		t.Errorf("HWS2 (%.3f) should not exceed HWS1 (%.3f)", epi[uarch.HWS2], epi[uarch.HWS1])
	}
	// HWS2 nearly eliminates the store impact.
	perfCfg := uarch.Default()
	perfCfg.PerfectStores = true
	perfCfg.HWS = uarch.HWS2
	perfect := run(t, w, perfCfg).EPI()
	if (epi[uarch.HWS2]-perfect)/perfect > 0.35 {
		t.Errorf("HWS2 (%.3f) should approach perfect stores (%.3f)", epi[uarch.HWS2], perfect)
	}
}

// smacDemo is a store-intensive calibration whose churn sweep wraps
// within a short run, so the SMAC's evict-then-revisit reuse pattern is
// observable at test scale (the paper needed 1B warm instructions at
// full scale; see DESIGN.md).
func smacDemo() workload.Params {
	return workload.Params{
		Name: "smacdemo", Seed: 5,
		StorePer100: 12, LoadPer100: 20, BranchPer100: 12,
		StoreMissPer100: 2.0, LoadMissPer100: 2.0, InstMissPer100: 0.01,
		StoreBurstMean: 2, LoadBurstMean: 1.5,
		LocksPer1000: 1.0, PreLockFrac: 0.3, MembarPer1000: 0.05,
		MispredPer1000: 3, DepLoadFrac: 0.2,
		StoreWSBytes: 1536 << 10, LoadWSBytes: 64 << 20, CodeWSBytes: 8 << 20,
		SharedStoreFrac: 0.05, SharedWSBytes: 1 << 20,
		SnoopsPerKiloInst: 0.5, SnoopStoreFrac: 0.75,
		OnChipBaseCPI: 0.8,
	}
}

func TestSMACImprovesStores(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	w := smacDemo()
	runSmac := func(entries int) *epoch.Stats {
		cfg := uarch.Default()
		cfg.StorePrefetch = uarch.Sp0
		cfg.SMACEntries = entries
		s, err := Run(Spec{Workload: w, Uarch: cfg, Insts: 1_200_000, Warm: 1_800_000})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	noSmac := runSmac(0)
	withSmac := runSmac(8 << 10)
	if withSmac.SMACAccelerated == 0 {
		t.Fatal("SMAC should accelerate some store misses")
	}
	if withSmac.EPI() >= noSmac.EPI() {
		t.Errorf("SMAC EPI (%.3f) should be below baseline (%.3f)", withSmac.EPI(), noSmac.EPI())
	}
	// An undersized SMAC (coverage below the churn working set)
	// accelerates less than a covering one.
	small := runSmac(256)
	if small.SMACAccelerated >= withSmac.SMACAccelerated {
		t.Errorf("256-entry SMAC accelerated %d >= 8K SMAC %d",
			small.SMACAccelerated, withSmac.SMACAccelerated)
	}
}

func TestTrafficAttaches(t *testing.T) {
	w := workload.TPCW(6)
	cfg := uarch.Default()
	cfg.SMACEntries = 32 << 10
	s, err := Run(Spec{Workload: w, Uarch: cfg, Insts: 200_000, Warm: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Snoops == 0 {
		t.Error("2-node run should deliver snoops")
	}
	off, err := Run(Spec{Workload: w, Uarch: cfg, Insts: 200_000, Warm: 100_000, DisableTraffic: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Snoops != 0 {
		t.Error("DisableTraffic run should deliver no snoops")
	}
}

func TestSharedCoreInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full simulation runs")
	}
	w := workload.SPECjbb(8)
	solo, err := Run(Spec{Workload: w, Uarch: uarch.Default(), Insts: testInsts, Warm: testWarm})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Run(Spec{Workload: w, Uarch: uarch.Default(), Insts: testInsts, Warm: testWarm, SharedCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if co.EPI() <= solo.EPI() {
		t.Errorf("co-scheduled EPI (%.3f) should exceed solo (%.3f)", co.EPI(), solo.EPI())
	}
}
