package sim

import (
	"context"
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// TestPoolMatchesRun drives one pool through a sequence of differently
// shaped specs — consistency models, SMAC, multi-node traffic, shared
// core — and requires bit-identical statistics versus a fresh engine,
// in spite of each run inheriting the previous run's recycled engine.
func TestPoolMatchesRun(t *testing.T) {
	wc := uarch.Default()
	wc.Model = consistency.WC
	smacCfg := uarch.Default()
	smacCfg.SMACEntries = 32 << 10
	multi := uarch.Default()
	multi.Nodes = 2

	specs := []Spec{
		{Workload: workload.Database(1), Uarch: uarch.Default(), Insts: 60_000, Warm: 30_000},
		{Workload: workload.TPCW(2), Uarch: wc, Insts: 60_000, Warm: 30_000},
		{Workload: workload.Database(3), Uarch: smacCfg, Insts: 60_000, Warm: 30_000},
		{Workload: workload.Database(4), Uarch: multi, Insts: 60_000, Warm: 30_000},
		{Workload: workload.Database(5), Uarch: uarch.Default(), Insts: 60_000, Warm: 30_000, SharedCore: true},
		{Workload: workload.Database(1), Uarch: uarch.Default(), Insts: 60_000, Warm: 30_000},
	}

	p := NewPool()
	for i, s := range specs {
		want, err := Run(s)
		if err != nil {
			t.Fatalf("spec %d: Run: %v", i, err)
		}
		got, err := p.Run(s)
		if err != nil {
			t.Fatalf("spec %d: Pool.Run: %v", i, err)
		}
		if *got != *want {
			t.Errorf("spec %d: pooled run diverged:\n got  %+v\n want %+v", i, *got, *want)
		}
	}
	if idle := p.Idle(); idle != 1 {
		t.Errorf("sequential pool use parked %d engines, want 1", idle)
	}
}

// TestPoolRecyclesAfterCancel: an engine abandoned mid-run must return
// to the pool and produce correct results on its next lease.
func TestPoolRecyclesAfterCancel(t *testing.T) {
	p := NewPool()
	s := Spec{Workload: workload.Database(1), Uarch: uarch.Default(), Insts: 60_000, Warm: 30_000}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx, s); err == nil {
		t.Fatal("expected cancellation error")
	}
	if idle := p.Idle(); idle != 1 {
		t.Fatalf("cancelled run parked %d engines, want 1", idle)
	}

	want, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := p.Run(s)
	if err != nil {
		t.Fatalf("Pool.Run: %v", err)
	}
	if *got != *want {
		t.Errorf("post-cancel pooled run diverged:\n got  %+v\n want %+v", *got, *want)
	}
}
