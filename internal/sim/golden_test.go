package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// The equivalence golden test: the sliding-window + batched engine must
// produce bit-identical Stats to the legacy map-based accounting. The
// fixture under testdata was generated from the legacy engine (the
// recs-map implementation that preceded the epoch-record ring) over a
// reduced Figure-2 grid plus configurations covering every accounting
// path: both consistency models, SLE/TM lock rewriting, all store
// prefetch modes, the SMAC, Hardware Scout, prefetch-past-serializing,
// coherence traffic, the shared core, the modelled branch predictor,
// unbounded store queues and disabled coalescing.
//
// Regenerate (only when an intentional model change lands) with:
//
//	go test ./internal/sim -run TestGoldenStats -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.txt from the current engine")

const (
	goldenInsts = 20_000
	goldenWarm  = 10_000
)

// goldenSpecs enumerates the grid. Every entry is one named simulation;
// the fixture stores the full %+v rendering of its Stats (exported and
// unexported fields alike), so any accounting drift fails the diff.
func goldenSpecs() []struct {
	name string
	spec Spec
} {
	var out []struct {
		name string
		spec Spec
	}
	add := func(name string, w workload.Params, cfg uarch.Config, mut func(*Spec)) {
		s := Spec{Workload: w, Uarch: cfg, Insts: goldenInsts, Warm: goldenWarm}
		if mut != nil {
			mut(&s)
		}
		out = append(out, struct {
			name string
			spec Spec
		}{name, s})
	}

	for _, w := range workload.All(1) {
		// Reduced Figure-2 grid: prefetch mode x store buffer x store queue.
		for _, sp := range []uarch.PrefetchMode{uarch.Sp0, uarch.Sp1, uarch.Sp2} {
			for _, sb := range []int{8, 16} {
				for _, sq := range []int{16, 32} {
					cfg := uarch.Default()
					cfg.StorePrefetch = sp
					cfg.StoreBuffer = sb
					cfg.StoreQueue = sq
					add(fmt.Sprintf("%s/fig2/sp%d/sb%d/sq%d", w.Name, sp, sb, sq), w, cfg, nil)
				}
			}
		}
		// Perfect-store floor.
		cfg := uarch.Default()
		cfg.PerfectStores = true
		add(w.Name+"/perfect", w, cfg, nil)

		// Weak consistency, with and without speculative lock elision.
		cfg = uarch.Default()
		cfg.Model = consistency.WC
		add(w.Name+"/wc", w, cfg, nil)
		cfg = uarch.Default()
		cfg.Model = consistency.WC
		cfg.SLE = true
		add(w.Name+"/wc+sle", w, cfg, nil)

		// PC variants: SLE, TM, prefetch past serializing, HWS modes.
		cfg = uarch.Default()
		cfg.SLE = true
		add(w.Name+"/pc+sle", w, cfg, nil)
		cfg = uarch.Default()
		cfg.TM = true
		add(w.Name+"/pc+tm", w, cfg, nil)
		cfg = uarch.Default()
		cfg.PrefetchPastSerializing = true
		add(w.Name+"/pc+pps", w, cfg, nil)
		for _, hws := range []uarch.HWSMode{uarch.HWS0, uarch.HWS2} {
			cfg = uarch.Default()
			cfg.HWS = hws
			add(fmt.Sprintf("%s/hws%d", w.Name, hws), w, cfg, nil)
		}

		// SMAC, 4-node coherence traffic, shared core, branch predictor.
		cfg = uarch.Default()
		cfg.SMACEntries = 4 << 10
		add(w.Name+"/smac4k", w, cfg, nil)
		cfg = uarch.Default()
		cfg.Nodes = 4
		add(w.Name+"/nodes4", w, cfg, nil)
		cfg = uarch.Default()
		add(w.Name+"/sharedcore", w, cfg, func(s *Spec) { s.SharedCore = true })
		cfg = uarch.Default()
		cfg.ModelBranchPredictor = true
		add(w.Name+"/bp", w, cfg, nil)

		// Structural extremes: unbounded store queue, no coalescing.
		cfg = uarch.Default()
		cfg.StoreQueue = 0
		add(w.Name+"/sq-unbounded", w, cfg, nil)
		cfg = uarch.Default()
		cfg.CoalesceBytes = 0
		add(w.Name+"/no-coalesce", w, cfg, nil)
	}
	return out
}

func renderGolden(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, gs := range goldenSpecs() {
		stats, err := Run(gs.spec)
		if err != nil {
			t.Fatalf("%s: %v", gs.name, err)
		}
		fmt.Fprintf(&b, "%s %+v\n", gs.name, *stats)
	}
	return b.String()
}

func TestGoldenStats(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is a few seconds of simulation")
	}
	path := filepath.Join("testdata", "golden_stats.txt")
	got := renderGolden(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (run with -update-golden to create): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	// Report the first few divergent lines, not a wall of text.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	diffs := 0
	for i := 0; i < n && diffs < 5; i++ {
		if gotLines[i] != wantLines[i] {
			t.Errorf("line %d:\n  got  %s\n  want %s", i+1, gotLines[i], wantLines[i])
			diffs++
		}
	}
	if len(gotLines) != len(wantLines) {
		t.Errorf("line count: got %d, want %d", len(gotLines), len(wantLines))
	}
	if diffs == 0 {
		t.Errorf("stats diverge from golden fixture")
	}
}
