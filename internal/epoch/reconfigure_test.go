package epoch

// Reconfigure must be observationally identical to building a fresh
// engine with New: a recycled engine carrying state from an arbitrary
// prior run (including an abandoned one) has to reproduce a fresh
// engine's statistics bit for bit across consistency models, SMAC
// on/off, and structure-size changes.

import (
	"context"
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
)

// mixTrace builds a deterministic pseudo-random instruction mix.
func mixTrace(seed int64, cnt int) []isa.Inst {
	insts := make([]isa.Inst, 0, cnt)
	for i := 0; i < cnt; i++ {
		switch seed % 5 {
		case 0:
			insts = append(insts, st(cold(i%40)))
		case 1:
			insts = append(insts, ld(cold(i%40)))
		case 2:
			insts = append(insts, st(hot(i%16)))
		case 3:
			insts = append(insts, alu())
		default:
			insts = append(insts, membar())
		}
		seed = seed*1103515245 + 12345
	}
	return insts
}

// prewarm puts the hot lines in the hierarchy exactly like runTrace.
func prewarm(e *Engine) {
	h := e.Hierarchy()
	h.Fetch(hotPC)
	h.Store(lockA, false)
	for i := 0; i < 16; i++ {
		h.Store(hot(i), false)
	}
}

func TestReconfigureMatchesNew(t *testing.T) {
	wc := exCfg()
	wc.Model = consistency.WC
	smacCfg := exCfg()
	smacCfg.SMACEntries = 8 << 10
	big := uarch.Default()
	big.ModelBranchPredictor = true
	cfgs := []uarch.Config{exCfg(), wc, smacCfg, big, exCfg()}

	recycled := new(Engine)
	for i, cfg := range cfgs {
		insts := mixTrace(int64(i)*977+3, 400)
		want := runTrace(t, cfg, insts)

		if err := recycled.Reconfigure(cfg); err != nil {
			t.Fatalf("cfg %d: Reconfigure: %v", i, err)
		}
		prewarm(recycled)
		got, err := recycled.Run(trace.NewSlice(insts))
		if err != nil {
			t.Fatalf("cfg %d: Run: %v", i, err)
		}
		if *got != *want {
			t.Errorf("cfg %d: recycled engine diverged from fresh engine:\n got  %+v\n want %+v", i, *got, *want)
		}
	}
}

// TestReconfigureAfterCancelledRun recycles an engine whose previous
// run was abandoned mid-stream, leaving populated window slots and
// occupancy state behind.
func TestReconfigureAfterCancelledRun(t *testing.T) {
	cfg := exCfg()
	insts := mixTrace(41, 600)
	want := runTrace(t, cfg, insts)

	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, trace.NewSlice(mixTrace(7, 5000))); err == nil {
		t.Fatal("expected cancellation error")
	}
	// Also abandon a run that made real progress: run half the trace
	// uncancelled, then reconfigure over the dirty state.
	if _, err := e.Run(trace.NewSlice(mixTrace(99, 3000))); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := e.Reconfigure(cfg); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	prewarm(e)
	got, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *got != *want {
		t.Errorf("recycled engine diverged after abandoned run:\n got  %+v\n want %+v", *got, *want)
	}
}
