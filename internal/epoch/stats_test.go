package epoch

import (
	"math"
	"testing"

	"storemlp/internal/cache"
	"storemlp/internal/smac"
)

// fillStats returns a Stats with every counter set to a distinct
// multiple of k, so Merge omissions show up as wrong sums.
func fillStats(k int64) Stats {
	s := Stats{
		Insts:            1 * k,
		Epochs:           2 * k,
		StoreMisses:      3 * k,
		LoadMisses:       4 * k,
		InstMisses:       5 * k,
		OverlappedStores: 6 * k,
		ExposedStores:    7 * k,
		SMACAccelerated:  8 * k,
		EpochsWithStore:  9 * k,
		storeMLPSum:      10 * k,
		loadInstMLPSum:   11 * k,
		epochsWithAny:    12 * k,
		Snoops:           13 * k,
		Hierarchy:        cache.HierarchyStats{Fetches: 14 * k, L2PrefetchReqs: 15 * k},
		SMAC:             smac.Stats{Probes: 16 * k, Hits: 17 * k},
	}
	for i := range s.TermCounts {
		s.TermCounts[i] = k * int64(i+1)
	}
	for i := range s.MLPJoint {
		for j := range s.MLPJoint[i] {
			s.MLPJoint[i][j] = k * int64(i*100+j+1)
		}
	}
	return s
}

func TestMergeFoldsEveryCounter(t *testing.T) {
	a := fillStats(1)
	b := fillStats(10)
	a.Merge(&b)
	want := fillStats(11)
	if a.Insts != want.Insts || a.Epochs != want.Epochs ||
		a.StoreMisses != want.StoreMisses || a.LoadMisses != want.LoadMisses ||
		a.InstMisses != want.InstMisses ||
		a.OverlappedStores != want.OverlappedStores ||
		a.ExposedStores != want.ExposedStores ||
		a.SMACAccelerated != want.SMACAccelerated ||
		a.EpochsWithStore != want.EpochsWithStore ||
		a.storeMLPSum != want.storeMLPSum ||
		a.loadInstMLPSum != want.loadInstMLPSum ||
		a.epochsWithAny != want.epochsWithAny ||
		a.Snoops != want.Snoops {
		t.Errorf("merged scalars wrong:\ngot  %+v\nwant %+v", a, want)
	}
	if a.TermCounts != want.TermCounts {
		t.Errorf("TermCounts = %v, want %v", a.TermCounts, want.TermCounts)
	}
	if a.MLPJoint != want.MLPJoint {
		t.Error("MLPJoint not folded element-wise")
	}
	if a.Hierarchy != want.Hierarchy {
		t.Errorf("Hierarchy = %+v, want %+v", a.Hierarchy, want.Hierarchy)
	}
	if a.SMAC != want.SMAC {
		t.Errorf("SMAC = %+v, want %+v", a.SMAC, want.SMAC)
	}
}

func TestMergedMetricsAreUnionMetrics(t *testing.T) {
	a := Stats{Insts: 1000, Epochs: 10, StoreMisses: 12,
		EpochsWithStore: 6, storeMLPSum: 12, loadInstMLPSum: 4, epochsWithAny: 10}
	b := Stats{Insts: 3000, Epochs: 20, StoreMisses: 10,
		EpochsWithStore: 4, storeMLPSum: 10, loadInstMLPSum: 26, epochsWithAny: 20}
	a.Merge(&b)
	if got, want := a.EPI(), 1000*30.0/4000; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged EPI = %v, want %v", got, want)
	}
	if got, want := a.StoreMLP(), 22.0/10; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged StoreMLP = %v, want %v", got, want)
	}
	if got, want := a.LoadInstMLP(), 30.0/30; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged LoadInstMLP = %v, want %v", got, want)
	}
}

func TestLoadInstMLPZeroEpochs(t *testing.T) {
	var s Stats
	if s.LoadInstMLP() != 0 {
		t.Error("LoadInstMLP of empty stats should be 0")
	}
}
