package epoch

import (
	"testing"

	"storemlp/internal/isa"
	"storemlp/internal/trace"
)

func TestWithSharedCoreNil(t *testing.T) {
	if _, err := New(exCfg(), WithSharedCore(nil)); err == nil {
		t.Error("nil shared-core source should error")
	}
}

// A co-runner hammering the same L2 set evicts the primary core's line,
// turning its second store into a miss.
func TestSharedCoreEvictsLines(t *testing.T) {
	cfg := exCfg()
	cfg.Hierarchy.L2.SizeBytes = 512 // 4 sets x 2 ways
	cfg.Hierarchy.L2.Ways = 2
	// Background stream: stores marching through set 0 (stride 256).
	var bg []isa.Inst
	for i := 0; i < 64; i++ {
		bg = append(bg, isa.Inst{
			Op: isa.OpStore, PC: hotPC, Size: 8,
			Addr: 0x100000 + uint64(i)*256,
		})
	}
	mk := func(withBG bool) *Stats {
		var opts []Option
		if withBG {
			opts = append(opts, WithSharedCore(trace.NewSlice(bg)))
		}
		e, err := New(cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		e.Hierarchy().Fetch(hotPC)
		// Store to a set-0 line, filler, store to it again.
		insts := []isa.Inst{
			{Op: isa.OpStore, PC: hotPC, Addr: 0x200000, Size: 8},
		}
		for i := 0; i < 40; i++ {
			insts = append(insts, alu())
		}
		insts = append(insts,
			isa.Inst{Op: isa.OpStore, PC: hotPC, Addr: 0x200000, Size: 8},
			membar())
		s, err := e.Run(trace.NewSlice(insts))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	solo := mk(false)
	co := mk(true)
	if solo.StoreMisses != 1 {
		t.Errorf("solo StoreMisses = %d, want 1 (second store hits)", solo.StoreMisses)
	}
	if co.StoreMisses != 2 {
		t.Errorf("co-run StoreMisses = %d, want 2 (line evicted by co-runner)", co.StoreMisses)
	}
}

func TestSharedCoreSourceExhaustion(t *testing.T) {
	// A background source shorter than the main trace must not break the
	// run.
	cfg := exCfg()
	e, err := New(cfg, WithSharedCore(trace.NewSlice([]isa.Inst{alu()})))
	if err != nil {
		t.Fatal(err)
	}
	e.Hierarchy().Fetch(hotPC)
	insts := []isa.Inst{alu(), alu(), alu(), ld(cold(0))}
	s, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != 4 {
		t.Errorf("Insts = %d", s.Insts)
	}
}

func TestSMACGeometryKnobs(t *testing.T) {
	cfg := exCfg()
	cfg.SMACEntries = 1024
	cfg.SMACSuperLineBytes = 512
	cfg.SMACSubBlockBytes = 64
	cfg.SMACWays = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := e.SMAC().Params()
	if p.SuperLineBytes != 512 || p.SubBlocks() != 8 || p.Ways != 4 {
		t.Errorf("SMAC params = %+v", p)
	}
	// Invalid geometry is rejected at config validation.
	bad := cfg
	bad.SMACSuperLineBytes = 1000 // not a power of two
	if _, err := New(bad); err == nil {
		t.Error("invalid SMAC geometry should be rejected")
	}
	bad = cfg
	bad.SMACSubBlockBytes = 4 // 128 sub-blocks > 64
	if _, err := New(bad); err == nil {
		t.Error("too many sub-blocks should be rejected")
	}
}
