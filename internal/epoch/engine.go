// Package epoch implements MLPsim: the epoch memory-level-parallelism
// model of §3 of the paper, extended to model missing stores.
//
// The engine consumes a dynamic instruction stream in program order and
// assigns every instruction integer-indexed epochs for fetch, dispatch,
// execute, retire and (for stores) commit. Off-chip misses issued in
// epoch e complete at the end of e; values they produce are usable in
// e+1. Epoch assignments are maxima over the active constraints:
// register and memory dependences, in-order fetch/dispatch/retire,
// occupancy of the fetch buffer, issue window, ROB, store buffer, load
// buffer and store queue, serializing-instruction drains, and the
// memory consistency model's store-commit ordering. EPI is the number
// of distinct epochs containing at least one off-chip miss, per
// instruction.
package epoch

import (
	"context"
	"fmt"

	"storemlp/internal/branch"
	"storemlp/internal/cache"
	"storemlp/internal/coherence"
	"storemlp/internal/consistency"
	"storemlp/internal/isa"
	"storemlp/internal/obs"
	"storemlp/internal/smac"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
)

// retire-influence tags carried alongside the retire rings so that later
// structure-full stalls can be classified "preceded by store queue full"
// (Figure 3).
const (
	tagPlain uint8 = iota
	tagSQ          // retirement was delayed by a full store queue
	tagLoad        // retirement was delayed by a missing load
)

const termScanCap = 64 // max epochs labelled per stall (ranges are tiny in practice)

// noMeasEnd disables the measurement limit: measurement runs to the end
// of the stream (the serial default).
const noMeasEnd = int64(^uint64(0) >> 1)

type missKind uint8

const (
	kindLoad missKind = iota
	kindStore
	kindInst
)

type openStore struct {
	idx int64 // instruction index at which the miss was issued
	ep  int64 // epoch the miss was charged to
}

// Engine is one simulated core running the epoch MLP model.
type Engine struct {
	cfg  uarch.Config
	hier *cache.Hierarchy
	sm   *smac.SMAC
	traf *coherence.Traffic
	bp   *branch.Predictor // optional modelled front end

	// Optional co-scheduled core sharing the L2 (pure cache pressure).
	bgSrc  trace.Source
	bgHier *cache.Hierarchy

	// Scheduling state (all in epoch units).
	regReady     [isa.RegCount]int64
	fetchAvail   int64
	lastDispatch int64
	lastRetire   int64
	serialBar    int64 // all later instructions execute at or after this

	robRing *ring
	fbRing  *ring
	sbRing  *ring
	lbRing  *ring
	iw      *occupancy
	sq      *occupancy

	prevCommitDone int64 // PC in-order commit chain
	maxCommitDone  int64 // serializer store-drain target
	lwsyncFloor    int64 // WC: commits ordered after this epoch

	// Store coalescing.
	coalAddr  uint64
	coalDone  int64
	coalValid bool
	coalWC    map[uint64]int64

	// Scout window (Hardware Scout and prefetch-past-serializing).
	scoutUntil  int64
	scoutEpoch  int64
	scoutStores bool

	// Fully-overlapped-store tracking (Table 2).
	open     []openStore
	openHead int
	window   int64

	lastLoadMissEpoch int64

	idx     int64
	warm    int64
	measEnd int64 // idx at which measurement stops (noMeasEnd = stream end)

	// contAtWarm marks the warmup prefix as a segment overlap of a
	// parallel intra-run simulation (sim/parallel.go): epochs charged
	// during it belong to the previous segment, so foldRec must not
	// count them a second time (see epochRec.warmKinds).
	contAtWarm bool

	// End-of-measurement substrate snapshots, taken at idx == measEnd so
	// the drain suffix past a segment's measured range is excluded from
	// Hierarchy/SMAC/Snoop statistics just as the warmup prefix is.
	hierFinal  cache.HierarchyStats
	smacFinal  smac.Stats
	snoopFinal int64
	finalsSet  bool

	// Sliding epoch-record window. Epochs are monotone and only ever
	// referenced within a bounded lookback (see refFloor), so records
	// live in a power-of-two ring: win[ep&winMask] holds epoch ep for
	// ep in [winBase, winBase+len(win)). Records that fall below the
	// reference floor are folded into stats and their slots zeroed for
	// reuse; [winBase, winHi) is the materialized span and every slot
	// outside it is zero.
	win     []epochRec
	winMask int64
	winBase int64
	winHi   int64

	// batch is the reused block buffer RunContext fills from the trace
	// source; its contents are overwritten before every read.
	batch []isa.Inst //storemlp:keep

	// Baselines snapshotted when measurement starts so warmup and
	// prewarming are excluded from substrate statistics.
	hierBase  cache.HierarchyStats
	smacBase  smac.Stats
	snoopBase int64

	// Observability sinks attached for the duration of one run: the run
	// tracer records batch/fold spans under trcRun, and the progress
	// publisher receives live counters once per batch. Both are nil when
	// disabled — the hot paths pay one pointer check. Reconfigure
	// detaches them; SetObs (via sim.Observe) re-attaches per run.
	trc    *obs.Tracer
	trcRun uint32
	prog   *obs.Progress

	stats Stats
}

// Option configures an Engine.
type Option func(*Engine) error

// WithSharedCore attaches a second core's instruction stream to the
// shared L2 — the paper's CMP configuration has two cores per L2. The
// co-runner advances one instruction per simulated instruction and
// exerts pure cache pressure (its own pipeline is not modelled): its
// accesses go through private L1s into the shared L2, and its Modified
// evictions feed the SMAC like the primary core's.
func WithSharedCore(src trace.Source) Option {
	return func(e *Engine) error {
		if src == nil {
			return fmt.Errorf("epoch: nil shared-core source")
		}
		e.bgSrc = src
		e.hier.MarkL2Shared()
		e.bgHier = cache.NewSharedHierarchy(e.cfg.Hierarchy, e.hier.L2)
		if e.sm != nil {
			e.bgHier.OnL2Evict = e.hier.OnL2Evict
		}
		return nil
	}
}

// WithMeasureLimit stops measurement after n instructions: instructions
// past WarmInsts+n are still simulated — caches, predictor, scout and
// the open-store window keep evolving, and stalls still resolve the
// fate of measured open stores — but contribute nothing to statistics.
// A parallel run segment uses this to append an unmeasured drain
// suffix: stores still open at its measurement boundary reach the same
// overlapped/exposed disposition the serial run gives them, instead of
// being conservatively exposed at stream end.
func WithMeasureLimit(n int64) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("epoch: negative measure limit %d", n)
		}
		e.measEnd = e.warm + n
		return nil
	}
}

// WithWarmContinuation treats the warmup prefix as a segment overlap of
// a parallel run: an epoch that was already charged during the prefix
// belongs to the previous segment (which measured those charges and
// counted the epoch), so when its tail is folded here only the charges
// are added — Epochs, the MLP histogram and the termination label are
// not incremented again. Never set on segment 0: its warmup is the
// run's true warmup, and an epoch spanning that boundary is counted by
// the serial engine.
func WithWarmContinuation() Option {
	return func(e *Engine) error {
		e.contAtWarm = true
		return nil
	}
}

// WithTraffic attaches remote-node coherence traffic (Figure 6).
func WithTraffic(spec coherence.TrafficSpec, seed int64) Option {
	return WithTrafficSkip(spec, seed, 0)
}

// WithTrafficSkip is WithTraffic fast-forwarded past the first skip
// instructions: the traffic source advances its clock and rng exactly
// as skip engine steps would, but the due snoops are discarded instead
// of delivered. A segment engine of a parallel run starts at stream
// position skip, so from its first step onward it observes the
// identical snoop sequence the serial engine saw from that position.
func WithTrafficSkip(spec coherence.TrafficSpec, seed, skip int64) Option {
	return func(e *Engine) error {
		t, err := coherence.NewTraffic(spec, e.cfg.Nodes, seed, nil)
		if err != nil {
			return err
		}
		t.Skip(skip)
		t.SetHandler(e.onSnoop)
		e.traf = t
		return nil
	}
}

// New builds an engine for the given machine configuration.
func New(cfg uarch.Config, opts ...Option) (*Engine, error) {
	e := new(Engine)
	if err := e.Reconfigure(cfg, opts...); err != nil {
		return nil, err
	}
	return e, nil
}

// Reconfigure returns the engine to its freshly constructed state for
// cfg, reusing existing allocations whose geometry still fits: the
// structure rings and occupancy queues, the epoch-record window, the
// batch buffer, and — when the relevant parameters are unchanged — the
// cache hierarchy, SMAC and branch predictor. A reconfigured engine is
// observationally identical to New(cfg, opts...); the serving layer
// relies on this to recycle engines across requests instead of
// rebuilding the multi-megabyte substrate per simulation. It is safe
// to call after an abandoned (cancelled) run: all mid-run state is
// discarded.
func (e *Engine) Reconfigure(cfg uarch.Config, opts ...Option) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if e.hier != nil && e.cfg.Hierarchy == cfg.Hierarchy {
		e.hier.Reset()
	} else {
		e.hier = cache.NewHierarchy(cfg.Hierarchy)
	}
	e.robRing = resizeRing(e.robRing, cfg.ROB)
	e.fbRing = resizeRing(e.fbRing, cfg.FetchBuffer)
	e.sbRing = resizeRing(e.sbRing, cfg.StoreBuffer)
	e.lbRing = resizeRing(e.lbRing, cfg.LoadBuffer)
	e.iw = resizeOccupancy(e.iw, cfg.IssueWindow)
	e.sq = resizeOccupancy(e.sq, cfg.StoreQueue)

	if e.win == nil {
		e.win = make([]epochRec, initialWinLen)
		e.winMask = initialWinLen - 1
	} else {
		// Only [winBase, winHi) may hold live records (an abandoned run
		// leaves them populated); every slot outside the span is already
		// zero by the window invariant.
		for ep := e.winBase; ep < e.winHi; ep++ {
			e.win[ep&e.winMask] = epochRec{}
		}
	}
	e.winBase, e.winHi = 0, 0

	e.regReady = [isa.RegCount]int64{}
	e.fetchAvail, e.lastDispatch, e.lastRetire, e.serialBar = 0, 0, 0, 0
	e.prevCommitDone, e.maxCommitDone, e.lwsyncFloor = 0, 0, 0
	e.coalAddr, e.coalDone, e.coalValid = 0, 0, false
	if cfg.Model == consistency.WC {
		if e.coalWC == nil {
			e.coalWC = make(map[uint64]int64)
		} else {
			clear(e.coalWC)
		}
	} else {
		e.coalWC = nil
	}
	e.scoutUntil, e.scoutEpoch, e.scoutStores = 0, 0, false
	e.open = e.open[:0]
	e.openHead = 0
	e.lastLoadMissEpoch = -1
	e.idx = 0
	e.warm = cfg.WarmInsts
	e.measEnd = noMeasEnd
	e.contAtWarm = false
	e.window = cfg.OverlapWindow()
	e.hierBase = cache.HierarchyStats{}
	e.smacBase = smac.Stats{}
	e.snoopBase = 0
	e.hierFinal = cache.HierarchyStats{}
	e.smacFinal = smac.Stats{}
	e.snoopFinal = 0
	e.finalsSet = false
	e.trc, e.trcRun, e.prog = nil, 0, nil
	e.stats = Stats{}

	if cfg.ModelBranchPredictor {
		if e.bp != nil && e.cfg.BranchConfig() == cfg.BranchConfig() {
			e.bp.Reset()
		} else {
			e.bp = branch.New(cfg.BranchConfig())
		}
	} else {
		e.bp = nil
	}
	if cfg.SMACEntries > 0 {
		if e.sm != nil && e.cfg.SMACParams() == cfg.SMACParams() {
			e.sm.Reset()
		} else {
			e.sm = smac.New(cfg.SMACParams())
		}
		e.hier.OnL2Evict = func(addr uint64, st cache.MESI) {
			if st == cache.Modified {
				e.sm.RecordEviction(addr)
			}
		}
	} else {
		e.sm = nil
		e.hier.OnL2Evict = nil
	}

	// Option state is always rebuilt: seeds and sources are per run.
	e.traf = nil
	e.bgSrc, e.bgHier = nil, nil
	e.cfg = cfg
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return err
		}
	}
	return nil
}

// stepSharedCore advances the co-scheduled core by one instruction.
func (e *Engine) stepSharedCore() {
	if e.bgSrc == nil {
		return
	}
	in, ok := e.bgSrc.Next()
	if !ok {
		e.bgSrc = nil
		return
	}
	e.bgHier.Fetch(in.PC)
	shared := in.Flags.Has(isa.FlagShared)
	if in.Op.IsLoad() {
		e.bgHier.Load(in.Addr, shared)
	}
	if in.Op.IsStore() {
		e.bgHier.Store(in.Addr, shared)
	}
}

func (e *Engine) onSnoop(s coherence.Snoop) {
	if s.Kind == coherence.SnoopRTO {
		e.hier.SnoopInvalidate(s.Addr)
	} else {
		e.hier.SnoopShared(s.Addr)
	}
	// Any snoop that hits the SMAC invalidates the sub-block (§3.3.3).
	e.sm.SnoopInvalidate(s.Addr)
}

// Run drives the engine over the instruction stream and returns the
// accumulated statistics.
func (e *Engine) Run(src trace.Source) (*Stats, error) {
	return e.RunContext(context.Background(), src)
}

// batchLen is the block size RunContext pulls from the trace source:
// large enough that interface dispatch, the cancellation poll and the
// trace transform chain amortize to noise, small enough that a block of
// isa.Inst stays cache-resident (4096 x 24 B = 96 KB).
const batchLen = 4096

// RunContext is Run with cancellation: the engine polls ctx once per
// instruction block and abandons the run — returning ctx's error and no
// statistics — once the context is done. This is how the serving layer
// honours client disconnects and per-request deadlines.
func (e *Engine) RunContext(ctx context.Context, src trace.Source) (*Stats, error) {
	if src == nil {
		return nil, fmt.Errorf("epoch: nil trace source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if e.batch == nil {
		e.batch = make([]isa.Inst, batchLen)
	}
	var runStart int64
	if e.trc != nil {
		runStart = obs.Now()
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var batchStart int64
		if e.trc != nil {
			batchStart = obs.Now()
		}
		n := trace.Fill(src, e.batch)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			e.step(e.batch[i])
		}
		if e.trc != nil {
			e.trc.Complete(obs.EvBatch, e.trcRun, batchStart, int64(n))
		}
		e.publishProgress()
	}
	var foldStart int64
	if e.trc != nil {
		foldStart = obs.Now()
	}
	e.finalize()
	e.publishProgress()
	if e.trc != nil {
		e.trc.Complete(obs.EvFold, e.trcRun, foldStart, e.stats.Epochs)
		e.trc.Complete(obs.EvSimulate, e.trcRun, runStart, e.stats.Insts)
	}
	return &e.stats, nil
}

// SetObs attaches observability sinks for the next run: tracer events
// are recorded under run, and live counters flow to prog once per
// instruction batch. Any argument may be nil/zero to disable that
// sink; Reconfigure detaches everything.
func (e *Engine) SetObs(trc *obs.Tracer, run uint32, prog *obs.Progress) {
	e.trc, e.trcRun, e.prog = trc, run, prog
}

// publishProgress pushes the live counters to the attached progress
// sink: instructions stepped, measured instructions, and the epochs
// and misses folded out of the window so far. Called once per batch
// and once after finalize, so the cost amortizes to noise — and to
// exactly one branch when no sink is attached.
//
//storemlp:noalloc
func (e *Engine) publishProgress() {
	if e.prog == nil {
		return
	}
	e.prog.Publish(e.idx, e.stats.Insts, e.stats.Epochs,
		e.stats.LoadMisses+e.stats.InstMisses, e.stats.StoreMisses)
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// initialWinLen is the starting epoch-record ring size; the steady-state
// live span is bounded by the machine's structural lookback (a few
// hundred epochs for realistic configurations), so growth is a
// pathological fallback, not the common case.
const initialWinLen = 1024

// refFloor returns the lowest epoch any future operation can still
// reference: the in-order fetch chain (every charge and label site is at
// or above fetchAvail at the time it runs), lowered by an active scout
// window's trigger epoch and by open store misses awaiting the
// fully-overlapped adjustment. Each component is at or above the floor
// that held when it was created, so the floor never retreats and
// records below it are permanently immutable — safe to fold.
func (e *Engine) refFloor() int64 {
	floor := e.fetchAvail
	if e.idx <= e.scoutUntil && e.scoutEpoch < floor {
		floor = e.scoutEpoch
	}
	for i := e.openHead; i < len(e.open); i++ {
		if e.open[i].ep < floor {
			floor = e.open[i].ep
		}
	}
	if floor < e.winBase {
		floor = e.winBase
	}
	return floor
}

// advanceWin makes room for epoch ep: records below the reference floor
// fold into stats and free their slots; if the still-live span cannot
// fit the ring even after folding, the ring doubles.
func (e *Engine) advanceWin(ep int64) {
	floor := e.refFloor()
	foldTo := floor
	if foldTo > e.winHi {
		foldTo = e.winHi
	}
	for e.winBase < foldTo {
		r := &e.win[e.winBase&e.winMask]
		e.foldRec(r)
		*r = epochRec{}
		e.winBase++
	}
	if e.winBase < floor {
		// Nothing was materialized in [winBase, floor); skip ahead.
		e.winBase = floor
		e.winHi = floor
	}
	for ep >= e.winBase+int64(len(e.win)) {
		e.growWin()
	}
}

// growWin doubles the ring, rehoming the live span.
func (e *Engine) growWin() {
	next := make([]epochRec, 2*len(e.win))
	mask := int64(len(next) - 1)
	for epo := e.winBase; epo < e.winHi; epo++ {
		next[epo&mask] = e.win[epo&e.winMask]
	}
	e.win = next
	e.winMask = mask
	if e.trc != nil {
		e.trc.Point(obs.EvWindowGrow, e.trcRun, int64(len(e.win)))
	}
}

// winRec returns the record for epoch ep, sliding the window forward as
// needed. ep below the folded horizon would mean the floor invariant is
// broken — mutating a folded epoch silently corrupts stats, so fail
// loudly instead.
func (e *Engine) winRec(ep int64) *epochRec {
	if ep < e.winBase {
		panic(fmt.Sprintf("epoch: reference to epoch %d below folded horizon %d", ep, e.winBase))
	}
	if ep >= e.winBase+int64(len(e.win)) {
		e.advanceWin(ep)
	}
	if ep >= e.winHi {
		e.winHi = ep + 1
	}
	return &e.win[ep&e.winMask]
}

// charge books one miss of the given kind against epoch ep — the
// per-miss hot path, called for every off-chip access.
//
//storemlp:noalloc
func (e *Engine) charge(ep int64, kind missKind, measuring bool) {
	if !measuring {
		// During a segment's warmup overlap, mark the epoch as charged
		// pre-boundary: if measured charges later land in it (the normal
		// boundary epoch, or an older one a scout window reaches back
		// to), it straddles the segment boundary and the previous segment
		// already counted it (see foldRec). The mark does not set r.live,
		// so a record with only warm marks folds as nothing.
		if e.contAtWarm && e.idx <= e.warm {
			e.winRec(ep).warmKinds |= 1 << kind
		}
		return
	}
	r := e.winRec(ep)
	r.live = true
	switch kind {
	case kindLoad:
		r.loadMisses++
	case kindStore:
		r.storeMisses++
	case kindInst:
		r.instMisses++
	}
}

// setTermRange labels charged epochs in [from,to) with the termination
// condition, first cause winning. Epochs beyond the materialized span
// carry no charge yet and so (as with the old map accounting) take no
// label.
func (e *Engine) setTermRange(from, to int64, cond TermCond) {
	if to > from+termScanCap {
		to = from + termScanCap
	}
	if from < e.winBase {
		from = e.winBase
	}
	if to > e.winHi {
		to = e.winHi
	}
	for ep := from; ep < to; ep++ {
		if r := &e.win[ep&e.winMask]; r.live && r.term == TermNone {
			r.term = cond
		}
	}
}

// expose marks all open store misses younger than the overlap window as
// exposed: the processor stalled while they were in the store queue.
func (e *Engine) expose(idx int64, measuring bool) {
	e.drainOverlapped(idx)
	for e.openHead < len(e.open) {
		e.open[e.openHead] = openStore{}
		e.openHead++
		e.stats.ExposedStores++
	}
	e.compactOpen()
	_ = measuring
}

// drainOverlapped retires open store misses that survived a full overlap
// window without any stall: they were fully hidden by computation and
// their miss is removed from epoch accounting (Table 2 adjustment).
func (e *Engine) drainOverlapped(idx int64) {
	for e.openHead < len(e.open) && idx-e.open[e.openHead].idx >= e.window {
		s := e.open[e.openHead]
		e.open[e.openHead] = openStore{}
		e.openHead++
		e.stats.OverlappedStores++
		// s.ep is above the fold horizon by construction: open entries
		// hold the floor down until they drain here.
		if r := e.winRec(s.ep); r.live && r.storeMisses > 0 {
			r.storeMisses--
		}
	}
	e.compactOpen()
}

func (e *Engine) compactOpen() {
	if e.openHead == len(e.open) {
		e.open = e.open[:0]
		e.openHead = 0
	} else if e.openHead > 1024 {
		n := copy(e.open, e.open[e.openHead:])
		e.open = e.open[:n]
		e.openHead = 0
	}
}

func (e *Engine) chargeStore(ep, idx int64, measuring bool) {
	e.charge(ep, kindStore, measuring)
	if measuring {
		e.open = append(e.open, openStore{idx: idx, ep: ep})
	}
}

// startScout opens (or extends) a scout window: instructions up to
// reach beyond idx may have their misses prefetched in epoch ep.
func (e *Engine) startScout(idx, ep int64, reach int, stores bool) {
	until := idx + int64(reach)
	if idx >= e.scoutUntil {
		e.scoutUntil, e.scoutEpoch, e.scoutStores = until, ep, stores
		return
	}
	if until > e.scoutUntil {
		e.scoutUntil = until
	}
	if ep < e.scoutEpoch {
		e.scoutEpoch = ep
	}
	e.scoutStores = e.scoutStores || stores
}

func (e *Engine) scoutActive(idx int64) bool { return idx < e.scoutUntil }

// addrReadyBy reports whether the instruction's source registers are
// available at or before epoch ep — i.e. a scout could compute its
// address without depending on an outstanding miss.
func (e *Engine) addrReadyBy(in isa.Inst, ep int64) bool {
	return e.regReady[in.Src1] <= ep && e.regReady[in.Src2] <= ep
}

// step advances the model by one instruction. It runs half a billion
// times per Figure-2 point, so it must stay allocation-free: every
// structure it touches (rings, occupancy queues, the record window,
// the hierarchy fast paths) works in place.
//
//storemlp:noalloc
func (e *Engine) step(in isa.Inst) {
	idx := e.idx
	e.idx++
	measuring := idx >= e.warm && idx < e.measEnd
	if idx == e.warm {
		e.snapshotBaselines()
	}
	if idx == e.measEnd {
		e.snapshotFinals()
	}
	if e.traf != nil {
		e.traf.AdvanceOne()
	}
	if e.bgSrc != nil {
		e.stepSharedCore()
	}
	if e.openHead < len(e.open) {
		e.drainOverlapped(idx)
	}

	perfect := e.cfg.PerfectStores
	shared := in.Flags.Has(isa.FlagShared)

	// ---------------- fetch ----------------
	f := e.fetchAvail
	if c, _ := e.fbRing.oldest(); c > f {
		f = c // fetch buffer full: folded into in-order fetch delay
	}
	fr := e.hier.Fetch(in.PC)
	instAvail := f
	if fr.OffChip {
		if e.scoutActive(idx) {
			ep := e.scoutEpoch
			if f < ep {
				ep = f
			}
			e.charge(ep, kindInst, measuring)
			e.hier.Stats.L2PrefetchReqs++
			e.fetchAvail = maxi(f, ep+1)
		} else {
			e.charge(f, kindInst, measuring)
			e.setTermRange(f, f+1, TermInstMiss)
			e.expose(idx, measuring)
			e.fetchAvail = f + 1
		}
		instAvail = e.fetchAvail
	} else {
		e.fetchAvail = f
	}

	// ---------------- dispatch ----------------
	d := maxi(instAvail, e.lastDispatch)
	if c, tag := e.robRing.oldest(); c > d {
		cond := TermWindowFull
		if tag == tagSQ {
			cond = TermSQWindowFull
			if e.cfg.HWS.TriggersOnStoreStall() {
				e.startScout(idx, d, e.cfg.EffectiveScoutReach(), true)
			}
		}
		e.setTermRange(d, c, cond)
		e.expose(idx, measuring)
		d = c
	}
	if d2 := e.iw.admit(d); d2 > d {
		e.setTermRange(d, d2, TermWindowFull)
		e.expose(idx, measuring)
		d = d2
	}
	if in.Op.IsStore() && !perfect {
		if c, tag := e.sbRing.oldest(); c > d {
			cond := TermSBFull
			if tag == tagSQ {
				cond = TermSQSBFull
				if e.cfg.HWS.TriggersOnStoreStall() {
					e.startScout(idx, d, e.cfg.EffectiveScoutReach(), true)
				}
			}
			e.setTermRange(d, c, cond)
			e.expose(idx, measuring)
			d = c
		}
	}
	if in.Op.IsLoad() {
		if c, _ := e.lbRing.oldest(); c > d {
			e.setTermRange(d, c, TermWindowFull)
			d = c
		}
	}
	e.lastDispatch = d

	// ---------------- execute ----------------
	x := maxi(d, e.serialBar)
	if r := e.regReady[in.Src1]; r > x {
		x = r
	}
	if r := e.regReady[in.Src2]; r > x {
		x = r
	}

	comp := x
	retireTag := tagPlain

	switch {
	case in.Op == isa.OpLWSync:
		// Orders later store commits after earlier ones without
		// stalling execution.
		if e.maxCommitDone > e.lwsyncFloor {
			e.lwsyncFloor = e.maxCommitDone
		}

	case in.Serializing():
		x, comp = e.execSerializer(in, idx, x, measuring)
		if in.Dst != 0 {
			e.regReady[in.Dst] = comp
		}

	case in.Op == isa.OpLoad || in.Op == isa.OpLoadLocked:
		res := e.hier.Load(in.Addr, shared)
		if res.OffChip {
			if e.scoutActive(idx) && x > e.scoutEpoch && e.addrReadyBy(in, e.scoutEpoch) {
				// Scout prefetched this miss during the trigger's epoch.
				e.charge(e.scoutEpoch, kindLoad, measuring)
				e.hier.Stats.L2PrefetchReqs++
			} else {
				e.charge(x, kindLoad, measuring)
				e.lastLoadMissEpoch = x
				comp = x + 1
				retireTag = tagLoad
				// Note: the load miss itself is not an exposure event for
				// open stores — the stall it causes surfaces later as a
				// structural (ROB/window) bind, which is.
				if e.cfg.HWS != uarch.NoHWS {
					e.startScout(idx, x, e.cfg.EffectiveScoutReach(), e.cfg.HWS.PrefetchesStores())
				}
			}
		}
		if in.Dst != 0 {
			e.regReady[in.Dst] = comp
		}

	case in.Op.IsStore():
		var r int64
		r, retireTag = e.commitStore(in, idx, x, measuring, shared)
		comp = r

	case in.Op == isa.OpBranch:
		mispredicted := in.Flags.Has(isa.FlagMispredict)
		if e.bp != nil {
			// Synthetic branches have no real targets; fall-through+64
			// stands in so the BTB has something to learn.
			mispredicted = e.bp.Update(in.PC, in.Flags.Has(isa.FlagTaken), in.PC+64)
		}
		if mispredicted && x > e.fetchAvail {
			// Unresolvable misprediction: fetch stalls until the branch's
			// (miss-fed) source resolves.
			e.setTermRange(e.fetchAvail, x, TermMispredBranch)
			e.expose(idx, measuring)
			e.fetchAvail = x
		}

	default: // ALU
		if in.Dst != 0 {
			e.regReady[in.Dst] = x
		}
	}

	// ---------------- retire ----------------
	retire := maxi(e.lastRetire, comp)
	e.lastRetire = retire
	e.robRing.push(retire, retireTag)
	e.fbRing.push(d, tagPlain)
	e.iw.push(x)
	if in.Op.IsStore() && !perfect {
		e.sbRing.push(retire, retireTag)
	}
	if in.Op.IsLoad() {
		e.lbRing.push(retire, tagPlain)
	}
	if measuring {
		e.stats.Insts++
	}
}

// execSerializer handles casa, membar (PC) and isync (WC): the pipeline
// drains, and under PC all earlier stores must also commit. casa then
// performs its atomic memory access. Returns the execute epoch and the
// completion epoch, and raises the serialization barrier.
func (e *Engine) execSerializer(in isa.Inst, idx, x int64, measuring bool) (int64, int64) {
	perfect := e.cfg.PerfectStores

	// Pipeline drain: all earlier instructions retired.
	if e.lastRetire > x {
		cond := TermStoreSerialize
		if e.lastLoadMissEpoch >= x {
			cond = TermOtherSerialize
		}
		e.setTermRange(x, e.lastRetire, cond)
		x = e.lastRetire
	}
	// Store drain under PC: all earlier stores committed.
	if e.cfg.Model.DrainsStoresOnSerialize() && in.Op != isa.OpISync && !perfect {
		if e.maxCommitDone > x {
			cond := TermStoreSerialize
			if e.lastLoadMissEpoch >= x {
				cond = TermOtherSerialize
			}
			e.setTermRange(x, e.maxCommitDone, cond)
			e.expose(idx, measuring)
			if e.cfg.PrefetchPastSerializing {
				e.startScout(idx, x, e.cfg.ROB, true)
			}
			if e.cfg.HWS.TriggersOnStoreStall() {
				// During a store-drain serialization stall dispatch is
				// stopped just as on store-queue-full, so the HWS2
				// store-stall trigger applies here too.
				e.startScout(idx, x, e.cfg.EffectiveScoutReach(), true)
			}
			x = e.maxCommitDone
		}
	}

	comp := x
	if in.Op == isa.OpCASA {
		// Atomic load+store to the lock word: needs ownership.
		res := e.hier.Store(in.Addr, in.Flags.Has(isa.FlagShared))
		if res.OffChip && !perfect {
			if e.sm.ProbeStore(in.Addr) == smac.Hit {
				if measuring {
					e.stats.SMACAccelerated++
				}
			} else {
				e.charge(x, kindStore, measuring)
				if measuring {
					e.stats.ExposedStores++ // the processor waits on it by definition
				}
				comp = x + 1
			}
		}
		if e.cfg.Model.InOrderCommit() && !perfect {
			if comp > e.prevCommitDone {
				e.prevCommitDone = comp
			}
			if comp > e.maxCommitDone {
				e.maxCommitDone = comp
			}
		}
	}
	if comp > e.serialBar {
		e.serialBar = comp
	}
	return x, comp
}

// Hierarchy exposes the engine's cache hierarchy so tests and examples
// can pre-warm lines and inspect state.
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.hier }

// SMAC exposes the store-miss accelerator; nil when not configured.
func (e *Engine) SMAC() *smac.SMAC { return e.sm }

// foldRec retires one epoch record into the aggregate statistics. All
// contributions are commutative adds, so fold order (incremental during
// the run vs. the old end-of-run map sweep) does not affect the result.
//
// When the warmup prefix is a segment overlap (WithWarmContinuation),
// an epoch charged during the prefix is the previous segment's: charges
// it accrues here are the tail the previous segment could not see, so
// they are added to the miss totals and MLP sums, but the epoch itself
// (and its histogram bucket and termination label) was already counted
// there and is not counted again.
//
//storemlp:noalloc
func (e *Engine) foldRec(r *epochRec) {
	m := r.misses()
	if m <= 0 {
		return
	}
	cont := r.warmKinds != 0
	e.stats.StoreMisses += int64(r.storeMisses)
	e.stats.LoadMisses += int64(r.loadMisses)
	e.stats.InstMisses += int64(r.instMisses)
	if !cont {
		e.stats.Epochs++
		sb := int(r.storeMisses)
		if sb > MaxStoreMLPBucket {
			sb = MaxStoreMLPBucket
		}
		lb := int(r.loadMisses + r.instMisses)
		if lb > MaxLoadInstBucket {
			lb = MaxLoadInstBucket
		}
		e.stats.MLPJoint[sb][lb]++
		e.stats.epochsWithAny++
	}
	e.stats.loadInstMLPSum += int64(r.loadMisses) + int64(r.instMisses)
	if r.storeMisses > 0 {
		e.stats.storeMLPSum += int64(r.storeMisses)
		if !cont || r.warmKinds&(1<<kindStore) == 0 {
			e.stats.EpochsWithStore++
			e.stats.TermCounts[r.term]++
		}
	}
}

func (e *Engine) finalize() {
	// Stores that aged past the overlap window without a stall are fully
	// overlapped; anything still open at end of trace is conservatively
	// counted as exposed (its fate is unknowable).
	e.drainOverlapped(e.idx)
	e.expose(e.idx, true)
	for ep := e.winBase; ep < e.winHi; ep++ {
		r := &e.win[ep&e.winMask]
		e.foldRec(r)
		*r = epochRec{}
	}
	e.winBase = e.winHi
	hierEnd, smacEnd := e.hier.Stats, smac.Stats{}
	if e.sm != nil {
		smacEnd = e.sm.Stats
	}
	snoopEnd := int64(0)
	if e.traf != nil {
		snoopEnd = e.traf.Delivered
	}
	if e.finalsSet {
		// A measure limit stopped measurement before the stream ended;
		// the drain suffix past it is excluded like the warmup prefix.
		hierEnd, smacEnd, snoopEnd = e.hierFinal, e.smacFinal, e.snoopFinal
	}
	e.stats.Hierarchy = subHier(hierEnd, e.hierBase)
	if e.sm != nil {
		e.stats.SMAC = subSMAC(smacEnd, e.smacBase)
	}
	if e.traf != nil {
		e.stats.Snoops = snoopEnd - e.snoopBase
	}
}

// snapshotBaselines records substrate counters at the moment measurement
// begins, so that prewarming and the warmup prefix are excluded.
func (e *Engine) snapshotBaselines() {
	e.hierBase = e.hier.Stats
	if e.sm != nil {
		e.smacBase = e.sm.Stats
	}
	if e.traf != nil {
		e.snoopBase = e.traf.Delivered
	}
	if e.trc != nil {
		e.trc.Point(obs.EvMeasureStart, e.trcRun, e.idx)
	}
}

// snapshotFinals records substrate counters at the moment measurement
// stops (idx == measEnd), so the unmeasured drain suffix of a parallel
// run segment is excluded from them.
//
//storemlp:noalloc
func (e *Engine) snapshotFinals() {
	e.hierFinal = e.hier.Stats
	if e.sm != nil {
		e.smacFinal = e.sm.Stats
	}
	if e.traf != nil {
		e.snoopFinal = e.traf.Delivered
	}
	e.finalsSet = true
}

func subHier(a, b cache.HierarchyStats) cache.HierarchyStats {
	return cache.HierarchyStats{
		Fetches:        a.Fetches - b.Fetches,
		FetchOffChip:   a.FetchOffChip - b.FetchOffChip,
		Loads:          a.Loads - b.Loads,
		LoadOffChip:    a.LoadOffChip - b.LoadOffChip,
		Stores:         a.Stores - b.Stores,
		StoreOffChip:   a.StoreOffChip - b.StoreOffChip,
		StoreUpgrades:  a.StoreUpgrades - b.StoreUpgrades,
		TLBMisses:      a.TLBMisses - b.TLBMisses,
		L2StoreTraffic: a.L2StoreTraffic - b.L2StoreTraffic,
		L2PrefetchReqs: a.L2PrefetchReqs - b.L2PrefetchReqs,
	}
}

func subSMAC(a, b smac.Stats) smac.Stats {
	return smac.Stats{
		Evictions:            a.Evictions - b.Evictions,
		Probes:               a.Probes - b.Probes,
		Hits:                 a.Hits - b.Hits,
		HitInvalidated:       a.HitInvalidated - b.HitInvalidated,
		Misses:               a.Misses - b.Misses,
		CoherenceInvalidates: a.CoherenceInvalidates - b.CoherenceInvalidates,
		EntryEvictions:       a.EntryEvictions - b.EntryEvictions,
	}
}
