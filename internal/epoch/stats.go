package epoch

import (
	"fmt"
	"strings"

	"storemlp/internal/cache"
	"storemlp/internal/smac"
)

// TermCond classifies why an epoch ended — the paper's window
// termination conditions (Figure 3 legend).
type TermCond uint8

const (
	// TermNone: no stall was observed during the epoch (its misses
	// drained without backing up the machine).
	TermNone TermCond = iota
	// TermSBFull: store buffer full, not preceded by store queue full.
	TermSBFull
	// TermSQSBFull: store buffer full preceded by store queue full
	// ("store queue + store buffer full").
	TermSQSBFull
	// TermSQWindowFull: ROB or issue window full preceded by store queue
	// full ("store queue + window full").
	TermSQWindowFull
	// TermStoreSerialize: serializing instruction preceded by missing
	// stores but not missing loads.
	TermStoreSerialize
	// TermOtherSerialize: serializing instruction preceded by at least
	// one missing load.
	TermOtherSerialize
	// TermMispredBranch: mispredicted branch dependent on a missing load.
	TermMispredBranch
	// TermInstMiss: instruction fetch miss.
	TermInstMiss
	// TermWindowFull: ROB or issue window full, not preceded by store
	// queue full.
	TermWindowFull

	// NumTermConds is the number of classifications.
	NumTermConds
)

var termNames = [...]string{
	TermNone:           "none",
	TermSBFull:         "store buffer full",
	TermSQSBFull:       "store queue + store buffer full",
	TermSQWindowFull:   "store queue + window full",
	TermStoreSerialize: "store serialize",
	TermOtherSerialize: "other serialize",
	TermMispredBranch:  "mispred branch",
	TermInstMiss:       "instruction miss",
	TermWindowFull:     "window full",
}

func (t TermCond) String() string {
	if int(t) < len(termNames) {
		return termNames[t]
	}
	return fmt.Sprintf("term(%d)", uint8(t))
}

// epochRec accumulates per-epoch facts during a run. live distinguishes
// a charged epoch from an untouched ring slot: termination conditions
// label only epochs that already carry a charge, exactly as the old
// map-based accounting labelled only epochs present in the map.
type epochRec struct {
	storeMisses int32
	loadMisses  int32
	instMisses  int32
	term        TermCond
	live        bool
	// warmKinds marks miss kinds charged to this epoch during a segment
	// warmup overlap (WithWarmContinuation): the previous segment of a
	// parallel run measured those charges and counted the epoch, so
	// foldRec adds only this segment's tail charges (see foldRec).
	warmKinds uint8
}

func (r *epochRec) misses() int64 {
	return int64(r.storeMisses) + int64(r.loadMisses) + int64(r.instMisses)
}

// Histogram bucket limits for the Figure 4 joint MLP distribution.
const (
	// MaxStoreMLPBucket is the ">=10" store MLP bucket index.
	MaxStoreMLPBucket = 10
	// MaxLoadInstBucket is the ">=5" combined load+instruction MLP
	// bucket index.
	MaxLoadInstBucket = 5
)

// Stats is the output of one simulator run — every metric the paper
// reports.
type Stats struct {
	// Insts is the number of measured (post-warmup) instructions.
	Insts int64
	// Epochs is the number of epochs containing at least one off-chip
	// miss, after the fully-overlapped-store adjustment.
	Epochs int64

	// Charged off-chip misses by kind.
	StoreMisses int64
	LoadMisses  int64
	InstMisses  int64

	// OverlappedStores counts missing stores whose latency was fully
	// hidden by computation (Table 2 numerator); their misses are
	// removed from epoch accounting. ExposedStores is the complement.
	OverlappedStores int64
	ExposedStores    int64

	// SMACAccelerated counts store misses that skipped the invalidation
	// penalty via a SMAC hit.
	SMACAccelerated int64

	// EpochsWithStore is the number of epochs with store MLP >= 1; the
	// termination histogram (Figure 3) is over these epochs.
	EpochsWithStore int64
	TermCounts      [NumTermConds]int64

	// MLPJoint[s][l] is the number of epochs with store MLP bucket s
	// (0..10, 10 meaning >=10) and combined load+inst MLP bucket l
	// (0..5, 5 meaning >=5) — Figure 4.
	MLPJoint [MaxStoreMLPBucket + 1][MaxLoadInstBucket + 1]int64

	// Sums for MLP averages.
	storeMLPSum    int64
	loadInstMLPSum int64
	epochsWithAny  int64

	// Substrate statistics.
	Hierarchy cache.HierarchyStats
	SMAC      smac.Stats
	Snoops    int64
}

// Misses returns the total number of charged off-chip misses.
func (s *Stats) Misses() int64 { return s.StoreMisses + s.LoadMisses + s.InstMisses }

// EPI returns epochs per 1000 instructions — the paper's primary metric.
func (s *Stats) EPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return 1000 * float64(s.Epochs) / float64(s.Insts)
}

// MLP returns total misses per epoch: the average number of useful
// off-chip accesses outstanding when at least one is outstanding.
func (s *Stats) MLP() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Epochs)
}

// StoreMLP returns the average number of store misses per epoch over
// epochs with at least one store miss.
func (s *Stats) StoreMLP() float64 {
	if s.EpochsWithStore == 0 {
		return 0
	}
	return float64(s.storeMLPSum) / float64(s.EpochsWithStore)
}

// LoadInstMLP returns the average number of load plus instruction misses
// per epoch, over all epochs with at least one off-chip miss — the
// horizontal axis of the Figure 4 joint distribution, as a mean.
func (s *Stats) LoadInstMLP() float64 {
	if s.epochsWithAny == 0 {
		return 0
	}
	return float64(s.loadInstMLPSum) / float64(s.epochsWithAny)
}

// Merge folds o into s so that statistics from sharded runs (e.g. the
// same workload simulated with different seeds, or split across
// instruction ranges) aggregate into one Stats whose derived metrics
// (EPI, MLP, StoreMLP, LoadInstMLP, fractions) are computed over the
// union. Every counter — including the unexported MLP sums and the
// substrate statistics — must be folded here; the stats-drift analyzer
// enforces this.
func (s *Stats) Merge(o *Stats) {
	s.Insts += o.Insts
	s.Epochs += o.Epochs
	s.StoreMisses += o.StoreMisses
	s.LoadMisses += o.LoadMisses
	s.InstMisses += o.InstMisses
	s.OverlappedStores += o.OverlappedStores
	s.ExposedStores += o.ExposedStores
	s.SMACAccelerated += o.SMACAccelerated
	s.EpochsWithStore += o.EpochsWithStore
	for i := range s.TermCounts {
		s.TermCounts[i] += o.TermCounts[i]
	}
	for i := range s.MLPJoint {
		for j := range s.MLPJoint[i] {
			s.MLPJoint[i][j] += o.MLPJoint[i][j]
		}
	}
	s.storeMLPSum += o.storeMLPSum
	s.loadInstMLPSum += o.loadInstMLPSum
	s.epochsWithAny += o.epochsWithAny
	s.Hierarchy = s.Hierarchy.Add(o.Hierarchy)
	s.SMAC = s.SMAC.Add(o.SMAC)
	s.Snoops += o.Snoops
}

// OffChipCPI translates EPI into off-chip cycles per instruction for a
// given miss penalty: the product of epochs-per-instruction and the
// penalty (§3.4).
func (s *Stats) OffChipCPI(missPenalty int) float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Epochs) * float64(missPenalty) / float64(s.Insts)
}

// OverlappedStoreFraction is Table 2: the fraction of missing stores
// fully overlapped with computation.
func (s *Stats) OverlappedStoreFraction() float64 {
	total := s.OverlappedStores + s.ExposedStores
	if total == 0 {
		return 0
	}
	return float64(s.OverlappedStores) / float64(total)
}

// TermFraction returns the fraction of store-MLP>=1 epochs terminated by
// cond.
func (s *Stats) TermFraction(cond TermCond) float64 {
	if s.EpochsWithStore == 0 {
		return 0
	}
	return float64(s.TermCounts[cond]) / float64(s.EpochsWithStore)
}

// MLPJointFraction returns the Figure 4 bar segment: fraction of ALL
// epochs having the given store-MLP bucket and load+inst-MLP bucket.
func (s *Stats) MLPJointFraction(storeBucket, loadInstBucket int) float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.MLPJoint[storeBucket][loadInstBucket]) / float64(s.Epochs)
}

// String renders a human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "insts=%d epochs=%d EPI=%.3f/1000 MLP=%.2f storeMLP=%.2f\n",
		s.Insts, s.Epochs, s.EPI(), s.MLP(), s.StoreMLP())
	fmt.Fprintf(&b, "misses: store=%d load=%d inst=%d (overlapped stores=%d, smac-accelerated=%d)\n",
		s.StoreMisses, s.LoadMisses, s.InstMisses, s.OverlappedStores, s.SMACAccelerated)
	if s.EpochsWithStore > 0 {
		fmt.Fprintf(&b, "termination (over %d store epochs):\n", s.EpochsWithStore)
		for t := TermCond(0); t < NumTermConds; t++ {
			if s.TermCounts[t] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-32s %6.3f\n", t.String(), s.TermFraction(t))
		}
	}
	return b.String()
}
