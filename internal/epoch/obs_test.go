package epoch

import (
	"math"
	"reflect"
	"testing"

	"storemlp/internal/obs"
	"storemlp/internal/trace"
)

// TestStepZeroAllocTracerDisabled is the observability half of the
// allocation contract: with no tracer or progress sink attached (the
// default), the steady-state step loop allocates nothing at all — the
// nil checks on the obs fast path are free. Unlike the budgeted
// TestRunContextAllocationFree, this reuses the trace source, so the
// bound is exactly zero.
func TestStepZeroAllocTracerDisabled(t *testing.T) {
	cfg := exCfg()
	cfg.SMACEntries = 8 << 10
	src := trace.NewSlice(mixTrace(17, 50_000))

	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Warm run: grows every structure to steady state.
	if _, err := e.Run(src); err != nil {
		t.Fatalf("warm Run: %v", err)
	}

	// AllocsPerRun counts mallocs process-wide, so background noise (GC
	// housekeeping, stragglers from earlier tests) can leak into one
	// measurement. A real regression allocates on every run; take the
	// minimum over a few attempts to reject the noise, not the signal.
	allocs := math.Inf(1)
	for attempt := 0; attempt < 3 && allocs != 0; attempt++ {
		a := testing.AllocsPerRun(5, func() {
			src.Reset()
			if _, err := e.Run(src); err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
		if a < allocs {
			allocs = a
		}
	}
	if allocs != 0 {
		t.Errorf("disabled-tracer steady-state run allocated %.0f objects, want exactly 0", allocs)
	}
}

// TestRunObsEquivalence checks that attaching a tracer and a progress
// sink perturbs nothing: statistics are bit-identical to an untraced
// run, the tracer records the expected phase events, and the progress
// snapshot ends at the run's true totals.
func TestRunObsEquivalence(t *testing.T) {
	cfg := exCfg()
	insts := mixTrace(23, 30_000)

	base, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, err := base.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatalf("untraced Run: %v", err)
	}

	tr := obs.NewTracer(1 << 10)
	board := obs.NewBoard()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := board.Start("obs test", int64(len(insts)))
	e.SetObs(tr, tr.NewRun(), p)
	got, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatalf("traced Run: %v", err)
	}
	board.Finish(p)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("traced run diverged from untraced run:\nwant %+v\ngot  %+v", want, got)
	}

	kinds := map[obs.EventKind]int{}
	for _, ev := range tr.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds[obs.EvBatch] == 0 || kinds[obs.EvSimulate] != 1 || kinds[obs.EvFold] != 1 {
		t.Errorf("phase events = %v, want batches plus one simulate and one fold", kinds)
	}

	s := p.Snapshot()
	if s.Insts != int64(len(insts)) {
		t.Errorf("progress insts = %d, want %d", s.Insts, len(insts))
	}
	if s.Measured != got.Insts || s.Epochs != got.Epochs {
		t.Errorf("progress (measured %d, epochs %d) != stats (%d, %d)",
			s.Measured, s.Epochs, got.Insts, got.Epochs)
	}
	if !s.Done {
		t.Error("finished run not marked done")
	}
}

// TestReconfigureDetachesObs: recycled engines must never leak a
// previous request's sinks (the resetcomplete contract, behaviorally).
func TestReconfigureDetachesObs(t *testing.T) {
	cfg := exCfg()
	insts := mixTrace(29, 10_000)
	tr := obs.NewTracer(64)

	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.SetObs(tr, tr.NewRun(), nil)
	if _, err := e.Run(trace.NewSlice(insts)); err != nil {
		t.Fatalf("traced Run: %v", err)
	}
	if tr.Total() == 0 {
		t.Fatal("traced run recorded no events")
	}

	if err := e.Reconfigure(cfg); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	before := tr.Total()
	if _, err := e.Run(trace.NewSlice(insts)); err != nil {
		t.Fatalf("post-Reconfigure Run: %v", err)
	}
	if tr.Total() != before {
		t.Errorf("reconfigured engine still traced: %d new events", tr.Total()-before)
	}
}
