package epoch

import (
	"testing"

	"storemlp/internal/trace"
)

// TestRunContextAllocationFree pins down the perf contract of the
// sliding-window engine: once the window, batch buffer and occupancy
// rings have reached their steady-state sizes (first run), further
// simulation allocates nothing per instruction — only the trace source
// wrapper and a few bytes of constant overhead per run are permitted.
func TestRunContextAllocationFree(t *testing.T) {
	cfg := exCfg()
	cfg.SMACEntries = 8 << 10 // exercise the SMAC path too
	insts := mixTrace(17, 50_000)

	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Warm run: grows the epoch window, occupancy buckets, open-store
	// slice and batch buffer to steady state.
	if _, err := e.Run(trace.NewSlice(insts)); err != nil {
		t.Fatalf("warm Run: %v", err)
	}

	const perRunBudget = 8 // trace.NewSlice + constant-count incidentals
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := e.Run(trace.NewSlice(insts)); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if allocs > perRunBudget {
		t.Errorf("steady-state run of %d insts allocated %.0f objects (%.6f/inst), want <= %d per run",
			len(insts), allocs, allocs/float64(len(insts)), perRunBudget)
	}
}
