package epoch

// ring tracks occupancy of a hardware structure whose entries are freed
// in FIFO order (ROB, fetch buffer, store buffer, load buffer): an entry
// admitted now must wait for the free epoch of the entry `size`
// positions earlier. It starts zero-filled, i.e. all slots initially
// free at epoch 0.
type ring struct {
	buf []int64
	tag []uint8
	pos int
}

func newRing(size int) *ring {
	return &ring{buf: make([]int64, size), tag: make([]uint8, size)}
}

// oldest returns the free epoch (and tag) of the slot about to be
// reused.
func (r *ring) oldest() (int64, uint8) { return r.buf[r.pos], r.tag[r.pos] }

// push records the free epoch and tag of the newly admitted entry.
func (r *ring) push(free int64, tag uint8) {
	r.buf[r.pos] = free
	r.tag[r.pos] = tag
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
}

// minHeap is a small binary min-heap of epochs, used for structures
// whose entries free out of order (the issue window, and the store
// queue under weak consistency's out-of-order commit).
type minHeap struct {
	v []int64
}

func (h *minHeap) push(x int64) {
	h.v = append(h.v, x)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.v[p] <= h.v[i] {
			break
		}
		h.v[p], h.v[i] = h.v[i], h.v[p]
		i = p
	}
}

func (h *minHeap) min() int64 { return h.v[0] }

func (h *minHeap) pop() int64 {
	top := h.v[0]
	last := len(h.v) - 1
	h.v[0] = h.v[last]
	h.v = h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.v) && h.v[l] < h.v[m] {
			m = l
		}
		if r < len(h.v) && h.v[r] < h.v[m] {
			m = r
		}
		if m == i {
			break
		}
		h.v[i], h.v[m] = h.v[m], h.v[i]
		i = m
	}
	return top
}

func (h *minHeap) len() int { return len(h.v) }

// occupancy tracks a structure with out-of-order frees and fixed
// capacity. admit returns the earliest epoch (>= t) at which a new entry
// fits; the caller then pushes the entry's own free epoch.
type occupancy struct {
	h   minHeap
	cap int // <= 0 means unbounded
}

func newOccupancy(capacity int) *occupancy { return &occupancy{cap: capacity} }

// admit frees entries whose free epoch is <= t, then, if the structure
// is still full, waits for the earliest free. It returns the admit
// epoch.
func (o *occupancy) admit(t int64) int64 {
	if o.cap <= 0 {
		return t
	}
	for o.h.len() > 0 && o.h.min() <= t {
		o.h.pop()
	}
	for o.h.len() >= o.cap {
		w := o.h.pop()
		if w > t {
			t = w
		}
	}
	return t
}

// push records the new entry's free epoch.
func (o *occupancy) push(free int64) {
	if o.cap <= 0 {
		return
	}
	o.h.push(free)
}
