package epoch

// ring tracks occupancy of a hardware structure whose entries are freed
// in FIFO order (ROB, fetch buffer, store buffer, load buffer): an entry
// admitted now must wait for the free epoch of the entry `size`
// positions earlier. It starts zero-filled, i.e. all slots initially
// free at epoch 0. Each slot packs free<<3|tag into one word so a
// push is a single store and a peek a single load; free epochs stay
// far below 2^60 (they are bounded by the instruction count).
type ring struct {
	buf []uint64
	pos int
}

func newRing(size int) *ring {
	return &ring{buf: make([]uint64, size)}
}

// oldest returns the free epoch (and tag) of the slot about to be
// reused.
func (r *ring) oldest() (int64, uint8) {
	e := r.buf[r.pos]
	return int64(e >> 3), uint8(e & 7)
}

// push records the free epoch and tag of the newly admitted entry.
func (r *ring) push(free int64, tag uint8) {
	r.buf[r.pos] = uint64(free)<<3 | uint64(tag)
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
}

// reset returns the ring to its initial all-free state.
func (r *ring) reset() {
	for i := range r.buf {
		r.buf[i] = 0
	}
	r.pos = 0
}

// occupancy tracks a structure with out-of-order frees and fixed
// capacity (the issue window, and the store queue under weak
// consistency's out-of-order commit). admit returns the earliest epoch
// (>= t) at which a new entry fits; the caller then pushes the entry's
// own free epoch.
//
// Entries are free epochs within a bounded span of the current epoch,
// and — because an entry's free epoch is never below the admit epoch
// that preceded its push — entries always land at or above the oldest
// epoch still occupied. That makes a bucket ring with a monotone
// cursor an exact replacement for a priority queue: counts per epoch,
// a base cursor that only moves forward, amortized O(1) per operation
// where a heap pays two O(log cap) sifts per instruction.
type occupancy struct {
	cnt  []int32 // occupied-entry counts per epoch, ring-indexed
	mask int64   //storemlp:keep (ring geometry)
	base int64   // lowest epoch that may hold entries; slots below are zero
	n    int     // total entries
	cap  int     //storemlp:keep <= 0 means unbounded
}

const initialOccLen = 256

func newOccupancy(capacity int) *occupancy {
	o := &occupancy{cap: capacity}
	if capacity > 0 {
		o.cnt = make([]int32, initialOccLen)
		o.mask = initialOccLen - 1
	}
	return o
}

// admit frees entries whose free epoch is <= t, then, if the structure
// is still full, waits for the earliest free. It returns the admit
// epoch.
func (o *occupancy) admit(t int64) int64 {
	if o.cap <= 0 {
		return t
	}
	for o.base <= t && o.n > 0 {
		o.n -= int(o.cnt[o.base&o.mask])
		o.cnt[o.base&o.mask] = 0
		o.base++
	}
	if o.base <= t {
		o.base = t + 1 // emptied out; every slot is zero, skip ahead
	}
	for o.n >= o.cap {
		for o.cnt[o.base&o.mask] == 0 {
			o.base++
		}
		o.cnt[o.base&o.mask]--
		o.n--
		t = o.base // entries pop in nondecreasing order, so t only grows
	}
	return t
}

// push records the new entry's free epoch. An entry already at or below
// the cursor (free == the last admit epoch, which the admit sweep moved
// past) is dropped instead of stored: admit epochs are nondecreasing,
// so the next admit would free it before the capacity check ever sees
// it — dropping now is observationally identical and keeps the
// everything-below-base-is-zero invariant.
func (o *occupancy) push(free int64) {
	if o.cap <= 0 || free < o.base {
		return
	}
	for free >= o.base+int64(len(o.cnt)) {
		o.grow()
	}
	o.cnt[free&o.mask]++
	o.n++
}

// grow doubles the bucket ring, rehoming occupied epochs.
func (o *occupancy) grow() {
	next := make([]int32, 2*len(o.cnt))
	mask := int64(len(next) - 1)
	for ep := o.base; ep < o.base+int64(len(o.cnt)); ep++ {
		next[ep&mask] = o.cnt[ep&o.mask]
	}
	o.cnt = next
	o.mask = mask
}

// len returns the number of occupied entries (for tests).
func (o *occupancy) len() int { return o.n }

// reset empties the structure.
func (o *occupancy) reset() {
	for i := range o.cnt {
		o.cnt[i] = 0
	}
	o.base = 0
	o.n = 0
}

// resizeRing returns a reset ring of the given size, reusing r's
// allocation when the size is unchanged.
func resizeRing(r *ring, size int) *ring {
	if r == nil || len(r.buf) != size {
		return newRing(size)
	}
	r.reset()
	return r
}

// resizeOccupancy returns a reset occupancy queue of the given
// capacity, reusing o's allocation (including any growth beyond the
// initial bucket count) when the capacity is unchanged.
func resizeOccupancy(o *occupancy, capacity int) *occupancy {
	if o == nil || o.cap != capacity {
		return newOccupancy(capacity)
	}
	o.reset()
	return o
}
