package epoch

// The tests in this file encode the paper's worked Examples 1-6 (§3) as
// golden tests of the epoch engine's semantics, using the same two-entry
// store buffer and store queue the examples assume.

import (
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
)

const (
	hotPC  = uint64(0x1000)
	coldPC = uint64(0x7f0000)
	lockA  = uint64(0x2000)
)

// hot data addresses (prewarmed Modified in L2, so loads and stores hit)
func hot(i int) uint64 { return 0x20000 + uint64(i)*64 }

// cold data addresses (never prewarmed: always off-chip)
func cold(i int) uint64 { return 0x40000000 + uint64(i)*64 }

func exCfg() uarch.Config {
	c := uarch.Default()
	c.StoreBuffer = 2
	c.StoreQueue = 2
	c.StorePrefetch = uarch.Sp0
	c.CoalesceBytes = 0
	return c
}

// runTrace builds an engine, prewarms the hot lines, and runs the given
// instructions.
func runTrace(t *testing.T, cfg uarch.Config, insts []isa.Inst, opts ...Option) *Stats {
	t.Helper()
	e, err := New(cfg, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := e.Hierarchy()
	h.Fetch(hotPC)
	h.Store(lockA, false)
	for i := 0; i < 16; i++ {
		h.Store(hot(i), false)
	}
	stats, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func st(addr uint64) isa.Inst { return isa.Inst{Op: isa.OpStore, PC: hotPC, Addr: addr, Size: 8} }
func ld(addr uint64) isa.Inst { return isa.Inst{Op: isa.OpLoad, PC: hotPC, Addr: addr, Size: 8} }
func alu() isa.Inst           { return isa.Inst{Op: isa.OpALU, PC: hotPC} }
func membar() isa.Inst        { return isa.Inst{Op: isa.OpMembar, PC: hotPC} }

// Example 1: missing store; 4 hitting stores; missing load. SB=SQ=2, PC.
// Paper: epoch sets {{I1}, {I2..I6}} — two epochs, the first terminated
// by store-buffer-full preceded by store-queue-full.
func TestExample1PC(t *testing.T) {
	insts := []isa.Inst{
		st(cold(0)), st(hot(0)), st(hot(1)), st(hot(2)), st(hot(3)), ld(cold(1)),
	}
	s := runTrace(t, exCfg(), insts)
	if s.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2", s.Epochs)
	}
	if s.StoreMisses != 1 || s.LoadMisses != 1 || s.InstMisses != 0 {
		t.Errorf("misses = %d/%d/%d", s.StoreMisses, s.LoadMisses, s.InstMisses)
	}
	if s.EpochsWithStore != 1 {
		t.Errorf("EpochsWithStore = %d", s.EpochsWithStore)
	}
	if s.TermCounts[TermSQSBFull] != 1 {
		t.Errorf("TermCounts = %v; want SQ+SB-full on the store epoch", s.TermCounts)
	}
	if got := s.MLP(); got != 1 {
		t.Errorf("MLP = %v, want 1", got)
	}
}

// Example 1 under WC: out-of-order commit lets the hitting stores
// release their queue entries past the missing store, so the missing
// load issues in the first epoch — one epoch instead of two.
func TestExample1WC(t *testing.T) {
	cfg := exCfg()
	cfg.Model = consistency.WC
	insts := []isa.Inst{
		st(cold(0)), st(hot(0)), st(hot(1)), st(hot(2)), st(hot(3)), ld(cold(1)),
	}
	s := runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 (WC overlaps the load with the store)", s.Epochs)
	}
	if s.Misses() != 2 {
		t.Errorf("misses = %d, want 2", s.Misses())
	}
}

// Example 2: missing store; serializing instruction; missing load.
// Paper: epoch sets {{I1}, {I2, I3}} — the serializer drains the store
// queue, so the load's miss lands in the second epoch.
func TestExample2(t *testing.T) {
	insts := []isa.Inst{st(cold(0)), membar(), ld(cold(1))}
	s := runTrace(t, exCfg(), insts)
	if s.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2", s.Epochs)
	}
	if s.TermCounts[TermStoreSerialize] != 1 {
		t.Errorf("TermCounts = %v; want store-serialize", s.TermCounts)
	}
}

// Example 3: missing load; missing store; missing instruction; missing
// store. Paper: epoch sets {{I1,I3},{I2,I3},{I4}} — three epochs, four
// misses, MLP = 1.33.
func TestExample3(t *testing.T) {
	insts := []isa.Inst{
		ld(cold(0)),
		st(cold(1)),
		{Op: isa.OpALU, PC: coldPC}, // instruction fetch miss
		{Op: isa.OpStore, PC: coldPC + 4, Addr: cold(2), Size: 8},
	}
	s := runTrace(t, exCfg(), insts)
	if s.Epochs != 3 {
		t.Errorf("Epochs = %d, want 3", s.Epochs)
	}
	if s.LoadMisses != 1 || s.StoreMisses != 2 || s.InstMisses != 1 {
		t.Errorf("misses = %d/%d/%d", s.LoadMisses, s.StoreMisses, s.InstMisses)
	}
	if got := s.MLP(); got < 1.32 || got > 1.34 {
		t.Errorf("MLP = %v, want 1.33", got)
	}
	// With prefetch-at-retire both store misses overlap into one epoch.
	cfg := exCfg()
	cfg.StorePrefetch = uarch.Sp1
	s = runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("Sp1 Epochs = %d, want 2", s.Epochs)
	}
}

// Example 4: three missing stores then a serializer, SQ=2.
// Paper: Sp0 -> {{I1},{I2},{I3}}; Sp1 -> {{I1,I2},{I3}}; Sp2 -> {{I1,I2,I3}}.
func TestExample4PrefetchModes(t *testing.T) {
	insts := []isa.Inst{st(cold(0)), st(cold(1)), st(cold(2)), membar()}
	for _, tc := range []struct {
		mode   uarch.PrefetchMode
		epochs int64
	}{
		{uarch.Sp0, 3},
		{uarch.Sp1, 2},
		{uarch.Sp2, 1},
	} {
		cfg := exCfg()
		cfg.StorePrefetch = tc.mode
		s := runTrace(t, cfg, insts)
		if s.Epochs != tc.epochs {
			t.Errorf("%v: Epochs = %d, want %d", tc.mode, s.Epochs, tc.epochs)
		}
		if s.StoreMisses != 3 {
			t.Errorf("%v: StoreMisses = %d, want 3", tc.mode, s.StoreMisses)
		}
	}
}

// Example 5 (PC critical section): the casa waits for the missing store
// to drain; the critical-section load, the store inside it, and the load
// after the section all overlap in the second epoch.
func TestExample5PC(t *testing.T) {
	cfg := exCfg()
	cfg.StorePrefetch = uarch.Sp2
	insts := []isa.Inst{
		st(cold(0)), // I1 missing store
		{Op: isa.OpCASA, PC: hotPC, Addr: lockA, Size: 8, Dst: 1, Flags: isa.FlagLockAcquire}, // I2
		ld(cold(1)), // I3 missing load
		st(cold(2)), // I4 missing store
		alu(),       // I5
		{Op: isa.OpStore, PC: hotPC, Addr: lockA, Size: 8, Flags: isa.FlagLockRelease}, // I6 release (hits)
		ld(cold(3)), // I7 missing load
	}
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2", s.Epochs)
	}
	if s.StoreMisses != 2 || s.LoadMisses != 2 {
		t.Errorf("misses = %d stores / %d loads", s.StoreMisses, s.LoadMisses)
	}
	if s.TermCounts[TermStoreSerialize] != 1 {
		t.Errorf("TermCounts = %v; want one store-serialize epoch", s.TermCounts)
	}
	// The first epoch holds an expensive missing store: store MLP 1 with
	// zero load+inst MLP (Figure 4's leftmost bottom segment).
	if s.MLPJoint[1][0] != 1 {
		t.Errorf("MLPJoint[1][0] = %d, want 1", s.MLPJoint[1][0])
	}
}

// Example 6 (WC critical section): isync drains only the pipeline, so
// every miss overlaps in a single epoch.
func TestExample6WC(t *testing.T) {
	cfg := exCfg()
	cfg.Model = consistency.WC
	cfg.StorePrefetch = uarch.Sp2
	insts := []isa.Inst{
		st(cold(0)), // I1 missing store
		{Op: isa.OpLoadLocked, PC: hotPC, Addr: lockA, Size: 8, Dst: 1, Flags: isa.FlagLockAcquire},
		{Op: isa.OpStoreCond, PC: hotPC, Addr: lockA, Size: 8, Flags: isa.FlagLockAcquire},
		{Op: isa.OpISync, PC: hotPC, Flags: isa.FlagLockAcquire},
		ld(cold(1)), // I4 missing load
		st(cold(2)), // I5 missing store
		{Op: isa.OpLWSync, PC: hotPC, Flags: isa.FlagLockRelease},
		{Op: isa.OpStore, PC: hotPC, Addr: lockA, Size: 8, Flags: isa.FlagLockRelease},
		ld(cold(3)), // I8 missing load
	}
	s := runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1", s.Epochs)
	}
	if s.StoreMisses != 2 || s.LoadMisses != 2 {
		t.Errorf("misses = %d stores / %d loads", s.StoreMisses, s.LoadMisses)
	}
	// Same code under PC (casa acquire) costs more epochs.
	pcInsts := []isa.Inst{
		st(cold(0)),
		{Op: isa.OpCASA, PC: hotPC, Addr: lockA, Size: 8, Dst: 1, Flags: isa.FlagLockAcquire},
		ld(cold(1)),
		st(cold(2)),
		{Op: isa.OpStore, PC: hotPC, Addr: lockA, Size: 8, Flags: isa.FlagLockRelease},
		ld(cold(3)),
	}
	pcCfg := exCfg()
	pcCfg.StorePrefetch = uarch.Sp2
	ps := runTrace(t, pcCfg, pcInsts)
	if ps.Epochs <= s.Epochs {
		t.Errorf("PC epochs = %d, WC epochs = %d; PC should cost more", ps.Epochs, s.Epochs)
	}
}

func TestPerfectStores(t *testing.T) {
	cfg := exCfg()
	cfg.PerfectStores = true
	// Example 4's stores vanish entirely.
	s := runTrace(t, cfg, []isa.Inst{st(cold(0)), st(cold(1)), st(cold(2)), membar()})
	if s.Epochs != 0 || s.StoreMisses != 0 {
		t.Errorf("perfect stores: epochs=%d storeMisses=%d", s.Epochs, s.StoreMisses)
	}
	// Loads still miss.
	s = runTrace(t, cfg, []isa.Inst{st(cold(0)), ld(cold(1))})
	if s.Epochs != 1 || s.LoadMisses != 1 {
		t.Errorf("perfect stores with load: epochs=%d loads=%d", s.Epochs, s.LoadMisses)
	}
}

func TestCoalescingPC(t *testing.T) {
	cfg := exCfg()
	cfg.CoalesceBytes = 8
	cfg.StorePrefetch = uarch.Sp1
	// Two consecutive missing stores to the same 8-byte block coalesce
	// into one queue entry and one off-chip miss.
	a := cold(0)
	s := runTrace(t, cfg, []isa.Inst{
		{Op: isa.OpStore, PC: hotPC, Addr: a, Size: 4},
		{Op: isa.OpStore, PC: hotPC, Addr: a + 4, Size: 4},
		membar(),
	})
	if s.StoreMisses != 1 {
		t.Errorf("coalesced StoreMisses = %d, want 1", s.StoreMisses)
	}
	if s.Hierarchy.L2StoreTraffic != 1 {
		t.Errorf("L2StoreTraffic = %d, want 1", s.Hierarchy.L2StoreTraffic)
	}
	// PC only coalesces consecutive stores: an intervening store to a
	// different block breaks the pair.
	s = runTrace(t, cfg, []isa.Inst{
		{Op: isa.OpStore, PC: hotPC, Addr: a, Size: 4},
		st(hot(0)),
		{Op: isa.OpStore, PC: hotPC, Addr: a + 4, Size: 4},
		membar(),
	})
	if s.Hierarchy.L2StoreTraffic != 3 {
		t.Errorf("non-consecutive L2StoreTraffic = %d, want 3", s.Hierarchy.L2StoreTraffic)
	}
}

func TestCoalescingWC(t *testing.T) {
	cfg := exCfg()
	cfg.Model = consistency.WC
	cfg.CoalesceBytes = 8
	cfg.StorePrefetch = uarch.Sp1
	a := cold(0)
	// WC coalesces with ANY uncommitted entry, so the intervening store
	// does not break the pair.
	s := runTrace(t, cfg, []isa.Inst{
		{Op: isa.OpStore, PC: hotPC, Addr: a, Size: 4},
		st(hot(0)),
		{Op: isa.OpStore, PC: hotPC, Addr: a + 4, Size: 4},
		membar(),
	})
	if s.Hierarchy.L2StoreTraffic != 2 {
		t.Errorf("WC L2StoreTraffic = %d, want 2", s.Hierarchy.L2StoreTraffic)
	}
	if s.StoreMisses != 1 {
		t.Errorf("WC StoreMisses = %d, want 1", s.StoreMisses)
	}
}

func TestUnboundedStoreQueue(t *testing.T) {
	insts := []isa.Inst{st(cold(0)), st(cold(1)), st(cold(2)), st(cold(3)), membar()}
	cfg := exCfg()
	cfg.StorePrefetch = uarch.Sp1
	bounded := runTrace(t, cfg, insts)
	cfg.StoreQueue = 0 // unbounded
	unbounded := runTrace(t, cfg, insts)
	if unbounded.Epochs != 1 {
		t.Errorf("unbounded SQ epochs = %d, want 1", unbounded.Epochs)
	}
	if bounded.Epochs <= unbounded.Epochs {
		t.Errorf("bounded (%d) should cost more epochs than unbounded (%d)",
			bounded.Epochs, unbounded.Epochs)
	}
}

func TestHWS2OnStoreQueueFull(t *testing.T) {
	insts := []isa.Inst{st(cold(0)), st(cold(1)), st(cold(2)), membar()}
	base := exCfg() // Sp0: 3 epochs
	s0 := runTrace(t, base, insts)
	hws := exCfg()
	hws.HWS = uarch.HWS2
	s2 := runTrace(t, hws, insts)
	if s2.Epochs >= s0.Epochs {
		t.Errorf("HWS2 epochs = %d, want < %d", s2.Epochs, s0.Epochs)
	}
}

func TestHWSOnMissingLoad(t *testing.T) {
	// A missing load followed by enough filler to overflow the 64-entry
	// ROB, then a second missing load: without scout the second load
	// lands in a new epoch; with HWS0 it is prefetched during the first.
	var insts []isa.Inst
	insts = append(insts, ld(cold(0)))
	for i := 0; i < 80; i++ {
		insts = append(insts, alu())
	}
	insts = append(insts, ld(cold(1)))
	cfg := exCfg()
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Fatalf("NoHWS epochs = %d, want 2", s.Epochs)
	}
	if s.TermCounts[TermWindowFull] != 0 {
		// window-full is recorded but only counted over store epochs;
		// there are none here.
		t.Errorf("TermCounts over store epochs should be empty: %v", s.TermCounts)
	}
	cfg.HWS = uarch.HWS0
	s = runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("HWS0 epochs = %d, want 1", s.Epochs)
	}
	if s.LoadMisses != 2 {
		t.Errorf("HWS0 LoadMisses = %d, want 2", s.LoadMisses)
	}
}

func TestHWSDoesNotPrefetchDependentLoad(t *testing.T) {
	// The second load's address depends on the first missing load, so
	// scout must skip it: still two epochs.
	var insts []isa.Inst
	first := ld(cold(0))
	first.Dst = 5
	insts = append(insts, first)
	for i := 0; i < 80; i++ {
		insts = append(insts, alu())
	}
	dep := ld(cold(1))
	dep.Src1 = 5
	insts = append(insts, dep)
	cfg := exCfg()
	cfg.HWS = uarch.HWS0
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("dependent-load epochs = %d, want 2", s.Epochs)
	}
}

func TestMispredictedBranchTermination(t *testing.T) {
	load := ld(cold(1))
	load.Dst = 5
	insts := []isa.Inst{
		st(cold(0)),
		load,
		{Op: isa.OpBranch, PC: hotPC, Src1: 5, Flags: isa.FlagMispredict},
		ld(cold(2)),
	}
	s := runTrace(t, exCfg(), insts)
	if s.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2", s.Epochs)
	}
	if s.TermCounts[TermMispredBranch] != 1 {
		t.Errorf("TermCounts = %v, want mispred-branch", s.TermCounts)
	}
}

func TestInstMissTermination(t *testing.T) {
	insts := []isa.Inst{
		st(cold(0)),
		{Op: isa.OpALU, PC: coldPC},
		ld(cold(1)),
	}
	s := runTrace(t, exCfg(), insts)
	if s.InstMisses != 1 {
		t.Errorf("InstMisses = %d", s.InstMisses)
	}
	if s.TermCounts[TermInstMiss] != 1 {
		t.Errorf("TermCounts = %v, want inst-miss", s.TermCounts)
	}
}

func TestPrefetchPastSerializing(t *testing.T) {
	// Missing store, then a serializer, then a missing load within ROB
	// reach: PPS issues the load's miss during the drain stall.
	insts := []isa.Inst{st(cold(0)), membar(), ld(cold(1))}
	cfg := exCfg()
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Fatalf("base epochs = %d, want 2", s.Epochs)
	}
	cfg.PrefetchPastSerializing = true
	s = runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("PPS epochs = %d, want 1", s.Epochs)
	}
}

func TestOverlappedStoreAdjustment(t *testing.T) {
	cfg := exCfg()
	cfg.MissPenalty = 50
	cfg.CPIOnChip = 1 // overlap window = 50 instructions
	var insts []isa.Inst
	insts = append(insts, st(cold(0)))
	for i := 0; i < 100; i++ {
		insts = append(insts, alu())
	}
	insts = append(insts, ld(cold(1)))
	s := runTrace(t, cfg, insts)
	if s.OverlappedStores != 1 {
		t.Errorf("OverlappedStores = %d, want 1", s.OverlappedStores)
	}
	if s.StoreMisses != 0 {
		t.Errorf("StoreMisses = %d, want 0 (adjusted away)", s.StoreMisses)
	}
	if s.Epochs != 1 { // only the load's epoch remains
		t.Errorf("Epochs = %d, want 1", s.Epochs)
	}
	if got := s.OverlappedStoreFraction(); got != 1 {
		t.Errorf("OverlappedStoreFraction = %v, want 1", got)
	}

	// With a stall inside the window the store is exposed instead.
	var exposed []isa.Inst
	exposed = append(exposed, st(cold(0)))
	for i := 0; i < 10; i++ {
		exposed = append(exposed, alu())
	}
	exposed = append(exposed, ld(cold(1)))
	s = runTrace(t, cfg, exposed)
	if s.ExposedStores != 1 || s.OverlappedStores != 0 {
		t.Errorf("exposed=%d overlapped=%d, want 1/0", s.ExposedStores, s.OverlappedStores)
	}
	// The load issues in the store's epoch (they overlap), so the store
	// miss stays in the accounting.
	if s.Epochs != 1 || s.StoreMisses != 1 || s.Misses() != 2 {
		t.Errorf("epochs=%d storeMisses=%d misses=%d, want 1/1/2",
			s.Epochs, s.StoreMisses, s.Misses())
	}
}

func TestSMACAcceleration(t *testing.T) {
	cfg := exCfg()
	cfg.StorePrefetch = uarch.Sp1
	cfg.SMACEntries = 1024
	// Shrink the L2 so three stores to one set force an eviction:
	// 512 B, 2-way, 64 B lines -> 4 sets; stride 256 maps to set 0.
	cfg.Hierarchy.L2.SizeBytes = 512
	cfg.Hierarchy.L2.Ways = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Hierarchy().Fetch(hotPC)
	base := uint64(0x100000)
	insts := []isa.Inst{
		{Op: isa.OpStore, PC: hotPC, Addr: base, Size: 8},       // miss, install M
		{Op: isa.OpStore, PC: hotPC, Addr: base + 256, Size: 8}, // miss
		{Op: isa.OpStore, PC: hotPC, Addr: base + 512, Size: 8}, // miss, evicts base -> SMAC
		{Op: isa.OpStore, PC: hotPC, Addr: base, Size: 8},       // L2 miss, SMAC hit
		membar(),
	}
	s, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	if s.SMACAccelerated != 1 {
		t.Errorf("SMACAccelerated = %d, want 1", s.SMACAccelerated)
	}
	if s.StoreMisses != 3 {
		t.Errorf("StoreMisses = %d, want 3 (4th accelerated)", s.StoreMisses)
	}
	if s.SMAC.Hits != 1 {
		t.Errorf("SMAC stats = %+v", s.SMAC)
	}
}

func TestEngineErrors(t *testing.T) {
	bad := exCfg()
	bad.ROB = 0
	if _, err := New(bad); err == nil {
		t.Error("New should reject invalid config")
	}
	e, err := New(exCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil); err == nil {
		t.Error("Run(nil) should error")
	}
}

func TestDeterminism(t *testing.T) {
	insts := []isa.Inst{
		st(cold(0)), ld(cold(1)), st(cold(2)), membar(), ld(cold(3)), st(hot(0)),
	}
	run := func() Stats {
		s := runTrace(t, exCfg(), insts)
		return *s
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := exCfg()
	cfg.WarmInsts = 3
	insts := []isa.Inst{
		st(cold(0)), ld(cold(1)), alu(), // warm: not measured
		ld(cold(2)), // measured
	}
	s := runTrace(t, cfg, insts)
	if s.Insts != 1 {
		t.Errorf("Insts = %d, want 1", s.Insts)
	}
	if s.LoadMisses != 1 || s.StoreMisses != 0 {
		t.Errorf("misses = %d/%d, want only the measured load", s.LoadMisses, s.StoreMisses)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := runTrace(t, exCfg(), []isa.Inst{st(cold(0)), membar(), ld(cold(1))})
	if s.EPI() <= 0 {
		t.Error("EPI should be positive")
	}
	if s.OffChipCPI(500) <= 0 {
		t.Error("OffChipCPI should be positive")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	var zero Stats
	if zero.EPI() != 0 || zero.MLP() != 0 || zero.StoreMLP() != 0 ||
		zero.OffChipCPI(500) != 0 || zero.OverlappedStoreFraction() != 0 ||
		zero.TermFraction(TermSBFull) != 0 || zero.MLPJointFraction(1, 0) != 0 {
		t.Error("zero Stats helpers should return 0")
	}
}

func TestTermCondString(t *testing.T) {
	if TermSQSBFull.String() != "store queue + store buffer full" {
		t.Errorf("TermSQSBFull = %q", TermSQSBFull.String())
	}
	if TermCond(99).String() != "term(99)" {
		t.Errorf("unknown term = %q", TermCond(99).String())
	}
}
