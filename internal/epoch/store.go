package epoch

import (
	"storemlp/internal/isa"
	"storemlp/internal/smac"
	"storemlp/internal/uarch"
)

// commitStore models the life of a store after its address is generated
// at epoch x: store-buffer residence was already accounted at dispatch;
// here the store retires (entering the store queue, possibly coalescing
// into an existing entry), and commits into the L2 under the consistency
// model's ordering rules, with store prefetching, the SMAC and scout
// store prefetches applied. It returns the store's retire epoch and its
// retire-influence tag.
func (e *Engine) commitStore(in isa.Inst, idx, x int64, measuring, shared bool) (int64, uint8) {
	retireEpoch := maxi(e.lastRetire, x)
	tag := tagPlain

	if e.cfg.PerfectStores {
		// Stores never stall: update cache state for fidelity, charge
		// nothing, ignore queues.
		e.hier.Store(in.Addr, shared)
		return retireEpoch, tag
	}

	// ---- store coalescing (§3.3.1) ----
	gran := e.cfg.CoalesceBytes
	var alignAddr uint64
	if gran > 0 {
		alignAddr = in.Addr &^ uint64(gran-1)
		if e.cfg.Model.InOrderCommit() {
			// PC: only consecutive stores coalesce — the previous store
			// must still be in the store queue.
			if e.coalValid && e.coalAddr == alignAddr && e.coalDone > retireEpoch {
				return retireEpoch, tag
			}
		} else if done, ok := e.coalWC[alignAddr]; ok {
			// WC: any eligible (uncommitted) store queue entry.
			if done > retireEpoch {
				return retireEpoch, tag
			}
			delete(e.coalWC, alignAddr) // stale entry
		}
	}

	// ---- store queue admission ----
	if rq := e.sq.admit(retireEpoch); rq > retireEpoch {
		tag = tagSQ
		e.expose(idx, measuring)
		if e.cfg.HWS.TriggersOnStoreStall() {
			e.startScout(idx, retireEpoch, e.cfg.EffectiveScoutReach(), true)
		}
		retireEpoch = rq
	}

	// ---- commit ordering ----
	commitIssue := retireEpoch
	if e.cfg.Model.InOrderCommit() {
		if e.prevCommitDone > commitIssue {
			commitIssue = e.prevCommitDone
		}
	} else if e.lwsyncFloor > commitIssue {
		commitIssue = e.lwsyncFloor
	}

	// ---- L2 access ----
	res := e.hier.Store(in.Addr, shared)
	commitDone := commitIssue
	if res.OffChip {
		if e.sm.ProbeStore(in.Addr) == smac.Hit {
			// SMAC acceleration: ownership already held; the L2 buffers
			// the store data and merges the line in the background.
			if measuring {
				e.stats.SMACAccelerated++
			}
		} else {
			pf := commitIssue // Sp0: request issues at the SQ head, in order
			prefetched := false
			switch e.cfg.StorePrefetch {
			case uarch.Sp0:
				// No prefetch: the ownership request issues at the store
				// queue head (pf stays commitIssue).
			case uarch.Sp1:
				pf = retireEpoch
				prefetched = true
			case uarch.Sp2:
				pf = x
				prefetched = true
			default:
				panic("epoch: undefined store prefetch mode " + e.cfg.StorePrefetch.String())
			}
			if e.scoutStores && e.scoutActive(idx) && pf > e.scoutEpoch &&
				e.regReady[in.Src2] <= e.scoutEpoch {
				// Scout-mode store prefetch (HWS1/HWS2) or
				// prefetch-past-serializing.
				pf = e.scoutEpoch
				prefetched = true
			}
			if prefetched {
				// A prefetch-for-write request reaches the L2 in addition
				// to the eventual commit — the bandwidth cost the SMAC is
				// designed to avoid (§3.3.3).
				e.hier.Stats.L2PrefetchReqs++
			}
			e.chargeStore(pf, idx, measuring)
			if pf+1 > commitDone {
				commitDone = pf + 1 // wait for ownership to arrive
			}
		}
	}

	e.sq.push(commitDone)
	if e.cfg.Model.InOrderCommit() {
		e.prevCommitDone = commitDone
	}
	if commitDone > e.maxCommitDone {
		e.maxCommitDone = commitDone
	}

	// ---- coalescing bookkeeping ----
	if gran > 0 {
		if e.cfg.Model.InOrderCommit() {
			e.coalAddr, e.coalDone, e.coalValid = alignAddr, commitDone, true
		} else {
			if len(e.coalWC) > 4*e.cfg.StoreQueue+64 {
				for a, done := range e.coalWC {
					if done <= retireEpoch {
						delete(e.coalWC, a)
					}
				}
			}
			e.coalWC[alignAddr] = commitDone
		}
	}
	return retireEpoch, tag
}
