package epoch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(3)
	// Initially all slots free at epoch 0.
	if v, tag := r.oldest(); v != 0 || tag != tagPlain {
		t.Fatalf("initial oldest = %d/%d", v, tag)
	}
	r.push(5, tagSQ)
	r.push(6, tagLoad)
	r.push(7, tagPlain)
	if v, tag := r.oldest(); v != 5 || tag != tagSQ {
		t.Fatalf("oldest after fill = %d/%d", v, tag)
	}
	r.push(8, tagPlain)
	if v, tag := r.oldest(); v != 6 || tag != tagLoad {
		t.Fatalf("oldest after wrap = %d/%d", v, tag)
	}
}

func TestOccupancyUnbounded(t *testing.T) {
	o := newOccupancy(0)
	if got := o.admit(7); got != 7 {
		t.Errorf("unbounded admit = %d", got)
	}
	o.push(100) // no-op
	if got := o.admit(3); got != 3 {
		t.Errorf("unbounded admit after push = %d", got)
	}
}

func TestOccupancyAdmit(t *testing.T) {
	o := newOccupancy(2)
	if got := o.admit(0); got != 0 {
		t.Fatalf("admit empty = %d", got)
	}
	o.push(5)
	if got := o.admit(0); got != 0 {
		t.Fatalf("admit 1-of-2 = %d", got)
	}
	o.push(3)
	// Full; earliest free is 3.
	if got := o.admit(1); got != 3 {
		t.Fatalf("admit full = %d, want 3", got)
	}
	o.push(9)
	// Occupied by {5, 9}; next admit at 2 must wait for 5.
	if got := o.admit(2); got != 5 {
		t.Fatalf("second wait = %d, want 5", got)
	}
	o.push(6)
	// {9, 6}: admission at 10 frees both.
	if got := o.admit(10); got != 10 {
		t.Fatalf("late admit = %d, want 10", got)
	}
}

// Property: admit result is always >= the requested epoch and the
// structure never holds more than cap entries with free epochs greater
// than the last admit time.
func TestOccupancyProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		o := newOccupancy(4)
		var now int64
		for i := 0; i < int(n); i++ {
			req := now + int64(rng.Intn(3))
			got := o.admit(req)
			if got < req {
				return false
			}
			o.push(got + int64(rng.Intn(5)))
			now = got
			if o.len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
