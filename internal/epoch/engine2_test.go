package epoch

// Behavioral tests beyond the paper's worked examples: structural
// limits, weak-consistency commit semantics, scout window mechanics,
// coherence interaction, and accounting invariants.

import (
	"testing"
	"testing/quick"

	"storemlp/internal/coherence"
	"storemlp/internal/consistency"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
)

// TestIssueWindowLimit: with a tiny issue window, instructions stuck
// behind a missing load's dependents throttle dispatch.
func TestIssueWindowLimit(t *testing.T) {
	cfg := exCfg()
	cfg.IssueWindow = 4
	cfg.ROB = 64
	// A missing load, then dependents filling the issue window, then an
	// independent missing load. The IW (not the ROB) forces the second
	// load into a later epoch.
	first := ld(cold(0))
	first.Dst = 5
	insts := []isa.Inst{first}
	for i := 0; i < 8; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpALU, PC: hotPC, Dst: 6, Src1: 5})
	}
	insts = append(insts, ld(cold(1)))
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2 (IW-limited)", s.Epochs)
	}
	// With a large issue window the second load overlaps the first.
	cfg.IssueWindow = 32
	s = runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 (IW no longer binding)", s.Epochs)
	}
}

// TestLoadBufferLimit: loads occupy the load buffer from dispatch to
// retire; a full buffer delays later loads.
func TestLoadBufferLimit(t *testing.T) {
	cfg := exCfg()
	cfg.LoadBuffer = 2
	insts := []isa.Inst{
		ld(cold(0)), // missing: retires next epoch
		ld(hot(0)),  // hit but retires behind the miss
		ld(hot(1)),  // needs a load-buffer slot -> waits
		ld(cold(1)), // also delayed by the buffer
	}
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("LB=2: Epochs = %d, want 2", s.Epochs)
	}
	cfg.LoadBuffer = 64
	s = runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("LB=64: Epochs = %d, want 1", s.Epochs)
	}
}

// TestROBLimit: a missing load at the ROB head lets only ROB-many more
// instructions dispatch.
func TestROBLimit(t *testing.T) {
	cfg := exCfg()
	cfg.ROB = 8
	var insts []isa.Inst
	insts = append(insts, ld(cold(0)))
	for i := 0; i < 20; i++ {
		insts = append(insts, alu())
	}
	insts = append(insts, ld(cold(1)))
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("ROB=8: Epochs = %d, want 2", s.Epochs)
	}
	cfg.ROB = 64
	s = runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("ROB=64: Epochs = %d, want 1", s.Epochs)
	}
}

// TestWCLWSyncOrdersCommits: under WC, lwsync forces stores after the
// barrier to commit after stores before it — so a missing store before
// the barrier delays a missing store after it, serializing their epochs
// under Sp0.
func TestWCLWSyncOrdersCommits(t *testing.T) {
	cfg := exCfg()
	cfg.Model = consistency.WC
	withBarrier := []isa.Inst{
		st(cold(0)),
		{Op: isa.OpLWSync, PC: hotPC},
		st(cold(1)),
	}
	s := runTrace(t, cfg, withBarrier)
	if s.Epochs != 2 {
		t.Errorf("with lwsync: Epochs = %d, want 2 (ordered commits)", s.Epochs)
	}
	// Without the barrier both misses issue independently... under Sp0
	// the issue epoch is the commit epoch, which for WC has no ordering
	// dependence, so they overlap.
	without := []isa.Inst{st(cold(0)), st(cold(1))}
	s = runTrace(t, cfg, without)
	if s.Epochs != 1 {
		t.Errorf("without lwsync: Epochs = %d, want 1", s.Epochs)
	}
}

// TestWCStoreQueueReleasesOutOfOrder: hitting stores behind a missing
// store release their SQ entries immediately under WC, so the queue
// never backs up (Example 1's WC discussion).
func TestWCStoreQueueReleasesOutOfOrder(t *testing.T) {
	cfg := exCfg()
	cfg.Model = consistency.WC
	cfg.StoreQueue = 2
	var insts []isa.Inst
	insts = append(insts, st(cold(0)))
	for i := 0; i < 12; i++ {
		insts = append(insts, st(hot(i%8)))
	}
	insts = append(insts, ld(cold(1)))
	s := runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("WC: Epochs = %d, want 1 (no SQ backup)", s.Epochs)
	}
	if s.TermCounts[TermSQSBFull] != 0 {
		t.Errorf("WC should not hit SQ+SB-full: %v", s.TermCounts)
	}
}

// TestHWS0DoesNotPrefetchStores: scout in HWS0 mode prefetches loads and
// instructions only; store misses still serialize.
func TestHWS0DoesNotPrefetchStores(t *testing.T) {
	// Missing load triggers scout; two missing stores follow (Sp0).
	insts := []isa.Inst{ld(cold(0)), st(cold(1)), st(cold(2)), membar()}
	cfg := exCfg()
	cfg.HWS = uarch.HWS0
	s0 := runTrace(t, cfg, insts)
	cfg.HWS = uarch.HWS1
	s1 := runTrace(t, cfg, insts)
	if s1.Epochs >= s0.Epochs {
		t.Errorf("HWS1 (%d epochs) should beat HWS0 (%d) when stores miss",
			s1.Epochs, s0.Epochs)
	}
}

// TestScoutWindowExtends: overlapping scout triggers extend the window
// rather than truncating it.
func TestScoutWindowExtends(t *testing.T) {
	cfg := exCfg()
	cfg.HWS = uarch.HWS0
	cfg.ScoutReach = 30
	var insts []isa.Inst
	insts = append(insts, ld(cold(0))) // trigger 1
	for i := 0; i < 20; i++ {
		insts = append(insts, alu())
	}
	insts = append(insts, ld(cold(1))) // trigger 2 inside window: extends
	for i := 0; i < 20; i++ {
		insts = append(insts, alu())
	}
	// 41 instructions from trigger 1: outside its window but inside the
	// extension from trigger 2.
	insts = append(insts, ld(cold(2)))
	s := runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 (extended scout window)", s.Epochs)
	}
}

// TestCASAMissSerializes: a casa to a cold (unowned) line is itself an
// off-chip store miss and delays everything after it.
func TestCASAMissSerializes(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpCASA, PC: hotPC, Addr: cold(0), Size: 8, Dst: 1},
		ld(cold(1)),
	}
	s := runTrace(t, exCfg(), insts)
	if s.Epochs != 2 {
		t.Errorf("Epochs = %d, want 2", s.Epochs)
	}
	if s.StoreMisses != 1 {
		t.Errorf("StoreMisses = %d, want 1 (the casa)", s.StoreMisses)
	}
	// The atomic's miss is exposed by definition.
	if s.ExposedStores != 1 {
		t.Errorf("ExposedStores = %d, want 1", s.ExposedStores)
	}
}

// TestSharedStoreUpgradeMiss: a store to a Shared line needs a
// cross-chip ownership upgrade — an off-chip miss even though the line
// is resident.
func TestSharedStoreUpgradeMiss(t *testing.T) {
	cfg := exCfg()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Hierarchy().Fetch(hotPC)
	e.Hierarchy().Load(0x300000, true) // fills Shared
	insts := []isa.Inst{
		{Op: isa.OpStore, PC: hotPC, Addr: 0x300000, Size: 8, Flags: isa.FlagShared},
		membar(),
	}
	s, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	if s.StoreMisses != 1 {
		t.Errorf("StoreMisses = %d, want 1 (upgrade)", s.StoreMisses)
	}
	if s.Hierarchy.StoreUpgrades != 1 {
		t.Errorf("StoreUpgrades = %d, want 1", s.Hierarchy.StoreUpgrades)
	}
}

// TestTrafficDemotesLines: remote snoops invalidate local lines, turning
// later stores into misses.
func TestTrafficDemotesLines(t *testing.T) {
	spec := coherence.TrafficSpec{
		Regions:           []coherence.Region{{Base: 0x500000, Size: 64}},
		EventsPerKiloInst: 1000, // one snoop per instruction
		StoreFraction:     1,
		LineBytes:         64,
	}
	cfg := exCfg()
	e, err := New(cfg, WithTraffic(spec, 7))
	if err != nil {
		t.Fatal(err)
	}
	e.Hierarchy().Fetch(hotPC)
	e.Hierarchy().Store(0x500000, true) // owned before the run
	insts := []isa.Inst{
		alu(), alu(), // snoops arrive, invalidating 0x500000
		{Op: isa.OpStore, PC: hotPC, Addr: 0x500000, Size: 8, Flags: isa.FlagShared},
		membar(),
	}
	s, err := e.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	if s.Snoops == 0 {
		t.Fatal("no snoops delivered")
	}
	if s.StoreMisses != 1 {
		t.Errorf("StoreMisses = %d, want 1 (line stolen by remote node)", s.StoreMisses)
	}
}

// TestPrefetchTrafficCounting: Sp1 issues one prefetch-for-write per
// missing store; Sp0 issues none.
func TestPrefetchTrafficCounting(t *testing.T) {
	insts := []isa.Inst{st(cold(0)), st(cold(1)), membar()}
	cfg := exCfg()
	s := runTrace(t, cfg, insts) // Sp0
	if s.Hierarchy.L2PrefetchReqs != 0 {
		t.Errorf("Sp0 prefetch reqs = %d, want 0", s.Hierarchy.L2PrefetchReqs)
	}
	cfg.StorePrefetch = uarch.Sp1
	s = runTrace(t, cfg, insts)
	if s.Hierarchy.L2PrefetchReqs != 2 {
		t.Errorf("Sp1 prefetch reqs = %d, want 2", s.Hierarchy.L2PrefetchReqs)
	}
}

// TestPerfectStoresSkipsSerializerDrain: under perfect stores the
// serializer does not wait for store commits.
func TestPerfectStoresSkipsSerializerDrain(t *testing.T) {
	cfg := exCfg()
	cfg.PerfectStores = true
	insts := []isa.Inst{st(cold(0)), membar(), ld(cold(1))}
	s := runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 (no store drain)", s.Epochs)
	}
	if s.TermCounts[TermStoreSerialize] != 0 {
		t.Errorf("perfect stores should not record store-serialize: %v", s.TermCounts)
	}
}

// TestMispredictWithoutLoadDependence: a mispredicted branch whose
// source is ready resolves on-chip and terminates nothing.
func TestMispredictWithoutLoadDependence(t *testing.T) {
	insts := []isa.Inst{
		st(cold(0)),
		{Op: isa.OpBranch, PC: hotPC, Src1: 0, Flags: isa.FlagMispredict},
		ld(cold(1)),
	}
	s := runTrace(t, exCfg(), insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1 (branch resolves on-chip)", s.Epochs)
	}
	if s.TermCounts[TermMispredBranch] != 0 {
		t.Errorf("no mispred termination expected: %v", s.TermCounts)
	}
}

// TestStoreMLPDefinition: store MLP averages store misses over epochs
// with at least one store miss.
func TestStoreMLPDefinition(t *testing.T) {
	cfg := exCfg()
	cfg.StorePrefetch = uarch.Sp1
	cfg.StoreQueue = 8
	// Epoch 1: two overlapped store misses. Epoch 2 (after serializer):
	// one store miss. Store MLP = (2+1)/2 = 1.5.
	insts := []isa.Inst{
		st(cold(0)), st(cold(1)), membar(), st(cold(2)), membar(),
	}
	s := runTrace(t, cfg, insts)
	if got := s.StoreMLP(); got != 1.5 {
		t.Errorf("StoreMLP = %v, want 1.5", got)
	}
	if s.EpochsWithStore != 2 {
		t.Errorf("EpochsWithStore = %d, want 2", s.EpochsWithStore)
	}
}

// TestEPIAccountsDistinctEpochs: misses charged to the same epoch count
// it once.
func TestEPIAccountsDistinctEpochs(t *testing.T) {
	cfg := exCfg()
	cfg.StorePrefetch = uarch.Sp2
	insts := []isa.Inst{st(cold(0)), st(cold(1)), ld(cold(2)), ld(cold(3))}
	s := runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("Epochs = %d, want 1", s.Epochs)
	}
	if s.Misses() != 4 {
		t.Errorf("Misses = %d, want 4", s.Misses())
	}
	if got := s.MLP(); got != 4 {
		t.Errorf("MLP = %v, want 4", got)
	}
}

// TestUnflaggedCASAUnderWC: an atomic that is not part of a detected
// lock still serializes the pipeline, but under WC it does not drain the
// store queue.
func TestUnflaggedCASAUnderWC(t *testing.T) {
	insts := []isa.Inst{
		st(cold(0)),
		{Op: isa.OpCASA, PC: hotPC, Addr: lockA, Size: 8, Dst: 1},
		ld(cold(1)),
	}
	pc := runTrace(t, exCfg(), insts)
	wcCfg := exCfg()
	wcCfg.Model = consistency.WC
	wc := runTrace(t, wcCfg, insts)
	if pc.Epochs != 2 {
		t.Errorf("PC Epochs = %d, want 2 (casa drains the store)", pc.Epochs)
	}
	if wc.Epochs != 1 {
		t.Errorf("WC Epochs = %d, want 1 (no store drain)", wc.Epochs)
	}
}

// Property: total charged misses never exceed one per instruction plus
// one fetch miss per instruction, and stats are internally consistent.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		cnt := int(n)%32 + 4
		var insts []isa.Inst
		for i := 0; i < cnt; i++ {
			switch seed % 4 {
			case 0:
				insts = append(insts, st(cold(i)))
			case 1:
				insts = append(insts, ld(cold(i)))
			case 2:
				insts = append(insts, alu())
			default:
				insts = append(insts, membar())
			}
			seed = seed*1103515245 + 12345
		}
		s := runTrace(&testing.T{}, exCfg(), insts)
		if s.Insts != int64(cnt) {
			return false
		}
		if s.Misses() > 2*int64(cnt) {
			return false
		}
		if s.Epochs > s.Misses() {
			return false
		}
		if s.EpochsWithStore > s.Epochs {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFetchBufferLimit: the fetch buffer bounds fetched-but-undispatched
// instructions; with a stalled dispatch (missing load + tiny ROB) a tiny
// fetch buffer delays fetch of later instructions — visible as later
// issue of an independent instruction fetch miss.
func TestFetchBufferLimit(t *testing.T) {
	cfg := exCfg()
	cfg.ROB = 4
	cfg.FetchBuffer = 4
	var insts []isa.Inst
	insts = append(insts, ld(cold(0)))
	for i := 0; i < 12; i++ {
		insts = append(insts, alu())
	}
	// This instruction's fetch misses; with small FB+ROB it cannot even
	// be fetched during the first epoch.
	insts = append(insts, isa.Inst{Op: isa.OpALU, PC: coldPC})
	s := runTrace(t, cfg, insts)
	if s.Epochs != 2 {
		t.Errorf("FB=4: Epochs = %d, want 2", s.Epochs)
	}
	cfg.FetchBuffer = 32
	cfg.ROB = 64
	s = runTrace(t, cfg, insts)
	if s.Epochs != 1 {
		t.Errorf("FB=32: Epochs = %d, want 1 (fetch runs ahead)", s.Epochs)
	}
}
