package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics registry: exactly the instrument kinds the
// daemon and CLIs need — counters, integer and float gauges, and
// fixed-bucket histograms — with atomic hot-path updates, rendered in
// the Prometheus text exposition format (WriteTo/Handler) and as
// expvar-style JSON (WriteJSON/JSONHandler, see json.go). It absorbs
// and replaces the bespoke registry that used to live in
// internal/server/promtext.go.

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64 gauge (ratios, rates) stored through
// math.Float64bits so updates stay a single atomic word write.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram observes float64 samples into cumulative buckets. It is
// usable standalone (NewHistogram) for streaming quantile estimates —
// cmd/mlpload feeds every request latency through one — or registered
// in a Registry for /metrics exposure.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // guarded by mu; upper bounds, ascending; +Inf implied
	counts []int64   // guarded by mu; len(bounds)+1
	sum    float64   // guarded by mu
	count  int64     // guarded by mu
}

// NewHistogram returns a standalone histogram with the given upper
// bounds (ascending, non-empty; the +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile produces. Samples in the
// +Inf bucket clamp to the largest finite bound; an empty histogram
// reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		if c == 0 {
			return upper
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are latency buckets in seconds, spanning cache hits
// (microseconds) through multi-second cold simulations.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ExpBuckets returns count exponentially spaced bucket bounds starting
// at min and multiplying by factor — the shape latency distributions
// want (min > 0, factor > 1, count ≥ 1).
func ExpBuckets(min, factor float64, count int) []float64 {
	if min <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs min > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	v := min
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

func (k metricKind) promType() string {
	return [...]string{"counter", "gauge", "gauge", "histogram"}[k]
}

type metric struct {
	name   string // base name, no labels
	help   string
	kind   metricKind
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	f      *FloatGauge
	h      *Histogram
}

// Registry is a set of named instruments that renders itself in the
// Prometheus text exposition format and as expvar-style JSON.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric          // guarded by mu
	byKey   map[string]*metric // guarded by mu
	// onScrape hooks run before each render, for gauges derived from
	// ambient state (uptime, cache size, pool saturation).
	onScrape []func() // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// labelString renders k,v pairs as a stable label block.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

func (r *Registry) register(name, help string, kind metricKind, kv []string) *metric {
	labels := labelString(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byKey[key]; ok {
		if existing.kind != kind {
			panic("obs: " + key + " re-registered with a different kind")
		}
		return existing
	}
	mt := &metric{name: name, help: help, kind: kind, labels: labels}
	r.metrics = append(r.metrics, mt)
	r.byKey[key] = mt
	return mt
}

// Counter registers (or returns) a counter. kv are label key/value
// pairs, e.g. Counter("requests_total", "...", "endpoint", "run").
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	mt := r.register(name, help, kindCounter, kv)
	if mt.c == nil {
		mt.c = &Counter{}
	}
	return mt.c
}

// Gauge registers (or returns) an integer gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	mt := r.register(name, help, kindGauge, kv)
	if mt.g == nil {
		mt.g = &Gauge{}
	}
	return mt.g
}

// FloatGauge registers (or returns) a float gauge.
func (r *Registry) FloatGauge(name, help string, kv ...string) *FloatGauge {
	mt := r.register(name, help, kindFloatGauge, kv)
	if mt.f == nil {
		mt.f = &FloatGauge{}
	}
	return mt.f
}

// Histogram registers (or returns) a histogram with the given upper
// bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	mt := r.register(name, help, kindHistogram, kv)
	if mt.h == nil {
		mt.h = NewHistogram(bounds)
	}
	return mt.h
}

// Info registers an info-style series: a gauge pinned at 1 whose
// payload is its labels (build version, config digest). The
// conventional name ends in _info.
func (r *Registry) Info(name, help string, kv ...string) {
	r.Gauge(name, help, kv...).Set(1)
}

// OnScrape registers a hook run before every render.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// snapshot copies out the hook and metric lists and runs the hooks, so
// rendering never holds the registry lock across user code.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	ms := append([]*metric{}, r.metrics...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	return ms
}

// WriteTo renders the registry in Prometheus text format, grouped by
// metric name with HELP/TYPE headers, names and label sets sorted.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	ms := r.snapshot()
	var b strings.Builder
	lastName := ""
	for _, mt := range ms {
		if mt.name != lastName {
			fmt.Fprintf(&b, "# HELP %s %s\n", mt.name, mt.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", mt.name, mt.kind.promType())
			lastName = mt.name
		}
		switch mt.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", mt.name, mt.labels, mt.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", mt.name, mt.labels, mt.g.Value())
		case kindFloatGauge:
			fmt.Fprintf(&b, "%s%s %s\n", mt.name, mt.labels, formatBound(mt.f.Value()))
		case kindHistogram:
			mt.h.mu.Lock()
			cum := int64(0)
			for i, bound := range mt.h.bounds {
				cum += mt.h.counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", mt.name, mergeLabels(mt.labels, "le", formatBound(bound)), cum)
			}
			cum += mt.h.counts[len(mt.h.bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", mt.name, mergeLabels(mt.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %g\n", mt.name, mt.labels, mt.h.sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", mt.name, mt.labels, mt.h.count)
			mt.h.mu.Unlock()
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// mergeLabels appends one extra label pair to a rendered label block.
func mergeLabels(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Handler serves the registry over HTTP in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := r.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
