package obs

import (
	"encoding/json"
	"io"
	"net/http"
)

// Expvar-style JSON rendering of the registry: one flat object keyed
// by "name{labels}", scalar instruments as numbers and histograms as
// {count, sum, buckets} objects. The same registry state backs both
// this and the Prometheus text format, so a scrape and a JSON fetch
// never disagree about what exists.

// histJSON is the JSON shape of one histogram.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound -> cumulative count
}

// WriteJSON renders the registry as a single JSON object. Keys are
// sorted (encoding/json sorts map keys), so output is stable across
// renders of the same state.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.snapshot()
	out := make(map[string]any, len(ms))
	for _, mt := range ms {
		key := mt.name + mt.labels
		switch mt.kind {
		case kindCounter:
			out[key] = mt.c.Value()
		case kindGauge:
			out[key] = mt.g.Value()
		case kindFloatGauge:
			out[key] = mt.f.Value()
		case kindHistogram:
			mt.h.mu.Lock()
			buckets := make(map[string]int64, len(mt.h.bounds)+1)
			cum := int64(0)
			for i, bound := range mt.h.bounds {
				cum += mt.h.counts[i]
				buckets[formatBound(bound)] = cum
			}
			cum += mt.h.counts[len(mt.h.bounds)]
			buckets["+Inf"] = cum
			out[key] = histJSON{Count: mt.h.count, Sum: mt.h.sum, Buckets: buckets}
			mt.h.mu.Unlock()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// JSONHandler serves the registry as JSON (the /debug/obs/vars view).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
