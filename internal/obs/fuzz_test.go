package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseExposition hammers the Prometheus text-format parser with
// arbitrary input: whatever the bytes, the parser must return cleanly —
// families or an error — without panicking, looping, or accepting an
// exposition that then trips ValidateExposition's internal invariants.
// A real registry render seeds the corpus so the fuzzer starts from the
// grammar's happy path and mutates outward.
func FuzzParseExposition(f *testing.F) {
	// Corpus seed 1: a full registry render — counter, gauge, float
	// gauge, histogram with labels, and an info metric.
	reg := NewRegistry()
	reg.Counter("fuzz_requests_total", "Requests.", "mode", "warm").Add(42)
	reg.Gauge("fuzz_inflight", "In-flight requests.").Set(3)
	reg.FloatGauge("fuzz_ratio", "A ratio.").Set(0.25)
	h := reg.Histogram("fuzz_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, "path", "/run")
	for _, v := range []float64{0.0004, 0.02, 0.5} {
		h.Observe(v)
	}
	reg.Info("fuzz_build_info", "Build info.", "version", "v1.2.3")
	var render bytes.Buffer
	if _, err := reg.WriteTo(&render); err != nil {
		f.Fatal(err)
	}
	f.Add(render.Bytes())

	// Grammar corners: escapes, +Inf/NaN values, empty label blocks,
	// near-miss headers, and truncations.
	f.Add([]byte("# HELP m Help text.\n# TYPE m counter\nm 1\n"))
	f.Add([]byte("# HELP m H.\n# TYPE m gauge\nm{a=\"b\\\\c\\\"d\\ne\"} -2.5e3\n"))
	f.Add([]byte("# HELP m H.\n# TYPE m untyped\nm{} +Inf\nm2 NaN\n"))
	f.Add([]byte("# just a comment\n\n# HELP\n# TYPE m\n"))
	f.Add([]byte("m_no_header 1\n"))
	f.Add([]byte("# HELP m H.\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_sum 1\nm_count 1\n"))
	f.Add([]byte("# HELP m H.\n# TYPE m counter\nm{a=\"unterminated\n"))
	f.Add([]byte("# HELP m H.\n# TYPE m counter\nm 1 1700000000\n"))
	f.Add([]byte(strings.Repeat("# HELP", 1000)))
	f.Add([]byte{0x00, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		fams, err := ParseExposition(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we got here
		}
		// Accepted expositions must honor the parser's own postconditions:
		// well-formed names, declared types only, no empty family objects.
		seen := map[string]bool{}
		for _, fam := range fams {
			if fam.Name == "" {
				t.Fatalf("parser accepted a family with an empty name: %+v", fam)
			}
			if seen[fam.Name] {
				t.Fatalf("parser emitted duplicate family %q", fam.Name)
			}
			seen[fam.Name] = true
			switch fam.Type {
			case "", "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("family %q has undeclared type %q", fam.Name, fam.Type)
			}
			for _, s := range fam.Samples {
				if s.Name == "" {
					t.Fatalf("family %q holds a sample with an empty name", fam.Name)
				}
			}
		}
		// ValidateExposition layers semantics on top; it may reject, but
		// must not panic on anything the parser let through.
		_, _ = ValidateExposition(bytes.NewReader(data))
	})
}
