package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.", "endpoint", "run")
	c.Add(3)
	r.Counter("test_requests_total", "Requests.", "endpoint", "sweep").Inc()
	g := r.Gauge("test_inflight", "In flight.")
	g.Set(2)
	f := r.FloatGauge("test_ratio", "A ratio.")
	f.Set(0.75)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Info("test_build_info", "Build info.", "version", "go1.x")

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{endpoint="run"} 3`,
		`test_requests_total{endpoint="sweep"} 1`,
		"# TYPE test_inflight gauge",
		"test_inflight 2",
		"# TYPE test_ratio gauge",
		"test_ratio 0.75",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_build_info{version="go1.x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	// The HELP header for a family must precede its samples exactly once.
	if strings.Count(out, "# HELP test_requests_total") != 1 {
		t.Errorf("HELP emitted more than once:\n%s", out)
	}

	// Our own renderer must satisfy our own validator.
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("self-render fails validation: %v", err)
	}
}

func TestRegistryReRegisterSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Error("re-registering the same counter returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestRegistryOnScrape(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("derived", "Derived.")
	n := 0
	r.OnScrape(func() { n++; g.Set(int64(n)) })
	var b strings.Builder
	r.WriteTo(&b)
	r.WriteTo(&b)
	if n != 2 {
		t.Errorf("scrape hook ran %d times, want 2", n)
	}
	if !strings.Contains(b.String(), "derived 2") {
		t.Errorf("derived gauge not updated by hook:\n%s", b.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10)) // 1,2,4,...,512
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 32 || p50 > 64 {
		t.Errorf("p50 = %v, want within (32, 64]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64 || p99 > 128 {
		t.Errorf("p99 = %v, want within (64, 128]", p99)
	}
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Errorf("q0 = %v, want within [0, 1]", q)
	}
	// Interpolation: uniform samples in one bucket should place the
	// median near the bucket midpoint.
	u := NewHistogram([]float64{10, 20})
	for i := 0; i < 10; i++ {
		u.Observe(15)
	}
	if got := u.Quantile(0.5); got < 10 || got > 20 {
		t.Errorf("median of one-bucket histogram = %v, want within [10, 20]", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 2", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(b) != len(want) {
		t.Fatalf("got %d bounds, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bound[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "J.").Add(7)
	r.FloatGauge("j_ratio", "R.").Set(0.5)
	h := r.Histogram("j_seconds", "S.", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	srv := httptest.NewServer(r.JSONHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["j_total"]) != "7" {
		t.Errorf("j_total = %s, want 7", doc["j_total"])
	}
	if string(doc["j_ratio"]) != "0.5" {
		t.Errorf("j_ratio = %s, want 0.5", doc["j_ratio"])
	}
	var hd histJSON
	if err := json.Unmarshal(doc["j_seconds"], &hd); err != nil {
		t.Fatal(err)
	}
	if hd.Count != 2 || hd.Buckets["1"] != 1 || hd.Buckets["+Inf"] != 2 {
		t.Errorf("histogram JSON = %+v", hd)
	}
}

func TestPromHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("ct_total", "C.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain prefix", ct)
	}
	if _, err := ValidateExposition(resp.Body); err != nil {
		t.Errorf("served exposition invalid: %v", err)
	}
}
