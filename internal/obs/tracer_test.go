package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(4)
	run := tr.NewRun()
	start := Now()
	tr.Complete(EvSimulate, run, start, 100)
	tr.Point(EvMeasureStart, run, 42)
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvSimulate || evs[0].Arg != 100 || evs[0].Run != run {
		t.Errorf("span event = %+v", evs[0])
	}
	if evs[0].Dur < 0 {
		t.Errorf("span duration negative: %d", evs[0].Dur)
	}
	if evs[1].Kind != EvMeasureStart || evs[1].Dur != 0 {
		t.Errorf("point event = %+v", evs[1])
	}
	if tr.Total() != 2 {
		t.Errorf("Total = %d, want 2", tr.Total())
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4) // rounds to capacity 4
	if tr.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", tr.Cap())
	}
	for i := 0; i < 10; i++ {
		tr.Point(EvBatch, 1, int64(i))
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Arg != want {
			t.Errorf("event[%d].Arg = %d, want %d (oldest-first, newest retained)", i, ev.Arg, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

func TestTracerRoundsCapacity(t *testing.T) {
	if got := NewTracer(5).Cap(); got != 8 {
		t.Errorf("Cap(5) = %d, want 8", got)
	}
	if NewTracer(0) != nil || NewTracer(-1) != nil {
		t.Error("non-positive capacity should yield the nil (disabled) tracer")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.NewRun() != 0 {
		t.Error("nil NewRun != 0")
	}
	tr.Complete(EvBatch, 0, Now(), 1) // must not panic
	tr.Point(EvFold, 0, 1)
	if tr.Total() != 0 || tr.Cap() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer should report empty state")
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Errorf("nil trace not empty: %s", b.String())
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(16)
	run := tr.NewRun()
	start := Now()
	tr.Complete(EvBatch, run, start, 4096)
	tr.Point(EvWindowGrow, run, 2048)

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Tid  uint32           `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span.Name != "batch" || span.Ph != "X" || span.Args["arg"] != 4096 || span.Tid != run {
		t.Errorf("span = %+v", span)
	}
	if inst := doc.TraceEvents[1]; inst.Name != "window_grow" || inst.Ph != "i" {
		t.Errorf("instant = %+v", inst)
	}
	// Timestamps are rebased: the oldest event starts at ts 0.
	if doc.TraceEvents[0].Ts != 0 {
		t.Errorf("oldest ts = %v, want 0", doc.TraceEvents[0].Ts)
	}
}

func TestEventKindString(t *testing.T) {
	for k := EventKind(0); k < evKindCount; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
