package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer collects ticker output across goroutines.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestFmtCount(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{7, "7"}, {999, "999"}, {1_500, "1.5k"}, {3_000_000, "3.0M"}, {2_500_000_000, "2.5G"},
	} {
		if got := fmtCount(tc.n); got != tc.want {
			t.Errorf("fmtCount(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestTickerLineShapes(t *testing.T) {
	b := NewBoard()
	if got := tickerLine(b, 0); !strings.Contains(got, "0 runs done") {
		t.Errorf("idle line %q", got)
	}

	p := b.Start("database PC", 2_000_000)
	p.Publish(500_000, 200_000, 1000, 2000, 500)
	one := tickerLine(b, 1_000_000)
	for _, want := range []string{"database PC", "500.0k/2.0M", "(25%)", "insts/s", "MLP 2.50"} {
		if !strings.Contains(one, want) {
			t.Errorf("single-run line missing %q: %s", want, one)
		}
	}

	b.Start("tpcw PC", 1_000_000)
	multi := tickerLine(b, 0)
	if !strings.Contains(multi, "2 active") {
		t.Errorf("multi-run line %q", multi)
	}

	b.Finish(p)
}

func TestStartTickerWritesAndStops(t *testing.T) {
	b := NewBoard()
	p := b.Start("database PC", 1_000_000)
	p.Publish(100_000, 50_000, 100, 300, 100)

	var buf lockedBuffer
	stop := StartTicker(&buf, b, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), "database PC") {
		if time.Now().After(deadline) {
			t.Fatal("ticker never rendered the active run")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	b.Finish(p)

	if !strings.Contains(buf.String(), "\r") {
		t.Error("ticker should rewrite in place with carriage returns")
	}
}

func TestStartTickerDisabled(t *testing.T) {
	var buf lockedBuffer
	StartTicker(&buf, nil, time.Millisecond)()
	StartTicker(&buf, NewBoard(), 0)()
	time.Sleep(10 * time.Millisecond)
	if buf.String() != "" {
		t.Errorf("disabled ticker wrote %q", buf.String())
	}
}
