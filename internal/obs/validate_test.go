package obs

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP srv_requests_total Requests served.
# TYPE srv_requests_total counter
srv_requests_total{endpoint="run",status="ok"} 12
srv_requests_total{endpoint="sweep",status="ok"} 3
# HELP srv_inflight Requests in flight.
# TYPE srv_inflight gauge
srv_inflight 2
# HELP srv_seconds Request latency.
# TYPE srv_seconds histogram
srv_seconds_bucket{le="0.1"} 5
srv_seconds_bucket{le="1"} 9
srv_seconds_bucket{le="+Inf"} 10
srv_seconds_sum 4.2
srv_seconds_count 10
`

func TestValidateExpositionGood(t *testing.T) {
	fams, err := ValidateExposition(strings.NewReader(goodExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if fams[0].Name != "srv_requests_total" || fams[0].Type != "counter" || len(fams[0].Samples) != 2 {
		t.Errorf("family 0 = %+v", fams[0])
	}
	s := fams[0].Samples[0]
	if s.Labels["endpoint"] != "run" || s.Value != 12 {
		t.Errorf("sample = %+v", s)
	}
	if fams[2].Type != "histogram" || len(fams[2].Samples) != 5 {
		t.Errorf("histogram family = %+v", fams[2])
	}
}

func TestValidateExpositionLabelEscapes(t *testing.T) {
	in := "# HELP esc_info Escapes.\n# TYPE esc_info gauge\n" +
		`esc_info{path="a\"b\\c\nd"} 1` + "\n"
	fams, err := ValidateExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["path"]; got != "a\"b\\c\nd" {
		t.Errorf("unescaped label = %q", got)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"sample before header", "x_total 1\n", "precedes its # HELP"},
		{"type without help", "# TYPE x_total counter\n", "without preceding # HELP"},
		{"help without type", "# HELP x_total X.\nx_total 1\n", "# HELP without # TYPE"},
		{"duplicate help", "# HELP x X.\n# TYPE x gauge\nx 1\n# HELP x X.\n", "duplicate # HELP"},
		{"bad type", "# HELP x X.\n# TYPE x countr\n", "invalid type"},
		{"bad metric name", "# HELP 0x X.\n# TYPE 0x gauge\n", "invalid metric name"},
		{"bad value", "# HELP x X.\n# TYPE x gauge\nx nope\n", "unparseable value"},
		{"negative counter", "# HELP x_total X.\n# TYPE x_total counter\nx_total -1\n", "invalid value"},
		{"split family", "# HELP x X.\n# TYPE x gauge\nx{a=\"1\"} 1\n# HELP y Y.\n# TYPE y gauge\ny 1\nx{a=\"2\"} 1\n", "not contiguous"},
		{"unterminated labels", "# HELP x X.\n# TYPE x gauge\nx{a=\"b\" 1\n", "unterminated"},
		{"bad label name", "# HELP x X.\n# TYPE x gauge\nx{0a=\"b\"} 1\n", "invalid label name"},
		{"duplicate label", "# HELP x X.\n# TYPE x gauge\nx{a=\"1\",a=\"2\"} 1\n", "duplicate label"},
		{"histogram missing inf", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"histogram non-cumulative", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"histogram le out of order", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "not ascending"},
		{"histogram count mismatch", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "!= _count"},
		{"histogram missing sum", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "needs _bucket, _sum and _count"},
		{"no samples", "# HELP x X.\n# TYPE x gauge\n", "no samples"},
		{"timestamped sample", "# HELP x X.\n# TYPE x gauge\nx 1 1700000000\n", "trailing fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateExposition(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted invalid exposition:\n%s", tc.in)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateCountersMonotone is the cross-scrape pattern the server
// test uses: parse two expositions and require counters not to move
// backwards.
func TestValidateCountersMonotone(t *testing.T) {
	first, err := ValidateExposition(strings.NewReader(goodExposition))
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(goodExposition, `srv_requests_total{endpoint="run",status="ok"} 12`,
		`srv_requests_total{endpoint="run",status="ok"} 15`, 1)
	second, err := ValidateExposition(strings.NewReader(bumped))
	if err != nil {
		t.Fatal(err)
	}
	if err := CountersMonotone(first, second); err != nil {
		t.Errorf("monotone counters flagged: %v", err)
	}
	if err := CountersMonotone(second, first); err == nil {
		t.Error("decreasing counter not flagged")
	}
}
