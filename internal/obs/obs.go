// Package obs is the repository's unified observability layer: a
// metrics registry rendered in the Prometheus text exposition format
// and as expvar-style JSON, a fixed-ring run tracer exportable as
// Chrome trace_event JSON, and live per-run progress snapshots.
//
// The paper's whole evidentiary chain is instrumentation — EPI, MLP
// and the termination-condition distributions are MLPsim's outputs —
// and the runtime hosting the simulator deserves the same visibility:
// long engine runs publish instructions-retired / epochs-closed /
// running-MLP while they execute, the serving pipeline exposes
// saturation and hit-ratio series, and per-run phase timings land in a
// trace a browser can open.
//
// Everything here is stdlib-only (the module pins zero external
// dependencies) and nil-safe: a nil *Tracer, *Board or *Progress
// accepts every call as a no-op, so instrumented code needs exactly
// one pointer check on its hot path and no configuration plumbing.
// The engine-facing fast paths (Tracer.Complete/Point,
// Progress.Publish) are annotated //storemlp:noalloc and gated by the
// hotpath analyzer, so "tracing off costs nothing" is a CI invariant,
// not a benchmark observation.
package obs

import (
	"context"
	"time"
)

// Obs bundles the observability sinks a run may publish into. Either
// field may be nil; the zero value disables everything.
type Obs struct {
	Tracer *Tracer
	Board  *Board
}

// ctxKey is the private context key for an *Obs.
type ctxKey struct{}

// NewContext returns a context carrying o. Runs started under the
// returned context (through sim.RunContext, the pool, or the serving
// layer) attach their tracer spans and progress snapshots to o.
func NewContext(ctx context.Context, o *Obs) context.Context {
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext returns the *Obs carried by ctx, or nil when the context
// carries none (observability disabled).
func FromContext(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(ctxKey{}).(*Obs)
	return o
}

// Now returns the current time in nanoseconds since the Unix epoch —
// the shared timebase for tracer events and progress snapshots.
func Now() int64 { return time.Now().UnixNano() }
