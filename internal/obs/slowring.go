package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// SlowRing retains the slowest-N completed request traces. Eviction
// policy: while fewer than N entries are held, every finished trace is
// admitted; once full, a new trace replaces the current fastest entry
// only if it is strictly slower — so the ring converges on the N
// slowest requests seen, not the N most recent. A trace whose ID
// collides with a retained one replaces it (IDs are unique in
// practice; the rule keeps Get unambiguous).
//
// Like every obs sink, a nil *SlowRing accepts all calls as no-ops and
// serves empty-but-valid endpoint responses, so handler wiring never
// depends on configuration.
type SlowRing struct {
	mu      sync.Mutex
	max     int
	entries []*ReqTrace // guarded by mu; unordered
}

// NewSlowRing returns a ring retaining the slowest max requests;
// max <= 0 returns nil — the disabled ring.
func NewSlowRing(max int) *SlowRing {
	if max <= 0 {
		return nil
	}
	return &SlowRing{max: max, entries: make([]*ReqTrace, 0, max)}
}

// Add offers a finished trace to the ring. Nil rings, nil traces and
// still-open traces (Dur 0) are ignored.
func (r *SlowRing) Add(t *ReqTrace) {
	if r == nil || t == nil {
		return
	}
	dur := t.Dur()
	if dur <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if e.ID() == t.ID() {
			r.entries[i] = t
			return
		}
	}
	if len(r.entries) < r.max {
		r.entries = append(r.entries, t)
		return
	}
	fastest, fdur := -1, int64(0)
	for i, e := range r.entries {
		if d := e.Dur(); fastest == -1 || d < fdur {
			fastest, fdur = i, d
		}
	}
	if dur > fdur {
		r.entries[fastest] = t
	}
}

// Get returns the retained trace with the given ID, or nil.
func (r *SlowRing) Get(id string) *ReqTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.ID() == id {
			return e
		}
	}
	return nil
}

// Len returns the number of retained traces.
func (r *SlowRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Snapshot returns the retained traces, slowest first.
func (r *SlowRing) Snapshot() []*ReqTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*ReqTrace, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool { return out[a].Dur() > out[b].Dur() })
	return out
}

// slowEntry is one row of the /debug/obs/slow listing: enough to spot
// the outlier and pivot to its full waterfall (/debug/obs/req?id=...)
// and its log line (trace_id).
type slowEntry struct {
	TraceID string             `json:"trace_id"`
	Label   string             `json:"label"`
	Status  int                `json:"status"`
	StartNS int64              `json:"start_unix_ns"`
	DurMS   float64            `json:"dur_ms"`
	Spans   int                `json:"spans"`
	Dropped int                `json:"dropped,omitempty"`
	Stages  map[string]float64 `json:"stages_ms"` // stage -> summed span ms
}

// WriteJSON renders the slow listing, slowest first.
func (r *SlowRing) WriteJSON(w http.ResponseWriter) error {
	traces := r.Snapshot()
	out := struct {
		Slowest []slowEntry `json:"slowest"`
	}{Slowest: make([]slowEntry, 0, len(traces))}
	for _, t := range traces {
		spans := t.Snapshot()
		stages := make(map[string]float64)
		for _, sp := range spans[1:] {
			if sp.End > 0 {
				stages[sp.Stage.String()] += float64(sp.End-sp.Start) / 1e6
			}
		}
		out.Slowest = append(out.Slowest, slowEntry{
			TraceID: t.ID(),
			Label:   t.Label(),
			Status:  t.Status(),
			StartNS: spans[0].Start,
			DurMS:   float64(t.Dur()) / 1e6,
			Spans:   len(spans),
			Dropped: t.Dropped(),
			Stages:  stages,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the slow-request listing (the /debug/obs/slow view).
// A nil ring serves an empty listing.
func (r *SlowRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ReqHandler serves one retained request's span tree as Chrome
// trace_event JSON (the /debug/obs/req?id=... view). Unknown IDs — or
// any ID against a nil ring — return 404: traces are retained only
// while they remain among the slowest N.
func (r *SlowRing) ReqHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		t := r.Get(id)
		if t == nil {
			http.Error(w, "trace "+id+" not retained (evicted, or never among the slowest)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
