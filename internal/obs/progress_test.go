package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestProgressPublishSnapshot(t *testing.T) {
	b := NewBoard()
	p := b.Start("database PC", 500000)
	p.Publish(250000, 150000, 3000, 6000, 1500)
	s := p.Snapshot()
	if s.Label != "database PC" || s.Total != 500000 {
		t.Errorf("identity fields = %+v", s)
	}
	if s.Insts != 250000 || s.Measured != 150000 || s.Epochs != 3000 {
		t.Errorf("counters = %+v", s)
	}
	if want := float64(6000+1500) / 3000; s.MLP != want {
		t.Errorf("MLP = %v, want %v", s.MLP, want)
	}
	if s.Done {
		t.Error("not finished yet")
	}
	b.Finish(p)
	if !p.Snapshot().Done {
		t.Error("Finish did not mark the run done")
	}
}

func TestBoardActiveAndTotals(t *testing.T) {
	b := NewBoard()
	p1 := b.Start("one", 100)
	p1.Publish(50, 50, 10, 20, 5)
	p2 := b.Start("two", 200)
	p2.Publish(80, 40, 4, 8, 2)

	if got := len(b.Active()); got != 2 {
		t.Fatalf("%d active runs, want 2", got)
	}
	tot := b.Totals()
	if tot.ActiveRuns != 2 || tot.FinishedRuns != 0 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.Insts != 130 || tot.Epochs != 14 {
		t.Errorf("live totals = %+v, want insts 130 epochs 14", tot)
	}

	b.Finish(p1)
	tot = b.Totals()
	if tot.ActiveRuns != 1 || tot.FinishedRuns != 1 {
		t.Errorf("after finish: %+v", tot)
	}
	if tot.Insts != 130 { // finished 50 + live 80
		t.Errorf("insts after finish = %d, want 130", tot.Insts)
	}
	// Double-finish must not double-count.
	b.Finish(p1)
	if got := b.Totals().FinishedRuns; got != 1 {
		t.Errorf("double finish counted twice: %d", got)
	}
}

func TestBoardNilSafe(t *testing.T) {
	var b *Board
	p := b.Start("x", 1)
	if p != nil {
		t.Fatal("nil board handed out a progress")
	}
	p.Publish(1, 1, 1, 1, 1) // nil progress: no-op
	if s := p.Snapshot(); s.Label != "" {
		t.Errorf("nil snapshot = %+v", s)
	}
	b.Finish(p)
	if b.Active() != nil || b.Totals() != (Totals{}) {
		t.Error("nil board should report empty state")
	}
}

func TestBoardHandler(t *testing.T) {
	b := NewBoard()
	p := b.Start("handler run", 1000)
	p.Publish(500, 100, 2, 4, 1)
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Active []Snapshot `json:"active"`
		Totals Totals     `json:"totals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Active) != 1 || doc.Active[0].Label != "handler run" || doc.Active[0].Insts != 500 {
		t.Errorf("runs doc = %+v", doc)
	}
	if doc.Totals.ActiveRuns != 1 {
		t.Errorf("totals = %+v", doc.Totals)
	}
}
