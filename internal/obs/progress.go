package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live state of one engine run, published by the
// engine once per instruction batch through atomic stores and read by
// tickers and HTTP handlers without any coordination with the run.
// A nil *Progress accepts every call as a no-op.
type Progress struct {
	label string // immutable after Start
	total int64  // immutable; planned instructions incl. warmup, 0 when unknown
	start int64  // immutable; Now() at Start

	insts    atomic.Int64 // instructions stepped, incl. warmup
	measured atomic.Int64 // measured (post-warmup) instructions folded into stats
	epochs   atomic.Int64 // epochs closed (folded out of the window)
	loadInst atomic.Int64 // load + ifetch misses folded
	stores   atomic.Int64 // store misses folded
	done     atomic.Bool
}

// Publish replaces the live counters. The engine calls this once per
// 4096-instruction batch, so the cost is five atomic stores amortized
// over thousands of steps.
//
//storemlp:noalloc
func (p *Progress) Publish(insts, measured, epochs, loadInst, stores int64) {
	if p == nil {
		return
	}
	p.insts.Store(insts)
	p.measured.Store(measured)
	p.epochs.Store(epochs)
	p.loadInst.Store(loadInst)
	p.stores.Store(stores)
}

// Snapshot is a consistent-enough view of one run for display: the
// counters are read individually (each atomically), which is exact at
// batch boundaries and at most one batch stale between them.
type Snapshot struct {
	Label          string        `json:"label"`
	Total          int64         `json:"total_insts"`
	Insts          int64         `json:"insts"`
	Measured       int64         `json:"measured_insts"`
	Epochs         int64         `json:"epochs"`
	LoadInstMisses int64         `json:"load_inst_misses"`
	StoreMisses    int64         `json:"store_misses"`
	MLP            float64       `json:"mlp"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	InstsPerSec    float64       `json:"insts_per_sec"`
	Done           bool          `json:"done"`
}

// Snapshot reads the current state. MLP is the running mean misses
// per epoch over the epochs folded so far — the paper's MLP measure,
// live.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Label:          p.label,
		Total:          p.total,
		Insts:          p.insts.Load(),
		Measured:       p.measured.Load(),
		Epochs:         p.epochs.Load(),
		LoadInstMisses: p.loadInst.Load(),
		StoreMisses:    p.stores.Load(),
		Elapsed:        time.Duration(Now() - p.start),
		Done:           p.done.Load(),
	}
	if s.Epochs > 0 {
		s.MLP = float64(s.LoadInstMisses+s.StoreMisses) / float64(s.Epochs)
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.InstsPerSec = float64(s.Insts) / sec
	}
	return s
}

// Totals aggregates a Board: finished-run sums plus the live counters
// of the still-active runs, so a ticker can show overall throughput
// while a sweep is mid-flight.
type Totals struct {
	ActiveRuns   int   `json:"active_runs"`
	FinishedRuns int64 `json:"finished_runs"`
	Insts        int64 `json:"insts"`
	Epochs       int64 `json:"epochs"`
}

// Board tracks every active run plus aggregates of finished ones —
// the data behind /debug/obs/runs and the -progress tickers. A nil
// *Board hands out nil *Progress, so disabled introspection costs one
// pointer check.
type Board struct {
	mu     sync.Mutex
	active map[*Progress]struct{} // guarded by mu
	runs   int64                  // guarded by mu; finished runs
	insts  int64                  // guarded by mu; instructions in finished runs
	epochs int64                  // guarded by mu; epochs in finished runs
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{active: make(map[*Progress]struct{})}
}

// Start registers a new active run and returns its Progress. total is
// the planned instruction count including warmup (0 when unknown).
func (b *Board) Start(label string, total int64) *Progress {
	if b == nil {
		return nil
	}
	p := &Progress{label: label, total: total, start: Now()}
	b.mu.Lock()
	b.active[p] = struct{}{}
	b.mu.Unlock()
	return p
}

// Finish marks p done, removes it from the active set and folds its
// final counters into the board aggregates. Safe on nil p (a run that
// was never observed) and idempotent enough for defer use.
func (b *Board) Finish(p *Progress) {
	if b == nil || p == nil {
		return
	}
	p.done.Store(true)
	b.mu.Lock()
	if _, ok := b.active[p]; ok {
		delete(b.active, p)
		b.runs++
		b.insts += p.insts.Load()
		b.epochs += p.epochs.Load()
	}
	b.mu.Unlock()
}

// Active snapshots the in-flight runs, oldest first.
func (b *Board) Active() []Snapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	ps := make([]*Progress, 0, len(b.active))
	for p := range b.active {
		ps = append(ps, p)
	}
	b.mu.Unlock()
	sort.Slice(ps, func(i, j int) bool { return ps[i].start < ps[j].start })
	out := make([]Snapshot, len(ps))
	for i, p := range ps {
		out[i] = p.Snapshot()
	}
	return out
}

// Totals aggregates finished-run sums plus live active counters.
func (b *Board) Totals() Totals {
	if b == nil {
		return Totals{}
	}
	b.mu.Lock()
	t := Totals{ActiveRuns: len(b.active), FinishedRuns: b.runs, Insts: b.insts, Epochs: b.epochs}
	ps := make([]*Progress, 0, len(b.active))
	for p := range b.active {
		ps = append(ps, p)
	}
	b.mu.Unlock()
	for _, p := range ps {
		t.Insts += p.insts.Load()
		t.Epochs += p.epochs.Load()
	}
	return t
}

// runsJSON is the /debug/obs/runs document.
type runsJSON struct {
	Active []Snapshot `json:"active"`
	Totals Totals     `json:"totals"`
}

// Handler serves the board as JSON (the /debug/obs/runs view). A nil
// board serves the empty document.
func (b *Board) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := runsJSON{Active: b.Active(), Totals: b.Totals()}
		if doc.Active == nil {
			doc.Active = []Snapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
