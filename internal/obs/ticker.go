package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// fmtCount renders an instruction count compactly (1234 -> "1.2k",
// 3_000_000 -> "3.0M") for the one-line ticker.
func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// tickerLine renders the board's live state as one status line.
// instsPerSec is the caller's measured overall rate (the board cannot
// derive a rate without remembering the previous tick).
func tickerLine(b *Board, instsPerSec float64) string {
	act := b.Active()
	tot := b.Totals()
	switch len(act) {
	case 0:
		return fmt.Sprintf("progress: %d runs done, %s insts", tot.FinishedRuns, fmtCount(tot.Insts))
	case 1:
		s := act[0]
		pct := ""
		if s.Total > 0 {
			pct = fmt.Sprintf(" (%.0f%%)", 100*float64(s.Insts)/float64(s.Total))
		}
		return fmt.Sprintf("progress: %s  %s/%s insts%s  %s insts/s  MLP %.2f",
			s.Label, fmtCount(s.Insts), fmtCount(s.Total), pct, fmtCount(int64(instsPerSec)), s.MLP)
	}
	return fmt.Sprintf("progress: %d active, %d done, %s insts, %s insts/s",
		len(act), tot.FinishedRuns, fmtCount(tot.Insts), fmtCount(int64(instsPerSec)))
}

// StartTicker launches a goroutine that rewrites one status line on w
// (conventionally stderr) every interval from the board's live state —
// the -progress flag on the CLIs. The returned stop function (never
// nil) halts the ticker and blanks the line; it is safe to call once.
// A nil board or non-positive interval returns a no-op stop.
func StartTicker(w io.Writer, b *Board, every time.Duration) func() {
	if b == nil || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		width := 0
		lastAt := time.Now()
		lastInsts := b.Totals().Insts
		for {
			select {
			case <-done:
				if width > 0 {
					// Blank the status line so the next print starts clean.
					fmt.Fprintf(w, "\r%s\r", strings.Repeat(" ", width))
				}
				return
			case <-tick.C:
				now := time.Now()
				insts := b.Totals().Insts
				rate := 0.0
				if dt := now.Sub(lastAt).Seconds(); dt > 0 {
					rate = float64(insts-lastInsts) / dt
				}
				lastAt, lastInsts = now, insts
				line := tickerLine(b, rate)
				pad := ""
				if n := width - len(line); n > 0 {
					pad = strings.Repeat(" ", n)
				}
				fmt.Fprintf(w, "\r%s%s", line, pad)
				if len(line) > width {
					width = len(line)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
