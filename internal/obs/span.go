package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Request-scoped tracing: where the ring Tracer answers "what are the
// engines doing lately", the span tree answers "where did THIS
// request's milliseconds go". Each HTTP request owns one ReqTrace — a
// fixed-capacity arena of stage-labelled spans forming a tree rooted
// at the request itself — propagated down the serving pipeline via
// context, so the digest lookup, the cache probe, the singleflight
// wait, the worker-slot wait, every parallel segment and the final
// merge all land as intervals attributable to one trace ID. The
// completed tree feeds per-stage latency histograms, the slowest-N
// ring (slowring.go) and a per-request Chrome trace export.
//
// Like the Tracer, everything is nil-safe: a nil *ReqTrace accepts
// every call as a no-op and WithSpan returns its context unchanged, so
// the disabled path (probe requests, span tracing off) allocates
// nothing — TestRequestSpanZeroAllocDisabled pins that.

// Stage labels a request span with the pipeline stage it timed. The
// set mirrors the serving pipeline: parse → digest → cache-probe →
// (coalesce-wait | pool-wait → segment×K → merge) → render.
type Stage uint8

const (
	// StageRequest is the root span: the whole HTTP request.
	StageRequest Stage = iota
	// StageParse covers request-body decoding.
	StageParse
	// StageDigest covers spec resolution and canonical digesting.
	StageDigest
	// StageCacheProbe covers the result-LRU lookup (arg 1 = hit).
	StageCacheProbe
	// StageCoalesceWait covers a follower waiting on an identical
	// in-flight execution (the leader's trace carries the real work).
	StageCoalesceWait
	// StagePoolWait covers waiting for a worker slot.
	StagePoolWait
	// StageSimulate covers one engine execution (serial run, or one
	// segment's engine inside a StageSegment parent).
	StageSimulate
	// StageSegment covers one segment of a parallel intra-run fan-out:
	// source construction, fast-forward and the engine run (arg is the
	// segment index).
	StageSegment
	// StageMerge covers the associative Stats merge joining segment
	// results (arg is the segment count).
	StageMerge
	// StageRender covers response encoding.
	StageRender
	stageCount
)

// String returns the stage name used in metric labels, trace exports
// and the slow-request listing.
func (s Stage) String() string {
	if s >= stageCount {
		return "unknown"
	}
	return [...]string{"request", "parse", "digest", "cache_probe", "coalesce_wait",
		"pool_wait", "simulate", "segment", "merge", "render"}[s]
}

// Stages returns every defined stage, StageRequest first. The serving
// layer iterates this to register one latency histogram per stage.
func Stages() []Stage {
	out := make([]Stage, stageCount)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// SpanID indexes a span inside its ReqTrace. NoSpan is returned by a
// disabled trace (nil receiver or full arena) and is accepted as a
// no-op by EndSpan and as a parent by StartSpan.
type SpanID int32

// NoSpan is the absent span: the disabled-path sentinel.
const NoSpan SpanID = -1

// ReqSpan is one recorded interval of a request. End == 0 means the
// span is still open (or was abandoned by an error path).
type ReqSpan struct {
	Stage  Stage  `json:"stage"`
	Parent SpanID `json:"parent"` // NoSpan for the root
	Arg    int64  `json:"arg,omitempty"`
	Start  int64  `json:"start"` // ns, Now() timebase
	End    int64  `json:"end"`   // ns; 0 while open
}

// ReqTrace is one request's span tree: a fixed-capacity span arena
// whose slot 0 is the root (StageRequest) span. Spans past the
// capacity are dropped and counted, never reallocated, so one request
// costs one bounded allocation however many stages it fans out to.
// All methods are safe for concurrent use (sweep points and parallel
// segments record spans from many goroutines) and nil-safe.
type ReqTrace struct {
	id string // immutable after construction

	mu      sync.Mutex
	spans   []ReqSpan // guarded by mu; cap fixed at construction
	dropped int       // guarded by mu; spans rejected by a full arena
	label   string    // guarded by mu; "METHOD /path", set by Finish
	status  int       // guarded by mu; HTTP status, set by Finish
}

// NewReqTrace starts a request trace with the given ID and span
// capacity; the root span opens immediately. spanCap <= 0 returns nil
// — the disabled trace.
func NewReqTrace(id string, spanCap int) *ReqTrace {
	if spanCap <= 0 {
		return nil
	}
	t := &ReqTrace{id: id, spans: make([]ReqSpan, 0, spanCap)}
	t.mu.Lock()
	t.spans = append(t.spans, ReqSpan{Stage: StageRequest, Parent: NoSpan, Start: Now()})
	t.mu.Unlock()
	return t
}

// ID returns the trace ID ("" for a nil trace).
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span's ID (NoSpan for a nil trace).
func (t *ReqTrace) Root() SpanID {
	if t == nil {
		return NoSpan
	}
	return 0
}

// StartSpan opens a span under parent and returns its ID. A nil trace
// or a full arena returns NoSpan (the latter also counts the drop);
// either way the caller's matching EndSpan is a safe no-op.
func (t *ReqTrace) StartSpan(stage Stage, parent SpanID) SpanID {
	if t == nil {
		return NoSpan
	}
	start := Now()
	t.mu.Lock()
	if len(t.spans) == cap(t.spans) {
		t.dropped++
		t.mu.Unlock()
		return NoSpan
	}
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, ReqSpan{Stage: stage, Parent: parent, Start: start})
	t.mu.Unlock()
	return id
}

// EndSpan closes a span, recording its kind-specific arg. Nil traces
// and NoSpan IDs are no-ops; ending a span twice keeps the first end.
func (t *ReqTrace) EndSpan(id SpanID, arg int64) {
	if t == nil || id < 0 {
		return
	}
	end := Now()
	t.mu.Lock()
	if int(id) < len(t.spans) && t.spans[id].End == 0 {
		t.spans[id].End = end
		t.spans[id].Arg = arg
	}
	t.mu.Unlock()
}

// Finish closes the root span and records the request's identity for
// the slow-request listing. Spans recorded after Finish (a coalescing
// leader that abandoned its request while followers kept the execution
// alive) still land in the arena; they may extend past the root.
func (t *ReqTrace) Finish(label string, status int) {
	if t == nil {
		return
	}
	end := Now()
	t.mu.Lock()
	if t.spans[0].End == 0 {
		t.spans[0].End = end
	}
	t.label, t.status = label, status
	t.mu.Unlock()
}

// Dur returns the root span's duration in nanoseconds (0 while the
// request is still in flight, or for a nil trace).
func (t *ReqTrace) Dur() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans[0].End == 0 {
		return 0
	}
	return t.spans[0].End - t.spans[0].Start
}

// Label returns the request identity recorded by Finish.
func (t *ReqTrace) Label() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.label
}

// Status returns the HTTP status recorded by Finish.
func (t *ReqTrace) Status() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Dropped returns how many spans a full arena rejected.
func (t *ReqTrace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies out the recorded spans in creation order (slot 0 is
// the root).
func (t *ReqTrace) Snapshot() []ReqSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReqSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// ---- context propagation ----

// spanCtx carries the live trace and the span new children should
// attach under. Stored by value: the context boxing is the enabled
// path's only extra allocation.
type spanCtx struct {
	t      *ReqTrace
	parent SpanID
}

// spanKey is the private context key for a spanCtx.
type spanKey struct{}

// WithSpan returns a context under which spans started via SpanFrom
// attach to t under parent. A nil t returns ctx unchanged, so the
// disabled path allocates nothing.
func WithSpan(ctx context.Context, t *ReqTrace, parent SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, spanCtx{t: t, parent: parent})
}

// SpanFrom returns the request trace carried by ctx and the span to
// parent new work under, or (nil, NoSpan) when the context carries
// none — the nil trace accepts every call as a no-op.
func SpanFrom(ctx context.Context) (*ReqTrace, SpanID) {
	if ctx == nil {
		return nil, NoSpan
	}
	sc, ok := ctx.Value(spanKey{}).(spanCtx)
	if !ok {
		return nil, NoSpan
	}
	return sc.t, sc.parent
}

// ---- Chrome trace export ----

// WriteChrome renders the span tree as Chrome trace_event JSON (the
// /debug/obs/req view): one complete ("X") event per span, timestamps
// rebased to the root's start, concurrent spans split onto separate
// tracks (tid) by greedy interval packing so parallel segments render
// side by side. Args carry the span ID, parent and stage arg, so the
// tree structure survives the export.
func (t *ReqTrace) WriteChrome(w io.Writer) error {
	spans := t.Snapshot()
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	if len(spans) > 0 {
		base := spans[0].Start
		// Greedy track packing: visit spans by start time, place each on
		// the first track whose previous occupant already ended.
		order := make([]int, len(spans))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return spans[order[a]].Start < spans[order[b]].Start })
		var trackEnd []int64
		events := make([]chromeEvent, len(spans))
		for _, i := range order {
			sp := spans[i]
			end := sp.End
			if end == 0 {
				end = sp.Start // open span: render as zero-width
			}
			tid := -1
			for tr, te := range trackEnd {
				if te <= sp.Start {
					tid = tr
					break
				}
			}
			if tid == -1 {
				tid = len(trackEnd)
				trackEnd = append(trackEnd, 0)
			}
			trackEnd[tid] = end
			events[i] = chromeEvent{
				Name: sp.Stage.String(),
				Ph:   "X",
				Ts:   float64(sp.Start-base) / 1e3,
				Dur:  float64(end-sp.Start) / 1e3,
				Pid:  1,
				Tid:  uint32(tid),
				Args: map[string]int64{"span": int64(i), "parent": int64(sp.Parent), "arg": sp.Arg},
			}
		}
		out.TraceEvents = events
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
