package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A parser/validator for the Prometheus text exposition format
// (version 0.0.4) — the consumer-side counterpart of Registry.WriteTo.
// The scrape-parse tests fetch /metrics and run every family through
// ValidateExposition, so a malformed name, a missing HELP/TYPE pair,
// a negative counter or a non-cumulative histogram fails CI instead of
// silently breaking real scrapers.

// Sample is one exposed sample line.
type Sample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

// Family is one metric family: the HELP/TYPE header pair plus its
// contiguous block of samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// expoError decorates a parse/validation failure with its line number.
func expoError(line int, format string, args ...any) error {
	return fmt.Errorf("exposition line %d: %s", line, fmt.Sprintf(format, args...))
}

// ParseExposition reads the text format into families, enforcing the
// lexical grammar (names, label syntax, float values) but not the
// semantic rules; ValidateExposition adds those.
func ParseExposition(r io.Reader) ([]Family, error) {
	var fams []*Family
	byName := map[string]*Family{}
	cur := func(name string, line int) (*Family, error) {
		if f, ok := byName[name]; ok {
			return f, nil
		}
		return nil, expoError(line, "sample %q precedes its # HELP/# TYPE header", name)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var lastFam *Family
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				return nil, expoError(lineNo, "invalid metric name %q in %s line", name, fields[1])
			}
			switch fields[1] {
			case "HELP":
				if _, exists := byName[name]; exists {
					return nil, expoError(lineNo, "duplicate # HELP for %q", name)
				}
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				f := &Family{Name: name, Help: help}
				fams = append(fams, f)
				byName[name] = f
			case "TYPE":
				f, ok := byName[name]
				if !ok {
					return nil, expoError(lineNo, "# TYPE %q without preceding # HELP", name)
				}
				if f.Type != "" {
					return nil, expoError(lineNo, "duplicate # TYPE for %q", name)
				}
				if len(f.Samples) > 0 {
					return nil, expoError(lineNo, "# TYPE %q after its samples", name)
				}
				typ := ""
				if len(fields) == 4 {
					typ = fields[3]
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, expoError(lineNo, "invalid type %q for %q", typ, name)
				}
				f.Type = typ
			}
			continue
		}
		s, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		fam, err := cur(familyName(s.Name, byName), lineNo)
		if err != nil {
			return nil, err
		}
		if fam != lastFam && len(fam.Samples) > 0 {
			return nil, expoError(lineNo, "samples of family %q are not contiguous", fam.Name)
		}
		fam.Samples = append(fam.Samples, s)
		lastFam = fam
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, len(fams))
	for i, f := range fams {
		out[i] = *f
	}
	return out, nil
}

// familyName strips histogram/summary suffixes when the base name is a
// declared family; a plain sample maps to itself.
func familyName(sample string, byName map[string]*Family) string {
	if _, ok := byName[sample]; ok {
		return sample
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			if _, exists := byName[base]; exists {
				return base
			}
		}
	}
	return sample
}

// parseSample parses `name{labels} value` (timestamps, which our
// registry never emits, are rejected).
func parseSample(line string, lineNo int) (Sample, error) {
	s := Sample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, expoError(lineNo, "sample %q has no value", line)
	}
	s.Name = line[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, expoError(lineNo, "invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return s, expoError(lineNo, "sample %q has no value", s.Name)
	}
	if strings.ContainsAny(rest, " \t") {
		return s, expoError(lineNo, "sample %q has trailing fields (timestamps are not emitted by this registry)", s.Name)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, expoError(lineNo, "sample %q has unparseable value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block, handling the \\, \" and
// \n escapes the format defines for label values.
func parseLabels(in string, lineNo int) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", expoError(lineNo, "unterminated label block")
		}
		if in[i] == '}' {
			return labels, in[i+1:], nil
		}
		j := strings.IndexByte(in[i:], '=')
		if j < 0 {
			return nil, "", expoError(lineNo, "label without '=' in %q", in)
		}
		name := in[i : i+j]
		if !labelNameRe.MatchString(name) {
			return nil, "", expoError(lineNo, "invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", expoError(lineNo, "duplicate label %q", name)
		}
		i += j + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", expoError(lineNo, "label %q value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", expoError(lineNo, "unterminated value for label %q", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", expoError(lineNo, "dangling escape in label %q", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", expoError(lineNo, "invalid escape \\%c in label %q", in[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
		switch {
		case i < len(in) && in[i] == ',':
			i++
		case i < len(in) && in[i] == '}':
			// loop top consumes the close brace
		default:
			return nil, "", expoError(lineNo, "unterminated label block")
		}
	}
}

// ValidateExposition parses and then semantically validates an
// exposition: HELP/TYPE pairing, sample names consistent with the
// declared type, non-negative finite counters, and well-formed
// histograms (ascending le bounds, cumulative bucket counts, +Inf
// bucket present and equal to _count, _sum/_count present). It returns
// the parsed families so callers can run cross-scrape checks (counter
// monotonicity) on top.
func ValidateExposition(r io.Reader) ([]Family, error) {
	fams, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	for i := range fams {
		f := &fams[i]
		if f.Type == "" {
			return nil, fmt.Errorf("family %q: # HELP without # TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %q: declared but has no samples", f.Name)
		}
		switch f.Type {
		case "histogram":
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		default:
			for _, s := range f.Samples {
				if s.Name != f.Name {
					return nil, fmt.Errorf("family %q: sample name %q does not match its type %s", f.Name, s.Name, f.Type)
				}
			}
			if f.Type == "counter" {
				for _, s := range f.Samples {
					if math.IsNaN(s.Value) || s.Value < 0 {
						return nil, fmt.Errorf("family %q: counter sample %s%v has invalid value %v", f.Name, s.Name, labelSig(s.Labels, ""), s.Value)
					}
				}
			}
		}
	}
	return fams, nil
}

// CountersMonotone checks that every counter sample present in both
// expositions did not decrease from earlier to later — the double-
// scrape monotonicity test. Samples that appear only on one side are
// ignored (registration order is append-only, but a fresh process
// would reset them).
func CountersMonotone(earlier, later []Family) error {
	prev := map[string]float64{}
	for _, f := range earlier {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			prev[s.Name+labelSig(s.Labels, "")] = s.Value
		}
	}
	for _, f := range later {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			key := s.Name + labelSig(s.Labels, "")
			if was, ok := prev[key]; ok && s.Value < was {
				return fmt.Errorf("counter %s decreased: %v -> %v", key, was, s.Value)
			}
		}
	}
	return nil
}

// labelSig renders labels (minus one excluded key) as a stable
// signature for grouping and error messages.
func labelSig(labels map[string]string, except string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != except {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// histSeries accumulates one label-set's histogram samples.
type histSeries struct {
	buckets []Sample // _bucket samples in exposition order
	sum     *Sample
	count   *Sample
}

func validateHistogram(f *Family) error {
	series := map[string]*histSeries{}
	order := []string{}
	get := func(sig string) *histSeries {
		if hs, ok := series[sig]; ok {
			return hs
		}
		hs := &histSeries{}
		series[sig] = hs
		order = append(order, sig)
		return hs
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		sig := labelSig(s.Labels, "le")
		switch s.Name {
		case f.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("family %q: bucket sample %s missing le label", f.Name, sig)
			}
			hs := get(sig)
			hs.buckets = append(hs.buckets, *s)
		case f.Name + "_sum":
			get(sig).sum = s
		case f.Name + "_count":
			get(sig).count = s
		default:
			return fmt.Errorf("family %q: sample name %q is not a histogram series", f.Name, s.Name)
		}
	}
	for _, sig := range order {
		hs := series[sig]
		if len(hs.buckets) == 0 || hs.sum == nil || hs.count == nil {
			return fmt.Errorf("family %q %s: histogram needs _bucket, _sum and _count series", f.Name, sig)
		}
		prevBound := math.Inf(-1)
		prevCum := float64(-1)
		sawInf := false
		var infCum float64
		for _, b := range hs.buckets {
			le := b.Labels["le"]
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("family %q %s: unparseable le=%q", f.Name, sig, le)
			}
			if bound <= prevBound {
				return fmt.Errorf("family %q %s: le bounds not ascending (%v after %v)", f.Name, sig, bound, prevBound)
			}
			if b.Value < prevCum {
				return fmt.Errorf("family %q %s: bucket counts not cumulative at le=%q", f.Name, sig, le)
			}
			prevBound, prevCum = bound, b.Value
			if math.IsInf(bound, +1) {
				sawInf = true
				infCum = b.Value
			}
		}
		if !sawInf {
			return fmt.Errorf("family %q %s: missing le=\"+Inf\" bucket", f.Name, sig)
		}
		// Bucket counts are integers by construction; compare as such.
		if int64(infCum) != int64(hs.count.Value) {
			return fmt.Errorf("family %q %s: +Inf bucket (%v) != _count (%v)", f.Name, sig, infCum, hs.count.Value)
		}
	}
	return nil
}
