package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReqTraceTreeShape(t *testing.T) {
	rt := NewReqTrace("t1", 16)
	if rt.ID() != "t1" {
		t.Fatalf("ID = %q, want t1", rt.ID())
	}
	root := rt.Root()
	parse := rt.StartSpan(StageParse, root)
	rt.EndSpan(parse, 0)
	dig := rt.StartSpan(StageDigest, root)
	rt.EndSpan(dig, 0)
	seg := rt.StartSpan(StageSegment, root)
	sim := rt.StartSpan(StageSimulate, seg)
	rt.EndSpan(sim, 42)
	rt.EndSpan(seg, 0)
	rt.Finish("POST /v1/run", 200)

	spans := rt.Snapshot()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	if spans[0].Stage != StageRequest || spans[0].Parent != NoSpan {
		t.Errorf("root = %+v, want StageRequest with NoSpan parent", spans[0])
	}
	if spans[0].End == 0 {
		t.Error("Finish left the root span open")
	}
	for i, sp := range spans[1:] {
		id := i + 1
		if sp.Parent < 0 || int(sp.Parent) >= id {
			t.Errorf("span %d parent %d is not an earlier span", id, sp.Parent)
		}
		if sp.End == 0 {
			t.Errorf("span %d (stage %s) left open", id, sp.Stage)
		}
		if sp.Start < spans[sp.Parent].Start {
			t.Errorf("span %d starts before its parent", id)
		}
		if sp.End > spans[sp.Parent].End {
			t.Errorf("span %d ends after its parent", id)
		}
	}
	if spans[4].Arg != 42 {
		t.Errorf("simulate arg = %d, want 42", spans[4].Arg)
	}
	if rt.Label() != "POST /v1/run" || rt.Status() != 200 {
		t.Errorf("Finish recorded (%q, %d), want (POST /v1/run, 200)", rt.Label(), rt.Status())
	}
	if rt.Dur() <= 0 {
		t.Errorf("Dur = %d, want > 0", rt.Dur())
	}
}

func TestReqTraceCapacityDrops(t *testing.T) {
	rt := NewReqTrace("cap", 3) // root + 2
	a := rt.StartSpan(StageParse, rt.Root())
	b := rt.StartSpan(StageDigest, rt.Root())
	c := rt.StartSpan(StageRender, rt.Root())
	if a == NoSpan || b == NoSpan {
		t.Fatal("spans inside capacity rejected")
	}
	if c != NoSpan {
		t.Fatalf("span past capacity accepted as %d", c)
	}
	rt.EndSpan(c, 7) // must be a safe no-op
	if rt.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", rt.Dropped())
	}
	if n := len(rt.Snapshot()); n != 3 {
		t.Errorf("retained %d spans, want 3", n)
	}
}

func TestReqTraceNilSafety(t *testing.T) {
	var rt *ReqTrace
	if NewReqTrace("off", 0) != nil {
		t.Error("NewReqTrace(0) should return the nil disabled trace")
	}
	id := rt.StartSpan(StageParse, rt.Root())
	if id != NoSpan {
		t.Errorf("nil StartSpan = %d, want NoSpan", id)
	}
	rt.EndSpan(id, 0)
	rt.Finish("x", 200)
	if rt.ID() != "" || rt.Dur() != 0 || rt.Dropped() != 0 || rt.Snapshot() != nil {
		t.Error("nil trace accessors not zero-valued")
	}
	if err := rt.WriteChrome(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteChrome: %v", err)
	}
	ctx := context.Background()
	if got := WithSpan(ctx, nil, NoSpan); got != ctx {
		t.Error("WithSpan(nil) should return ctx unchanged")
	}
	if tr, parent := SpanFrom(ctx); tr != nil || parent != NoSpan {
		t.Error("SpanFrom on a bare context should be (nil, NoSpan)")
	}
	if tr, parent := SpanFrom(nil); tr != nil || parent != NoSpan { //nolint:staticcheck
		t.Error("SpanFrom(nil) should be (nil, NoSpan)")
	}
}

func TestWithSpanRoundTrip(t *testing.T) {
	rt := NewReqTrace("ctx", 8)
	seg := rt.StartSpan(StageSegment, rt.Root())
	ctx := WithSpan(context.Background(), rt, seg)
	got, parent := SpanFrom(ctx)
	if got != rt || parent != seg {
		t.Fatalf("SpanFrom = (%p, %d), want (%p, %d)", got, parent, rt, seg)
	}
}

// TestRequestSpanZeroAllocDisabled is the span analog of the engine's
// TestStepZeroAllocTracerDisabled: with span tracing off (nil trace —
// the probe-request and tracing-disabled paths), the full per-request
// span choreography allocates nothing.
func TestRequestSpanZeroAllocDisabled(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		rt, parent := SpanFrom(ctx)
		ctx2 := WithSpan(ctx, rt, parent)
		sp := rt.StartSpan(StagePoolWait, parent)
		rt2, parent2 := SpanFrom(ctx2)
		seg := rt2.StartSpan(StageSegment, parent2)
		sim := rt2.StartSpan(StageSimulate, seg)
		rt2.EndSpan(sim, 0)
		rt2.EndSpan(seg, 0)
		rt.EndSpan(sp, 0)
		rt.Finish("", 0)
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocated %.0f objects per request, want exactly 0", allocs)
	}
}

// TestWriteChromeRoundTrip: the per-request Chrome export must be
// valid encoding/json output whose events survive a decode/encode
// round trip with the span tree intact.
func TestWriteChromeRoundTrip(t *testing.T) {
	rt := NewReqTrace("chrome", 16)
	root := rt.Root()
	parse := rt.StartSpan(StageParse, root)
	rt.EndSpan(parse, 0)
	for i := 0; i < 3; i++ {
		seg := rt.StartSpan(StageSegment, root)
		rt.EndSpan(seg, int64(i))
	}
	open := rt.StartSpan(StageMerge, root)
	_ = open // deliberately left open: must render, not corrupt
	rt.Finish("GET /x", 200)

	var buf bytes.Buffer
	if err := rt.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	spans := rt.Snapshot()
	if len(decoded.TraceEvents) != len(spans) {
		t.Fatalf("export has %d events, trace has %d spans", len(decoded.TraceEvents), len(spans))
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", decoded.DisplayTimeUnit)
	}
	for i, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d ph = %q, want X", i, ev.Ph)
		}
		if want := spans[i].Stage.String(); ev.Name != want {
			t.Errorf("event %d name = %q, want %q", i, ev.Name, want)
		}
		if ev.Args["span"] != int64(i) || ev.Args["parent"] != int64(spans[i].Parent) {
			t.Errorf("event %d args = %v, want span=%d parent=%d", i, ev.Args, i, spans[i].Parent)
		}
	}
	// Re-encode: byte-level stability is not required, but the decoded
	// form must itself marshal cleanly (no NaN/Inf smuggled through).
	if _, err := json.Marshal(decoded); err != nil {
		t.Errorf("decoded export does not re-encode: %v", err)
	}
}

func finishedTrace(id string, durNS int64) *ReqTrace {
	rt := NewReqTrace(id, 4)
	rt.mu.Lock()
	rt.spans[0].End = rt.spans[0].Start + durNS
	rt.mu.Unlock()
	rt.Finish("POST /v1/run", 200)
	return rt
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(3)
	for i, dur := range []int64{5e6, 1e6, 9e6, 3e6, 7e6, 2e6} {
		r.Add(finishedTrace(fmt.Sprintf("r%d", i), dur))
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	got := []string{snap[0].ID(), snap[1].ID(), snap[2].ID()}
	want := []string{"r2", "r4", "r0"} // 9ms, 7ms, 5ms
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slowest order = %v, want %v", got, want)
		}
	}
	if r.Get("r1") != nil {
		t.Error("fast trace r1 should have been evicted")
	}
	if tr := r.Get("r2"); tr == nil || tr.Dur() != 9e6 {
		t.Error("slowest trace r2 not retrievable by ID")
	}
}

func TestSlowRingNilAndOpenTraces(t *testing.T) {
	var r *SlowRing
	if NewSlowRing(0) != nil {
		t.Error("NewSlowRing(0) should return the nil disabled ring")
	}
	r.Add(finishedTrace("x", 1e6)) // no-op, must not panic
	if r.Len() != 0 || r.Get("x") != nil || r.Snapshot() != nil {
		t.Error("nil ring accessors not zero-valued")
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs/slow", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"slowest"`) {
		t.Errorf("nil ring listing: code %d body %q", rec.Code, rec.Body.String())
	}

	live := NewSlowRing(2)
	open := NewReqTrace("open", 4) // never finished: Dur 0
	live.Add(open)
	if live.Len() != 0 {
		t.Error("open trace admitted to the ring")
	}
}

func TestSlowRingHandlers(t *testing.T) {
	r := NewSlowRing(4)
	rt := finishedTrace("deadbeef", 4e6)
	r.Add(rt)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs/slow", nil))
	var listing struct {
		Slowest []struct {
			TraceID string  `json:"trace_id"`
			Label   string  `json:"label"`
			Status  int     `json:"status"`
			DurMS   float64 `json:"dur_ms"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("slow listing is not valid JSON: %v", err)
	}
	if len(listing.Slowest) != 1 || listing.Slowest[0].TraceID != "deadbeef" ||
		listing.Slowest[0].Label != "POST /v1/run" || listing.Slowest[0].Status != 200 {
		t.Fatalf("listing = %+v", listing)
	}
	if d := listing.Slowest[0].DurMS; d < 3.9 || d > 4.1 {
		t.Errorf("dur_ms = %v, want ~4", d)
	}

	rec = httptest.NewRecorder()
	r.ReqHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs/req?id=deadbeef", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Errorf("req export: code %d body %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	r.ReqHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs/req?id=unknown", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id: code %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	r.ReqHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs/req", nil))
	if rec.Code != 400 {
		t.Errorf("missing id: code %d, want 400", rec.Code)
	}
}

func TestStageStrings(t *testing.T) {
	all := Stages()
	if len(all) != int(stageCount) {
		t.Fatalf("Stages() returned %d, want %d", len(all), stageCount)
	}
	seen := map[string]bool{}
	for _, s := range all {
		name := s.String()
		if name == "unknown" || name == "" {
			t.Errorf("stage %d has no name", s)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range stage should stringify as unknown")
	}
}
