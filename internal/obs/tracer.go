package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// EventKind labels a tracer event with the pipeline phase it timed.
type EventKind uint8

const (
	// EvParse covers request/spec resolution: validation, trace-source
	// construction, digesting.
	EvParse EventKind = iota
	// EvSimulate spans one whole engine run over the trace.
	EvSimulate
	// EvBatch spans one instruction block through the step loop.
	EvBatch
	// EvFold spans end-of-run window folding and stats finalization.
	EvFold
	// EvRender spans response/report rendering.
	EvRender
	// EvWindowGrow marks an epoch-record ring doubling (pathological
	// fallback path; arg is the new ring length).
	EvWindowGrow
	// EvMeasureStart marks the warmup→measurement transition (arg is
	// the instruction index).
	EvMeasureStart
	// EvSegment spans one segment of a parallel intra-run simulation:
	// source construction, fast-forward and the segment engine's run
	// (arg is the measured instruction count). The engine's own
	// EvSimulate span nests inside it under the same run ID, so the
	// Chrome trace shows the fan-out.
	EvSegment
	// EvMerge spans the associative Stats merge that joins segment
	// results back into one run (arg is the segment count).
	EvMerge
	evKindCount
)

// String returns the phase name used in trace exports.
func (k EventKind) String() string {
	if k >= evKindCount {
		return "unknown"
	}
	return [...]string{"parse", "simulate", "batch", "fold", "render", "window_grow", "measure_start", "segment", "merge"}[k]
}

// Event is one recorded span (Dur > 0) or point (Dur == 0). The struct
// is 32 bytes so the ring stays cache-friendly; Start and Dur are
// nanoseconds on the Now timebase, Run groups events of one run, and
// Arg carries one kind-specific payload (batch length, instruction
// index, ring size).
type Event struct {
	Start int64
	Dur   int64
	Arg   int64
	Run   uint32
	Kind  EventKind
}

// Tracer records events into a fixed-size ring: constant memory, no
// allocation after construction, newest events overwrite oldest. All
// methods are nil-safe no-ops, so "tracing disabled" is a nil pointer
// and the instrumented hot paths pay one predictable branch.
//
// The ring is mutex-guarded rather than lock-free: events are batch-
// and phase-granularity (thousands of instructions apiece), so the
// lock is uncontended in practice, and a mutex keeps the slot-reuse
// pattern clean under the race detector.
type Tracer struct {
	mu   sync.Mutex
	ring []Event // guarded by mu; power-of-two length
	next uint64  // guarded by mu; total events ever recorded
	runs atomic.Uint32
}

// NewTracer returns a tracer keeping the most recent events. The
// capacity is rounded up to a power of two; events <= 0 returns nil —
// the disabled tracer.
func NewTracer(events int) *Tracer {
	if events <= 0 {
		return nil
	}
	n := 1
	for n < events {
		n <<= 1
	}
	return &Tracer{ring: make([]Event, n)}
}

// NewRun allocates a fresh run ID for grouping one run's events.
func (t *Tracer) NewRun() uint32 {
	if t == nil {
		return 0
	}
	return t.runs.Add(1)
}

// Complete records a span that started at start (a Now() value) and
// ends now. This is the engine-facing fast path: one branch when the
// tracer is nil, one uncontended lock and a slot write otherwise.
//
//storemlp:noalloc
func (t *Tracer) Complete(kind EventKind, run uint32, start, arg int64) {
	if t == nil {
		return
	}
	end := Now()
	t.mu.Lock()
	t.ring[t.next&uint64(len(t.ring)-1)] = Event{Start: start, Dur: end - start, Arg: arg, Run: run, Kind: kind}
	t.next++
	t.mu.Unlock()
}

// Point records an instantaneous event.
//
//storemlp:noalloc
func (t *Tracer) Point(kind EventKind, run uint32, arg int64) {
	if t == nil {
		return
	}
	now := Now()
	t.mu.Lock()
	t.ring[t.next&uint64(len(t.ring)-1)] = Event{Start: now, Arg: arg, Run: run, Kind: kind}
	t.next++
	t.mu.Unlock()
}

// Total returns the number of events ever recorded (recorded, not
// retained: the ring keeps only the most recent Cap()).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Cap returns the ring capacity; 0 for the disabled tracer.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Snapshot copies out the retained events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	size := uint64(len(t.ring))
	count := n
	if count > size {
		count = size
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.ring[i&(size-1)])
	}
	return out
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto, speedscope all read it). ph "X" is a
// complete span with a duration; ph "i" is an instant.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  uint32           `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChrome renders the retained events as Chrome trace_event JSON.
// Timestamps are rebased to the oldest retained event so the trace
// opens at t=0; each run renders as its own thread (tid).
func (t *Tracer) WriteChrome(w io.Writer) error {
	evs := t.Snapshot()
	base := int64(0)
	if len(evs) > 0 {
		base = evs[0].Start
		for _, ev := range evs {
			if ev.Start < base {
				base = ev.Start
			}
		}
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: make([]chromeEvent, 0, len(evs)), DisplayTimeUnit: "ms"}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Ts:   float64(ev.Start-base) / 1e3,
			Pid:  1,
			Tid:  ev.Run,
			Args: map[string]int64{"arg": ev.Arg},
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Handler serves the Chrome trace export (the /debug/obs/trace view).
// A nil tracer serves an empty trace rather than an error, so the
// endpoint shape does not depend on configuration.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
