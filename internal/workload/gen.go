package workload

import (
	"math"
	"math/rand"

	"storemlp/internal/isa"
)

// Generator synthesizes an infinite, deterministic instruction stream
// for one workload. It implements trace.Replayable: Reset rewinds to the
// beginning of the identical stream, which is how every
// multi-configuration figure feeds the same trace to each configuration.
type Generator struct {
	p   Params //storemlp:keep (calibration; Reset rewinds the stream, it does not recalibrate)
	rng *rand.Rand

	// Emission queue for multi-instruction groups (critical sections,
	// bursts).
	queue []isa.Inst
	qHead int

	// Program counter state: a sweep cursor through the hot code region,
	// with excursions onto cold code lines that resume the sweep where
	// it left off.
	pc       uint64
	coldPC   uint64
	coldLeft int // instructions remaining on a cold code line

	// Scheduled-event countdowns, in instructions.
	nextLock     int64
	nextMembar   int64
	nextMispred  int64
	nextColdCode int64

	// Per-slot probabilities derived from Params.
	pStore, pLoad, pBranch float64
	scatterBurstProb       float64 // per store: start a scattered miss burst
	preBurstProb           float64 // per lock: emit a pre-acquire miss burst
	loadBurstProb          float64 // per load: start a load miss burst

	// Burst state. Store bursts advance in sub-line steps of
	// 64/StoresPerLine bytes: the first store to each line misses, the
	// rest are coalescing fodder.
	storeBurstLeft int
	storeBurstAddr uint64
	storeBurstStep uint64
	storeBurstShrd bool
	loadBurstLeft  int
	loadBurstAddr  uint64

	// Cyclic sweep cursors for the store churn regions: private data is
	// "repeatedly brought into the L2 cache, modified and then evicted"
	// (§3.3.3), so store misses revisit earlier lines once the sweep
	// wraps — by which time the lines have been evicted, which is
	// exactly the reuse pattern the SMAC exploits.
	storeCursor  uint64
	sharedCursor uint64

	// Dependence state.
	lastLoadDst isa.Reg
	lastMissDst isa.Reg
	regRR       uint8

	// Branch outcome state (for the optional front-end model).
	altBranch bool
}

// NewGenerator builds a generator; it panics on invalid parameters
// (calibrations are compile-time constants in this package).
func NewGenerator(p Params) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{p: p}
	g.Reset()
	return g
}

// Params returns the generator's calibration.
func (g *Generator) Params() Params { return g.p }

// Reset rewinds the generator to the start of its deterministic stream.
func (g *Generator) Reset() {
	p := g.p
	g.rng = rand.New(rand.NewSource(p.Seed))
	g.queue = g.queue[:0]
	g.qHead = 0
	g.pc = g.p.AddrOffset + hotCodeBase
	g.coldPC = 0
	g.coldLeft = 0
	g.storeBurstLeft = 0
	g.storeBurstAddr = 0
	g.storeBurstShrd = false
	g.loadBurstLeft = 0
	g.loadBurstAddr = 0
	g.lastLoadDst = 0
	g.lastMissDst = 0
	g.regRR = 0
	g.altBranch = false

	g.pStore = p.StorePer100 / 100
	g.pLoad = p.LoadPer100 / 100
	g.pBranch = p.BranchPer100 / 100

	g.storeBurstStep = lineBytes / uint64(g.storesPerLine())

	storesPer1000 := p.StorePer100 * 10
	loadsPer1000 := p.LoadPer100 * 10
	burstsPer1000 := p.StoreMissPer100 * 10 / p.StoreBurstMean
	preBurstPerLock := 0.0
	if p.LocksPer1000 > 0 {
		preBurstPerLock = p.PreLockFrac * burstsPer1000 / p.LocksPer1000
		if preBurstPerLock > 1 {
			preBurstPerLock = 1
		}
	}
	g.preBurstProb = preBurstPerLock
	actualPre := preBurstPerLock * p.LocksPer1000
	scatter := burstsPer1000 - actualPre
	if scatter < 0 {
		scatter = 0
	}
	g.scatterBurstProb = scatter / storesPer1000
	g.loadBurstProb = p.LoadMissPer100 * 10 / p.LoadBurstMean / loadsPer1000

	g.storeCursor = 0
	g.sharedCursor = 0
	g.nextLock = g.interval(p.LocksPer1000)
	g.nextMembar = g.interval(p.MembarPer1000)
	g.nextMispred = g.interval(p.MispredPer1000)
	if p.InstMissPer100 > 0 {
		g.nextColdCode = g.interval(p.InstMissPer100 * 10)
	} else {
		g.nextColdCode = -1
	}
}

// interval samples an exponential gap (in instructions) for an event
// rate given per 1000 instructions; -1 means "never".
func (g *Generator) interval(per1000 float64) int64 {
	if per1000 <= 0 {
		return -1
	}
	gap := int64(g.rng.ExpFloat64() * 1000 / per1000)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// geometric samples a burst length with the given mean (>= 1).
func (g *Generator) geometric(mean float64) int {
	n := 1
	p := 1 - 1/mean
	for g.rng.Float64() < p && n < 32 {
		n++
	}
	return n
}

// branchTaken produces per-branch-PC outcome behaviour: most branches
// are strongly biased (easily predicted), a slice alternate (learnable
// by global history), and a few are data-dependent noise.
func (g *Generator) branchTaken(pc uint64) bool {
	switch (pc >> 2) % 8 {
	case 6:
		return g.rng.Float64() < 0.02 // strongly not-taken
	case 7:
		g.altBranch = !g.altBranch // alternating loop-exit style
		return g.altBranch
	default:
		return g.rng.Float64() < 0.98 // strongly taken
	}
}

func (g *Generator) nextReg() isa.Reg {
	g.regRR++
	return isa.Reg(8 + g.regRR%32)
}

// nextPC advances the instruction address: sequentially within the
// current (hot or cold) code line, returning to the hot region sweep
// when a cold excursion ends. The hot sweep wraps within hotCodeSize so
// the code footprint fits the L2 but overflows the L1I.
func (g *Generator) nextPC() uint64 {
	if g.coldLeft > 0 {
		g.coldLeft--
		g.coldPC += 4
		return g.coldPC
	}
	g.pc += 4
	if g.pc >= g.p.AddrOffset+hotCodeBase+hotCodeSize || g.pc < g.p.AddrOffset+hotCodeBase {
		g.pc = g.p.AddrOffset + hotCodeBase
	}
	return g.pc
}

func (g *Generator) hotLine() uint64 {
	return g.p.AddrOffset + hotDataBase + uint64(g.rng.Intn(hotDataSize/lineBytes))*lineBytes
}

func (g *Generator) churnLine(base uint64, size int64) uint64 {
	return g.p.AddrOffset + base + uint64(g.rng.Int63n(size/lineBytes))*lineBytes
}

// Next implements trace.Source. The stream is infinite; wrap with
// trace.Limit.
func (g *Generator) Next() (isa.Inst, bool) {
	if g.qHead < len(g.queue) {
		in := g.queue[g.qHead]
		g.qHead++
		if g.qHead == len(g.queue) {
			g.queue = g.queue[:0]
			g.qHead = 0
		}
		g.tick()
		return in, true
	}

	// Scheduled multi-instruction events.
	if g.nextLock == 0 {
		g.nextLock = g.interval(g.p.LocksPer1000)
		g.emitCriticalSection()
		return g.Next()
	}
	if g.nextMembar == 0 {
		g.nextMembar = g.interval(g.p.MembarPer1000)
		g.push(isa.Inst{Op: isa.OpMembar, PC: g.nextPC()})
		return g.Next()
	}
	if g.nextMispred == 0 {
		g.nextMispred = g.interval(g.p.MispredPer1000)
		in := isa.Inst{Op: isa.OpBranch, PC: g.nextPC(), Src1: g.lastLoadDst, Flags: isa.FlagMispredict}
		// A hard-to-predict branch: random direction, so the modelled
		// gshare mispredicts it about half the time too.
		if g.rng.Float64() < 0.5 {
			in.Flags |= isa.FlagTaken
		}
		g.push(in)
		return g.Next()
	}
	if g.nextColdCode == 0 {
		g.nextColdCode = g.interval(g.p.InstMissPer100 * 10)
		// Jump to a fresh-ish cold code line and execute a few
		// instructions there: one off-chip instruction fetch. The hot
		// sweep resumes where it left off afterwards.
		g.coldPC = g.churnLine(coldCodeBase, g.p.CodeWSBytes) - 4
		g.coldLeft = 4 + g.rng.Intn(8)
	}

	in := g.emitPlain()
	g.tick()
	return in, true
}

// ReadBatch implements trace.BatchSource, producing the exact stream
// Next produces — same event ordering, same rand draws — with the
// per-instruction work hoisted: while the emission queue is empty and
// no scheduled event is due for k instructions, it emits k background
// instructions straight into dst and retires k from every countdown in
// one step. emitPlain never reads the countdowns, so a run of plain
// emissions followed by one bulk decrement is indistinguishable from
// the tick-per-instruction path.
func (g *Generator) ReadBatch(dst []isa.Inst) int {
	n := 0
	for n < len(dst) {
		if g.qHead < len(g.queue) ||
			g.nextLock == 0 || g.nextMembar == 0 ||
			g.nextMispred == 0 || g.nextColdCode == 0 {
			// Queue drain or an event boundary: take the general path
			// one instruction at a time until the stream is plain again.
			in, ok := g.Next()
			if !ok {
				return n
			}
			dst[n] = in
			n++
			continue
		}
		k := int64(len(dst) - n)
		if g.nextLock > 0 && g.nextLock < k {
			k = g.nextLock
		}
		if g.nextMembar > 0 && g.nextMembar < k {
			k = g.nextMembar
		}
		if g.nextMispred > 0 && g.nextMispred < k {
			k = g.nextMispred
		}
		if g.nextColdCode > 0 && g.nextColdCode < k {
			k = g.nextColdCode
		}
		// Mirror of emitPlain with the dispatch expanded in place — the
		// rand draws, register rotation and PC advance happen in exactly
		// the same order — so the majority ALU/branch cases build their
		// Inst straight into dst with no call. Keep in sync with
		// emitPlain.
		for i := int64(0); i < k; i++ {
			r := g.rng.Float64()
			switch {
			case r < g.pStore:
				dst[n] = g.emitStore()
			case r < g.pStore+g.pLoad:
				dst[n] = g.emitLoad()
			case r < g.pStore+g.pLoad+g.pBranch:
				in := isa.Inst{Op: isa.OpBranch, PC: g.nextPC(), Src1: g.lastLoadDst}
				if g.branchTaken(in.PC) {
					in.Flags |= isa.FlagTaken
				}
				dst[n] = in
			default:
				d := g.nextReg()
				src := isa.Reg(0)
				if g.rng.Float64() < 0.3 {
					src = g.lastLoadDst
				}
				dst[n] = isa.Inst{Op: isa.OpALU, PC: g.nextPC(), Dst: d, Src1: src}
			}
			n++
		}
		if g.nextLock > 0 {
			g.nextLock -= k
		}
		if g.nextMembar > 0 {
			g.nextMembar -= k
		}
		if g.nextMispred > 0 {
			g.nextMispred -= k
		}
		if g.nextColdCode > 0 {
			g.nextColdCode -= k
		}
	}
	return n
}

// SizeHint implements trace.Sized. The stream is infinite; reporting a
// huge hint lets trace.Limit report its budget as the exact count.
func (g *Generator) SizeHint() int64 { return math.MaxInt64 }

// tick advances the scheduled-event countdowns by one instruction.
func (g *Generator) tick() {
	if g.nextLock > 0 {
		g.nextLock--
	}
	if g.nextMembar > 0 {
		g.nextMembar--
	}
	if g.nextMispred > 0 {
		g.nextMispred--
	}
	if g.nextColdCode > 0 {
		g.nextColdCode--
	}
}

func (g *Generator) push(ins ...isa.Inst) {
	g.queue = append(g.queue, ins...)
}

// emitPlain produces one instruction of the background mix.
func (g *Generator) emitPlain() isa.Inst {
	r := g.rng.Float64()
	switch {
	case r < g.pStore:
		return g.emitStore()
	case r < g.pStore+g.pLoad:
		return g.emitLoad()
	case r < g.pStore+g.pLoad+g.pBranch:
		in := isa.Inst{Op: isa.OpBranch, PC: g.nextPC(), Src1: g.lastLoadDst}
		if g.branchTaken(in.PC) {
			in.Flags |= isa.FlagTaken
		}
		return in
	default:
		dst := g.nextReg()
		src := isa.Reg(0)
		if g.rng.Float64() < 0.3 {
			src = g.lastLoadDst
		}
		return isa.Inst{Op: isa.OpALU, PC: g.nextPC(), Dst: dst, Src1: src}
	}
}

func (g *Generator) emitStore() isa.Inst {
	in := isa.Inst{Op: isa.OpStore, PC: g.nextPC(), Size: 8, Src1: g.nextReg()}
	switch {
	case g.storeBurstLeft > 0:
		g.emitBurstStore(&in)
	case g.rng.Float64() < g.scatterBurstProb:
		g.startStoreBurst()
		g.emitBurstStore(&in)
	default:
		in.Addr = g.hotLine() + uint64(g.rng.Intn(8))*8
	}
	return in
}

func (g *Generator) emitBurstStore(in *isa.Inst) {
	g.storeBurstLeft--
	in.Addr = g.storeBurstAddr
	g.storeBurstAddr += g.storeBurstStep
	if g.storeBurstShrd {
		in.Flags |= isa.FlagShared
	}
}

func (g *Generator) storesPerLine() int {
	if g.p.StoresPerLine < 1 {
		return 1
	}
	return g.p.StoresPerLine
}

func (g *Generator) startStoreBurst() {
	lines := g.geometric(g.p.StoreBurstMean)
	g.storeBurstLeft = lines * g.storesPerLine()
	g.storeBurstShrd = g.rng.Float64() < g.p.SharedStoreFrac
	g.storeBurstAddr = g.nextChurnBurst(g.storeBurstShrd, lines)
}

// nextChurnBurst returns the base line of the next store-miss burst,
// advancing the cyclic sweep cursor of the private or shared churn
// region by the burst footprint.
func (g *Generator) nextChurnBurst(shared bool, lines int) uint64 {
	span := uint64(lines) * lineBytes
	if shared {
		base := g.p.AddrOffset + sharedWSBase + g.sharedCursor
		g.sharedCursor += span
		if g.sharedCursor >= uint64(g.p.SharedWSBytes) {
			g.sharedCursor = 0
		}
		return base
	}
	base := g.p.AddrOffset + storeWSBase + g.storeCursor
	g.storeCursor += span
	if g.storeCursor >= uint64(g.p.StoreWSBytes) {
		g.storeCursor = 0
	}
	return base
}

func (g *Generator) emitLoad() isa.Inst {
	in := isa.Inst{Op: isa.OpLoad, PC: g.nextPC(), Size: 8, Dst: g.nextReg()}
	miss := false
	switch {
	case g.loadBurstLeft > 0:
		g.loadBurstLeft--
		in.Addr = g.loadBurstAddr
		g.loadBurstAddr += lineBytes
		miss = true
	case g.rng.Float64() < g.loadBurstProb:
		g.loadBurstLeft = g.geometric(g.p.LoadBurstMean) - 1
		g.loadBurstAddr = g.churnLine(loadWSBase, g.p.LoadWSBytes)
		in.Addr = g.loadBurstAddr
		g.loadBurstAddr += lineBytes
		miss = true
	default:
		in.Addr = g.hotLine() + uint64(g.rng.Intn(8))*8
	}
	if miss {
		// Pointer chasing: some missing loads depend on the previous
		// missing load's value.
		if g.lastMissDst != 0 && g.rng.Float64() < g.p.DepLoadFrac {
			in.Src1 = g.lastMissDst
		}
		g.lastMissDst = in.Dst
	}
	g.lastLoadDst = in.Dst
	return in
}

// emitCriticalSection queues a lock acquire (casa under TSO), a short
// body, and the releasing store — optionally preceded by a burst of
// missing stores, reproducing the paper's observation that most
// expensive missing stores immediately precede lock acquires.
func (g *Generator) emitCriticalSection() {
	if g.rng.Float64() < g.preBurstProb {
		lines := g.geometric(g.p.StoreBurstMean)
		shared := g.rng.Float64() < g.p.SharedStoreFrac
		base := g.nextChurnBurst(shared, lines)
		var fl isa.Flags
		if shared {
			fl = isa.FlagShared
		}
		for i := 0; i < lines*g.storesPerLine(); i++ {
			g.push(isa.Inst{
				Op: isa.OpStore, PC: g.nextPC(), Size: 8,
				Addr: base + uint64(i)*g.storeBurstStep, Src1: g.nextReg(), Flags: fl,
			})
		}
	}
	lock := g.p.AddrOffset + lockBase + uint64(g.rng.Intn(lockCount))*lineBytes
	g.push(isa.Inst{
		Op: isa.OpCASA, PC: g.nextPC(), Addr: lock, Size: 8,
		Dst: g.nextReg(), Flags: isa.FlagLockAcquire,
	})
	for i := 0; i < critBodyLen; i++ {
		r := g.rng.Float64()
		switch {
		case r < 0.30:
			g.push(isa.Inst{Op: isa.OpLoad, PC: g.nextPC(), Addr: g.hotLine(), Size: 8, Dst: g.nextReg()})
		case r < 0.45:
			g.push(isa.Inst{Op: isa.OpStore, PC: g.nextPC(), Addr: g.hotLine(), Size: 8, Src1: g.nextReg()})
		default:
			g.push(isa.Inst{Op: isa.OpALU, PC: g.nextPC(), Dst: g.nextReg()})
		}
	}
	g.push(isa.Inst{
		Op: isa.OpStore, PC: g.nextPC(), Addr: lock, Size: 8,
		Src1: g.nextReg(), Flags: isa.FlagLockRelease,
	})
}
