package workload

import (
	"math"
	"testing"

	"storemlp/internal/cache"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
)

func TestParamsValidate(t *testing.T) {
	for _, p := range All(1) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		if err := p.Traffic().Validate(); err != nil {
			t.Errorf("%s traffic invalid: %v", p.Name, err)
		}
	}
	bad := Database(1)
	bad.StoreMissPer100 = bad.StorePer100 + 1
	if bad.Validate() == nil {
		t.Error("miss rate > access rate should be invalid")
	}
	bad = Database(1)
	bad.PreLockFrac = 1.5
	if bad.Validate() == nil {
		t.Error("fraction > 1 should be invalid")
	}
	bad = Database(1)
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("empty name should be invalid")
	}
}

func TestParamsValidateRejectsNegativeRates(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{"negative lock rate", func(p *Params) { p.LocksPer1000 = -1 }},
		{"negative membar rate", func(p *Params) { p.MembarPer1000 = -0.1 }},
		{"negative mispredict rate", func(p *Params) { p.MispredPer1000 = -2 }},
		{"negative snoop rate", func(p *Params) { p.SnoopsPerKiloInst = -0.5 }},
		{"negative base CPI", func(p *Params) { p.OnChipBaseCPI = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Database(1)
			tt.mut(&p)
			if p.Validate() == nil {
				t.Error("want error, got nil")
			}
		})
	}
	// Seed and AddrOffset are unconstrained (storemlpvet:novalidate).
	p := Database(-99)
	p.AddrOffset = 1 << 44
	if err := p.Validate(); err != nil {
		t.Errorf("any seed/offset should be valid: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"database", "tpcw", "specjbb", "specweb"} {
		p, err := ByName(name, 7)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if p.Name != name || p.Seed != 7 {
			t.Errorf("ByName(%s) = %+v", name, p)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name should error")
	}
}

func TestNewGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGenerator should panic on invalid params")
		}
	}()
	p := Database(1)
	p.StoreWSBytes = 0
	NewGenerator(p)
}

func TestGeneratorDeterminismAndReset(t *testing.T) {
	g := NewGenerator(TPCW(42))
	a := trace.Collect(trace.Limit(g, 5000))
	g.Reset()
	b := trace.Collect(trace.Limit(g, 5000))
	g2 := NewGenerator(TPCW(42))
	c := trace.Collect(trace.Limit(g2, 5000))
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("Reset diverged at %d: %v vs %v", i, a.Insts[i], b.Insts[i])
		}
		if a.Insts[i] != c.Insts[i] {
			t.Fatalf("fresh generator diverged at %d", i)
		}
	}
	// Different seeds give different streams.
	g3 := NewGenerator(TPCW(43))
	d := trace.Collect(trace.Limit(g3, 5000))
	same := true
	for i := range a.Insts {
		if a.Insts[i] != d.Insts[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestInstructionMix(t *testing.T) {
	for _, p := range All(11) {
		g := NewGenerator(p)
		s := trace.Gather(trace.Limit(g, 400_000))
		storeFreq := s.Per100(s.Stores())
		if math.Abs(storeFreq-p.StorePer100) > 0.12*p.StorePer100 {
			t.Errorf("%s: store freq = %.2f/100, want ~%.2f", p.Name, storeFreq, p.StorePer100)
		}
		loadFreq := s.Per100(s.Loads())
		if math.Abs(loadFreq-p.LoadPer100) > 0.15*p.LoadPer100 {
			t.Errorf("%s: load freq = %.2f/100, want ~%.2f", p.Name, loadFreq, p.LoadPer100)
		}
		// Lock density.
		locksPer1000 := 1000 * float64(s.LockAcquire) / float64(s.Total)
		if p.LocksPer1000 > 0 && math.Abs(locksPer1000-p.LocksPer1000) > 0.3*p.LocksPer1000 {
			t.Errorf("%s: locks = %.2f/1000, want ~%.2f", p.Name, locksPer1000, p.LocksPer1000)
		}
		if s.LockAcquire != s.LockRelease {
			t.Errorf("%s: unbalanced locks %d/%d", p.Name, s.LockAcquire, s.LockRelease)
		}
	}
}

// measureMissRates replays a generator stream through the default cache
// hierarchy and reports off-chip misses per 100 instructions, after a
// warmup prefix.
func measureMissRates(t *testing.T, p Params, warm, measure int64) (store, load, inst float64) {
	t.Helper()
	h := cache.NewHierarchy(cache.DefaultConfig())
	g := NewGenerator(p)
	run := func(n int64) (st, ld, in, tot int64) {
		src := trace.Limit(g, n)
		base := h.Stats
		count := int64(0)
		for {
			ins, ok := src.Next()
			if !ok {
				break
			}
			count++
			h.Fetch(ins.PC)
			shared := ins.Flags.Has(isa.FlagShared)
			if ins.Op.IsLoad() {
				h.Load(ins.Addr, shared)
			}
			if ins.Op.IsStore() {
				h.Store(ins.Addr, shared)
			}
		}
		return h.Stats.StoreOffChip - base.StoreOffChip,
			h.Stats.LoadOffChip - base.LoadOffChip,
			h.Stats.FetchOffChip - base.FetchOffChip,
			count
	}
	run(warm)
	st, ld, in, tot := run(measure)
	return 100 * float64(st) / float64(tot),
		100 * float64(ld) / float64(tot),
		100 * float64(in) / float64(tot)
}

// Table 1 calibration: generated traces must reproduce the paper's L2
// miss rates within tolerance.
func TestTable1Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a few million instructions")
	}
	for _, p := range All(3) {
		st, ld, in := measureMissRates(t, p, 600_000, 1_500_000)
		check := func(name string, got, want, tol float64) {
			if math.Abs(got-want) > tol*want+0.01 {
				t.Errorf("%s: %s miss = %.3f/100, want ~%.3f", p.Name, name, got, want)
			}
		}
		check("store", st, p.StoreMissPer100, 0.35)
		check("load", ld, p.LoadMissPer100, 0.35)
		check("inst", in, p.InstMissPer100, 0.5)
	}
}

func TestStoreMissClustering(t *testing.T) {
	// Database store misses come in multi-line bursts; SPECjbb's are
	// mostly singletons. Measure mean run length of consecutive
	// churn-region stores.
	runLen := func(p Params) float64 {
		g := NewGenerator(p)
		src := trace.Limit(g, 500_000)
		var runs, missStores int
		inRun := false
		for {
			in, ok := src.Next()
			if !ok {
				break
			}
			if in.Op != isa.OpStore {
				continue
			}
			churn := in.Addr >= loadWSBase
			if churn {
				missStores++
				if !inRun {
					runs++
					inRun = true
				}
			} else {
				inRun = false
			}
		}
		if runs == 0 {
			return 0
		}
		return float64(missStores) / float64(runs)
	}
	db := runLen(Database(5))
	jbb := runLen(SPECjbb(5))
	if db < 2.5 {
		t.Errorf("database burst length = %.2f, want >= 2.5", db)
	}
	if jbb > 1.6 {
		t.Errorf("specjbb burst length = %.2f, want <= 1.6", jbb)
	}
	if db <= jbb {
		t.Errorf("database bursts (%.2f) should exceed specjbb (%.2f)", db, jbb)
	}
}

func TestSharedFlagsAndRegions(t *testing.T) {
	p := TPCW(9)
	g := NewGenerator(p)
	src := trace.Limit(g, 300_000)
	var sharedStores, churnStores int
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if in.Op != isa.OpStore {
			continue
		}
		if in.Addr >= sharedWSBase {
			if !in.Flags.Has(isa.FlagShared) {
				t.Fatal("shared-region store missing FlagShared")
			}
			if in.Addr >= sharedWSBase+uint64(p.SharedWSBytes) {
				t.Fatalf("shared store outside region: %#x", in.Addr)
			}
			sharedStores++
		} else if in.Addr >= storeWSBase {
			churnStores++
		}
	}
	if sharedStores == 0 {
		t.Error("no shared stores generated")
	}
	frac := float64(sharedStores) / float64(sharedStores+churnStores)
	if math.Abs(frac-p.SharedStoreFrac) > 0.5*p.SharedStoreFrac {
		t.Errorf("shared store fraction = %.3f, want ~%.3f", frac, p.SharedStoreFrac)
	}
}

func TestCriticalSectionShape(t *testing.T) {
	g := NewGenerator(SPECjbb(13))
	src := trace.Limit(g, 200_000)
	insts := trace.Collect(src)
	found := 0
	for i, in := range insts.Insts {
		if in.Op != isa.OpCASA {
			continue
		}
		found++
		if !in.Flags.Has(isa.FlagLockAcquire) {
			t.Fatal("casa without acquire flag")
		}
		// A release store to the same address must follow.
		ok := false
		for j := i + 1; j < len(insts.Insts) && j < i+40; j++ {
			rel := insts.Insts[j]
			if rel.Op == isa.OpStore && rel.Addr == in.Addr {
				if !rel.Flags.Has(isa.FlagLockRelease) {
					t.Fatal("lock release store missing flag")
				}
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("no release found for casa at %d", i)
		}
	}
	if found == 0 {
		t.Error("no critical sections generated")
	}
}

func TestMispredictsGenerated(t *testing.T) {
	g := NewGenerator(SPECweb(17))
	s := trace.Gather(trace.Limit(g, 300_000))
	per1000 := 1000 * float64(s.Mispredicts) / float64(s.Total)
	p := SPECweb(17)
	if math.Abs(per1000-p.MispredPer1000) > 0.35*p.MispredPer1000 {
		t.Errorf("mispredicts = %.2f/1000, want ~%.2f", per1000, p.MispredPer1000)
	}
}

func TestRegisterBounds(t *testing.T) {
	g := NewGenerator(Database(23))
	src := trace.Limit(g, 100_000)
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if int(in.Dst) >= isa.RegCount || int(in.Src1) >= isa.RegCount || int(in.Src2) >= isa.RegCount {
			t.Fatalf("register out of range: %v", in)
		}
		if !in.Op.Valid() {
			t.Fatalf("invalid op: %v", in)
		}
		if in.Op.IsMem() && in.Size == 0 {
			t.Fatalf("memory op with zero size: %v", in)
		}
	}
}
