// Package workload synthesizes dynamic instruction streams that are
// statistically calibrated to the four commercial workloads of the
// paper: a full-scale database/OLTP workload, TPC-W, SPECjbb2000 and
// SPECweb99.
//
// The paper drove MLPsim with traces captured from real systems on a
// full-system simulator; those traces are proprietary, so this package
// substitutes generators matched to the published first-order
// statistics (Table 1 plus the behavioural characteristics discussed in
// §5): instruction mix, L2 store/load/instruction miss rates, store-miss
// clustering, critical-section (lock) density, the placement of store
// misses ahead of lock acquires, dependent-load depth, shared-data
// fraction, and remote coherence traffic intensity. DESIGN.md records
// the substitution argument.
package workload

import (
	"fmt"

	"storemlp/internal/coherence"
)

// Address-space layout. Regions are disjoint so each access class has an
// independently tunable miss behaviour.
const (
	hotCodeBase  = 0x0000_0000_0010_0000 // hot code: fits in L2
	coldCodeBase = 0x0000_0001_0000_0000 // cold code: cycled, misses L2
	hotDataBase  = 0x0000_0000_0200_0000 // hot data: fits in L2
	lockBase     = 0x0000_0000_0300_0000 // lock words (hot)
	loadWSBase   = 0x0000_0002_0000_0000 // load churn: misses L2
	storeWSBase  = 0x0000_0004_0000_0000 // private store churn
	sharedWSBase = 0x0000_0006_0000_0000 // shared store churn (snooped)

	lineBytes   = 64
	hotCodeSize = 512 << 10
	hotDataSize = 256 << 10
	lockCount   = 64
	critBodyLen = 12 // instructions inside a critical section
)

// Params calibrates one workload generator.
type Params struct {
	Name string
	Seed int64 // storemlpvet:novalidate (any seed is valid)

	// Instruction mix, per 100 instructions (Table 1 gives store
	// frequency; load and branch frequencies are typical for the class).
	StorePer100  float64
	LoadPer100   float64
	BranchPer100 float64

	// Off-chip miss targets, per 100 instructions (Table 1). The
	// generator converts these to churn-region probabilities.
	StoreMissPer100 float64
	LoadMissPer100  float64
	InstMissPer100  float64

	// Miss clustering: mean burst length (geometric, in cache LINES) of
	// consecutive missing stores / loads. Large bursts mean high
	// intrinsic MLP.
	StoreBurstMean float64
	LoadBurstMean  float64

	// StoresPerLine is the number of sub-line stores a churn burst
	// writes per 64 B line (log-style sequential writes). Values above 1
	// give store coalescing something to merge: only the first store to
	// each line misses, but every store consumes a store-queue entry
	// unless coalesced. 0 is treated as 1.
	StoresPerLine int

	// Critical sections (lock acquire/release pairs) per 1000
	// instructions, and the fraction of store-miss bursts that are
	// emitted immediately before a lock acquire (the paper's
	// "missing stores preceding the serializing instruction").
	LocksPer1000 float64
	PreLockFrac  float64
	// Membars per 1000 instructions (non-lock serialization).
	MembarPer1000 float64

	// Mispredicted branches per 1000 instructions whose condition hangs
	// off the most recent load.
	MispredPer1000 float64

	// DepLoadFrac is the fraction of missing loads whose address depends
	// on the previous missing load (pointer chasing), limiting load MLP.
	DepLoadFrac float64

	// Working-set sizes for the churn regions; they determine how much
	// address space the SMAC must cover (Figure 5 sizing) and L2 reuse.
	StoreWSBytes int64
	LoadWSBytes  int64
	CodeWSBytes  int64

	// SharedStoreFrac is the fraction of churn stores that target the
	// shared region (subject to cross-chip invalidation).
	SharedStoreFrac float64
	// SharedWSBytes sizes the shared churn region.
	SharedWSBytes int64
	// SnoopsPerKiloInst is the remote conflicting-access rate per 1000
	// local instructions per remote node (drives Figure 6).
	SnoopsPerKiloInst float64
	// SnoopStoreFrac is the remote store (request-to-own) share.
	SnoopStoreFrac float64

	// OnChipBaseCPI anchors the analytical CPIon-chip model (Table 3).
	OnChipBaseCPI float64

	// AddrOffset shifts every address (code and data) the generator
	// produces. Used to give a co-scheduled copy of the workload a
	// disjoint address space, as separate processes would have.
	AddrOffset uint64 // storemlpvet:novalidate (any offset is valid)
}

// Validate checks the calibration for contradictions.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if p.StorePer100 <= 0 || p.LoadPer100 <= 0 {
		return fmt.Errorf("workload %s: non-positive instruction mix", p.Name)
	}
	if p.StorePer100+p.LoadPer100+p.BranchPer100 >= 100 {
		return fmt.Errorf("workload %s: mix exceeds 100%%", p.Name)
	}
	if p.StoreMissPer100 > p.StorePer100 || p.LoadMissPer100 > p.LoadPer100 {
		return fmt.Errorf("workload %s: miss rate exceeds access rate", p.Name)
	}
	if p.StoreMissPer100 < 0 || p.LoadMissPer100 < 0 || p.InstMissPer100 < 0 {
		return fmt.Errorf("workload %s: negative miss rate", p.Name)
	}
	if p.StoreBurstMean < 1 || p.LoadBurstMean < 1 {
		return fmt.Errorf("workload %s: burst means must be >= 1", p.Name)
	}
	switch p.StoresPerLine {
	case 0, 1, 2, 4, 8:
	default:
		return fmt.Errorf("workload %s: StoresPerLine %d must divide the line evenly (1,2,4,8)",
			p.Name, p.StoresPerLine)
	}
	if p.PreLockFrac < 0 || p.PreLockFrac > 1 || p.SharedStoreFrac < 0 || p.SharedStoreFrac > 1 ||
		p.DepLoadFrac < 0 || p.DepLoadFrac > 1 || p.SnoopStoreFrac < 0 || p.SnoopStoreFrac > 1 {
		return fmt.Errorf("workload %s: fraction outside [0,1]", p.Name)
	}
	if p.StoreWSBytes <= 0 || p.LoadWSBytes <= 0 || p.CodeWSBytes <= 0 || p.SharedWSBytes <= 0 {
		return fmt.Errorf("workload %s: non-positive working set", p.Name)
	}
	if p.LocksPer1000 < 0 || p.MembarPer1000 < 0 || p.MispredPer1000 < 0 {
		return fmt.Errorf("workload %s: negative event rate", p.Name)
	}
	if p.SnoopsPerKiloInst < 0 {
		return fmt.Errorf("workload %s: negative snoop rate %v", p.Name, p.SnoopsPerKiloInst)
	}
	if p.OnChipBaseCPI < 0 {
		return fmt.Errorf("workload %s: negative base CPI %v", p.Name, p.OnChipBaseCPI)
	}
	return nil
}

// Traffic returns the remote coherence traffic specification implied by
// the calibration, for systems with more than one node.
func (p Params) Traffic() coherence.TrafficSpec {
	return coherence.TrafficSpec{
		Regions: []coherence.Region{
			{Base: sharedWSBase + p.AddrOffset, Size: uint64(p.SharedWSBytes)},
		},
		EventsPerKiloInst: p.SnoopsPerKiloInst,
		StoreFraction:     p.SnoopStoreFrac,
		LineBytes:         lineBytes,
	}
}

// Database is the full-scale OLTP database workload: the highest store
// frequency (10.09/100) and high store AND load miss rates, with heavy
// store-miss clustering (log and buffer-pool writes) and comparatively
// low lock density, so its store performance is limited by store queue
// capacity more than by serializing instructions (Figures 2-4).
func Database(seed int64) Params {
	return Params{
		Name: "database", Seed: seed,
		StorePer100: 10.09, LoadPer100: 22.0, BranchPer100: 14.0,
		StoreMissPer100: 0.36, LoadMissPer100: 0.57, InstMissPer100: 0.09,
		StoreBurstMean: 3.6, LoadBurstMean: 1.6, StoresPerLine: 4,
		LocksPer1000: 0.9, PreLockFrac: 0.15, MembarPer1000: 0.10,
		MispredPer1000: 4.0, DepLoadFrac: 0.40,
		StoreWSBytes: 96 << 20, LoadWSBytes: 192 << 20, CodeWSBytes: 24 << 20,
		SharedStoreFrac: 0.10, SharedWSBytes: 4 << 20,
		SnoopsPerKiloInst: 0.35, SnoopStoreFrac: 0.75,
		OnChipBaseCPI: 0.49,
	}
}

// TPCW is the transactional web benchmark: store misses dominate its
// off-chip CPI (46% without prefetching), load misses are rare, and
// store serialize is its dominant window termination condition.
func TPCW(seed int64) Params {
	return Params{
		Name: "tpcw", Seed: seed,
		StorePer100: 7.28, LoadPer100: 20.0, BranchPer100: 15.0,
		StoreMissPer100: 0.12, LoadMissPer100: 0.06, InstMissPer100: 0.06,
		StoreBurstMean: 1.9, LoadBurstMean: 1.4, StoresPerLine: 2,
		LocksPer1000: 1.6, PreLockFrac: 0.45, MembarPer1000: 0.05,
		MispredPer1000: 4.5, DepLoadFrac: 0.20,
		StoreWSBytes: 48 << 20, LoadWSBytes: 64 << 20, CodeWSBytes: 16 << 20,
		SharedStoreFrac: 0.15, SharedWSBytes: 3 << 20,
		SnoopsPerKiloInst: 0.30, SnoopStoreFrac: 0.75,
		OnChipBaseCPI: 0.51,
	}
}

// SPECjbb is the server-side Java benchmark: moderate load miss rate,
// low store miss rate, but the majority of its missing stores sit
// immediately ahead of lock acquires, so serializing instructions — not
// queue capacity — limit its store MLP.
func SPECjbb(seed int64) Params {
	return Params{
		Name: "specjbb", Seed: seed,
		StorePer100: 7.52, LoadPer100: 23.0, BranchPer100: 16.0,
		StoreMissPer100: 0.07, LoadMissPer100: 0.25, InstMissPer100: 0.002,
		StoreBurstMean: 1.2, LoadBurstMean: 1.15,
		LocksPer1000: 2.6, PreLockFrac: 0.60, MembarPer1000: 0.02,
		MispredPer1000: 3.5, DepLoadFrac: 0.45,
		StoreWSBytes: 40 << 20, LoadWSBytes: 96 << 20, CodeWSBytes: 4 << 20,
		SharedStoreFrac: 0.08, SharedWSBytes: 2 << 20,
		SnoopsPerKiloInst: 0.20, SnoopStoreFrac: 0.7,
		OnChipBaseCPI: 0.32,
	}
}

// SPECweb is the web-server benchmark: like SPECjbb its store MLP is
// limited by serializing instructions, with a higher store miss rate
// and the highest on-chip CPI (kernel-heavy).
func SPECweb(seed int64) Params {
	return Params{
		Name: "specweb", Seed: seed,
		StorePer100: 7.20, LoadPer100: 20.0, BranchPer100: 15.0,
		StoreMissPer100: 0.13, LoadMissPer100: 0.14, InstMissPer100: 0.01,
		StoreBurstMean: 1.25, LoadBurstMean: 1.15,
		LocksPer1000: 2.2, PreLockFrac: 0.55, MembarPer1000: 0.08,
		MispredPer1000: 5.0, DepLoadFrac: 0.35,
		StoreWSBytes: 24 << 20, LoadWSBytes: 64 << 20, CodeWSBytes: 8 << 20,
		SharedStoreFrac: 0.12, SharedWSBytes: 2 << 20,
		SnoopsPerKiloInst: 0.30, SnoopStoreFrac: 0.8,
		OnChipBaseCPI: 0.765,
	}
}

// All returns the paper's four workloads in presentation order.
func All(seed int64) []Params {
	return []Params{Database(seed), TPCW(seed), SPECjbb(seed), SPECweb(seed)}
}

// ByName returns the named workload parameters.
func ByName(name string, seed int64) (Params, error) {
	for _, p := range All(seed) {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown workload %q (have database, tpcw, specjbb, specweb)", name)
}
