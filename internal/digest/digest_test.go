package digest

import (
	"strings"
	"testing"
)

// reordered pairs: identical field sets, opposite declaration order.
type abc struct {
	Alpha int
	Beta  string
	Gamma float64
	Inner inner
}

type cba struct {
	Inner inner
	Gamma float64
	Beta  string
	Alpha int
}

type inner struct {
	X uint64
	Y bool
}

func TestFieldOrderInsensitive(t *testing.T) {
	a := abc{Alpha: 7, Beta: "b", Gamma: 2.5, Inner: inner{X: 9, Y: true}}
	b := cba{Alpha: 7, Beta: "b", Gamma: 2.5, Inner: inner{X: 9, Y: true}}
	if Canonical(a) != Canonical(b) {
		t.Fatalf("field order changed encoding:\n a=%s\n b=%s", Canonical(a), Canonical(b))
	}
	if Sum(a) != Sum(b) {
		t.Fatalf("field order changed digest: %s vs %s", Sum(a), Sum(b))
	}
}

func TestMapIterationInsensitive(t *testing.T) {
	m1 := map[string]int{}
	m2 := map[string]int{}
	keys := []string{"tpcw", "database", "specjbb", "specweb", "a", "b", "c", "d", "e", "f", "g", "h"}
	for i, k := range keys {
		m1[k] = i
	}
	for i := len(keys) - 1; i >= 0; i-- {
		m2[keys[i]] = i
	}
	want := Canonical(m1)
	if got := Canonical(m2); got != want {
		t.Fatalf("insertion order changed encoding:\n %s\n %s", want, got)
	}
	// Re-encoding the same map must be bit-stable despite Go's randomized
	// map iteration.
	for i := 0; i < 200; i++ {
		if got := Canonical(m1); got != want {
			t.Fatalf("iteration %d: unstable encoding:\n %s\n %s", i, want, got)
		}
	}
}

func TestScalarFormats(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{true, "true"},
		{int64(-3), "-3"},
		{uint8(255), "255"},
		{"x=1;y", `"x=1;y"`},
		{1.1, "1.1"}, // round-trip float formatting, no %v truncation
		{[]int{1, 2}, "[1,2]"},
		{[]int(nil), "nil"},
		{(*int)(nil), "nil"},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%#v) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestValueChangesDigest(t *testing.T) {
	base := abc{Alpha: 1, Beta: "b", Gamma: 0.25, Inner: inner{X: 4, Y: false}}
	variants := []abc{
		{Alpha: 2, Beta: "b", Gamma: 0.25, Inner: inner{X: 4}},
		{Alpha: 1, Beta: "c", Gamma: 0.25, Inner: inner{X: 4}},
		{Alpha: 1, Beta: "b", Gamma: 0.26, Inner: inner{X: 4}},
		{Alpha: 1, Beta: "b", Gamma: 0.25, Inner: inner{X: 5}},
		{Alpha: 1, Beta: "b", Gamma: 0.25, Inner: inner{X: 4, Y: true}},
	}
	seen := map[string]bool{Sum(base): true}
	for i, v := range variants {
		d := Sum(v)
		if seen[d] {
			t.Errorf("variant %d: digest collision with an earlier value", i)
		}
		seen[d] = true
	}
}

func TestUnexportedFieldsSkipped(t *testing.T) {
	type hidden struct {
		Exported int
		secret   int
	}
	a := hidden{Exported: 1, secret: 1}
	b := hidden{Exported: 1, secret: 2}
	if Sum(a) != Sum(b) {
		t.Fatal("unexported field leaked into digest")
	}
	if !strings.Contains(Canonical(a), "Exported=1") {
		t.Fatalf("exported field missing from encoding: %s", Canonical(a))
	}
}

func TestUnencodableKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for func value")
		}
	}()
	Canonical(struct{ F func() }{F: func() {}})
}
