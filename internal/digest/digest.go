// Package digest computes stable content digests of configuration
// values, keyed canonically rather than by memory layout: struct fields
// are emitted sorted by name (so reordering fields in a source file
// does not change any digest and two types with the same field sets
// encode identically), map entries are emitted sorted by encoded key
// (so map iteration order never leaks in), and floats are formatted
// with exact round-trip precision. The serving layer uses these digests
// as request-coalescing and result-cache keys, where a spurious
// mismatch costs a redundant simulation and a spurious match serves a
// wrong result — canonicality is therefore correctness, not cosmetics.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Sum returns the hex-encoded SHA-256 of v's canonical encoding.
func Sum(v interface{}) string {
	h := sha256.Sum256([]byte(Canonical(v)))
	return hex.EncodeToString(h[:])
}

// Canonical returns the canonical textual encoding of v. It is
// deterministic across processes and insensitive to struct field order
// and map iteration order. Unexported struct fields are skipped (they
// cannot be read reflectively without unsafe, and configuration blocks
// keep their identity in exported fields).
func Canonical(v interface{}) string {
	var b strings.Builder
	encode(&b, reflect.ValueOf(v))
	return b.String()
}

func encode(b *strings.Builder, v reflect.Value) {
	if !v.IsValid() {
		b.WriteString("nil")
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 32))
	case reflect.Float64:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.Complex64, reflect.Complex128:
		fmt.Fprintf(b, "%v", v.Complex())
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			b.WriteString("nil")
			return
		}
		encode(b, v.Elem())
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			b.WriteString("nil")
			return
		}
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			encode(b, v.Index(i))
		}
		b.WriteByte(']')
	case reflect.Map:
		if v.IsNil() {
			b.WriteString("nil")
			return
		}
		entries := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			var e strings.Builder
			encode(&e, iter.Key())
			e.WriteByte(':')
			encode(&e, iter.Value())
			entries = append(entries, e.String())
		}
		sort.Strings(entries)
		b.WriteString("map{")
		for i, e := range entries {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e)
		}
		b.WriteByte('}')
	case reflect.Struct:
		t := v.Type()
		fields := make([]string, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			var e strings.Builder
			e.WriteString(f.Name)
			e.WriteByte('=')
			encode(&e, v.Field(i))
			fields = append(fields, e.String())
		}
		sort.Strings(fields)
		b.WriteByte('{')
		for i, f := range fields {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(f)
		}
		b.WriteByte('}')
	default:
		// Chan, Func, UnsafePointer: no canonical value identity. Refusing
		// loudly beats digesting an address.
		panic(fmt.Sprintf("digest: cannot canonically encode kind %s", v.Kind()))
	}
}
