package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B
	return New(Params{SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestParamsValidate(t *testing.T) {
	good := Params{SizeBytes: 2 << 20, Ways: 4, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("default L2 params invalid: %v", err)
	}
	if got := good.Sets(); got != 8192 {
		t.Errorf("Sets = %d, want 8192", got)
	}
	bad := []Params{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 1024, Ways: 4, LineBytes: 63},
		{SizeBytes: 1024, Ways: 3, LineBytes: 64}, // sets not power of two
		{SizeBytes: 64, Ways: 4, LineBytes: 64},   // zero sets
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid params")
		}
	}()
	New(Params{SizeBytes: 100, Ways: 3, LineBytes: 7})
}

func TestLookupInsert(t *testing.T) {
	c := small()
	if c.Lookup(0x1000) != Invalid {
		t.Fatal("empty cache should miss")
	}
	c.Insert(0x1000, Exclusive)
	if got := c.Lookup(0x1000); got != Exclusive {
		t.Fatalf("after insert, Lookup = %v", got)
	}
	// Same line, different offset.
	if got := c.Lookup(0x103f); got != Exclusive {
		t.Fatalf("same-line offset Lookup = %v", got)
	}
	// Next line misses.
	if got := c.Lookup(0x1040); got != Invalid {
		t.Fatalf("next line Lookup = %v", got)
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2-way: three lines mapping to one set evict the LRU
	// Set index = (addr>>6) & 3. Addresses 0x0000, 0x0100, 0x0200 all map
	// to set 0 (line numbers 0, 4, 8).
	c.Insert(0x0000, Exclusive)
	c.Insert(0x0100, Exclusive)
	c.Lookup(0x0000) // make 0x0000 MRU
	ev, st, ok := c.Insert(0x0200, Modified)
	if !ok {
		t.Fatal("expected an eviction")
	}
	if ev != 0x0100 || st != Exclusive {
		t.Fatalf("evicted %#x/%v, want 0x100/E", ev, st)
	}
	if c.Probe(0x0000) == Invalid {
		t.Error("MRU line was evicted")
	}
	if c.Probe(0x0200) != Modified {
		t.Error("inserted line missing")
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := small()
	c.Insert(0x40, Shared)
	if _, _, ok := c.Insert(0x40, Modified); ok {
		t.Error("re-insert must not evict")
	}
	if got := c.Probe(0x40); got != Modified {
		t.Errorf("state after re-insert = %v", got)
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d", c.Occupancy())
	}
}

func TestSetStateInvalidate(t *testing.T) {
	c := small()
	if c.SetState(0x40, Modified) {
		t.Error("SetState on absent line should report false")
	}
	c.Insert(0x40, Exclusive)
	if !c.SetState(0x40, Modified) {
		t.Error("SetState on present line should report true")
	}
	if got := c.Invalidate(0x40); got != Modified {
		t.Errorf("Invalidate returned %v", got)
	}
	if got := c.Invalidate(0x40); got != Invalid {
		t.Errorf("double Invalidate returned %v", got)
	}
	if c.Stats.Invalidates != 1 {
		t.Errorf("Invalidates = %d", c.Stats.Invalidates)
	}
}

func TestMESIHelpers(t *testing.T) {
	if !Exclusive.Owned() || !Modified.Owned() {
		t.Error("E and M are owned")
	}
	if Shared.Owned() || Invalid.Owned() {
		t.Error("S and I are not owned")
	}
	names := map[MESI]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", MESI(9): "?"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
	s.Accesses, s.Misses = 4, 1
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

// Property: occupancy never exceeds capacity and a just-inserted line is
// always resident.
func TestCacheOccupancyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := small()
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr, Exclusive)
			if c.Probe(addr) == Invalid {
				return false
			}
			if c.Occupancy() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after inserting k <= ways distinct lines into one set, all
// remain resident (LRU never evicts from a non-full set).
func TestNoEvictionBelowCapacity(t *testing.T) {
	c := small()
	if _, _, ok := c.Insert(0x0000, Exclusive); ok {
		t.Error("first insert must not evict")
	}
	if _, _, ok := c.Insert(0x0100, Exclusive); ok {
		t.Error("second insert into 2-way set must not evict")
	}
}

func TestHierarchyFetch(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r := h.Fetch(0x400000)
	if !r.OffChip || r.L1Hit || r.L2Hit {
		t.Errorf("cold fetch = %+v", r)
	}
	r = h.Fetch(0x400000)
	if !r.L1Hit {
		t.Errorf("warm fetch = %+v", r)
	}
	if h.Stats.Fetches != 2 || h.Stats.FetchOffChip != 1 {
		t.Errorf("stats = %+v", h.Stats)
	}
}

func TestHierarchyLoad(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r := h.Load(0x8000000, false)
	if !r.OffChip {
		t.Errorf("cold load = %+v", r)
	}
	if h.L2.Probe(0x8000000) != Exclusive {
		t.Error("private load should fill E")
	}
	r = h.Load(0x8000000, false)
	if !r.L1Hit {
		t.Errorf("warm load = %+v", r)
	}
	// Shared data fills S.
	h.Load(0x9000000, true)
	if h.L2.Probe(0x9000000) != Shared {
		t.Error("shared load should fill S")
	}
}

func TestHierarchyStoreStates(t *testing.T) {
	h := NewHierarchy(DefaultConfig())

	// Cold store: off-chip, installs M.
	r := h.Store(0xA000000, false)
	if !r.OffChip || r.Upgrade {
		t.Errorf("cold store = %+v", r)
	}
	if h.L2.Probe(0xA000000) != Modified {
		t.Error("store miss should install M")
	}

	// Store to M: on-chip.
	r = h.Store(0xA000000, false)
	if r.OffChip {
		t.Errorf("store to M = %+v", r)
	}

	// Store to E: on-chip, upgrades silently to M.
	h.Load(0xB000000, false) // fills E
	r = h.Store(0xB000000, false)
	if r.OffChip {
		t.Errorf("store to E = %+v", r)
	}
	if h.L2.Probe(0xB000000) != Modified {
		t.Error("store to E should become M")
	}

	// Store to S: ownership upgrade = off-chip.
	h.Load(0xC000000, true) // fills S
	r = h.Store(0xC000000, true)
	if !r.OffChip || !r.Upgrade {
		t.Errorf("store to S = %+v", r)
	}
	if h.Stats.StoreUpgrades != 1 {
		t.Errorf("StoreUpgrades = %d", h.Stats.StoreUpgrades)
	}
}

func TestWriteThroughNoWriteAllocate(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Store(0xD000000, false)
	// no-write-allocate: the L1D must NOT contain the line.
	if h.L1D.Probe(0xD000000) != Invalid {
		t.Error("store must not allocate in L1D")
	}
	// A load allocates it; a subsequent store hits L1 (write-through).
	h.Load(0xD000000, false)
	r := h.Store(0xD000000, false)
	if !r.L1Hit {
		t.Error("store after load should hit L1D (write-through)")
	}
}

func TestPrefetchStore(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.PrefetchStore(0xE000000)
	if h.L2.Probe(0xE000000) != Modified {
		t.Error("prefetch-for-write should install M")
	}
	// The subsequent demand store is now on-chip.
	if r := h.Store(0xE000000, false); r.OffChip {
		t.Errorf("store after prefetch = %+v", r)
	}
	// Prefetching an S line upgrades it.
	h.Load(0xF000000, true)
	h.PrefetchStore(0xF000000)
	if h.L2.Probe(0xF000000) != Modified {
		t.Error("prefetch should upgrade S to M")
	}
	if h.Stats.L2PrefetchReqs != 2 {
		t.Errorf("L2PrefetchReqs = %d", h.Stats.L2PrefetchReqs)
	}
}

func TestSnoops(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Store(0x1000000, false) // M in L2
	if prev := h.SnoopShared(0x1000000); prev != Modified {
		t.Errorf("SnoopShared prev = %v", prev)
	}
	if h.L2.Probe(0x1000000) != Shared {
		t.Error("SnoopShared should demote to S")
	}
	if prev := h.SnoopInvalidate(0x1000000); prev != Shared {
		t.Errorf("SnoopInvalidate prev = %v", prev)
	}
	if h.L2.Probe(0x1000000) != Invalid {
		t.Error("SnoopInvalidate should remove the line")
	}
	if prev := h.SnoopInvalidate(0x7777000); prev != Invalid {
		t.Errorf("snoop on absent line = %v", prev)
	}
}

func TestL2EvictCallback(t *testing.T) {
	// Tiny hierarchy to force evictions quickly.
	cfg := Config{
		L1I:        Params{SizeBytes: 256, Ways: 2, LineBytes: 64},
		L1D:        Params{SizeBytes: 256, Ways: 2, LineBytes: 64},
		L2:         Params{SizeBytes: 512, Ways: 2, LineBytes: 64},
		TLBEntries: 16,
		PageBytes:  4096,
	}
	h := NewHierarchy(cfg)
	var evicted []uint64
	var states []MESI
	h.OnL2Evict = func(addr uint64, st MESI) {
		evicted = append(evicted, addr)
		states = append(states, st)
	}
	// L2 has 4 sets; fill set 0 (stride 256) with 3 modified lines.
	h.Store(0x0000, false)
	h.Store(0x0100, false)
	h.Store(0x0200, false)
	if len(evicted) != 1 || evicted[0] != 0x0000 || states[0] != Modified {
		t.Errorf("evictions = %#v states = %v", evicted, states)
	}
}

func TestTLBCountsMisses(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Load(0x10000000, false)
	h.Load(0x10000040, false) // same page
	if h.Stats.TLBMisses != 1 {
		t.Errorf("TLBMisses = %d, want 1", h.Stats.TLBMisses)
	}
	h.Load(0x20000000, false) // new page
	if h.Stats.TLBMisses != 2 {
		t.Errorf("TLBMisses = %d, want 2", h.Stats.TLBMisses)
	}
}
