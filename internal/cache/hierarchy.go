package cache

// Hierarchy ties together the per-core L1 caches, the shared L2, and the
// TLB of the paper's default configuration, and classifies every access
// as on-chip or off-chip. "Off-chip" means the access requires a
// long-latency transaction beyond the L2: a data fetch from memory, or a
// cross-chip ownership upgrade for a store to a Shared line.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	TLB *Cache // tracks pages; misses are counted but are not epoch events

	pageBytes  int  //storemlp:keep (geometry, fixed at construction)
	fetchShift uint //storemlp:keep copy of L1I.lineShift, keeps Fetch's fast path inlinable

	// Consecutive-duplicate fast paths. Commercial instruction streams
	// touch the same L1I line ~16 times in a row and burst stores walk a
	// line in sub-line steps, so the hierarchy remembers the last line
	// (or page) each structure served and skips the full lookup when the
	// next access repeats it. Collapsing consecutive duplicate touches
	// preserves every observable: the line stays most-recently-used in
	// its set either way, so victim selection, hit/miss outcomes and all
	// HierarchyStats counters are identical — only the redundant LRU
	// bump and the structure's internal access count are elided.
	// Sentinel ^0 means "no valid last access".
	lastFetchLine uint64 // line tag last fetched, resident in L1I
	lastPage      uint64 // page tag last touched, resident in TLB
	lastStoreLine uint64 // line tag last stored, Modified in L2, no
	// intervening L1D or L2 access (loads touch the L1D; L1I-missing
	// fetches, prefetches and snoops touch the L2)
	lastStoreL1 bool // L1D presence of lastStoreLine at that store
	l2Shared    bool // another hierarchy shares the L2: no store fast path

	// OnL2Evict, if non-nil, is called for every valid line evicted from
	// the L2 with its address and pre-eviction state. The Store Miss
	// Accelerator hooks this to capture downgraded Modified lines.
	OnL2Evict func(addr uint64, state MESI)

	// Stats accumulates the per-access-kind counters behind Table 1 and
	// the L2 bandwidth accounting.
	Stats HierarchyStats
}

// HierarchyStats counts accesses and off-chip misses per access kind,
// plus L2 traffic (used to quantify the store-prefetch bandwidth cost
// that motivates the SMAC).
type HierarchyStats struct {
	Fetches        int64
	FetchOffChip   int64
	Loads          int64
	LoadOffChip    int64
	Stores         int64
	StoreOffChip   int64
	StoreUpgrades  int64 // subset of StoreOffChip: S->M ownership upgrades
	TLBMisses      int64
	L2StoreTraffic int64 // store commit requests reaching the L2
	L2PrefetchReqs int64 // additional prefetch-for-write / scout requests
}

// Add returns the counter-wise sum of s and o, for folding statistics
// from sharded runs.
func (s HierarchyStats) Add(o HierarchyStats) HierarchyStats {
	return HierarchyStats{
		Fetches:        s.Fetches + o.Fetches,
		FetchOffChip:   s.FetchOffChip + o.FetchOffChip,
		Loads:          s.Loads + o.Loads,
		LoadOffChip:    s.LoadOffChip + o.LoadOffChip,
		Stores:         s.Stores + o.Stores,
		StoreOffChip:   s.StoreOffChip + o.StoreOffChip,
		StoreUpgrades:  s.StoreUpgrades + o.StoreUpgrades,
		TLBMisses:      s.TLBMisses + o.TLBMisses,
		L2StoreTraffic: s.L2StoreTraffic + o.L2StoreTraffic,
		L2PrefetchReqs: s.L2PrefetchReqs + o.L2PrefetchReqs,
	}
}

// Config sizes a hierarchy.
type Config struct {
	L1I, L1D, L2 Params
	TLBEntries   int
	PageBytes    int
}

// DefaultConfig is the paper's §4.3 hierarchy: 32 KB 4-way L1s, 2 MB
// 4-way shared L2, 64 B lines, 2K-entry TLB with 8 KB pages.
func DefaultConfig() Config {
	return Config{
		L1I:        Params{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		L1D:        Params{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		L2:         Params{SizeBytes: 2 << 20, Ways: 4, LineBytes: 64},
		TLBEntries: 2048,
		PageBytes:  8 << 10,
	}
}

const noLast = ^uint64(0)

// NewHierarchy builds the cache hierarchy.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  New(cfg.L2),
		TLB: New(Params{
			SizeBytes: cfg.TLBEntries * cfg.PageBytes,
			Ways:      4,
			LineBytes: cfg.PageBytes,
		}),
		pageBytes: cfg.PageBytes,
	}
	h.fetchShift = h.L1I.lineShift
	h.clearFastPaths()
	return h
}

// NewSharedHierarchy builds a second core's view of the hierarchy:
// private L1s and TLB, sharing the given L2 — the paper's CMP
// configuration has two single-threaded cores per shared L2. Both views
// lose the store fast path: either core's L2 accesses would invalidate
// the other's cached store outcome.
func NewSharedHierarchy(cfg Config, l2 *Cache) *Hierarchy {
	h := &Hierarchy{
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  l2,
		TLB: New(Params{
			SizeBytes: cfg.TLBEntries * cfg.PageBytes,
			Ways:      4,
			LineBytes: cfg.PageBytes,
		}),
		pageBytes: cfg.PageBytes,
		l2Shared:  true,
	}
	h.fetchShift = h.L1I.lineShift
	h.clearFastPaths()
	return h
}

// Reset empties every level and zeroes the statistics, returning the
// hierarchy to its as-constructed state without reallocating. The store
// fast path is re-enabled and the OnL2Evict hook detached; re-attach any
// shared view (MarkL2Shared) and re-hook OnL2Evict after resetting.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.TLB.Reset()
	h.l2Shared = false
	h.clearFastPaths()
	h.OnL2Evict = nil
	h.Stats = HierarchyStats{}
}

// MarkL2Shared disables the store fast path on a hierarchy whose L2 has
// been attached to a second core's view.
func (h *Hierarchy) MarkL2Shared() {
	h.l2Shared = true
	h.lastStoreLine = noLast
}

func (h *Hierarchy) clearFastPaths() {
	h.lastFetchLine = noLast
	h.lastPage = noLast
	h.lastStoreLine = noLast
	h.lastStoreL1 = false
}

// Result describes one access's interaction with the hierarchy.
type Result struct {
	L1Hit   bool
	L2Hit   bool // valid line found in L2 (any state)
	OffChip bool // required an off-chip transaction
	Upgrade bool // off-chip transaction was an S->M ownership upgrade
}

func (h *Hierarchy) insertL2(addr uint64, state MESI) {
	if ev, st, ok := h.L2.Insert(addr, state); ok && h.OnL2Evict != nil {
		h.OnL2Evict(ev, st)
	}
}

// touchTLB stays small enough to inline into Load and Store so the
// same-page repeat costs a shift and a compare, no call.
//
//storemlp:noalloc
//storemlp:inline
func (h *Hierarchy) touchTLB(addr uint64) {
	if addr>>h.TLB.lineShift == h.lastPage {
		// The previous TLB touch was this page, so it is resident and
		// most-recently-used; skip the redundant lookup.
		return
	}
	h.touchTLBSlow(addr)
}

func (h *Hierarchy) touchTLBSlow(addr uint64) {
	if h.TLB.Lookup(addr) == Invalid {
		h.Stats.TLBMisses++
		h.TLB.Insert(addr, Exclusive)
	}
	h.lastPage = addr >> h.TLB.lineShift
}

// Fetch performs an instruction fetch for the line containing pc. The
// wrapper stays small enough to inline into the engine's step so the
// dominant case — sequential fetch within the line fetched last — costs
// a shift and a compare, no call.
//
//storemlp:noalloc
//storemlp:inline
func (h *Hierarchy) Fetch(pc uint64) Result {
	h.Stats.Fetches++
	if pc>>h.fetchShift == h.lastFetchLine {
		// Resident and most-recently-used in the L1I, nothing below is
		// touched.
		return Result{L1Hit: true, L2Hit: true}
	}
	return h.fetchSlow(pc)
}

func (h *Hierarchy) fetchSlow(pc uint64) Result {
	line := pc >> h.L1I.lineShift
	if h.L1I.Lookup(pc) != Invalid {
		h.lastFetchLine = line
		return Result{L1Hit: true, L2Hit: true}
	}
	h.lastStoreLine = noLast // the fill path touches the L2
	if h.L2.Lookup(pc) != Invalid {
		h.L1I.Insert(pc, Shared)
		h.lastFetchLine = line
		return Result{L2Hit: true}
	}
	h.Stats.FetchOffChip++
	h.insertL2(pc, Shared)
	h.L1I.Insert(pc, Shared)
	h.lastFetchLine = line
	return Result{OffChip: true}
}

// Load performs a data load. shared marks data reachable by other chips,
// which fills in the Shared state (so later stores need upgrades).
func (h *Hierarchy) Load(addr uint64, shared bool) Result {
	h.Stats.Loads++
	h.touchTLB(addr)
	h.lastStoreLine = noLast // loads touch the L1D (and on a miss the L2)
	if h.L1D.Lookup(addr) != Invalid {
		return Result{L1Hit: true, L2Hit: true}
	}
	if h.L2.Lookup(addr) != Invalid {
		h.L1D.Insert(addr, Shared)
		return Result{L2Hit: true}
	}
	h.Stats.LoadOffChip++
	st := Exclusive
	if shared {
		st = Shared
	}
	h.insertL2(addr, st)
	h.L1D.Insert(addr, Shared)
	return Result{OffChip: true}
}

// Store performs a data store. The L1D is write-through and
// no-write-allocate, so the store's fate is decided entirely at the L2:
// a hit in M or E commits on-chip; a hit in S needs a cross-chip
// ownership upgrade; a miss needs a full off-chip fill with ownership.
func (h *Hierarchy) Store(addr uint64, shared bool) Result {
	h.Stats.Stores++
	h.Stats.L2StoreTraffic++
	h.touchTLB(addr)
	line := addr >> h.L2.lineShift
	if line == h.lastStoreLine {
		// Repeat of the previous store's line with no intervening L1D
		// or L2 access: the line is Modified and most-recently-used in
		// the L2, and the L1D's view of it is unchanged.
		return Result{L1Hit: h.lastStoreL1, L2Hit: true}
	}
	l1 := h.L1D.Lookup(addr) != Invalid // write-through: update if present
	res := Result{L1Hit: l1, L2Hit: true}
	switch h.L2.Lookup(addr) {
	case Modified:
	case Exclusive:
		h.L2.SetState(addr, Modified)
	case Shared:
		h.Stats.StoreOffChip++
		h.Stats.StoreUpgrades++
		h.L2.SetState(addr, Modified)
		res.OffChip, res.Upgrade = true, true
	default:
		h.Stats.StoreOffChip++
		h.insertL2(addr, Modified)
		_ = shared // ownership is acquired regardless; sharing returns via snoops
		res.L2Hit, res.OffChip = false, true
	}
	// Every store leaves the line Modified, so a consecutive repeat is a
	// pure L2 hit — unless the L2 is shared, where the co-runner's
	// accesses would invalidate the cached outcome unseen.
	if !h.l2Shared {
		h.lastStoreLine, h.lastStoreL1 = line, l1
	}
	return res
}

// PrefetchLoad installs the line containing addr as a load would,
// counting it as L2 prefetch traffic. Used by Hardware Scout for missing
// loads and missing instructions.
func (h *Hierarchy) PrefetchLoad(addr uint64, shared bool) {
	h.lastStoreLine = noLast
	h.Stats.L2PrefetchReqs++
	if h.L2.Probe(addr) != Invalid {
		return
	}
	st := Exclusive
	if shared {
		st = Shared
	}
	h.insertL2(addr, st)
}

// PrefetchStore issues a "prefetch for write": the line containing addr
// is acquired in Modified state, counting L2 prefetch traffic. Used by
// store prefetching (at retire or at execute) and by scout-mode store
// prefetches.
func (h *Hierarchy) PrefetchStore(addr uint64) {
	h.lastStoreLine = noLast
	h.Stats.L2PrefetchReqs++
	if h.L2.Probe(addr).Owned() {
		h.L2.SetState(addr, Modified)
		return
	}
	if h.L2.Probe(addr) == Shared {
		h.L2.SetState(addr, Modified)
		return
	}
	h.insertL2(addr, Modified)
}

// SnoopInvalidate applies a remote chip's request-to-own: the local line
// is invalidated. It reports the state the line held.
func (h *Hierarchy) SnoopInvalidate(addr uint64) MESI {
	h.clearFastPaths() // L1I residency and L2 store state may change
	h.L1D.Invalidate(addr)
	h.L1I.Invalidate(addr)
	return h.L2.Invalidate(addr)
}

// SnoopShared applies a remote chip's read request: an owned local line
// is demoted to Shared (so the next local store needs an upgrade).
func (h *Hierarchy) SnoopShared(addr uint64) MESI {
	h.lastStoreLine = noLast // the demotion may hit the cached store line
	prev := h.L2.Probe(addr)
	if prev.Owned() {
		h.L2.SetState(addr, Shared)
	}
	return prev
}
