// Package cache models the on-chip cache hierarchy of the paper's
// default configuration (§4.3): private 32 KB 4-way L1 instruction and
// data caches (the D-cache is write-through, no-write-allocate), a
// shared 2 MB 4-way L2, and a 2K-entry TLB, all with 64 B lines and LRU
// replacement. L2 lines carry MESI states so that store misses,
// ownership upgrades, and cross-chip invalidations can be modelled.
package cache

import (
	"fmt"
	"math/bits"
)

// MESI is the coherence state of a cache line.
type MESI uint8

const (
	// Invalid: the line is not present.
	Invalid MESI = iota
	// Shared: present, clean, possibly cached by other chips; a store
	// requires an ownership upgrade (cross-chip invalidation).
	Shared
	// Exclusive: present, clean, owned by this chip; a store may proceed
	// without any cross-chip transaction.
	Exclusive
	// Modified: present, dirty, owned by this chip.
	Modified
)

func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Owned reports whether the state permits a store without a cross-chip
// ownership transaction.
func (s MESI) Owned() bool { return s == Exclusive || s == Modified }

// Params sizes a cache.
type Params struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (power of two)
}

// Sets returns the number of sets implied by the parameters.
func (p Params) Sets() int { return p.SizeBytes / (p.Ways * p.LineBytes) }

// Validate checks that the geometry is realizable.
func (p Params) Validate() error {
	if p.SizeBytes <= 0 || p.Ways <= 0 || p.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", p)
	}
	if p.LineBytes&(p.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", p.LineBytes)
	}
	sets := p.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a positive power of two (size %d, ways %d, line %d)",
			sets, p.SizeBytes, p.Ways, p.LineBytes)
	}
	return nil
}

// way packs one cache way into 16 bytes: ent holds tag<<2|state (state
// in the low two bits; a zero state marks the way empty, so tag match
// and validity test are a single compare), lru the use clock. A 4-way
// set is then exactly one 64-byte cache line. Tags must fit in 62 bits,
// which every address the simulator generates satisfies.
type way struct {
	ent uint64
	lru uint64 // higher = more recently used
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	ways      []way  // sets*assoc entries, set-major
	assoc     int    //storemlp:keep (geometry, fixed at construction)
	lineShift uint   //storemlp:keep
	setMask   uint64 //storemlp:keep
	clock     uint64

	// Stats counts accesses and misses since construction.
	Stats Stats
}

// Stats counts cache events.
type Stats struct {
	Accesses    int64
	Misses      int64
	Evictions   int64
	Invalidates int64
}

// MissRate returns misses/accesses, or 0 if there were no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// New builds a cache; it panics on invalid geometry (construction-time
// configuration errors are programmer errors).
func New(p Params) *Cache {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	sets := p.Sets()
	return &Cache{
		ways:      make([]way, sets*p.Ways),
		assoc:     p.Ways,
		lineShift: uint(bits.TrailingZeros(uint(p.LineBytes))),
		setMask:   uint64(sets - 1),
	}
}

// Line returns the line address (address with the offset bits cleared).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) set(addr uint64) []way {
	idx := (addr >> c.lineShift) & c.setMask
	return c.ways[idx*uint64(c.assoc) : (idx+1)*uint64(c.assoc)]
}

// matchState returns the way's state if its packed entry matches the
// wanted tag<<2 and the way is valid, else Invalid. ent^want clears the
// tag bits exactly when the tags agree, leaving just the state, so the
// whole test is one xor and one range compare: the result is in [1,3].
func matchState(ent, want uint64) uint64 {
	if x := ent ^ want; x-1 < 3 {
		return x
	}
	return 0
}

// Probe reports the state of the line containing addr without updating
// LRU or statistics.
func (c *Cache) Probe(addr uint64) MESI {
	want := addr >> c.lineShift << 2
	set := c.set(addr)
	for i := range set {
		if x := matchState(set[i].ent, want); x != 0 {
			return MESI(x)
		}
	}
	return Invalid
}

// Lookup checks for the line containing addr, updating LRU and access
// statistics. It returns the line's state (Invalid on miss).
//
//storemlp:noalloc
func (c *Cache) Lookup(addr uint64) MESI {
	c.Stats.Accesses++
	tag := addr >> c.lineShift
	want := tag << 2
	if c.assoc == 4 {
		// The paper's entire hierarchy is 4-way; unrolling lets the four
		// tag compares issue without loop-carried control flow.
		idx := tag & c.setMask
		set := c.ways[idx*4 : idx*4+4 : idx*4+4]
		if x := set[0].ent ^ want; x-1 < 3 {
			c.clock++
			set[0].lru = c.clock
			return MESI(x)
		}
		if x := set[1].ent ^ want; x-1 < 3 {
			c.clock++
			set[1].lru = c.clock
			return MESI(x)
		}
		if x := set[2].ent ^ want; x-1 < 3 {
			c.clock++
			set[2].lru = c.clock
			return MESI(x)
		}
		if x := set[3].ent ^ want; x-1 < 3 {
			c.clock++
			set[3].lru = c.clock
			return MESI(x)
		}
		c.Stats.Misses++
		return Invalid
	}
	set := c.set(addr)
	for i := range set {
		if x := matchState(set[i].ent, want); x != 0 {
			c.clock++
			set[i].lru = c.clock
			return MESI(x)
		}
	}
	c.Stats.Misses++
	return Invalid
}

// Insert fills the line containing addr with the given state, evicting
// the LRU way if the set is full. It returns the evicted line address
// and state (ok=false if nothing valid was evicted). Inserting a line
// that is already present just updates its state and LRU position.
func (c *Cache) Insert(addr uint64, state MESI) (evictedAddr uint64, evictedState MESI, ok bool) {
	tag := addr >> c.lineShift
	want := tag << 2
	set := c.set(addr)
	c.clock++
	victim := 0
	haveInvalid := false // once an invalid way is picked it stays picked
	for i := range set {
		e := set[i].ent
		if matchState(e, want) != 0 {
			set[i].ent = want | uint64(state)
			set[i].lru = c.clock
			return 0, Invalid, false
		}
		if e&3 == 0 {
			victim = i
			haveInvalid = true
		} else if !haveInvalid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if e := v.ent; e&3 != 0 {
		c.Stats.Evictions++
		evictedAddr = e >> 2 << c.lineShift
		evictedState = MESI(e & 3)
		ok = true
	}
	v.ent = want | uint64(state)
	v.lru = c.clock
	return evictedAddr, evictedState, ok
}

// SetState updates the state of a resident line; it reports whether the
// line was present.
func (c *Cache) SetState(addr uint64, state MESI) bool {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if matchState(set[i].ent, tag<<2) != 0 {
			set[i].ent = tag<<2 | uint64(state)
			return true
		}
	}
	return false
}

// Invalidate removes the line containing addr, returning its previous
// state (Invalid if it was not present).
func (c *Cache) Invalidate(addr uint64) MESI {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if x := matchState(set[i].ent, tag<<2); x != 0 {
			set[i].ent = 0
			c.Stats.Invalidates++
			return MESI(x)
		}
	}
	return Invalid
}

// Occupancy returns the number of valid lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].ent&3 != 0 {
			n++
		}
	}
	return n
}

// Reset empties the cache and zeroes its statistics, returning it to
// its as-constructed state without reallocating.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.clock = 0
	c.Stats = Stats{}
}
