// Package cache models the on-chip cache hierarchy of the paper's
// default configuration (§4.3): private 32 KB 4-way L1 instruction and
// data caches (the D-cache is write-through, no-write-allocate), a
// shared 2 MB 4-way L2, and a 2K-entry TLB, all with 64 B lines and LRU
// replacement. L2 lines carry MESI states so that store misses,
// ownership upgrades, and cross-chip invalidations can be modelled.
package cache

import (
	"fmt"
	"math/bits"
)

// MESI is the coherence state of a cache line.
type MESI uint8

const (
	// Invalid: the line is not present.
	Invalid MESI = iota
	// Shared: present, clean, possibly cached by other chips; a store
	// requires an ownership upgrade (cross-chip invalidation).
	Shared
	// Exclusive: present, clean, owned by this chip; a store may proceed
	// without any cross-chip transaction.
	Exclusive
	// Modified: present, dirty, owned by this chip.
	Modified
)

func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Owned reports whether the state permits a store without a cross-chip
// ownership transaction.
func (s MESI) Owned() bool { return s == Exclusive || s == Modified }

// Params sizes a cache.
type Params struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (power of two)
}

// Sets returns the number of sets implied by the parameters.
func (p Params) Sets() int { return p.SizeBytes / (p.Ways * p.LineBytes) }

// Validate checks that the geometry is realizable.
func (p Params) Validate() error {
	if p.SizeBytes <= 0 || p.Ways <= 0 || p.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", p)
	}
	if p.LineBytes&(p.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", p.LineBytes)
	}
	sets := p.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a positive power of two (size %d, ways %d, line %d)",
			sets, p.SizeBytes, p.Ways, p.LineBytes)
	}
	return nil
}

type way struct {
	tag   uint64
	state MESI
	lru   uint64 // higher = more recently used
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	ways      []way // sets*assoc entries, set-major
	assoc     int
	lineShift uint
	setMask   uint64
	clock     uint64

	// Stats counts accesses and misses since construction.
	Stats Stats
}

// Stats counts cache events.
type Stats struct {
	Accesses    int64
	Misses      int64
	Evictions   int64
	Invalidates int64
}

// MissRate returns misses/accesses, or 0 if there were no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// New builds a cache; it panics on invalid geometry (construction-time
// configuration errors are programmer errors).
func New(p Params) *Cache {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	sets := p.Sets()
	return &Cache{
		ways:      make([]way, sets*p.Ways),
		assoc:     p.Ways,
		lineShift: uint(bits.TrailingZeros(uint(p.LineBytes))),
		setMask:   uint64(sets - 1),
	}
}

// Line returns the line address (address with the offset bits cleared).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) set(addr uint64) []way {
	idx := (addr >> c.lineShift) & c.setMask
	return c.ways[idx*uint64(c.assoc) : (idx+1)*uint64(c.assoc)]
}

// Probe reports the state of the line containing addr without updating
// LRU or statistics.
func (c *Cache) Probe(addr uint64) MESI {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return set[i].state
		}
	}
	return Invalid
}

// Lookup checks for the line containing addr, updating LRU and access
// statistics. It returns the line's state (Invalid on miss).
func (c *Cache) Lookup(addr uint64) MESI {
	c.Stats.Accesses++
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			c.clock++
			set[i].lru = c.clock
			return set[i].state
		}
	}
	c.Stats.Misses++
	return Invalid
}

// Insert fills the line containing addr with the given state, evicting
// the LRU way if the set is full. It returns the evicted line address
// and state (ok=false if nothing valid was evicted). Inserting a line
// that is already present just updates its state and LRU position.
func (c *Cache) Insert(addr uint64, state MESI) (evictedAddr uint64, evictedState MESI, ok bool) {
	tag := addr >> c.lineShift
	set := c.set(addr)
	c.clock++
	victim := 0
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			set[i].state = state
			set[i].lru = c.clock
			return 0, Invalid, false
		}
		if set[i].state == Invalid {
			victim = i
		} else if set[victim].state != Invalid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.state != Invalid {
		c.Stats.Evictions++
		evictedAddr = v.tag << c.lineShift
		evictedState = v.state
		ok = true
	}
	v.tag = tag
	v.state = state
	v.lru = c.clock
	return evictedAddr, evictedState, ok
}

// SetState updates the state of a resident line; it reports whether the
// line was present.
func (c *Cache) SetState(addr uint64, state MESI) bool {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			set[i].state = state
			return true
		}
	}
	return false
}

// Invalidate removes the line containing addr, returning its previous
// state (Invalid if it was not present).
func (c *Cache) Invalidate(addr uint64) MESI {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			prev := set[i].state
			set[i].state = Invalid
			c.Stats.Invalidates++
			return prev
		}
	}
	return Invalid
}

// Occupancy returns the number of valid lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].state != Invalid {
			n++
		}
	}
	return n
}
