package onchip

import (
	"math"
	"testing"

	"storemlp/internal/workload"
)

func TestModelCPI(t *testing.T) {
	m := DefaultModel()
	var zero Inputs
	if m.CPI(zero) != 0 {
		t.Error("zero inputs should give 0")
	}
	base := Inputs{Insts: 1000, BaseCPI: 0.8}
	if got := m.CPI(base); got != 0.8 {
		t.Errorf("base-only CPI = %v", got)
	}
	// Each component adds.
	withL1D := base
	withL1D.L1DLoadMiss = 100
	if m.CPI(withL1D) <= 0.8 {
		t.Error("L1D misses should add CPI")
	}
	withL1I := base
	withL1I.L1IMiss = 100
	if m.CPI(withL1I) <= 0.8 {
		t.Error("L1I misses should add CPI")
	}
	withBr := base
	withBr.Mispredicts = 10
	if got := m.CPI(withBr); math.Abs(got-(0.8+0.01*11)) > 1e-9 {
		t.Errorf("mispredict CPI = %v", got)
	}
}

func TestOverallCPI(t *testing.T) {
	// §3.4: CPIoverall = CPIon-chip*(1-Overlap) + EPI*MissPenalty.
	got := OverallCPI(1.2, 0.25, 0.005, 500)
	want := 1.2*0.75 + 0.005*500
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("OverallCPI = %v, want %v", got, want)
	}
}

func TestMeasureErrors(t *testing.T) {
	bad := workload.Database(1)
	bad.Name = ""
	if _, err := Measure(bad, 0, 1000); err == nil {
		t.Error("invalid workload should error")
	}
	if _, err := Measure(workload.Database(1), 0, 0); err == nil {
		t.Error("zero length should error")
	}
}

// Table 3 reproduction: the calibrated bases plus measured L1/branch
// components land on the paper's CPIon-chip values.
func TestTable3Values(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a million-instruction replay")
	}
	want := map[string]float64{
		"database": 1.11, "tpcw": 1.12, "specjbb": 0.95, "specweb": 1.38,
	}
	m := DefaultModel()
	for _, p := range workload.All(1) {
		in, err := Measure(p, 400_000, 800_000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := m.CPI(in)
		if math.Abs(got-want[p.Name]) > 0.15 {
			t.Errorf("%s CPIon-chip = %.3f, want ~%.2f", p.Name, got, want[p.Name])
		}
	}
}

func TestMeasureCollectsComponents(t *testing.T) {
	in, err := Measure(workload.SPECweb(2), 100_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if in.Insts != 200_000 {
		t.Errorf("Insts = %d", in.Insts)
	}
	if in.L1DLoadMiss == 0 || in.L1IMiss == 0 || in.Mispredicts == 0 {
		t.Errorf("components missing: %+v", in)
	}
	if in.BaseCPI != workload.SPECweb(2).OnChipBaseCPI {
		t.Errorf("BaseCPI = %v", in.BaseCPI)
	}
}
