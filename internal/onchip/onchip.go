// Package onchip provides the analytical on-chip CPI model used to
// reproduce Table 3 and to translate EPI into overall CPI (§3.4).
//
// The paper measured CPIon-chip on an in-house cycle-accurate simulator
// with a perfect L2; here it is modelled as a base (issue-limited) CPI
// per workload plus the L1-miss and branch-misprediction components that
// a perfect-L2 machine still pays. The workload base CPIs are calibrated
// so the defaults land on the paper's Table 3 values.
package onchip

import (
	"fmt"

	"storemlp/internal/cache"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
	"storemlp/internal/workload"
)

// Model holds the latency coefficients of the on-chip CPI estimate.
type Model struct {
	L1Latency int // cycles (4 in the paper)
	L2Latency int // cycles (15 in the paper)
	// LoadMissFactor is the fraction of an L1D-miss L2 hit latency that
	// out-of-order execution cannot hide.
	LoadMissFactor float64
	// InstMissFactor is the exposed fraction of an L1I-miss L2 hit.
	InstMissFactor float64
	// MispredPenalty is the pipeline refill cost of a misprediction.
	MispredPenalty float64
}

// DefaultModel returns coefficients matching the paper's 4-cycle L1 /
// 15-cycle L2 configuration.
func DefaultModel() Model {
	return Model{
		L1Latency:      4,
		L2Latency:      15,
		LoadMissFactor: 0.12,
		InstMissFactor: 0.35,
		MispredPenalty: 11,
	}
}

// Inputs are the per-run counts the model consumes.
type Inputs struct {
	Insts       int64
	L1DLoadMiss int64 // loads that missed the L1D but hit on-chip
	L1IMiss     int64 // fetches that missed the L1I but hit on-chip
	Mispredicts int64
	BaseCPI     float64
}

// CPI evaluates the on-chip CPI.
func (m Model) CPI(in Inputs) float64 {
	if in.Insts == 0 {
		return 0
	}
	n := float64(in.Insts)
	cpi := in.BaseCPI
	cpi += float64(in.L1DLoadMiss) / n * float64(m.L2Latency-m.L1Latency) * m.LoadMissFactor
	cpi += float64(in.L1IMiss) / n * float64(m.L2Latency) * m.InstMissFactor
	cpi += float64(in.Mispredicts) / n * m.MispredPenalty
	return cpi
}

// OverallCPI combines the on-chip and off-chip components exactly as
// §3.4 does: CPIoverall = CPIon-chip*(1-Overlap) + EPI*MissPenalty.
func OverallCPI(cpiOnChip, overlap, epochsPerInst float64, missPenalty int) float64 {
	return cpiOnChip*(1-overlap) + epochsPerInst*float64(missPenalty)
}

// Measure replays n instructions of the workload through a fresh cache
// hierarchy (after warm instructions of warmup) and collects the model
// inputs.
func Measure(p workload.Params, warm, n int64) (Inputs, error) {
	if err := p.Validate(); err != nil {
		return Inputs{}, err
	}
	if n <= 0 {
		return Inputs{}, fmt.Errorf("onchip: non-positive measurement length %d", n)
	}
	h := cache.NewHierarchy(cache.DefaultConfig())
	g := workload.NewGenerator(p)
	var in Inputs
	run := func(count int64, record bool) {
		src := trace.Limit(g, count)
		for {
			ins, ok := src.Next()
			if !ok {
				return
			}
			fr := h.Fetch(ins.PC)
			if record && !fr.L1Hit && !fr.OffChip {
				in.L1IMiss++
			}
			shared := ins.Flags.Has(isa.FlagShared)
			if ins.Op.IsLoad() {
				lr := h.Load(ins.Addr, shared)
				if record && !lr.L1Hit && !lr.OffChip {
					in.L1DLoadMiss++
				}
			}
			if ins.Op.IsStore() {
				h.Store(ins.Addr, shared)
			}
			if record {
				in.Insts++
				if ins.Op == isa.OpBranch && ins.Flags.Has(isa.FlagMispredict) {
					in.Mispredicts++
				}
			}
		}
	}
	run(warm, false)
	run(n, true)
	in.BaseCPI = p.OnChipBaseCPI
	return in, nil
}
