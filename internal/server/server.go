// Package server implements mlpsimd's HTTP JSON serving layer: a
// long-running simulation service in front of the epoch MLP engine.
//
// The request path for one sweep point is
//
//	digest -> result cache -> singleflight coalescing -> worker pool -> engine
//
// Every run is identified by the canonical digest of its full
// specification (workload calibration + machine configuration +
// instruction budget, see internal/digest). Identical concurrent
// requests coalesce onto one engine execution; completed results enter
// a size-bounded LRU cache; the worker pool bounds concurrent
// simulations to the configured width (default GOMAXPROCS) so a burst
// of requests queues instead of thrashing the scheduler. Requests honor
// client disconnects and per-request deadlines through context
// cancellation threaded into the engine's instruction loop, and the
// daemon drains in-flight simulations on shutdown.
//
// Observability is built on internal/obs: /metrics serves the shared
// registry in Prometheus text format (request counts and latencies,
// cache hit ratio, pool saturation, engine throughput), /debug/obs/vars
// serves the same registry as JSON, /debug/obs/trace exports the run
// tracer's phase spans as Chrome trace_event JSON, /debug/obs/runs
// lists live engine progress, /healthz serves a liveness summary, and
// every request is logged with a request ID, duration, cache state and
// outcome. DESIGN.md §9 and §12 have the full inventory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"storemlp/internal/consistency"
	"storemlp/internal/digest"
	"storemlp/internal/epoch"
	"storemlp/internal/obs"
	"storemlp/internal/sim"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

// Runner executes one resolved simulation. The default runner drives
// the epoch engine via sim.RunContext; tests substitute counters.
type Runner func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error)

// Config configures the service.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// CacheEntries sizes the result LRU (default 4096; <0 disables).
	CacheEntries int
	// MaxInsts caps Insts+Warm per request (default 100M) so one request
	// cannot monopolize the service.
	MaxInsts int64
	// DefaultTimeout bounds each request when the client sends none
	// (default 120s; <=0 keeps the default).
	DefaultTimeout time.Duration
	// Runner substitutes the simulation executor (tests); nil = engine.
	Runner Runner
	// Logger receives structured request logs; nil = slog.Default().
	Logger *slog.Logger
	// TraceEvents sizes the run tracer's event ring (default 16384;
	// <0 disables tracing — /debug/obs/trace then serves an empty
	// trace and the engine hot path pays only a nil check).
	TraceEvents int
	// DefaultParallel is the segment count applied to requests that do
	// not carry their own "parallel" field (<=1 = serial). Because the
	// knob is digest-visible, a daemon restarted with a different
	// default serves from a disjoint cache-key space.
	DefaultParallel int
	// SlowRequests sizes the slowest-N request ring behind
	// /debug/obs/slow and /debug/obs/req (default 32; <0 disables
	// request-scoped span tracing entirely — probe-grade overhead for
	// every request, and the debug endpoints serve empty/404).
	SlowRequests int
}

// reqSpanCap bounds the span arena of one request trace. A /v1/run
// request records ~10 spans; a sweep records a handful per point, so
// very large sweeps drop excess spans (counted in the trace's dropped
// field) rather than growing the arena.
const reqSpanCap = 512

// Server is the mlpsimd service core. Create with New, mount Handler
// into an http.Server, and Close when the HTTP server has shut down.
type Server struct {
	cfg    Config
	log    *slog.Logger
	runner Runner

	baseCtx context.Context
	stop    context.CancelFunc

	cache   *lruCache
	flights *flightGroup
	slots   chan struct{}

	start  time.Time
	reqSeq atomic.Int64

	// Metrics is the service registry (internal/obs), exported for
	// /metrics mounting and for tests.
	Metrics *Metrics

	tracer *obs.Tracer
	board  *obs.Board
	sinks  *obs.Obs
	slow   *obs.SlowRing // nil when span tracing is disabled
	pool   *sim.Pool     // behind the default runner; nil with a custom Runner

	mReqs         map[string]map[string]*Counter // endpoint -> class -> counter
	mLatency      map[string]*Histogram
	mStage        []*Histogram // indexed by obs.Stage; nil at StageRequest
	mCacheHits    *Counter
	mCacheMisses  *Counter
	mCacheEvicted *Counter
	mCacheEntries *Gauge
	mHitRatio     *obs.FloatGauge
	mCoalesced    *Counter
	mInflight     *Gauge
	mSegInflight  *Gauge
	mQueueDepth   *Gauge
	mSaturation   *obs.FloatGauge
	mPoolIdle     *Gauge
	mExecuted     *Counter
	mFailures     *Counter
	mInsts        *Counter
	mEpochs       *Counter
	mInstsRate    *obs.FloatGauge
	mEpochsRate   *obs.FloatGauge
	mRunsActive   *Gauge
	mTraceEvents  *Counter
	mUptime       *Gauge

	// Scrape-to-scrape throughput derivation (see scrapeRates).
	rateMu     sync.Mutex
	rateAt     time.Time // guarded by rateMu
	rateInsts  int64     // guarded by rateMu
	rateEpochs int64     // guarded by rateMu
}

// Metrics, Counter, Gauge and Histogram are aliases into internal/obs:
// the registry that used to live in this package (promtext.go) moved
// there so the engine, the CLIs and the daemon share one metrics and
// tracing layer.
type (
	// Metrics is the shared instrument registry type.
	Metrics = obs.Registry
	// Counter is a monotonically increasing metric.
	Counter = obs.Counter
	// Gauge is an integer metric that can go up and down.
	Gauge = obs.Gauge
	// Histogram observes float64 samples into cumulative buckets.
	Histogram = obs.Histogram
)

// NewMetrics returns an empty registry (obs.NewRegistry).
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DefBuckets are the default latency bucket bounds (obs.DefBuckets).
var DefBuckets = obs.DefBuckets

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.MaxInsts <= 0 {
		cfg.MaxInsts = 100_000_000
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 120 * time.Second
	}
	if cfg.DefaultParallel < 1 {
		cfg.DefaultParallel = 1
	}
	var pool *sim.Pool
	if cfg.Runner == nil {
		// Recycle engines across requests: with bounded worker
		// concurrency the pool converges on one engine per worker and
		// steady-state serving stops allocating simulator substrate.
		pool = sim.NewPool()
		cfg.Runner = pool.RunContext
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.TraceEvents == 0 {
		cfg.TraceEvents = 16384
	}
	if cfg.SlowRequests == 0 {
		cfg.SlowRequests = 32
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		runner:  cfg.Runner,
		baseCtx: ctx,
		stop:    cancel,
		flights: newFlightGroup(ctx),
		slots:   make(chan struct{}, cfg.Workers),
		start:   time.Now(),
		Metrics: NewMetrics(),
		tracer:  obs.NewTracer(cfg.TraceEvents), // nil when TraceEvents < 0
		board:   obs.NewBoard(),
		slow:    obs.NewSlowRing(cfg.SlowRequests), // nil when SlowRequests < 0
		pool:    pool,
	}
	s.sinks = &obs.Obs{Tracer: s.tracer, Board: s.board}
	if cfg.CacheEntries > 0 {
		s.cache = newLRUCache(cfg.CacheEntries)
	}
	s.registerMetrics()
	return s
}

func (s *Server) registerMetrics() {
	m := s.Metrics
	s.mReqs = make(map[string]map[string]*Counter)
	s.mLatency = make(map[string]*Histogram)
	for _, ep := range []string{"run", "sweep", "healthz", "metrics", "debug"} {
		byClass := make(map[string]*Counter)
		for _, class := range []string{"2xx", "4xx", "5xx"} {
			byClass[class] = m.Counter("mlpsimd_requests_total",
				"HTTP requests by endpoint and status class.",
				"endpoint", ep, "class", class)
		}
		s.mReqs[ep] = byClass
		s.mLatency[ep] = m.Histogram("mlpsimd_request_seconds",
			"Request latency in seconds.", DefBuckets, "endpoint", ep)
	}
	// Per-stage decomposition of request latency: each request's span
	// tree feeds one observation per span, so mlpsimd_request_seconds
	// splits into queue wait vs cache state vs simulation.
	stages := obs.Stages()
	s.mStage = make([]*Histogram, len(stages))
	for _, st := range stages {
		if st == obs.StageRequest {
			continue // the root span IS mlpsimd_request_seconds
		}
		s.mStage[st] = m.Histogram("mlpsimd_stage_seconds",
			"Request latency decomposed by pipeline stage (one observation per request span).",
			DefBuckets, "stage", st.String())
	}
	s.mCacheHits = m.Counter("mlpsimd_cache_hits_total", "Result-cache hits.")
	s.mCacheMisses = m.Counter("mlpsimd_cache_misses_total", "Result-cache misses.")
	s.mCacheEvicted = m.Counter("mlpsimd_cache_evictions_total", "Result-cache LRU evictions.")
	s.mCacheEntries = m.Gauge("mlpsimd_cache_entries", "Result-cache current size.")
	s.mHitRatio = m.FloatGauge("mlpsimd_cache_hit_ratio",
		"Lifetime result-cache hit ratio: hits / (hits + misses).")
	s.mCoalesced = m.Counter("mlpsimd_coalesced_requests_total",
		"Requests that joined an identical in-flight simulation instead of executing.")
	s.mInflight = m.Gauge("mlpsimd_sims_inflight", "Simulations currently executing.")
	s.mSegInflight = m.Gauge("mlpsimd_segments_inflight",
		"Engine segments currently executing; a parallel run contributes one per segment.")
	s.mQueueDepth = m.Gauge("mlpsimd_queue_depth", "Simulations waiting for a worker slot.")
	s.mSaturation = m.FloatGauge("mlpsimd_pool_saturation",
		"Fraction of worker capacity occupied: engine segments in flight / workers. "+
			"Parallel runs fan out past their one slot, so this can exceed 1.")
	s.mPoolIdle = m.Gauge("mlpsimd_pool_engines_idle",
		"Recycled engines parked in the pool (0 under a custom runner).")
	s.mExecuted = m.Counter("mlpsimd_sims_executed_total", "Engine executions started.")
	s.mFailures = m.Counter("mlpsimd_sim_failures_total", "Engine executions that returned an error.")
	s.mInsts = m.Counter("mlpsimd_insts_simulated_total", "Instructions simulated (measured + warmup).")
	s.mEpochs = m.Counter("mlpsimd_engine_epochs_total", "Epochs closed by completed simulations.")
	s.mInstsRate = m.FloatGauge("mlpsimd_engine_insts_per_second",
		"Simulated-instruction throughput over the last scrape interval.")
	s.mEpochsRate = m.FloatGauge("mlpsimd_engine_epochs_per_second",
		"Epoch throughput over the last scrape interval.")
	s.mRunsActive = m.Gauge("mlpsimd_runs_active", "Engine runs currently publishing progress.")
	s.mTraceEvents = m.Counter("mlpsimd_trace_events_total", "Events recorded by the run tracer.")
	s.mUptime = m.Gauge("mlpsimd_uptime_seconds", "Seconds since process start.")
	m.Info("mlpsimd_build_info", "Build identity of the serving binary.",
		"go_version", runtime.Version(), "module", "storemlp")
	m.Info("mlpsimd_config_info", "Effective serving configuration and its canonical digest.",
		"workers", strconv.Itoa(s.cfg.Workers),
		"cache_entries", strconv.Itoa(s.cfg.CacheEntries),
		"max_insts", strconv.FormatInt(s.cfg.MaxInsts, 10),
		"trace_events", strconv.Itoa(s.cfg.TraceEvents),
		"default_parallel", strconv.Itoa(s.cfg.DefaultParallel),
		"slow_requests", strconv.Itoa(s.cfg.SlowRequests),
		"digest", digest.Sum(struct {
			Workers, CacheEntries, TraceEvents, DefaultParallel, SlowRequests int
			MaxInsts, DefaultTimeoutMS                                        int64
		}{s.cfg.Workers, s.cfg.CacheEntries, s.cfg.TraceEvents, s.cfg.DefaultParallel,
			s.cfg.SlowRequests, s.cfg.MaxInsts, s.cfg.DefaultTimeout.Milliseconds()}))
	m.OnScrape(func() {
		s.mUptime.Set(int64(time.Since(s.start).Seconds()))
		if s.cache != nil {
			s.mCacheEntries.Set(int64(s.cache.len()))
			// Evictions live in the cache; mirror them into the counter.
			if d := s.cache.evicted() - s.mCacheEvicted.Value(); d > 0 {
				s.mCacheEvicted.Add(d)
			}
		}
		if hits, misses := s.mCacheHits.Value(), s.mCacheMisses.Value(); hits+misses > 0 {
			s.mHitRatio.Set(float64(hits) / float64(hits+misses))
		}
		s.mSaturation.Set(float64(s.mSegInflight.Value()) / float64(s.cfg.Workers))
		if s.pool != nil {
			s.mPoolIdle.Set(int64(s.pool.Idle()))
		}
		s.mRunsActive.Set(int64(s.board.Totals().ActiveRuns))
		// Trace events live in the tracer's ring cursor; mirror them in.
		if d := int64(s.tracer.Total()) - s.mTraceEvents.Value(); d > 0 {
			s.mTraceEvents.Add(d)
		}
		s.scrapeRates()
	})
}

// scrapeRates derives engine throughput gauges from the instruction and
// epoch counter deltas since the previous scrape. The first scrape
// establishes the baseline and reports 0.
func (s *Server) scrapeRates() {
	now := time.Now()
	insts, epochs := s.mInsts.Value(), s.mEpochs.Value()
	s.rateMu.Lock()
	defer s.rateMu.Unlock()
	if !s.rateAt.IsZero() {
		if dt := now.Sub(s.rateAt).Seconds(); dt > 0 {
			s.mInstsRate.Set(float64(insts-s.rateInsts) / dt)
			s.mEpochsRate.Set(float64(epochs-s.rateEpochs) / dt)
		}
	}
	s.rateAt, s.rateInsts, s.rateEpochs = now, insts, epochs
}

// Tracer exposes the run tracer (nil when tracing is disabled) for
// CLIs and tests that want a trace export.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Board exposes the live-run board for progress tickers and tests.
func (s *Server) Board() *obs.Board { return s.board }

// Close aborts any still-running simulations. Call it after the HTTP
// server has drained (http.Server.Shutdown), not before.
func (s *Server) Close() { s.stop() }

// ---- request / response types ----

// ConfigPatch is a partial machine configuration: nil fields keep the
// paper's §4.3 defaults. It covers every knob the paper's figures
// sweep.
type ConfigPatch struct {
	Model                   *string `json:"model,omitempty"`          // "pc" | "wc"
	StorePrefetch           *int    `json:"store_prefetch,omitempty"` // 0, 1, 2
	StoreBuffer             *int    `json:"store_buffer,omitempty"`
	StoreQueue              *int    `json:"store_queue,omitempty"` // 0 = unbounded
	ROB                     *int    `json:"rob,omitempty"`
	CoalesceBytes           *int    `json:"coalesce_bytes,omitempty"`
	SLE                     *bool   `json:"sle,omitempty"`
	TM                      *bool   `json:"tm,omitempty"`
	PrefetchPastSerializing *bool   `json:"pps,omitempty"`
	HWS                     *int    `json:"hws,omitempty"` // -1 off, 0..2
	SMACEntries             *int    `json:"smac_entries,omitempty"`
	Nodes                   *int    `json:"nodes,omitempty"`
	MissPenalty             *int    `json:"miss_penalty,omitempty"`
	PerfectStores           *bool   `json:"perfect_stores,omitempty"`
}

// apply overlays the patch on cfg and returns the result.
func (p *ConfigPatch) apply(cfg uarch.Config) (uarch.Config, error) {
	if p == nil {
		return cfg, nil
	}
	if p.Model != nil {
		switch strings.ToLower(*p.Model) {
		case "pc", "tso":
			cfg.Model = consistency.PC
		case "wc", "powerpc":
			cfg.Model = consistency.WC
		default:
			return cfg, fmt.Errorf("unknown model %q (want pc or wc)", *p.Model)
		}
	}
	if p.StorePrefetch != nil {
		switch *p.StorePrefetch {
		case 0:
			cfg.StorePrefetch = uarch.Sp0
		case 1:
			cfg.StorePrefetch = uarch.Sp1
		case 2:
			cfg.StorePrefetch = uarch.Sp2
		default:
			return cfg, fmt.Errorf("unknown store_prefetch %d (want 0..2)", *p.StorePrefetch)
		}
	}
	if p.HWS != nil {
		switch *p.HWS {
		case -1:
			cfg.HWS = uarch.NoHWS
		case 0:
			cfg.HWS = uarch.HWS0
		case 1:
			cfg.HWS = uarch.HWS1
		case 2:
			cfg.HWS = uarch.HWS2
		default:
			return cfg, fmt.Errorf("unknown hws %d (want -1..2)", *p.HWS)
		}
	}
	if p.StoreBuffer != nil {
		cfg.StoreBuffer = *p.StoreBuffer
	}
	if p.StoreQueue != nil {
		cfg.StoreQueue = *p.StoreQueue
	}
	if p.ROB != nil {
		cfg.ROB = *p.ROB
	}
	if p.CoalesceBytes != nil {
		cfg.CoalesceBytes = *p.CoalesceBytes
	}
	if p.SLE != nil {
		cfg.SLE = *p.SLE
	}
	if p.TM != nil {
		cfg.TM = *p.TM
	}
	if p.PrefetchPastSerializing != nil {
		cfg.PrefetchPastSerializing = *p.PrefetchPastSerializing
	}
	if p.SMACEntries != nil {
		cfg.SMACEntries = *p.SMACEntries
	}
	if p.Nodes != nil {
		cfg.Nodes = *p.Nodes
	}
	if p.MissPenalty != nil {
		cfg.MissPenalty = *p.MissPenalty
	}
	if p.PerfectStores != nil {
		cfg.PerfectStores = *p.PerfectStores
	}
	return cfg, nil
}

// RunRequest is one simulation request.
type RunRequest struct {
	// Workload names one of the paper's four: database, tpcw, specjbb,
	// specweb.
	Workload string `json:"workload"`
	Seed     int64  `json:"seed,omitempty"`  // default 1
	Insts    int64  `json:"insts,omitempty"` // default 2,000,000
	Warm     int64  `json:"warm,omitempty"`  // default 1,000,000
	// Config overlays knobs on the paper's default configuration.
	Config         *ConfigPatch `json:"config,omitempty"`
	DisableTraffic bool         `json:"disable_traffic,omitempty"`
	SharedCore     bool         `json:"shared_core,omitempty"`
	// Parallel splits the run into that many concurrently simulated
	// segments (0 = server default, 1 = serial). Digest-visible:
	// parallel results approximate serial ones, so they never share a
	// cache key.
	Parallel int `json:"parallel,omitempty"`
	// NoCache bypasses the result cache AND coalescing: the request
	// always executes a fresh simulation (benchmark cold path).
	NoCache bool `json:"nocache,omitempty"`
	// TimeoutMS bounds this request (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResult is the epoch.Stats-derived payload of one run.
type RunResult struct {
	ConfigName              string  `json:"config_name"`
	Insts                   int64   `json:"insts"`
	Epochs                  int64   `json:"epochs"`
	EPI                     float64 `json:"epi"`
	MLP                     float64 `json:"mlp"`
	StoreMLP                float64 `json:"store_mlp"`
	OffChipCPI              float64 `json:"off_chip_cpi"`
	OverlappedStoreFraction float64 `json:"overlapped_store_fraction"`
	StoreMisses             int64   `json:"store_misses"`
	LoadMisses              int64   `json:"load_misses"`
	InstMisses              int64   `json:"inst_misses"`
	SMACAccelerated         int64   `json:"smac_accelerated,omitempty"`
	// Segments is the number of concurrently simulated segments the run
	// actually fanned out to (after clamping tiny runs); absent/0 means
	// serial.
	Segments int `json:"segments,omitempty"`
}

// RunResponse wraps a result with its serving provenance.
type RunResponse struct {
	Digest string `json:"digest"`
	// Cached: served from the result cache without executing.
	Cached bool `json:"cached"`
	// Coalesced: joined an identical in-flight execution.
	Coalesced bool      `json:"coalesced"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Result    RunResult `json:"result"`
}

// SweepRequest executes many points; each flows through the same
// digest/cache/coalescing pipeline, bounded by the worker pool.
type SweepRequest struct {
	Points []RunRequest `json:"points"`
}

// SweepResponse aggregates the per-point responses in request order.
type SweepResponse struct {
	Points    []RunResponse `json:"points"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Cached    int           `json:"cached"`
	Coalesced int           `json:"coalesced"`
}

// httpError carries a status code out of the serving pipeline.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// resolve turns a RunRequest into a validated sim.Spec and its digest.
func (s *Server) resolve(req RunRequest) (sim.Spec, string, error) {
	if req.Workload == "" {
		return sim.Spec{}, "", badRequest("missing workload")
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	w, err := workload.ByName(strings.ToLower(req.Workload), seed)
	if err != nil {
		return sim.Spec{}, "", badRequest("%v", err)
	}
	cfg, err := req.Config.apply(uarch.Default())
	if err != nil {
		return sim.Spec{}, "", badRequest("config: %v", err)
	}
	insts, warm := req.Insts, req.Warm
	if insts == 0 {
		insts = 2_000_000
	}
	if warm == 0 {
		warm = 1_000_000
	}
	if insts+warm > s.cfg.MaxInsts {
		return sim.Spec{}, "", badRequest("insts+warm %d exceeds server limit %d", insts+warm, s.cfg.MaxInsts)
	}
	par := req.Parallel
	if par == 0 {
		par = s.cfg.DefaultParallel
	}
	spec := sim.Spec{
		Workload:       w,
		Uarch:          cfg,
		Insts:          insts,
		Warm:           warm,
		DisableTraffic: req.DisableTraffic,
		SharedCore:     req.SharedCore,
		Parallel:       par,
	}
	if err := spec.Validate(); err != nil {
		return sim.Spec{}, "", badRequest("%v", err)
	}
	return spec, digest.Sum(spec), nil
}

// execute runs one simulation on the worker pool: it waits for a slot
// (queue-depth gauge), runs the engine (in-flight gauge), and converts
// the stats.
func (s *Server) execute(ctx context.Context, spec sim.Spec) (*RunResult, error) {
	// The worker-slot wait is the serving layer's queueing delay: under
	// saturation a request's latency is dominated here, so it gets its
	// own span (arg = queue depth observed on entry).
	rt, parent := obs.SpanFrom(ctx)
	wait := rt.StartSpan(obs.StagePoolWait, parent)
	s.mQueueDepth.Add(1)
	select {
	case s.slots <- struct{}{}:
		s.mQueueDepth.Add(-1)
		rt.EndSpan(wait, s.mQueueDepth.Value())
	case <-ctx.Done():
		s.mQueueDepth.Add(-1)
		rt.EndSpan(wait, -1)
		return nil, ctx.Err()
	}
	defer func() { <-s.slots }()

	// A parallel run occupies one worker slot but checks several segment
	// engines out of the pool; the saturation metric counts segments so
	// fan-out past the slot width is visible.
	segs := sim.Segments(spec)
	s.mInflight.Add(1)
	s.mSegInflight.Add(int64(segs))
	s.mExecuted.Inc()
	defer func() {
		s.mInflight.Add(-1)
		s.mSegInflight.Add(int64(-segs))
	}()
	// Thread the tracer and the live-run board into the engine: the
	// default pool runner picks them up via obs.FromContext.
	stats, err := s.runner(obs.NewContext(ctx, s.sinks), spec)
	if err != nil {
		s.mFailures.Inc()
		return nil, err
	}
	s.mInsts.Add(spec.Insts + spec.Warm)
	s.mEpochs.Add(stats.Epochs)
	return &RunResult{
		ConfigName:              spec.Uarch.Name(),
		Insts:                   stats.Insts,
		Epochs:                  stats.Epochs,
		EPI:                     stats.EPI(),
		MLP:                     stats.MLP(),
		StoreMLP:                stats.StoreMLP(),
		OffChipCPI:              stats.OffChipCPI(spec.Uarch.MissPenalty),
		OverlappedStoreFraction: stats.OverlappedStoreFraction(),
		StoreMisses:             stats.StoreMisses,
		LoadMisses:              stats.LoadMisses,
		InstMisses:              stats.InstMisses,
		SMACAccelerated:         stats.SMACAccelerated,
		Segments:                segs,
	}, nil
}

// servePoint is the full pipeline for one point:
// cache -> coalesce -> pool -> engine.
func (s *Server) servePoint(ctx context.Context, req RunRequest) (RunResponse, error) {
	start := time.Now()
	rt, parent := obs.SpanFrom(ctx)
	sp := rt.StartSpan(obs.StageDigest, parent)
	spec, key, err := s.resolve(req)
	rt.EndSpan(sp, 0)
	if err != nil {
		return RunResponse{}, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	resp := RunResponse{Digest: key}

	rs := reqStatsFrom(ctx)

	if req.NoCache {
		// Benchmark cold path: always a fresh execution, never shared.
		rs.bypass.Add(1)
		res, err := s.execute(ctx, spec)
		if err != nil {
			return RunResponse{}, err
		}
		resp.Result = *res
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return resp, nil
	}

	if s.cache != nil {
		sp = rt.StartSpan(obs.StageCacheProbe, parent)
		res, ok := s.cache.get(key)
		if ok {
			rt.EndSpan(sp, 1)
			s.mCacheHits.Inc()
			rs.hits.Add(1)
			resp.Cached = true
			resp.Result = *res
			resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
			return resp, nil
		}
		rt.EndSpan(sp, 0)
		s.mCacheMisses.Inc()
	}

	res, shared, err := s.flights.do(ctx, key, func(execCtx context.Context) (*RunResult, error) {
		// The leader executes on a context derived from the server's
		// lifetime, not its own request — re-attach the leader's span
		// context so the execution's pool-wait/segment/merge spans land
		// on the leader's trace. Followers only record a coalesce-wait
		// span (see flightGroup.do): the work was never theirs.
		execCtx = obs.WithSpan(execCtx, rt, parent)
		r, err := s.execute(execCtx, spec)
		if err != nil {
			return nil, err
		}
		if s.cache != nil {
			s.cache.add(key, r)
		}
		return r, nil
	})
	if err != nil {
		return RunResponse{}, err
	}
	if shared {
		s.mCoalesced.Inc()
		rs.coalesced.Add(1)
	} else {
		rs.misses.Add(1)
	}
	resp.Coalesced = shared
	resp.Result = *res
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}

// ---- HTTP layer ----

// Handler returns the service mux wrapped with request logging and
// metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.Metrics.Handler())
	mux.Handle("GET /debug/obs/trace", s.tracer.Handler())
	mux.Handle("GET /debug/obs/runs", s.board.Handler())
	mux.Handle("GET /debug/obs/vars", s.Metrics.JSONHandler())
	mux.Handle("GET /debug/obs/slow", s.slow.Handler())
	mux.Handle("GET /debug/obs/req", s.slow.ReqHandler())
	return s.instrument(mux)
}

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func endpointOf(path string) string {
	switch path {
	case "/v1/run":
		return "run"
	case "/v1/sweep":
		return "sweep"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	}
	if strings.HasPrefix(path, "/debug/") {
		return "debug"
	}
	return "run" // unknown paths 404 through the mux; bucket arbitrarily
}

func classOf(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	}
	return "2xx"
}

// reqStats accumulates per-request cache accounting across the points
// the request serves (one for /v1/run, many for /v1/sweep); sweeps
// serve points concurrently, hence the atomics. The instrument
// middleware plants one in the context and renders it on the
// completion log line.
type reqStats struct {
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	bypass    atomic.Int64
}

// state renders the cache interaction: the bare class for the common
// single-point request, "hit=3,miss=1"-style tallies for sweeps, and
// "none" when no point reached the cache (errors, and probes — which
// skip the sink entirely, hence the nil receiver).
func (c *reqStats) state() string {
	if c == nil {
		return "none"
	}
	counts := [...]struct {
		name string
		n    int64
	}{
		{"hit", c.hits.Load()},
		{"miss", c.misses.Load()},
		{"coalesced", c.coalesced.Load()},
		{"bypass", c.bypass.Load()},
	}
	total := int64(0)
	parts := make([]string, 0, len(counts))
	for _, ct := range counts {
		if ct.n == 0 {
			continue
		}
		total += ct.n
		parts = append(parts, fmt.Sprintf("%s=%d", ct.name, ct.n))
	}
	switch {
	case total == 0:
		return "none"
	case total == 1:
		return parts[0][:strings.IndexByte(parts[0], '=')]
	}
	return strings.Join(parts, ",")
}

// outcomeOf classifies a response status for the completion log line.
func outcomeOf(status int) string {
	switch {
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status >= 500:
		return "server_error"
	case status >= 400:
		return "client_error"
	}
	return "ok"
}

// probeEndpoint reports whether ep is scrape/probe noise (health
// checks, metric scrapes, debug views): those requests skip the
// request-stats sink and the span tree entirely — no context values, no
// trace arena, zero registry churn — and log at debug level.
func probeEndpoint(ep string) bool {
	return ep == "healthz" || ep == "metrics" || ep == "debug"
}

// instrument wraps the mux with request IDs, structured logs, latency
// histograms and request counters. Each request logs exactly one
// completion line carrying its ID, duration, cache state and outcome.
// Non-probe requests additionally get a request-scoped span tree
// (X-Trace-Id echoes the trace ID, trace_id lands on the log line); on
// completion the tree feeds the per-stage histograms and the slowest-N
// ring behind /debug/obs/slow.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := fmt.Sprintf("%06x-%04d", start.UnixNano()&0xffffff, s.reqSeq.Add(1)%10000)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sw.Header().Set("X-Request-Id", id)
		ep := endpointOf(r.URL.Path)
		var rs *reqStats
		var rt *obs.ReqTrace
		if !probeEndpoint(ep) {
			rs = &reqStats{}
			ctx := withReqStats(withRequestID(r.Context(), id), rs)
			if s.slow != nil {
				rt = obs.NewReqTrace(id, reqSpanCap)
				ctx = obs.WithSpan(ctx, rt, rt.Root())
				sw.Header().Set("X-Trace-Id", id)
			}
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		if byClass, ok := s.mReqs[ep]; ok {
			byClass[classOf(sw.status)].Inc()
		}
		if h, ok := s.mLatency[ep]; ok {
			h.Observe(dur.Seconds())
		}
		rt.Finish(r.Method+" "+r.URL.Path, sw.status)
		s.observeStages(rt)
		s.slow.Add(rt)
		level := slog.LevelInfo
		if probeEndpoint(ep) {
			level = slog.LevelDebug // probe noise
		}
		s.log.LogAttrs(r.Context(), level, "request",
			slog.String("req_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("dur", dur),
			slog.String("cache", rs.state()),
			slog.String("outcome", outcomeOf(sw.status)),
			slog.String("trace_id", rt.ID()),
		)
	})
}

// observeStages feeds one finished request trace into the per-stage
// latency histograms: every closed non-root span contributes its
// duration to mlpsimd_stage_seconds{stage=...}, so the request
// histogram decomposes into queue wait vs cache state vs simulation.
func (s *Server) observeStages(rt *obs.ReqTrace) {
	if rt == nil {
		return
	}
	for _, sp := range rt.Snapshot() {
		if sp.Stage == obs.StageRequest || sp.End == 0 {
			continue // the root IS mlpsimd_request_seconds; open spans have no duration
		}
		if h := s.mStage[sp.Stage]; h != nil {
			h.Observe(float64(sp.End-sp.Start) / 1e9)
		}
	}
}

type ctxKey int

const (
	requestIDKey ctxKey = iota
	reqStatsKey
)

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID the logging middleware attached.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

func withReqStats(ctx context.Context, rs *reqStats) context.Context {
	return context.WithValue(ctx, reqStatsKey, rs)
}

// reqStatsFrom returns the request's cache accounting; callers outside
// the middleware (direct servePoint use in tests) get a discard sink.
func reqStatsFrom(ctx context.Context) *reqStats {
	if rs, ok := ctx.Value(reqStatsKey).(*reqStats); ok {
		return rs
	}
	return &reqStats{}
}

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// fail maps pipeline errors to HTTP statuses.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	var he *httpError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away (or the server is shutting down): the exact
		// code rarely reaches anyone, but 499-style semantics fit 503.
		status = http.StatusServiceUnavailable
	}
	s.log.LogAttrs(r.Context(), slog.LevelWarn, "request failed",
		slog.String("req_id", RequestID(r.Context())),
		slog.Int("status", status),
		slog.String("err", err.Error()),
	)
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rt, parent := obs.SpanFrom(r.Context())
	var req RunRequest
	sp := rt.StartSpan(obs.StageParse, parent)
	err := json.NewDecoder(r.Body).Decode(&req)
	rt.EndSpan(sp, 0)
	if err != nil {
		s.fail(w, r, badRequest("decoding request: %v", err))
		return
	}
	resp, err := s.servePoint(r.Context(), req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	renderStart := obs.Now()
	sp = rt.StartSpan(obs.StageRender, parent)
	writeJSON(w, http.StatusOK, resp)
	rt.EndSpan(sp, 1)
	s.tracer.Complete(obs.EvRender, 0, renderStart, 1)
}

// maxSweepPoints bounds one sweep request; larger grids should be
// split by the client.
const maxSweepPoints = 4096

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	rt, parent := obs.SpanFrom(r.Context())
	var req SweepRequest
	sp := rt.StartSpan(obs.StageParse, parent)
	err := json.NewDecoder(r.Body).Decode(&req)
	rt.EndSpan(sp, 0)
	if err != nil {
		s.fail(w, r, badRequest("decoding request: %v", err))
		return
	}
	if len(req.Points) == 0 {
		s.fail(w, r, badRequest("empty sweep"))
		return
	}
	if len(req.Points) > maxSweepPoints {
		s.fail(w, r, badRequest("sweep of %d points exceeds limit %d", len(req.Points), maxSweepPoints))
		return
	}
	start := time.Now()
	resp := SweepResponse{Points: make([]RunResponse, len(req.Points))}
	errs := make([]error, len(req.Points))
	var wg sync.WaitGroup
	for i := range req.Points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Points[i], errs[i] = s.servePoint(r.Context(), req.Points[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.fail(w, r, err)
			return
		}
	}
	for _, p := range resp.Points {
		if p.Cached {
			resp.Cached++
		}
		if p.Coalesced {
			resp.Coalesced++
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	renderStart := obs.Now()
	sp = rt.StartSpan(obs.StageRender, parent)
	writeJSON(w, http.StatusOK, resp)
	rt.EndSpan(sp, int64(len(resp.Points)))
	s.tracer.Complete(obs.EvRender, 0, renderStart, int64(len(resp.Points)))
}

type healthBody struct {
	Status       string  `json:"status"`
	UptimeS      float64 `json:"uptime_s"`
	Workers      int     `json:"workers"`
	Inflight     int64   `json:"inflight"`
	QueueDepth   int64   `json:"queue_depth"`
	CacheEntries int     `json:"cache_entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	entries := 0
	if s.cache != nil {
		entries = s.cache.len()
	}
	writeJSON(w, http.StatusOK, healthBody{
		Status:       "ok",
		UptimeS:      time.Since(s.start).Seconds(),
		Workers:      s.cfg.Workers,
		Inflight:     s.mInflight.Value(),
		QueueDepth:   s.mQueueDepth.Value(),
		CacheEntries: entries,
	})
}
