package server

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"storemlp/internal/obs"
)

// getSlowListing fetches and decodes /debug/obs/slow.
func getSlowListing(t *testing.T, base string) []struct {
	TraceID string             `json:"trace_id"`
	Label   string             `json:"label"`
	Status  int                `json:"status"`
	DurMS   float64            `json:"dur_ms"`
	Spans   int                `json:"spans"`
	Stages  map[string]float64 `json:"stages_ms"`
} {
	t.Helper()
	resp, err := http.Get(base + "/debug/obs/slow")
	if err != nil {
		t.Fatalf("GET /debug/obs/slow: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/obs/slow: status %d", resp.StatusCode)
	}
	var body struct {
		Slowest []struct {
			TraceID string             `json:"trace_id"`
			Label   string             `json:"label"`
			Status  int                `json:"status"`
			DurMS   float64            `json:"dur_ms"`
			Spans   int                `json:"spans"`
			Stages  map[string]float64 `json:"stages_ms"`
		} `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding slow listing: %v", err)
	}
	return body.Slowest
}

// checkWellNested asserts the span-tree invariants on one trace: slot 0
// is the only root, every parent precedes its child in the arena,
// children start no earlier than their parent, and a closed child ends
// no later than its closed parent.
func checkWellNested(t *testing.T, spans []obs.ReqSpan, id string) {
	t.Helper()
	for i, sp := range spans {
		if i == 0 {
			if sp.Parent != obs.NoSpan || sp.Stage != obs.StageRequest {
				t.Errorf("trace %s: slot 0 = %+v, want StageRequest root", id, sp)
			}
			continue
		}
		if sp.Parent < 0 || int(sp.Parent) >= i {
			t.Errorf("trace %s: span %d (%s) has parent %d, want an earlier slot", id, i, sp.Stage, sp.Parent)
			continue
		}
		par := spans[sp.Parent]
		if sp.Start < par.Start {
			t.Errorf("trace %s: span %d (%s) starts %dns before its parent (%s)",
				id, i, sp.Stage, par.Start-sp.Start, par.Stage)
		}
		if sp.End != 0 && sp.End < sp.Start {
			t.Errorf("trace %s: span %d (%s) ends before it starts", id, i, sp.Stage)
		}
		if sp.End != 0 && par.End != 0 && sp.End > par.End {
			t.Errorf("trace %s: span %d (%s) ends %dns after its parent (%s)",
				id, i, sp.Stage, sp.End-par.End, par.Stage)
		}
	}
}

// TestSpanWaterfallColdParallelRun is the tentpole's acceptance path: a
// cold parallel-4 request against the real engine must yield a span
// waterfall covering every pipeline stage, retrievable via
// /debug/obs/slow and /debug/obs/req, stitched to the completion log
// line by trace_id, with the root span accounting for (nearly) the
// whole logged duration.
func TestSpanWaterfallColdParallelRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine run")
	}
	var buf syncBuffer
	s, ts := newTestServer(t, Config{
		Workers: 4,
		Logger:  slog.New(slog.NewTextHandler(&buf, nil)),
	})

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Workload: "tpcw", Insts: 60_000, Warm: 20_000, Parallel: 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("response missing X-Trace-Id")
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Errorf("trace ID %q != request ID %q (one ID names both)", traceID, got)
	}

	// Finish/ring-add happen after the response is written; poll.
	waitFor(t, "trace in the slow ring", func() bool { return s.slow.Get(traceID) != nil })
	rt := s.slow.Get(traceID)
	spans := rt.Snapshot()
	checkWellNested(t, spans, traceID)

	// Every stage of the cold parallel waterfall must be present, with
	// one segment+simulate pair per segment.
	byStage := map[obs.Stage]int{}
	for _, sp := range spans {
		byStage[sp.Stage]++
	}
	for _, want := range []obs.Stage{
		obs.StageParse, obs.StageDigest, obs.StageCacheProbe, obs.StagePoolWait,
		obs.StageMerge, obs.StageRender,
	} {
		if byStage[want] != 1 {
			t.Errorf("stage %s count = %d, want 1 (stages: %v)", want, byStage[want], byStage)
		}
	}
	if byStage[obs.StageSegment] != 4 || byStage[obs.StageSimulate] != 4 {
		t.Errorf("segment/simulate counts = %d/%d, want 4/4", byStage[obs.StageSegment], byStage[obs.StageSimulate])
	}

	// The root's children must account for the request's wall time: the
	// union of their intervals covers >= 90% of the root span (the
	// uncovered sliver is middleware overhead around the handler).
	root := spans[0]
	var ivs [][2]int64
	for _, sp := range spans[1:] {
		if sp.Parent == 0 && sp.End != 0 {
			ivs = append(ivs, [2]int64{sp.Start, sp.End})
		}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a][0] < ivs[b][0] })
	var covered, cursor int64
	cursor = root.Start
	for _, iv := range ivs {
		lo, hi := iv[0], iv[1]
		if lo < cursor {
			lo = cursor
		}
		if hi > lo {
			covered += hi - lo
			cursor = hi
		}
	}
	rootDur := root.End - root.Start
	if rootDur <= 0 {
		t.Fatalf("root span not closed: %+v", root)
	}
	if frac := float64(covered) / float64(rootDur); frac < 0.90 {
		t.Errorf("stage spans cover %.1f%% of the request, want >= 90%% (spans: %+v)", frac*100, spans)
	}

	// The slow listing carries the same trace with per-stage totals …
	listing := getSlowListing(t, ts.URL)
	found := false
	for _, e := range listing {
		if e.TraceID == traceID {
			found = true
			if e.Label != "POST /v1/run" || e.Status != http.StatusOK {
				t.Errorf("slow entry = %q/%d, want POST /v1/run / 200", e.Label, e.Status)
			}
			if e.Stages["simulate"] <= 0 || e.Stages["segment"] <= 0 {
				t.Errorf("slow entry stage totals missing simulation time: %v", e.Stages)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in slow listing %+v", traceID, listing)
	}

	// … and /debug/obs/req serves its Chrome waterfall.
	chromeResp, err := http.Get(ts.URL + "/debug/obs/req?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer chromeResp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Dur  float64          `json:"dur"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(chromeResp.Body).Decode(&chrome); err != nil {
		t.Fatalf("/debug/obs/req decode: %v", err)
	}
	if len(chrome.TraceEvents) != len(spans) {
		t.Errorf("chrome export has %d events, want %d", len(chrome.TraceEvents), len(spans))
	}

	// The completion log line carries the trace ID.
	waitFor(t, "completion log line", func() bool {
		return strings.Contains(buf.String(), "trace_id="+traceID)
	})

	// The per-stage histograms absorbed the tree: at least the simulate
	// stage has observations.
	if c := s.mStage[obs.StageSimulate].Count(); c < 4 {
		t.Errorf("mlpsimd_stage_seconds{stage=simulate} count = %d, want >= 4", c)
	}
}

// TestSpanProbesZeroChurn pins the probe-noise contract: health checks,
// metric scrapes and debug fetches must not build span trees, must not
// enter the slow ring, and must not add a single series to the metrics
// registry.
func TestSpanProbesZeroChurn(t *testing.T) {
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})

	countSeries := func() int {
		var sb strings.Builder
		rec := &headerRecorder{sb: &sb}
		s.Metrics.JSONHandler().ServeHTTP(rec, nil)
		var vars map[string]json.RawMessage
		if err := json.Unmarshal([]byte(sb.String()), &vars); err != nil {
			t.Fatalf("vars decode: %v", err)
		}
		return len(vars)
	}

	before := countSeries()
	for i := 0; i < 10; i++ {
		for _, path := range []string{"/healthz", "/metrics", "/debug/obs/vars", "/debug/obs/slow", "/debug/obs/runs"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Header.Get("X-Trace-Id") != "" {
				t.Errorf("probe %s got a trace ID", path)
			}
			resp.Body.Close()
		}
	}
	if after := countSeries(); after != before {
		t.Errorf("probe traffic changed the registry: %d -> %d series", before, after)
	}
	if n := s.slow.Len(); n != 0 {
		t.Errorf("slow ring holds %d probe traces, want 0", n)
	}
	for _, st := range obs.Stages() {
		if h := s.mStage[st]; h != nil && h.Count() != 0 {
			t.Errorf("stage %s histogram observed %d probe samples", st, h.Count())
		}
	}
}

// headerRecorder is a minimal ResponseWriter for driving handlers
// without the HTTP stack.
type headerRecorder struct {
	sb *strings.Builder
	h  http.Header
}

func (r *headerRecorder) Header() http.Header {
	if r.h == nil {
		r.h = make(http.Header)
	}
	return r.h
}
func (r *headerRecorder) WriteHeader(int) {}
func (r *headerRecorder) Write(p []byte) (int, error) {
	return r.sb.WriteString(string(p))
}

// TestSpanTreeWellNested is the concurrency property test (run under
// -race and -cpu 1,2,4 by check.sh): a burst of mixed run/sweep traffic
// — cache hits, coalesced followers, parallel fan-outs — must leave
// every retained span tree well-nested, and the follower/leader split
// must put coalesce_wait on follower traces only.
func TestSpanTreeWellNested(t *testing.T) {
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers:      2,
		SlowRequests: 64,
		Runner:       countingRunner(&execs, 2_000_000), // 2ms per execution
	})

	const clients = 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			switch c % 3 {
			case 0: // identical points: coalesce/hit traffic
				postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 1000})
			case 1: // distinct cold points
				postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "tpcw", Insts: 1000, Seed: int64(c + 1), NoCache: true})
			case 2: // sweeps with repeated points
				postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: []RunRequest{
					{Workload: "database", Insts: 1000},
					{Workload: "specjbb", Insts: 1000},
					{Workload: "database", Insts: 1000},
				}})
			}
		}(c)
	}
	wg.Wait()

	waitFor(t, "all requests retained", func() bool { return s.slow.Len() == clients })
	for _, rt := range s.slow.Snapshot() {
		spans := rt.Snapshot()
		checkWellNested(t, spans, rt.ID())
		if rt.Dropped() != 0 {
			t.Errorf("trace %s dropped %d spans under a %d-span arena", rt.ID(), rt.Dropped(), reqSpanCap)
		}
		// Followers record the wait; leaders record the execution. No
		// trace legitimately holds both a coalesce_wait and a pool_wait
		// for the same point in this workload (single-point runs), and
		// sweeps only mix them across distinct points.
		if strings.HasPrefix(rt.Label(), "POST /v1/run") {
			hasWait, hasPool := false, false
			for _, sp := range spans {
				switch sp.Stage {
				case obs.StageCoalesceWait:
					hasWait = true
				case obs.StagePoolWait:
					hasPool = true
				}
			}
			if hasWait && hasPool {
				t.Errorf("trace %s has both coalesce_wait and pool_wait for a single point", rt.ID())
			}
		}
	}
}

// TestSpanSweepFanOut: each sweep point contributes its own
// digest/cache-probe chain under the shared root, and the arena bounds
// hold for a larger-than-typical sweep.
func TestSpanSweepFanOut(t *testing.T) {
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})

	const points = 32
	pts := make([]RunRequest, points)
	for i := range pts {
		pts[i] = RunRequest{Workload: "database", Insts: 1000, Seed: int64(i + 1)}
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Points: pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Trace-Id")
	waitFor(t, "sweep trace retained", func() bool { return s.slow.Get(id) != nil })

	spans := s.slow.Get(id).Snapshot()
	checkWellNested(t, spans, id)
	byStage := map[obs.Stage]int{}
	for _, sp := range spans {
		byStage[sp.Stage]++
	}
	if byStage[obs.StageDigest] != points || byStage[obs.StagePoolWait] != points {
		t.Errorf("digest/pool_wait counts = %d/%d, want %d each",
			byStage[obs.StageDigest], byStage[obs.StagePoolWait], points)
	}
}

// TestSpanTracingDisabled: SlowRequests < 0 removes the whole span
// surface — no X-Trace-Id, empty slow listing, 404 waterfalls — while
// requests keep serving.
func TestSpanTracingDisabled(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0), SlowRequests: -1})

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 1000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Errorf("disabled tracing still sets X-Trace-Id %q", got)
	}
	if listing := getSlowListing(t, ts.URL); len(listing) != 0 {
		t.Errorf("disabled tracing retained %d traces", len(listing))
	}
	reqResp, err := http.Get(ts.URL + "/debug/obs/req?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	reqResp.Body.Close()
	if reqResp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/obs/req on disabled ring: status %d, want 404", reqResp.StatusCode)
	}
}

// TestSpanConfigDigestVisible: the slow-ring size is part of the
// config-info digest, so differently-observable daemons are tellable
// apart from a scrape.
func TestSpanConfigDigestVisible(t *testing.T) {
	digestOf := func(cfg Config) string {
		cfg.Logger = quietLogger()
		s := New(cfg)
		defer s.Close()
		var sb strings.Builder
		rec := &headerRecorder{sb: &sb}
		s.Metrics.JSONHandler().ServeHTTP(rec, nil)
		var vars map[string]json.RawMessage
		if err := json.Unmarshal([]byte(sb.String()), &vars); err != nil {
			t.Fatal(err)
		}
		for key := range vars {
			if strings.HasPrefix(key, "mlpsimd_config_info{") && strings.Contains(key, `digest="`) {
				return key
			}
		}
		t.Fatalf("no config_info digest in vars:\n%s", sb.String())
		return ""
	}
	a := digestOf(Config{SlowRequests: 16})
	b := digestOf(Config{SlowRequests: 64})
	if a == b {
		t.Errorf("config digests identical across SlowRequests 16 vs 64:\n%s", a)
	}
}
