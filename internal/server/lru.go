package server

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded most-recently-used result cache keyed by
// config digest. Sweeps revisit identical points constantly (every
// repeated figure grid, every retried request), so a small LRU converts
// the common case from a multi-hundred-millisecond simulation into a
// map lookup.
type lruCache struct {
	mu    sync.Mutex
	max   int                      // immutable after construction
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu

	evictions int64 // guarded by mu
}

type lruEntry struct {
	key string
	val *RunResult
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result and refreshes its recency.
func (c *lruCache) get(key string) (*RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) a result, evicting the least recently used
// entry when full.
func (c *lruCache) add(key string, val *RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted returns the total number of evictions.
func (c *lruCache) evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
