package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"storemlp/internal/epoch"
	"storemlp/internal/obs"
	"storemlp/internal/sim"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// countingRunner returns a Runner that counts executions, sleeps for
// delay (observing ctx), and fabricates deterministic stats.
func countingRunner(execs *atomic.Int64, delay time.Duration) Runner {
	return func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error) {
		execs.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &epoch.Stats{Insts: spec.Insts, Epochs: spec.Insts / 100, StoreMisses: 7}, nil
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeRun(t *testing.T, raw []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return rr
}

// TestCoalescingExactlyOneExecution is the serving-layer keystone: N
// concurrent identical requests must cost exactly one engine execution
// and produce N identical responses. Run under -race via make check.
func TestCoalescingExactlyOneExecution(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 4,
		Runner:  countingRunner(&execs, 100*time.Millisecond),
	})

	const n = 32
	req := RunRequest{Workload: "database", Insts: 1000, Warm: 100}
	responses := make([]RunResponse, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/run", req)
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				responses[i] = decodeRun(t, body)
			}
		}(i)
	}
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("engine executed %d times for %d identical concurrent requests, want exactly 1", got, n)
	}
	leaders, coalesced, cached := 0, 0, 0
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		r := responses[i]
		if r.Digest != responses[0].Digest {
			t.Errorf("request %d: digest %s differs from %s", i, r.Digest, responses[0].Digest)
		}
		if r.Result != responses[0].Result {
			t.Errorf("request %d: result %+v differs from %+v", i, r.Result, responses[0].Result)
		}
		switch {
		case r.Coalesced:
			coalesced++
		case r.Cached:
			cached++
		default:
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d (coalesced %d, cached %d), want exactly 1", leaders, coalesced, cached)
	}
	if coalesced+cached != n-1 {
		t.Errorf("coalesced %d + cached %d != %d", coalesced, cached, n-1)
	}
}

func TestCacheHitSecondRequest(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})

	req := RunRequest{Workload: "tpcw", Insts: 1000, Warm: 0}
	_, body := postJSON(t, ts.URL+"/v1/run", req)
	first := decodeRun(t, body)
	if first.Cached || first.Coalesced {
		t.Fatalf("first request should execute: %+v", first)
	}
	_, body = postJSON(t, ts.URL+"/v1/run", req)
	second := decodeRun(t, body)
	if !second.Cached {
		t.Fatalf("second identical request should be cached: %+v", second)
	}
	if execs.Load() != 1 {
		t.Errorf("executions = %d, want 1", execs.Load())
	}

	// A single changed knob must miss the cache.
	sq := 64
	req.Config = &ConfigPatch{StoreQueue: &sq}
	_, body = postJSON(t, ts.URL+"/v1/run", req)
	third := decodeRun(t, body)
	if third.Cached || third.Digest == second.Digest {
		t.Fatalf("changed config must not share digest/cache: %+v", third)
	}
	if execs.Load() != 2 {
		t.Errorf("executions = %d, want 2", execs.Load())
	}
}

func TestNoCacheAlwaysExecutes(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})
	req := RunRequest{Workload: "specjbb", Insts: 1000, NoCache: true}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/run", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		rr := decodeRun(t, body)
		if rr.Cached || rr.Coalesced {
			t.Fatalf("nocache response marked cached/coalesced: %+v", rr)
		}
	}
	if execs.Load() != 3 {
		t.Errorf("executions = %d, want 3", execs.Load())
	}
}

func TestSweepDedupAndAggregates(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 2, Runner: countingRunner(&execs, 20*time.Millisecond)})

	// 12 points but only 3 distinct configs.
	var sweep SweepRequest
	for i := 0; i < 12; i++ {
		sb := 8 << (i % 3)
		sweep.Points = append(sweep.Points, RunRequest{
			Workload: "database", Insts: 1000,
			Config: &ConfigPatch{StoreBuffer: &sb},
		})
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 12 {
		t.Fatalf("points = %d", len(sr.Points))
	}
	if got := execs.Load(); got != 3 {
		t.Errorf("executions = %d, want 3 (9 duplicates coalesced/cached)", got)
	}
	if sr.Cached+sr.Coalesced != 9 {
		t.Errorf("cached %d + coalesced %d, want 9 total", sr.Cached, sr.Coalesced)
	}
	digests := map[string]bool{}
	for _, p := range sr.Points {
		digests[p.Digest] = true
	}
	if len(digests) != 3 {
		t.Errorf("distinct digests = %d, want 3", len(digests))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: countingRunner(new(atomic.Int64), 0)})
	cases := []struct {
		name string
		url  string
		body interface{}
	}{
		{"unknown workload", "/v1/run", RunRequest{Workload: "nope", Insts: 1000}},
		{"missing workload", "/v1/run", RunRequest{Insts: 1000}},
		{"bad model", "/v1/run", RunRequest{Workload: "tpcw", Config: &ConfigPatch{Model: strptr("zz")}}},
		{"bad prefetch", "/v1/run", RunRequest{Workload: "tpcw", Config: &ConfigPatch{StorePrefetch: intptr(9)}}},
		{"bad hws", "/v1/run", RunRequest{Workload: "tpcw", Config: &ConfigPatch{HWS: intptr(7)}}},
		{"invalid config", "/v1/run", RunRequest{Workload: "tpcw", Config: &ConfigPatch{ROB: intptr(-1)}}},
		{"over budget", "/v1/run", RunRequest{Workload: "tpcw", Insts: 1 << 60}},
		{"empty sweep", "/v1/sweep", SweepRequest{}},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.url, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q", c.name, body)
		}
	}
}

func strptr(s string) *string { return &s }
func intptr(i int) *int       { return &i }

func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: countingRunner(new(atomic.Int64), 5*time.Second)})
	req := RunRequest{Workload: "specweb", Insts: 1000, NoCache: true, TimeoutMS: 30}
	resp, _ := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestAbandonedCallCancelsSimulation: when every waiter disconnects,
// the in-flight simulation's context must be cancelled.
func TestAbandonedCallCancelsSimulation(t *testing.T) {
	sawCancel := make(chan struct{})
	runner := func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error) {
		<-ctx.Done()
		close(sawCancel)
		return nil, ctx.Err()
	}
	s := New(Config{Runner: runner, Logger: quietLogger()})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.servePoint(ctx, RunRequest{Workload: "database", Insts: 1000})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call enter the flight group
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("abandoned request should return its context error")
	}
	select {
	case <-sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("simulation context was never cancelled after all waiters left")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, Runner: countingRunner(new(atomic.Int64), 0)})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb healthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Workers != 3 {
		t.Errorf("health = %+v", hb)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("missing X-Request-Id header")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})
	req := RunRequest{Workload: "database", Insts: 1000}
	postJSON(t, ts.URL+"/v1/run", req)
	postJSON(t, ts.URL+"/v1/run", req) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`mlpsimd_requests_total{class="2xx",endpoint="run"} 2`,
		"mlpsimd_cache_hits_total 1",
		"mlpsimd_cache_misses_total 1",
		"mlpsimd_sims_executed_total 1",
		"mlpsimd_coalesced_requests_total 0",
		"mlpsimd_cache_entries 1",
		"mlpsimd_sims_inflight 0",
		"mlpsimd_queue_depth 0",
		"# TYPE mlpsimd_request_seconds histogram",
		`mlpsimd_request_seconds_bucket{endpoint="run",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, text)
		}
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	var inflight, peak atomic.Int64
	runner := func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		inflight.Add(-1)
		return &epoch.Stats{Insts: spec.Insts}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 2, Runner: runner})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: no coalescing, all must execute.
			postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "tpcw", Insts: 1000, Seed: int64(i + 1)})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent simulations = %d, want <= 2", p)
	}
}

func TestRealEngineSmallRun(t *testing.T) {
	// One end-to-end run through the real epoch engine, small enough for
	// test time but long enough to produce epochs.
	s, ts := newTestServer(t, Config{})
	req := RunRequest{Workload: "database", Insts: 100_000, Warm: 50_000}
	resp, body := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr := decodeRun(t, body)
	if rr.Result.Insts != 100_000 {
		t.Errorf("insts = %d", rr.Result.Insts)
	}
	if rr.Result.EPI <= 0 || rr.Result.Epochs <= 0 {
		t.Errorf("EPI=%v epochs=%d, want positive", rr.Result.EPI, rr.Result.Epochs)
	}
	if math.IsNaN(rr.Result.MLP) {
		t.Error("MLP is NaN")
	}
	if !strings.Contains(rr.Result.ConfigName, "PC Sp1") {
		t.Errorf("config name %q", rr.Result.ConfigName)
	}

	// The default pool runner picks the obs sinks out of the request
	// context: the tracer holds the engine's phase spans and the board
	// folded the finished run into its totals.
	var simulated bool
	for _, ev := range s.Tracer().Snapshot() {
		if ev.Kind == obs.EvSimulate {
			simulated = true
		}
	}
	if !simulated {
		t.Error("real run left no simulate span in the tracer")
	}
	if tot := s.Board().Totals(); tot.FinishedRuns < 1 || tot.Insts < 150_000 {
		t.Errorf("board totals %+v, want >= 1 finished run of 150000 insts", tot)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	r := func(n int64) *RunResult { return &RunResult{Insts: n} }
	c.add("a", r(1))
	c.add("b", r(2))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", r(3)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.len() != 2 || c.evicted() != 1 {
		t.Errorf("len=%d evicted=%d", c.len(), c.evicted())
	}
	// Re-adding an existing key must refresh, not grow.
	c.add("a", r(9))
	if got, _ := c.get("a"); got.Insts != 9 {
		t.Errorf("refresh lost: %+v", got)
	}
	if c.len() != 2 {
		t.Errorf("len=%d after refresh", c.len())
	}
}

// scrapeFamilies fetches /metrics and validates the body against the
// Prometheus text exposition grammar (names, HELP/TYPE pairing,
// histogram bucket structure, counter sanity).
func scrapeFamilies(t *testing.T, url string) []obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	fams, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics violates exposition grammar: %v", err)
	}
	return fams
}

// TestMetricsExpositionGrammar is the scrape-parse gate: the full
// /metrics output must survive a strict exposition-format parse before
// and after traffic, and every counter must be monotone between the
// two scrapes.
func TestMetricsExpositionGrammar(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})

	first := scrapeFamilies(t, ts.URL)
	req := RunRequest{Workload: "database", Insts: 1000}
	for i := 0; i < 2; i++ { // miss then hit
		resp, body := postJSON(t, ts.URL+"/v1/run", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	second := scrapeFamilies(t, ts.URL)
	if err := obs.CountersMonotone(first, second); err != nil {
		t.Errorf("counters regressed between scrapes: %v", err)
	}

	names := make(map[string]bool, len(second))
	for _, f := range second {
		names[f.Name] = true
	}
	for _, want := range []string{
		"mlpsimd_requests_total", "mlpsimd_request_seconds",
		"mlpsimd_cache_hit_ratio", "mlpsimd_pool_saturation",
		"mlpsimd_engine_epochs_total", "mlpsimd_engine_insts_per_second",
		"mlpsimd_engine_epochs_per_second", "mlpsimd_runs_active",
		"mlpsimd_trace_events_total", "mlpsimd_build_info", "mlpsimd_config_info",
	} {
		if !names[want] {
			t.Errorf("scrape missing family %s", want)
		}
	}
}

// syncBuffer makes a bytes.Buffer safe to share between the server's
// logging goroutine and the test.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls cond (the completion log line is written after the
// response reaches the client, so the test must wait for it).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestLogFields asserts the satellite contract on the request
// logger: one completion line per request carrying request ID,
// duration, cache state and outcome.
func TestRequestLogFields(t *testing.T) {
	var buf syncBuffer
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{
		Runner: countingRunner(&execs, 0),
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})

	req := RunRequest{Workload: "database", Insts: 1000}
	for i := 0; i < 2; i++ { // miss then hit
		if resp, body := postJSON(t, ts.URL+"/v1/run", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	requestLines := func() []string {
		var out []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, "msg=request ") {
				out = append(out, line)
			}
		}
		return out
	}
	waitFor(t, "two completion log lines", func() bool { return len(requestLines()) >= 2 })

	lines := requestLines()
	for i, line := range lines[:2] {
		for _, field := range []string{"req_id=", "dur=", "status=200", "outcome=ok", "path=/v1/run"} {
			if !strings.Contains(line, field) {
				t.Errorf("log line %d missing %s: %s", i, field, line)
			}
		}
	}
	if !strings.Contains(lines[0], "cache=miss") {
		t.Errorf("first request should log cache=miss: %s", lines[0])
	}
	if !strings.Contains(lines[1], "cache=hit") {
		t.Errorf("second request should log cache=hit: %s", lines[1])
	}
}

// TestDebugObservabilityEndpoints exercises the /debug/obs/* views:
// the Chrome trace export, the live-run board and the JSON mirror of
// the metrics registry.
func TestDebugObservabilityEndpoints(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})
	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 1000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}

	getJSON := func(path string, v interface{}) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}

	// The render span is recorded after the response is written; poll.
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	waitFor(t, "a render span in the trace", func() bool {
		tr.TraceEvents = nil
		getJSON("/debug/obs/trace", &tr)
		for _, ev := range tr.TraceEvents {
			if ev.Name == "render" && ev.Ph == "X" {
				return true
			}
		}
		return false
	})

	var runs struct {
		Active []obs.Snapshot `json:"active"`
		Totals obs.Totals     `json:"totals"`
	}
	getJSON("/debug/obs/runs", &runs)
	if runs.Active == nil {
		t.Error("/debug/obs/runs active should render as [], not null")
	}

	var vars map[string]interface{}
	getJSON("/debug/obs/vars", &vars)
	if got, ok := vars["mlpsimd_sims_executed_total"].(float64); !ok || got != 1 {
		t.Errorf("vars executed_total = %v, want 1", vars["mlpsimd_sims_executed_total"])
	}
}

// TestTracerDisabled: TraceEvents < 0 turns tracing off; the endpoint
// shape survives as an empty trace.
func TestTracerDisabled(t *testing.T) {
	var execs atomic.Int64
	s, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0), TraceEvents: -1})
	if s.Tracer() != nil {
		t.Fatal("TraceEvents < 0 should disable the tracer")
	}
	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 1000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/debug/obs/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("disabled tracer exported %d events", len(tr.TraceEvents))
	}
}

func TestEndpointClassification(t *testing.T) {
	if classOf(200) != "2xx" || classOf(404) != "4xx" || classOf(500) != "5xx" {
		t.Error("classOf broken")
	}
	for path, want := range map[string]string{
		"/v1/run": "run", "/v1/sweep": "sweep", "/healthz": "healthz", "/metrics": "metrics",
		"/debug/obs/trace": "debug", "/debug/obs/runs": "debug", "/debug/obs/vars": "debug",
	} {
		if got := endpointOf(path); got != want {
			t.Errorf("endpointOf(%s) = %s", path, got)
		}
	}
}

func TestServerCloseAbortsInflight(t *testing.T) {
	started := make(chan struct{})
	runner := func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := New(Config{Runner: runner, Logger: quietLogger()})
	errc := make(chan error, 1)
	go func() {
		_, err := s.servePoint(context.Background(), RunRequest{Workload: "database", Insts: 1000})
		errc <- err
	}()
	<-started
	s.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("closed server should abort the simulation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("simulation did not abort on Close")
	}
}

func ExampleServer() {
	runner := func(ctx context.Context, spec sim.Spec) (*epoch.Stats, error) {
		return &epoch.Stats{Insts: spec.Insts, Epochs: 42}, nil
	}
	s := New(Config{Runner: runner, Logger: quietLogger()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := strings.NewReader(`{"workload":"database","insts":1000,"warm":100}`)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", body)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var rr RunResponse
	_ = json.NewDecoder(resp.Body).Decode(&rr)
	fmt.Println(resp.StatusCode, rr.Result.Epochs, rr.Cached)
	// Output: 200 42 false
}

// TestParallelRequestSegments covers the parallel serving knob: the
// request field fans the run out and is digest-visible, the daemon
// default applies when the request is silent, and the response reports
// the actual segment count.
func TestParallelRequestSegments(t *testing.T) {
	var execs atomic.Int64
	_, ts := newTestServer(t, Config{Runner: countingRunner(&execs, 0)})

	_, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 100_000, Parallel: 4})
	par := decodeRun(t, body)
	if par.Result.Segments != 4 {
		t.Errorf("segments = %d, want 4", par.Result.Segments)
	}
	_, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 100_000})
	serial := decodeRun(t, body)
	if serial.Result.Segments != 1 {
		t.Errorf("serial segments = %d, want 1", serial.Result.Segments)
	}
	// Parallel results approximate serial ones: the two requests must
	// not share a cache key.
	if par.Digest == serial.Digest {
		t.Errorf("parallel and serial runs share digest %s", par.Digest)
	}
	if serial.Cached || par.Cached {
		t.Error("distinct digests should both have executed")
	}

	// A tiny run clamps below the requested fan-out instead of running
	// sub-minimum segments.
	_, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 5000, Parallel: 64})
	if got := decodeRun(t, body).Result.Segments; got >= 64 {
		t.Errorf("tiny run segments = %d, want clamped below 64", got)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "database", Insts: 100_000, Parallel: -2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative parallel: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestDefaultParallelApplied: a daemon started with DefaultParallel
// splits silent requests, and the config default is digest-visible so
// the cache space is disjoint from a serial daemon's.
func TestDefaultParallelApplied(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Runner:          countingRunner(new(atomic.Int64), 0),
		DefaultParallel: 2,
	})
	_, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "tpcw", Insts: 100_000})
	rr := decodeRun(t, body)
	if rr.Result.Segments != 2 {
		t.Errorf("segments = %d, want daemon default 2", rr.Result.Segments)
	}
	// An explicit parallel:1 overrides the daemon default back to serial.
	_, body = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "tpcw", Insts: 100_000, Parallel: 1})
	if got := decodeRun(t, body).Result.Segments; got != 1 {
		t.Errorf("explicit serial segments = %d, want 1", got)
	}
}
