package server

import (
	"context"
	"sync"

	"storemlp/internal/obs"
)

// flightGroup coalesces concurrent executions of the same digest: the
// first request becomes the leader and spawns the simulation; every
// later identical request joins the in-flight call instead of running
// its own copy. N concurrent identical sweep points therefore cost one
// engine execution.
//
// Cancellation is reference-counted: the simulation runs on a context
// derived from the server's base context (not the leader's request, so
// one client disconnect cannot kill everyone else's result), and is
// cancelled only when every joined waiter has abandoned the call.
type flightGroup struct {
	base  context.Context // server lifetime; cancelling it aborts everything
	mu    sync.Mutex
	calls map[string]*flightCall // guarded by mu
}

type flightCall struct {
	done    chan struct{}
	res     *RunResult
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, calls: make(map[string]*flightCall)}
}

// do executes exec for key exactly once among concurrent callers. The
// returned shared flag is true for callers that joined an existing
// in-flight execution. ctx is the caller's request context: if it ends
// before the call completes, the caller unblocks with ctx's error, and
// the simulation itself is cancelled once no waiters remain.
func (g *flightGroup) do(ctx context.Context, key string, exec func(context.Context) (*RunResult, error)) (res *RunResult, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		// A follower's whole pipeline is this wait: the execution spans
		// belong to the leader's trace (servePoint re-attaches the
		// leader's span context to execCtx), so the follower records only
		// how long it was parked on someone else's simulation.
		rt, parent := obs.SpanFrom(ctx)
		sp := rt.StartSpan(obs.StageCoalesceWait, parent)
		res, err = g.wait(ctx, key, c)
		rt.EndSpan(sp, 0)
		return res, true, err
	}
	execCtx, cancel := context.WithCancel(g.base)
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		res, err := exec(execCtx)
		g.mu.Lock()
		c.res, c.err = res, err
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()

	res, err = g.wait(ctx, key, c)
	return res, false, err
}

// wait blocks until the call completes or the caller's context ends.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall) (*RunResult, error) {
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		orphaned := c.waiters == 0
		if orphaned && g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if orphaned {
			c.cancel() // nobody wants the result: abort the simulation
		}
		return nil, ctx.Err()
	}
}
