package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal Prometheus-text-format metrics registry. The
// module pins zero external dependencies, so instead of the prometheus
// client library we expose exactly the instrument kinds the daemon
// needs — counters, gauges, and fixed-bucket histograms — rendered in
// the text exposition format any Prometheus scraper understands.

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram observes float64 samples into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // guarded by mu; upper bounds, ascending; +Inf implied
	counts []int64   // guarded by mu; len(bounds)+1
	sum    float64   // guarded by mu
	count  int64     // guarded by mu
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// DefBuckets are latency buckets in seconds, spanning cache hits
// (microseconds) through multi-second cold simulations.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string // base name, no labels
	help   string
	kind   metricKind
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Metrics is a registry of instruments that renders itself in the
// Prometheus text exposition format.
type Metrics struct {
	mu      sync.Mutex
	metrics []*metric          // guarded by mu
	byKey   map[string]*metric // guarded by mu
	// onScrape hooks run before each render, for gauges derived from
	// ambient state (uptime, cache size).
	onScrape []func() // guarded by mu
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byKey: make(map[string]*metric)}
}

// labelString renders k,v pairs as a stable label block.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

func (m *Metrics) register(name, help string, kind metricKind, kv []string) *metric {
	labels := labelString(kv)
	key := name + labels
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.byKey[key]; ok {
		if existing.kind != kind {
			panic("metrics: " + key + " re-registered with a different kind")
		}
		return existing
	}
	mt := &metric{name: name, help: help, kind: kind, labels: labels}
	m.metrics = append(m.metrics, mt)
	m.byKey[key] = mt
	return mt
}

// Counter registers (or returns) a counter. kv are label key/value
// pairs, e.g. Counter("requests_total", "...", "endpoint", "run").
func (m *Metrics) Counter(name, help string, kv ...string) *Counter {
	mt := m.register(name, help, kindCounter, kv)
	if mt.c == nil {
		mt.c = &Counter{}
	}
	return mt.c
}

// Gauge registers (or returns) a gauge.
func (m *Metrics) Gauge(name, help string, kv ...string) *Gauge {
	mt := m.register(name, help, kindGauge, kv)
	if mt.g == nil {
		mt.g = &Gauge{}
	}
	return mt.g
}

// Histogram registers (or returns) a histogram with the given upper
// bounds (ascending; +Inf is implicit).
func (m *Metrics) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	mt := m.register(name, help, kindHistogram, kv)
	if mt.h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		mt.h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
	}
	return mt.h
}

// OnScrape registers a hook run before every render.
func (m *Metrics) OnScrape(fn func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onScrape = append(m.onScrape, fn)
}

// WriteTo renders the registry in Prometheus text format, grouped by
// metric name with HELP/TYPE headers, names and label sets sorted.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	hooks := append([]func(){}, m.onScrape...)
	ms := append([]*metric{}, m.metrics...)
	m.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	var b strings.Builder
	lastName := ""
	for _, mt := range ms {
		if mt.name != lastName {
			fmt.Fprintf(&b, "# HELP %s %s\n", mt.name, mt.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", mt.name, [...]string{"counter", "gauge", "histogram"}[mt.kind])
			lastName = mt.name
		}
		switch mt.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", mt.name, mt.labels, mt.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", mt.name, mt.labels, mt.g.Value())
		case kindHistogram:
			mt.h.mu.Lock()
			cum := int64(0)
			for i, bound := range mt.h.bounds {
				cum += mt.h.counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", mt.name, mergeLabels(mt.labels, "le", formatBound(bound)), cum)
			}
			cum += mt.h.counts[len(mt.h.bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", mt.name, mergeLabels(mt.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %g\n", mt.name, mt.labels, mt.h.sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", mt.name, mt.labels, mt.h.count)
			mt.h.mu.Unlock()
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// mergeLabels appends one extra label pair to a rendered label block.
func mergeLabels(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Handler serves the registry over HTTP.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := m.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
