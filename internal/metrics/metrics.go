// Package metrics provides small formatting helpers for rendering the
// experiment results as text tables mirroring the paper's tables and
// figure series.
package metrics

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is a simple text table with a title, column headers and rows.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with %.3f.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Headers, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return b.String()
}

// Bar renders a crude horizontal bar of width proportional to v/max
// (capped at 40 chars), for quick visual comparison in terminal output.
func Bar(v, max float64) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * 40)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}
