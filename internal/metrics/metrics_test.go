package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("beta", 42)
	tb.AddRow("gamma", float32(0.5))
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	out := tb.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "1.235", "42", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// No title: no header line.
	tb2 := NewTable("", "a")
	tb2.AddRow("x")
	if strings.Contains(tb2.String(), "==") {
		t.Error("untitled table should have no title banner")
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10) != "" || Bar(5, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
	if got := Bar(5, 10); len(got) != 20 {
		t.Errorf("half bar length = %d, want 20", len(got))
	}
	if got := Bar(100, 10); len(got) != 40 {
		t.Errorf("overflow bar length = %d, want capped 40", len(got))
	}
}
