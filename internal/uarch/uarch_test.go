package uarch

import (
	"strings"
	"testing"

	"storemlp/internal/consistency"
)

func TestDefaultValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.ROB != 64 || c.StoreBuffer != 16 || c.StoreQueue != 32 ||
		c.IssueWindow != 32 || c.FetchBuffer != 32 || c.LoadBuffer != 64 {
		t.Errorf("default sizes wrong: %+v", c)
	}
	if c.StorePrefetch != Sp1 {
		t.Error("default prefetch should be at-retire (Sp1)")
	}
	if c.CoalesceBytes != 8 {
		t.Error("default coalescing should be 8 bytes")
	}
	if c.Model != consistency.PC {
		t.Error("default model should be PC")
	}
	if c.MissPenalty != 500 {
		t.Error("default miss penalty should be 500")
	}
}

func TestValidateErrors(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.ROB = 0 },
		func(c *Config) { c.FetchBuffer = -1 },
		func(c *Config) { c.StorePrefetch = PrefetchMode(9) },
		func(c *Config) { c.HWS = HWSMode(9) },
		func(c *Config) { c.Model = consistency.Model(9) },
		func(c *Config) { c.CoalesceBytes = 7 },
		func(c *Config) { c.CoalesceBytes = -8 },
		func(c *Config) { c.MissPenalty = 0 },
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.SMACEntries = -1 },
		func(c *Config) { c.Hierarchy.L2.Ways = 0 },
		func(c *Config) { c.SLE = true; c.TM = true },
	}
	for i, m := range mut {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

func TestValidateRejectsNegativeKnobs(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative scout reach", func(c *Config) { c.ScoutReach = -1 }, "scout reach"},
		{"negative L1 latency", func(c *Config) { c.L1Latency = -1 }, "cache latency"},
		{"negative L2 latency", func(c *Config) { c.L2Latency = -4 }, "cache latency"},
		{"negative on-chip CPI", func(c *Config) { c.CPIOnChip = -0.5 }, "on-chip CPI"},
		{"negative warmup", func(c *Config) { c.WarmInsts = -1 }, "warmup"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Default()
			tt.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestValidateAcceptsUnconstrainedKnobs(t *testing.T) {
	// Fields marked storemlpvet:novalidate: their whole domain is valid.
	muts := []func(*Config){
		func(c *Config) { c.StoreQueue = 0 },  // unbounded store queue
		func(c *Config) { c.StoreQueue = -1 }, // also unbounded
		func(c *Config) { c.PrefetchPastSerializing = true },
		func(c *Config) { c.PerfectStores = true },
	}
	for i, m := range muts {
		c := Default()
		m(&c)
		if err := c.Validate(); err != nil {
			t.Errorf("mutation %d should be valid: %v", i, err)
		}
	}
}

func TestPrefetchModeStrings(t *testing.T) {
	if Sp0.String() != "Sp0" || Sp1.String() != "Sp1" || Sp2.String() != "Sp2" {
		t.Error("prefetch mode names wrong")
	}
	if !strings.HasPrefix(PrefetchMode(9).String(), "Sp(") {
		t.Error("unknown mode string wrong")
	}
	if !Sp2.Valid() || PrefetchMode(3).Valid() {
		t.Error("validity wrong")
	}
}

func TestHWSModes(t *testing.T) {
	if NoHWS.String() != "NoHWS" || HWS0.String() != "HWS0" ||
		HWS1.String() != "HWS1" || HWS2.String() != "HWS2" {
		t.Error("HWS names wrong")
	}
	if !strings.HasPrefix(HWSMode(9).String(), "HWS(") {
		t.Error("unknown HWS string wrong")
	}
	if HWS0.PrefetchesStores() || !HWS1.PrefetchesStores() || !HWS2.PrefetchesStores() {
		t.Error("PrefetchesStores wrong")
	}
	if HWS1.TriggersOnStoreStall() || !HWS2.TriggersOnStoreStall() {
		t.Error("TriggersOnStoreStall wrong")
	}
}

func TestEffectiveScoutReach(t *testing.T) {
	c := Default() // 500 / 1.1 = 454
	if got := c.EffectiveScoutReach(); got != 454 {
		t.Errorf("EffectiveScoutReach = %d, want 454", got)
	}
	c.ScoutReach = 100
	if got := c.EffectiveScoutReach(); got != 100 {
		t.Errorf("explicit reach = %d", got)
	}
	c.ScoutReach = 0
	c.CPIOnChip = 0 // degenerate: falls back to CPI 1
	if got := c.EffectiveScoutReach(); got != 500 {
		t.Errorf("degenerate reach = %d", got)
	}
}

func TestOverlapWindow(t *testing.T) {
	c := Default()
	if got := c.OverlapWindow(); got != 454 {
		t.Errorf("OverlapWindow = %d, want 454", got)
	}
}

func TestName(t *testing.T) {
	c := Default()
	if got := c.Name(); got != "PC Sp1 Sb16 Sq32" {
		t.Errorf("Name = %q", got)
	}
	c.Model = consistency.WC
	c.SLE = true
	c.PrefetchPastSerializing = true
	c.HWS = HWS2
	c.SMACEntries = 32 << 10
	c.PerfectStores = true
	c.StoreQueue = 0
	got := c.Name()
	for _, part := range []string{"WC", "SqInf", "SLE", "PPS", "HWS2", "SMAC32K", "perfect-stores"} {
		if !strings.Contains(got, part) {
			t.Errorf("Name %q missing %q", got, part)
		}
	}
}
