// Package uarch holds the microarchitecture parameter block of the
// paper's default processor configuration (§4.3) together with every
// store-handling and MLP optimization knob evaluated in §5.
package uarch

import (
	"fmt"

	"storemlp/internal/branch"
	"storemlp/internal/cache"
	"storemlp/internal/consistency"
	"storemlp/internal/smac"
)

// PrefetchMode selects the hardware store prefetching scheme (§3.3.2).
type PrefetchMode uint8

const (
	// Sp0 disables store prefetching: missing stores issue their
	// ownership requests serially as they reach the store queue head.
	Sp0 PrefetchMode = iota
	// Sp1 prefetches for write when the store retires (enters the store
	// queue): all missing stores in the store queue overlap.
	Sp1
	// Sp2 prefetches for write when the store's address is generated:
	// missing stores in both the store buffer and store queue overlap.
	Sp2
)

func (m PrefetchMode) String() string {
	switch m {
	case Sp0:
		return "Sp0"
	case Sp1:
		return "Sp1"
	case Sp2:
		return "Sp2"
	}
	return fmt.Sprintf("Sp(%d)", uint8(m))
}

// Valid reports whether m is a defined mode.
func (m PrefetchMode) Valid() bool { return m <= Sp2 }

// HWSMode selects the Hardware Scouting configuration (§5.4).
type HWSMode uint8

const (
	// NoHWS disables hardware scouting.
	NoHWS HWSMode = iota
	// HWS0 invokes scout on a missing load; scout prefetches only
	// missing loads and missing instructions.
	HWS0
	// HWS1 is HWS0 plus store prefetches while in scout mode.
	HWS1
	// HWS2 is HWS1 plus invoking scout when the store queue is full and
	// rename/dispatch is stalled — the paper's proposed optimization.
	HWS2
)

func (m HWSMode) String() string {
	switch m {
	case NoHWS:
		return "NoHWS"
	case HWS0:
		return "HWS0"
	case HWS1:
		return "HWS1"
	case HWS2:
		return "HWS2"
	}
	return fmt.Sprintf("HWS(%d)", uint8(m))
}

// Valid reports whether m is a defined mode.
func (m HWSMode) Valid() bool { return m <= HWS2 }

// PrefetchesStores reports whether scout mode issues prefetches for
// missing stores.
func (m HWSMode) PrefetchesStores() bool { return m == HWS1 || m == HWS2 }

// TriggersOnStoreStall reports whether scout is also invoked on
// store-queue-full dispatch stalls.
func (m HWSMode) TriggersOnStoreStall() bool { return m == HWS2 }

// Config is the full simulated machine description.
type Config struct {
	// Pipeline structure sizes (§4.3 defaults in parentheses).
	FetchBuffer int // fetched-but-not-dispatched instructions (32)
	IssueWindow int // dispatched-but-not-issued instructions (32)
	ROB         int // dispatched-but-not-retired instructions (64)
	StoreBuffer int // stores dispatched-but-not-retired (16)
	StoreQueue  int // stores retired-but-not-committed (32); <=0 = unbounded // storemlpvet:novalidate
	LoadBuffer  int // loads dispatched-but-not-retired (64)

	// Store handling.
	StorePrefetch PrefetchMode // default Sp1 (prefetch at retire)
	CoalesceBytes int          // store coalescing granularity; 0 disables (8)

	// Memory consistency model and its optimizations (§3.3.4).
	Model                   consistency.Model
	SLE                     bool // speculative lock elision (always succeeds)
	TM                      bool // transactional memory (SLE alternative; always commits)
	PrefetchPastSerializing bool // storemlpvet:novalidate (both states valid)

	// Hardware Scouting (§3.3.5).
	HWS        HWSMode
	ScoutReach int // instructions scout can cover; 0 = MissPenalty/CPIOnChip

	// Store Miss Accelerator (§3.3.3). 0 entries = no SMAC. The geometry
	// knobs default to the paper's design point (8-way, 2048 B
	// super-lines, 64 B sub-blocks) when zero.
	SMACEntries        int
	SMACWays           int
	SMACSuperLineBytes int
	SMACSubBlockBytes  int

	// Latencies (cycles).
	MissPenalty int     // off-chip access latency (500)
	L1Latency   int     // 4
	L2Latency   int     // 15
	CPIOnChip   float64 // used to convert the miss penalty to instructions

	// ModelBranchPredictor replaces the workload generator's calibrated
	// misprediction flags with a modelled gshare + BTB front end
	// (§4.3: 64K gshare, 16K BTB, 16-entry RAS) driven by the generated
	// branch outcomes.
	ModelBranchPredictor bool
	// BranchPredictor sizes the modelled front end; zero fields take the
	// paper's defaults.
	BranchPredictor branch.Config

	// Multiprocessor scale for coherence traffic (2-way in the paper).
	Nodes int

	// PerfectStores makes stores never stall the processor: store misses
	// cost nothing and serializers do not wait for store drains. This is
	// the bottom bar segment in every figure.
	PerfectStores bool // storemlpvet:novalidate (both states valid)

	// Caches.
	Hierarchy cache.Config

	// WarmInsts instructions at the start of the trace update the caches
	// without contributing to epoch statistics (50M in the paper; scaled
	// down with our traces).
	WarmInsts int64
}

// Default returns the paper's §4.3 configuration.
func Default() Config {
	return Config{
		FetchBuffer:   32,
		IssueWindow:   32,
		ROB:           64,
		StoreBuffer:   16,
		StoreQueue:    32,
		LoadBuffer:    64,
		StorePrefetch: Sp1,
		CoalesceBytes: 8,
		Model:         consistency.PC,
		MissPenalty:   500,
		L1Latency:     4,
		L2Latency:     15,
		CPIOnChip:     1.1,
		Nodes:         2,
		Hierarchy:     cache.DefaultConfig(),
	}
}

// SMACParams resolves the SMAC geometry, applying the paper's defaults
// for unset knobs.
func (c Config) SMACParams() smac.Params {
	p := smac.DefaultParams(c.SMACEntries)
	if c.SMACWays > 0 {
		p.Ways = c.SMACWays
	}
	if c.SMACSuperLineBytes > 0 {
		p.SuperLineBytes = c.SMACSuperLineBytes
	}
	if c.SMACSubBlockBytes > 0 {
		p.SubBlockBytes = c.SMACSubBlockBytes
	}
	return p
}

// BranchConfig resolves the branch predictor geometry, applying the
// paper defaults for unset knobs.
func (c Config) BranchConfig() branch.Config {
	b := c.BranchPredictor
	d := branch.DefaultConfig()
	if b.GshareEntries == 0 {
		b.GshareEntries = d.GshareEntries
	}
	if b.BTBEntries == 0 {
		b.BTBEntries = d.BTBEntries
	}
	if b.RASEntries == 0 {
		b.RASEntries = d.RASEntries
	}
	return b
}

// EffectiveScoutReach resolves ScoutReach, defaulting to the number of
// instructions the core can execute during one miss penalty.
func (c Config) EffectiveScoutReach() int {
	if c.ScoutReach > 0 {
		return c.ScoutReach
	}
	cpi := c.CPIOnChip
	if cpi <= 0 {
		cpi = 1
	}
	return int(float64(c.MissPenalty) / cpi)
}

// OverlapWindow is the number of on-chip instructions that fully hide
// one off-chip miss (used for the Table 2 "fully overlapped with
// computation" accounting).
func (c Config) OverlapWindow() int64 {
	cpi := c.CPIOnChip
	if cpi <= 0 {
		cpi = 1
	}
	return int64(float64(c.MissPenalty) / cpi)
}

// Validate checks the configuration for contradictions.
func (c Config) Validate() error {
	if c.FetchBuffer <= 0 || c.IssueWindow <= 0 || c.ROB <= 0 ||
		c.StoreBuffer <= 0 || c.LoadBuffer <= 0 {
		return fmt.Errorf("uarch: non-positive structure size (%+v)", c)
	}
	if !c.StorePrefetch.Valid() {
		return fmt.Errorf("uarch: invalid store prefetch mode %d", c.StorePrefetch)
	}
	if !c.HWS.Valid() {
		return fmt.Errorf("uarch: invalid HWS mode %d", c.HWS)
	}
	if err := consistency.Validate(c.Model); err != nil {
		return err
	}
	if c.SLE && c.TM {
		return fmt.Errorf("uarch: SLE and TM are alternative lock optimizations; enable only one")
	}
	if c.CoalesceBytes < 0 || (c.CoalesceBytes != 0 && c.CoalesceBytes&(c.CoalesceBytes-1) != 0) {
		return fmt.Errorf("uarch: coalescing granularity %d not a power of two", c.CoalesceBytes)
	}
	if c.MissPenalty <= 0 {
		return fmt.Errorf("uarch: non-positive miss penalty %d", c.MissPenalty)
	}
	if c.ScoutReach < 0 {
		return fmt.Errorf("uarch: negative scout reach %d", c.ScoutReach)
	}
	if c.L1Latency < 0 || c.L2Latency < 0 {
		return fmt.Errorf("uarch: negative cache latency (L1 %d, L2 %d)", c.L1Latency, c.L2Latency)
	}
	if c.CPIOnChip < 0 {
		return fmt.Errorf("uarch: negative on-chip CPI %v", c.CPIOnChip)
	}
	if c.WarmInsts < 0 {
		return fmt.Errorf("uarch: negative warmup instruction count %d", c.WarmInsts)
	}
	if c.Nodes < 1 {
		return fmt.Errorf("uarch: node count %d < 1", c.Nodes)
	}
	if c.SMACEntries < 0 {
		return fmt.Errorf("uarch: negative SMAC entries %d", c.SMACEntries)
	}
	if c.SMACEntries > 0 {
		if err := c.SMACParams().Validate(); err != nil {
			return err
		}
	}
	if c.ModelBranchPredictor {
		if err := c.BranchConfig().Validate(); err != nil {
			return err
		}
	}
	if err := c.Hierarchy.L1I.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.L1D.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.L2.Validate(); err != nil {
		return err
	}
	return nil
}

// Name summarizes the configuration the way the paper labels bars, e.g.
// "PC Sp1 Sb16 Sq32".
func (c Config) Name() string {
	sq := fmt.Sprintf("Sq%d", c.StoreQueue)
	if c.StoreQueue <= 0 {
		sq = "SqInf"
	}
	s := fmt.Sprintf("%s %s Sb%d %s", c.Model, c.StorePrefetch, c.StoreBuffer, sq)
	if c.SLE {
		s += " SLE"
	}
	if c.TM {
		s += " TM"
	}
	if c.PrefetchPastSerializing {
		s += " PPS"
	}
	if c.HWS != NoHWS {
		s += " " + c.HWS.String()
	}
	if c.SMACEntries > 0 {
		s += fmt.Sprintf(" SMAC%dK", c.SMACEntries/1024)
	}
	if c.PerfectStores {
		s += " perfect-stores"
	}
	return s
}
