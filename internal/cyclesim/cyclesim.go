// Package cyclesim is a simplified cycle-level simulator used to
// cross-validate the epoch MLP engine, the way the paper validates
// MLPsim against its in-house cycle-accurate simulator (§4.1):
//
//	"In a cycle-accurate simulator, EPI is tracked by counting epoch
//	triggers. ... the number of times the number of outstanding
//	off-chip misses transitions from 0 to 1 is counted. MLP is measured
//	by averaging the number of misses outstanding over all cycles where
//	at least one miss is outstanding."
//
// The model is deliberately simple — single-issue front end, in-order
// retirement from a ROB, in-order (PC) or out-of-order (WC) store
// commit from a store queue, serializing-instruction drains, and the
// three store prefetch modes — but it advances real cycles, so it also
// measures Overlap: the fraction of on-chip execution cycles hidden
// under off-chip misses, which §3.4 needs to translate EPI into overall
// CPI.
package cyclesim

import (
	"context"
	"fmt"

	"storemlp/internal/cache"
	"storemlp/internal/isa"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
)

// Stats is the output of a cycle-level run.
type Stats struct {
	Insts  int64
	Cycles int64
	// Epochs counts 0->1 transitions of the outstanding-miss count.
	Epochs int64
	// MissCycles is the number of cycles with >= 1 outstanding miss;
	// MissSum accumulates the outstanding count over those cycles.
	MissCycles int64
	MissSum    int64
	// BusyMissCycles counts cycles that both executed an instruction and
	// had a miss outstanding (the overlap numerator).
	BusyMissCycles int64
	BusyCycles     int64 // cycles that executed an instruction

	StoreMisses int64
	LoadMisses  int64
	InstMisses  int64
}

// EPI returns epochs per 1000 instructions.
func (s *Stats) EPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return 1000 * float64(s.Epochs) / float64(s.Insts)
}

// MLP returns the average number of outstanding misses over cycles with
// at least one outstanding.
func (s *Stats) MLP() float64 {
	if s.MissCycles == 0 {
		return 0
	}
	return float64(s.MissSum) / float64(s.MissCycles)
}

// CPI returns cycles per instruction.
func (s *Stats) CPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Insts)
}

// Overlap returns the fraction of busy (instruction-executing) cycles
// that were hidden under an outstanding off-chip miss — the Overlap
// term of §3.4.
func (s *Stats) Overlap() float64 {
	if s.BusyCycles == 0 {
		return 0
	}
	return float64(s.BusyMissCycles) / float64(s.BusyCycles)
}

// inflight is one instruction between dispatch and retirement.
type inflight struct {
	op       isa.Op
	dst      isa.Reg
	addr     uint64
	flags    isa.Flags
	ready    int64 // cycle its result is available
	measured bool
}

// sqEntry is a store between retirement and commit.
type sqEntry struct {
	addr     uint64
	shared   bool
	arrival  int64 // cycle prefetched ownership arrives; 0 = not prefetched
	measured bool
}

// Sim is the cycle-level machine.
type Sim struct {
	cfg  uarch.Config
	hier *cache.Hierarchy

	cycle    int64
	regReady [isa.RegCount]int64

	rob []inflight // dispatched, unretired (in order)
	sq  []sqEntry  // retired, uncommitted stores
	sb  int        // stores in the ROB (store buffer occupancy)

	// Outstanding off-chip misses, as completion cycles.
	misses []int64

	// Serialization: no dispatch until this cycle.
	serialUntil int64
	// In-order commit: cycle the previous store finished committing.
	prevCommitDone int64

	fetchStall int64 // fetch blocked until this cycle (ifetch miss)

	// sp2 records prefetch-at-execute arrival cycles per line address.
	sp2 map[uint64]int64

	warm  int64
	stats Stats
}

// New builds a cycle simulator for the configuration. Only the
// parameters with cycle-level meaning are honoured: ROB, StoreBuffer,
// StoreQueue, StorePrefetch, Model, MissPenalty, PerfectStores, caches.
func New(cfg uarch.Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{
		cfg:  cfg,
		hier: cache.NewHierarchy(cfg.Hierarchy),
		sp2:  make(map[uint64]int64),
		warm: cfg.WarmInsts,
	}, nil
}

// Hierarchy exposes the cache hierarchy for prewarming in tests.
func (s *Sim) Hierarchy() *cache.Hierarchy { return s.hier }

func (s *Sim) measuring(inst int64) bool { return inst >= s.warm }

// addMiss registers an off-chip access completing after the miss
// penalty and counts the epoch trigger if none was outstanding.
func (s *Sim) addMiss(measuring bool, kind *int64) int64 {
	done := s.cycle + int64(s.cfg.MissPenalty)
	if measuring {
		if len(s.misses) == 0 {
			s.stats.Epochs++
		}
		*kind++
	}
	s.misses = append(s.misses, done)
	return done
}

// tick advances one cycle, accounting outstanding-miss statistics.
func (s *Sim) tick(measuring, busy bool) {
	if measuring {
		s.stats.Cycles++
		if busy {
			s.stats.BusyCycles++
		}
		if n := int64(len(s.misses)); n > 0 {
			s.stats.MissCycles++
			s.stats.MissSum += n
			if busy {
				s.stats.BusyMissCycles++
			}
		}
	}
	s.cycle++
	s.reap()
}

// reap drops completed misses.
func (s *Sim) reap() {
	out := s.misses[:0]
	for _, done := range s.misses {
		if done > s.cycle {
			out = append(out, done)
		}
	}
	s.misses = out
}

// retire drains completed instructions from the ROB head and moves
// retiring stores into the store queue (if there is room).
func (s *Sim) retire() {
	for len(s.rob) > 0 {
		head := s.rob[0]
		if head.ready > s.cycle {
			return
		}
		if head.op.IsStore() && head.op != isa.OpCASA {
			if s.cfg.StoreQueue > 0 && len(s.sq) >= s.cfg.StoreQueue && !s.cfg.PerfectStores {
				return // store queue full: retirement stalls
			}
			if !s.cfg.PerfectStores {
				e := sqEntry{addr: head.addr, shared: head.flags.Has(isa.FlagShared), measured: head.measured}
				switch s.cfg.StorePrefetch {
				case uarch.Sp0:
					// No early prefetch: the ownership request issues when
					// the entry reaches the store-queue head (arrival 0).
				case uarch.Sp1:
					e.arrival = s.prefetchStore(head.addr, head.measured)
				case uarch.Sp2:
					if pf, ok := s.sp2[head.addr]; ok {
						e.arrival = pf
						delete(s.sp2, head.addr)
					}
				default:
					panic("cyclesim: undefined store prefetch mode " + s.cfg.StorePrefetch.String())
				}
				s.sq = append(s.sq, e)
			}
			s.sb--
		}
		s.rob = s.rob[1:]
	}
}

// prefetchStore issues a prefetch-for-write and returns its arrival
// cycle (0 if the line is already owned).
func (s *Sim) prefetchStore(addr uint64, measured bool) int64 {
	if s.hier.L2.Probe(addr).Owned() {
		return 0
	}
	s.hier.PrefetchStore(addr)
	return s.addMiss(measured, &s.stats.StoreMisses)
}

// commit processes the store queue: strictly in order under PC,
// per-entry under WC (out-of-order commit).
func (s *Sim) commit() {
	if s.cfg.Model.InOrderCommit() {
		for len(s.sq) > 0 {
			if s.prevCommitDone > s.cycle {
				return
			}
			e := &s.sq[0]
			if e.arrival > s.cycle {
				return
			}
			res := s.hier.Store(e.addr, e.shared)
			if res.OffChip && e.arrival == 0 {
				// Sp0: the miss begins at the head of the queue and
				// blocks all younger commits.
				done := s.addMiss(e.measured, &s.stats.StoreMisses)
				e.arrival = done
				s.prevCommitDone = done
				return
			}
			s.sq = s.sq[1:]
		}
		return
	}
	// WC: every entry commits independently as its line arrives.
	out := s.sq[:0]
	for i := range s.sq {
		e := s.sq[i]
		if e.arrival > s.cycle {
			out = append(out, e)
			continue
		}
		res := s.hier.Store(e.addr, e.shared)
		if res.OffChip && e.arrival == 0 {
			e.arrival = s.addMiss(e.measured, &s.stats.StoreMisses)
			out = append(out, e)
			continue
		}
	}
	s.sq = out
}

// Run drives the trace to completion and returns the statistics.
func (s *Sim) Run(src trace.Source) (*Stats, error) {
	return s.RunContext(context.Background(), src)
}

// batchLen is the block size RunContext pulls from the trace source,
// matching the epoch engine: interface dispatch and the cancellation
// poll amortize over the block while it stays cache-resident.
const batchLen = 4096

// RunContext is Run with cancellation: the simulator polls ctx once
// per instruction block and abandons the run once it is done.
func (s *Sim) RunContext(ctx context.Context, src trace.Source) (*Stats, error) {
	if src == nil {
		return nil, fmt.Errorf("cyclesim: nil source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	batch := make([]isa.Inst, batchLen)
	bi, bn := 0, 0
	var instIdx int64
	for {
		if bi == bn {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			bn = trace.Fill(src, batch)
			if bn == 0 {
				break
			}
			bi = 0
		}
		in := batch[bi]
		bi++
		measuring := s.measuring(instIdx)
		instIdx++

		// Stall until fetch, serialization, and structural hazards allow
		// dispatch of this instruction.
		for {
			s.retire()
			s.commit()
			switch {
			case s.cycle < s.fetchStall,
				s.cycle < s.serialUntil,
				len(s.rob) >= s.cfg.ROB,
				in.Op.IsStore() && !s.cfg.PerfectStores && s.sb >= s.cfg.StoreBuffer:
				s.tick(measuring, false)
				continue
			}
			if in.Serializing() {
				if len(s.rob) > 0 {
					s.tick(measuring, false)
					continue
				}
				if s.cfg.Model.DrainsStoresOnSerialize() && in.Op != isa.OpISync &&
					!s.cfg.PerfectStores && len(s.sq) > 0 {
					s.tick(measuring, false)
					continue
				}
			}
			break
		}

		// Instruction fetch.
		fr := s.hier.Fetch(in.PC)
		if fr.OffChip {
			s.fetchStall = s.addMiss(measuring, &s.stats.InstMisses)
		}

		// Dispatch and execute.
		ready := s.cycle + 1
		if r := s.regReady[in.Src1]; r > ready {
			ready = r
		}
		if r := s.regReady[in.Src2]; r > ready {
			ready = r
		}
		switch {
		case in.Op.IsLoad() && in.Op != isa.OpCASA:
			res := s.hier.Load(in.Addr, in.Flags.Has(isa.FlagShared))
			if res.OffChip {
				ready = s.addMiss(measuring, &s.stats.LoadMisses)
			}
			if in.Dst != 0 {
				s.regReady[in.Dst] = ready
			}
		case in.Op == isa.OpCASA:
			res := s.hier.Store(in.Addr, in.Flags.Has(isa.FlagShared))
			if res.OffChip && !s.cfg.PerfectStores {
				ready = s.addMiss(measuring, &s.stats.StoreMisses)
			}
			if in.Dst != 0 {
				s.regReady[in.Dst] = ready
			}
			s.serialUntil = ready
		case in.Op == isa.OpMembar || in.Op == isa.OpISync:
			s.serialUntil = ready
		case in.Op.IsStore():
			s.sb++
			if s.cfg.StorePrefetch == uarch.Sp2 && !s.cfg.PerfectStores {
				if !s.hier.L2.Probe(in.Addr).Owned() {
					s.hier.PrefetchStore(in.Addr)
					s.sp2[in.Addr] = s.addMiss(measuring, &s.stats.StoreMisses)
				}
			}
		default:
			if in.Dst != 0 {
				s.regReady[in.Dst] = ready
			}
		}

		s.rob = append(s.rob, inflight{
			op: in.Op, dst: in.Dst, addr: in.Addr, flags: in.Flags,
			ready: ready, measured: measuring,
		})
		if measuring {
			s.stats.Insts++
		}
		s.tick(measuring, true)
	}

	// Drain.
	deadline := s.cycle + 4*int64(s.cfg.MissPenalty)
	for (len(s.rob) > 0 || len(s.sq) > 0) && s.cycle < deadline {
		s.retire()
		s.commit()
		s.tick(false, false)
	}
	return &s.stats, nil
}
