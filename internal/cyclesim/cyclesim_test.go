package cyclesim

import (
	"math"
	"testing"

	"storemlp/internal/consistency"
	"storemlp/internal/epoch"
	"storemlp/internal/isa"
	"storemlp/internal/sim"
	"storemlp/internal/trace"
	"storemlp/internal/uarch"
	"storemlp/internal/workload"
)

const (
	hotPC = uint64(0x1000)
)

func cold(i int) uint64 { return 0x40000000 + uint64(i)*64 }

func cfgSmall() uarch.Config {
	c := uarch.Default()
	c.StoreBuffer = 2
	c.StoreQueue = 2
	c.StorePrefetch = uarch.Sp0
	c.CoalesceBytes = 0
	c.MissPenalty = 100
	return c
}

func runCycles(t *testing.T, cfg uarch.Config, insts []isa.Inst) *Stats {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Hierarchy().Fetch(hotPC)
	stats, err := s.Run(trace.NewSlice(insts))
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func st(addr uint64) isa.Inst { return isa.Inst{Op: isa.OpStore, PC: hotPC, Addr: addr, Size: 8} }
func ld(addr uint64) isa.Inst { return isa.Inst{Op: isa.OpLoad, PC: hotPC, Addr: addr, Size: 8} }
func alu() isa.Inst           { return isa.Inst{Op: isa.OpALU, PC: hotPC} }

func TestNewValidates(t *testing.T) {
	bad := cfgSmall()
	bad.ROB = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid config should error")
	}
	s, err := New(cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err == nil {
		t.Error("nil source should error")
	}
}

func TestSingleMissOneEpoch(t *testing.T) {
	s := runCycles(t, cfgSmall(), []isa.Inst{ld(cold(0)), alu()})
	if s.Epochs != 1 || s.LoadMisses != 1 {
		t.Errorf("epochs=%d loads=%d", s.Epochs, s.LoadMisses)
	}
	if s.CPI() < 1 {
		t.Errorf("CPI = %v", s.CPI())
	}
}

// Example 4's shape in cycle space: serialized Sp0 store misses take
// roughly 3 miss penalties; Sp2 overlaps them into roughly one.
func TestPrefetchOverlapCycles(t *testing.T) {
	insts := []isa.Inst{
		st(cold(0)), st(cold(1)), st(cold(2)),
		{Op: isa.OpMembar, PC: hotPC},
		alu(),
	}
	sp0 := runCycles(t, cfgSmall(), insts)
	cfg := cfgSmall()
	cfg.StorePrefetch = uarch.Sp2
	sp2 := runCycles(t, cfg, insts)
	if sp0.Epochs != 3 {
		t.Errorf("Sp0 epochs = %d, want 3", sp0.Epochs)
	}
	if sp2.Epochs != 1 {
		t.Errorf("Sp2 epochs = %d, want 1", sp2.Epochs)
	}
	if sp2.Cycles >= sp0.Cycles {
		t.Errorf("Sp2 cycles (%d) should beat Sp0 (%d)", sp2.Cycles, sp0.Cycles)
	}
	if sp2.MLP() <= sp0.MLP() {
		t.Errorf("Sp2 MLP (%.2f) should exceed Sp0 (%.2f)", sp2.MLP(), sp0.MLP())
	}
}

func TestWCOverlapsPastMissingStore(t *testing.T) {
	insts := []isa.Inst{st(cold(0)), st(cold(1))}
	pc := runCycles(t, cfgSmall(), insts)
	cfg := cfgSmall()
	cfg.Model = consistency.WC
	wc := runCycles(t, cfg, insts)
	if pc.Epochs != 2 {
		t.Errorf("PC epochs = %d, want 2", pc.Epochs)
	}
	if wc.Epochs != 1 {
		t.Errorf("WC epochs = %d, want 1", wc.Epochs)
	}
}

func TestPerfectStoresIgnoreStores(t *testing.T) {
	cfg := cfgSmall()
	cfg.PerfectStores = true
	s := runCycles(t, cfg, []isa.Inst{st(cold(0)), st(cold(1)), alu()})
	if s.Epochs != 0 || s.StoreMisses != 0 {
		t.Errorf("perfect: epochs=%d stores=%d", s.Epochs, s.StoreMisses)
	}
}

func TestSerializerDrainsStores(t *testing.T) {
	// Store miss, membar, load miss: the load's miss cannot overlap the
	// store's under PC.
	insts := []isa.Inst{st(cold(0)), {Op: isa.OpMembar, PC: hotPC}, ld(cold(1))}
	s := runCycles(t, cfgSmall(), insts)
	if s.Epochs != 2 {
		t.Errorf("epochs = %d, want 2", s.Epochs)
	}
	// Under WC (isync) the drain is skipped... the load still waits for
	// the pipeline but not the store queue.
	cfg := cfgSmall()
	cfg.Model = consistency.WC
	wcInsts := []isa.Inst{st(cold(0)), {Op: isa.OpISync, PC: hotPC}, ld(cold(1))}
	ws := runCycles(t, cfg, wcInsts)
	if ws.Epochs != 1 {
		t.Errorf("WC epochs = %d, want 1", ws.Epochs)
	}
}

func TestOverlapMetric(t *testing.T) {
	// A miss followed by many independent ALU ops: most busy cycles are
	// hidden under the miss.
	var insts []isa.Inst
	insts = append(insts, ld(cold(0)))
	for i := 0; i < 50; i++ {
		insts = append(insts, alu())
	}
	s := runCycles(t, cfgSmall(), insts)
	if s.Overlap() <= 0.3 {
		t.Errorf("Overlap = %.2f, want substantial", s.Overlap())
	}
	if s.Overlap() > 1 {
		t.Errorf("Overlap = %.2f > 1", s.Overlap())
	}
}

func TestStatsZeroSafety(t *testing.T) {
	var s Stats
	if s.EPI() != 0 || s.MLP() != 0 || s.CPI() != 0 || s.Overlap() != 0 {
		t.Error("zero stats helpers should return 0")
	}
}

// Cross-validation: the epoch engine's EPI tracks the cycle-level
// simulator's EPI across workloads and configurations — the paper's
// MLPsim-vs-cycle-sim methodology argument.
func TestEpochEngineMatchesCycleSim(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation needs full runs")
	}
	const (
		warm    = 150_000
		measure = 250_000
	)
	for _, tc := range []struct {
		name string
		cfg  func() uarch.Config
	}{
		{"default-Sp1", func() uarch.Config { return uarch.Default() }},
		{"Sp0", func() uarch.Config {
			c := uarch.Default()
			c.StorePrefetch = uarch.Sp0
			return c
		}},
		{"WC", func() uarch.Config {
			c := uarch.Default()
			c.Model = consistency.WC
			return c
		}},
	} {
		for _, w := range []workload.Params{workload.TPCW(9), workload.SPECweb(9)} {
			cfg := tc.cfg()
			cfg.WarmInsts = warm

			cs, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := sim.BuildSource(w, cfg, warm+measure)
			cyc, err := cs.Run(src)
			if err != nil {
				t.Fatal(err)
			}

			eng, err := epoch.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src = sim.BuildSource(w, cfg, warm+measure)
			ep, err := eng.Run(src)
			if err != nil {
				t.Fatal(err)
			}

			ratio := ep.EPI() / cyc.EPI()
			if math.IsNaN(ratio) || ratio < 0.55 || ratio > 1.8 {
				t.Errorf("%s/%s: epoch EPI %.3f vs cycle EPI %.3f (ratio %.2f) out of band",
					tc.name, w.Name, ep.EPI(), cyc.EPI(), ratio)
			}
		}
	}
}
