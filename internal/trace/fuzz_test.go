package trace

import (
	"bytes"
	"testing"

	"storemlp/internal/isa"
	"storemlp/internal/workload"
)

// instsFromFuzz deterministically decodes fuzz bytes into a valid
// instruction sequence: 8 bytes per record, opcode clamped into range
// so the Writer->Reader round trip is exact.
func instsFromFuzz(data []byte) []isa.Inst {
	var (
		out []isa.Inst
		pc  uint64
	)
	for len(data) >= 8 && len(out) < 4096 {
		rec, rest := data[:8], data[8:]
		data = rest
		// PC moves by a signed-ish delta so the codec's delta encoding
		// sees forward jumps, backward jumps, and wraparound.
		pc += uint64(rec[6]) - 128
		out = append(out, isa.Inst{
			Op:    isa.Op(int(rec[0]) % isa.NumOps),
			Flags: isa.Flags(rec[1]),
			Size:  rec[2],
			Dst:   isa.Reg(rec[3]),
			Src1:  isa.Reg(rec[4]),
			Src2:  isa.Reg(rec[5]),
			PC:    pc,
			Addr:  uint64(rec[7]) << uint(rec[6]%24),
		})
	}
	return out
}

// FuzzTraceRoundTrip exercises the binary codec from both ends: the
// fuzz input is decoded as an instruction sequence that must survive a
// Writer->Reader round trip exactly, and simultaneously treated as a
// hostile byte stream that the Reader must reject without panicking.
func FuzzTraceRoundTrip(f *testing.F) {
	// Corpus seeds: a real generated workload trace (what cmd/tracegen
	// emits), a header-only trace, and adversarial header prefixes.
	gen := workload.NewGenerator(workload.Database(1))
	var real bytes.Buffer
	if _, err := WriteAll(&real, Limit(gen, 512)); err != nil {
		f.Fatal(err)
	}
	f.Add(real.Bytes())
	var empty bytes.Buffer
	if w, err := NewWriter(&empty, 0); err == nil {
		_ = w.Flush()
	}
	f.Add(empty.Bytes())
	f.Add([]byte("SMLT"))
	f.Add([]byte("SMLT\x01\x00"))
	f.Add([]byte("SMLT\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("not a trace"))
	f.Add(bytes.Repeat([]byte{0x80}, 64)) // unterminated varints

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: fuzz bytes as instructions; round trip must be
		// lossless.
		insts := instsFromFuzz(data)
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, int64(len(insts)))
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range insts {
			if err := tw.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if tw.Count() != int64(len(insts)) {
			t.Fatalf("writer count %d, want %d", tw.Count(), len(insts))
		}
		tr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reading back own output: %v", err)
		}
		for i, want := range insts {
			got, ok := tr.Next()
			if !ok {
				t.Fatalf("record %d: stream ended early (err %v)", i, tr.Err())
			}
			if got != want {
				t.Fatalf("record %d: round trip %+v -> %+v", i, want, got)
			}
		}
		if _, ok := tr.Next(); ok {
			t.Fatal("reader yielded more records than written")
		}
		if err := tr.Err(); err != nil {
			t.Fatalf("clean trace ended with error: %v", err)
		}

		// Direction 2: fuzz bytes as a hostile stream; the Reader must
		// fail gracefully (error or clean EOF), never panic or loop.
		tr2, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		for n := 0; n < 1<<20; n++ {
			in, ok := tr2.Next()
			if !ok {
				break
			}
			if !in.Op.Valid() {
				t.Fatalf("reader emitted invalid opcode %d", in.Op)
			}
		}
	})
}
