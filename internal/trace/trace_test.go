package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"storemlp/internal/isa"
)

func mkInst(i int) isa.Inst {
	return isa.Inst{
		PC:   uint64(0x10000 + 4*i),
		Addr: uint64(0x2000 + 8*i),
		Op:   isa.Op(i % isa.NumOps),
		Size: 8,
		Dst:  isa.Reg(i % isa.RegCount),
		Src1: isa.Reg((i + 1) % isa.RegCount),
		Src2: isa.Reg((i + 2) % isa.RegCount),
	}
}

func TestSliceSource(t *testing.T) {
	insts := []isa.Inst{mkInst(0), mkInst(1), mkInst(2)}
	s := NewSlice(insts)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i := 0; i < 3; i++ {
		in, ok := s.Next()
		if !ok {
			t.Fatalf("Next() ended early at %d", i)
		}
		if in != insts[i] {
			t.Errorf("inst %d = %v, want %v", i, in, insts[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("Next() should be exhausted")
	}
	s.Reset()
	if in, ok := s.Next(); !ok || in != insts[0] {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	s := NewSlice([]isa.Inst{mkInst(0), mkInst(1), mkInst(2), mkInst(3)})
	l := Limit(s, 2)
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("Limit yielded %d, want 2", n)
	}
	// Limit longer than source just drains it.
	s.Reset()
	if got := Collect(Limit(s, 100)).Len(); got != 4 {
		t.Errorf("over-limit yielded %d, want 4", got)
	}
}

func TestConcat(t *testing.T) {
	a := NewSlice([]isa.Inst{mkInst(0), mkInst(1)})
	b := NewSlice(nil)
	c := NewSlice([]isa.Inst{mkInst(2)})
	got := Collect(Concat(a, b, c))
	if got.Len() != 3 {
		t.Fatalf("Concat yielded %d, want 3", got.Len())
	}
	if got.Insts[2] != mkInst(2) {
		t.Errorf("last inst = %v", got.Insts[2])
	}
}

func TestMap(t *testing.T) {
	src := NewSlice([]isa.Inst{mkInst(0), mkInst(1), mkInst(2)})
	// Drop odd-index ops, tag the rest.
	out := Collect(Map(src, func(in isa.Inst) (isa.Inst, bool) {
		if in.Op == isa.Op(1) {
			return isa.Inst{}, false
		}
		in.Flags |= isa.FlagShared
		return in, true
	}))
	if out.Len() != 2 {
		t.Fatalf("Map yielded %d, want 2", out.Len())
	}
	for _, in := range out.Insts {
		if !in.Flags.Has(isa.FlagShared) {
			t.Error("Map did not apply transform")
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 1000; i++ {
		insts = append(insts, mkInst(i))
	}
	var buf bytes.Buffer
	n, err := WriteAll(&buf, NewSlice(insts))
	if err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	if n != 1000 {
		t.Fatalf("wrote %d, want 1000", n)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got := Collect(r)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if !reflect.DeepEqual(got.Insts, insts) {
		t.Fatal("round trip mismatch")
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOPE....")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSlice([]isa.Inst{mkInst(0), mkInst(1)})); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: header is 4 (magic) + 2 (version,count) bytes.
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got := Collect(r)
	if got.Len() != 1 {
		t.Errorf("truncated trace yielded %d records, want 1", got.Len())
	}
	if r.Err() == nil {
		t.Error("expected decode error on truncated record")
	}
}

func TestCodecInvalidOpcode(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := isa.Inst{Op: isa.Op(200)}
	if err := w.Write(bad); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("invalid opcode should end the stream")
	}
	if r.Err() == nil {
		t.Error("expected invalid-opcode error")
	}
}

// Property: the codec round-trips arbitrary valid instructions.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, addrs []uint64, raw []byte) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(raw) < n {
			n = len(raw)
		}
		insts := make([]isa.Inst, n)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < n; i++ {
			insts[i] = isa.Inst{
				PC:    pcs[i],
				Addr:  addrs[i],
				Op:    isa.Op(raw[i] % uint8(isa.NumOps)),
				Size:  uint8(1 + rng.Intn(64)),
				Dst:   isa.Reg(rng.Intn(isa.RegCount)),
				Src1:  isa.Reg(rng.Intn(isa.RegCount)),
				Src2:  isa.Reg(rng.Intn(isa.RegCount)),
				Flags: isa.Flags(raw[i] & 0x0f),
			}
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, NewSlice(insts)); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got := Collect(r)
		if r.Err() != nil {
			return false
		}
		if len(got.Insts) != n {
			return false
		}
		for i := range insts {
			if got.Insts[i] != insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpALU},
		{Op: isa.OpLoad, Flags: isa.FlagShared, Addr: 1, Size: 8},
		{Op: isa.OpStore, Addr: 2, Size: 8},
		{Op: isa.OpCASA, Flags: isa.FlagLockAcquire, Addr: 3, Size: 8},
		{Op: isa.OpStore, Flags: isa.FlagLockRelease, Addr: 3, Size: 8},
		{Op: isa.OpBranch, Flags: isa.FlagMispredict},
	}
	s := Gather(NewSlice(insts))
	if s.Total != 6 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.Loads() != 2 { // load + casa
		t.Errorf("Loads = %d, want 2", s.Loads())
	}
	if s.Stores() != 3 { // 2 stores + casa
		t.Errorf("Stores = %d, want 3", s.Stores())
	}
	if s.LockAcquire != 1 || s.LockRelease != 1 {
		t.Errorf("locks = %d/%d", s.LockAcquire, s.LockRelease)
	}
	if s.SharedMem != 1 {
		t.Errorf("SharedMem = %d", s.SharedMem)
	}
	if s.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d", s.Mispredicts)
	}
	if got := s.Per100(3); got != 50 {
		t.Errorf("Per100(3) = %v, want 50", got)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
	var empty Stats
	if empty.Per100(5) != 0 {
		t.Error("Per100 on empty stats should be 0")
	}
}
