package trace

import (
	"bytes"
	"errors"
	"testing"

	"storemlp/internal/trace/colv1"
	"storemlp/internal/workload"
)

// FuzzColumnarRoundTrip is the columnar twin of FuzzTraceRoundTrip:
// fuzz bytes become an instruction sequence that must survive
// encode->decode exactly, and double as a hostile byte stream the
// reader must reject with an error — never a panic — whether it is
// fed sequentially or through the random-access backend.
func FuzzColumnarRoundTrip(f *testing.F) {
	// Corpus seeds mirror the legacy fuzzer: a real workload trace in
	// columnar form, an empty trace, adversarial header prefixes, and
	// raw varint noise.
	gen := workload.NewGenerator(workload.Database(1))
	var real bytes.Buffer
	if _, err := WriteAllFormat(&real, Limit(gen, 8192), FormatColumnar); err != nil {
		f.Fatal(err)
	}
	f.Add(real.Bytes())
	var empty bytes.Buffer
	if _, err := WriteAllFormat(&empty, Limit(gen, 0), FormatColumnar); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte(colv1.Magic))
	f.Add([]byte("SMLC\x01\x00\x00\x10"))
	f.Add([]byte("SMLC\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("not a trace"))
	f.Add(bytes.Repeat([]byte{0x80}, 64)) // unterminated varints

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: fuzz bytes as instructions; the columnar round
		// trip must be lossless, including partial final blocks.
		insts := instsFromFuzz(data)
		var buf bytes.Buffer
		cw, err := colv1.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteBatch(insts); err != nil {
			t.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		if cw.Count() != int64(len(insts)) {
			t.Fatalf("writer count %d, want %d", cw.Count(), len(insts))
		}
		cr, err := colv1.NewBytesReader(buf.Bytes())
		if err != nil {
			t.Fatalf("reading back own output: %v", err)
		}
		for i, want := range insts {
			got, ok := cr.Next()
			if !ok {
				t.Fatalf("record %d: stream ended early (err %v)", i, cr.Err())
			}
			if got != want {
				t.Fatalf("record %d: round trip %+v -> %+v", i, want, got)
			}
		}
		if _, ok := cr.Next(); ok {
			t.Fatal("reader yielded more records than written")
		}
		if err := cr.Err(); err != nil {
			t.Fatalf("clean trace ended with error: %v", err)
		}

		// Direction 2: fuzz bytes as a hostile stream against both
		// backends. Any failure must surface as ErrBadMagic /
		// ErrBadVersion / ErrTruncated / ErrCorrupt, never a panic.
		checkErr := func(err error) {
			if err == nil {
				return
			}
			if !errors.Is(err, colv1.ErrBadMagic) && !errors.Is(err, colv1.ErrBadVersion) &&
				!errors.Is(err, colv1.ErrTruncated) && !errors.Is(err, colv1.ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
		}
		for _, open := range []func() (*colv1.Reader, error){
			func() (*colv1.Reader, error) { return colv1.NewReader(bytes.NewReader(data)) },
			func() (*colv1.Reader, error) { return colv1.NewBytesReader(data) },
		} {
			hr, err := open()
			if err != nil {
				checkErr(err)
				continue
			}
			for n := 0; n < 1<<20; n++ {
				in, ok := hr.Next()
				if !ok {
					break
				}
				if !in.Op.Valid() {
					t.Fatalf("reader emitted invalid opcode %d", in.Op)
				}
			}
			checkErr(hr.Err())
		}
	})
}
