// Package trace provides the dynamic instruction stream abstraction the
// epoch MLP engine consumes, plus a binary on-disk trace format and
// stream transforms (limit, concat, replay, statistics).
//
// The paper's MLPsim "reads in an instruction trace and a set of
// microarchitecture parameters as inputs"; Source is that trace input.
// Traces may come from the synthetic workload generators
// (internal/workload), from files written by cmd/tracegen, or from
// in-memory slices in tests.
//
// Sources come in two speeds. Next hands over one instruction per
// interface call; BatchSource fills a caller-owned block of
// instructions per call, amortizing interface dispatch, bounds checks
// and cancellation polls across thousands of instructions. The epoch
// engine always pulls through Fill, which uses ReadBatch when the
// source provides it and degrades to a Next loop otherwise, so the two
// speeds are interchangeable everywhere.
package trace

import (
	"storemlp/internal/isa"
)

// Source is a stream of dynamic instructions. Next returns the next
// instruction and true, or a zero Inst and false at end of stream.
// Sources are single-use; use a Replayable source to run the same stream
// through multiple simulator configurations.
type Source interface {
	Next() (isa.Inst, bool)
}

// BatchSource is a Source that can fill whole blocks of instructions at
// a time. ReadBatch writes up to len(dst) instructions into dst and
// returns the number written; it returns 0 only at end of stream (a
// short non-zero read does NOT imply the stream is exhausted). Mixing
// Next and ReadBatch calls on one source is allowed: both consume the
// same underlying stream in order.
type BatchSource interface {
	Source
	ReadBatch(dst []isa.Inst) int
}

// Sized is implemented by sources that can bound their remaining
// length. SizeHint returns the number of instructions still to be
// produced, or a negative value when unknown. Infinite sources (the
// workload generators) report a huge positive hint so that Limit can
// turn it into an exact count.
type Sized interface {
	SizeHint() int64
}

// Fill reads up to len(dst) instructions from src into dst, using the
// batch path when src implements BatchSource and falling back to a Next
// loop otherwise. It returns the number of instructions written; 0
// means end of stream (Fill keeps pulling until dst is full or the
// stream ends, so short reads from underlying batch sources are
// absorbed here).
//
//storemlp:noalloc
func Fill(src Source, dst []isa.Inst) int {
	if bs, ok := src.(BatchSource); ok {
		n := 0
		for n < len(dst) {
			k := bs.ReadBatch(dst[n:])
			if k == 0 {
				break
			}
			n += k
		}
		return n
	}
	n := 0
	for n < len(dst) {
		in, ok := src.Next()
		if !ok {
			break
		}
		dst[n] = in
		n++
	}
	return n
}

// Replayable is a Source that can be reset to its beginning, so that
// identical instruction streams can be fed to many configurations — the
// way every multi-configuration figure in the paper is produced.
type Replayable interface {
	Source
	Reset()
}

// Slice is an in-memory trace. It implements Replayable, BatchSource
// and Sized.
type Slice struct {
	Insts []isa.Inst //storemlp:keep (the trace itself; Reset rewinds, it does not erase)
	pos   int
}

// NewSlice wraps insts in a replayable source.
func NewSlice(insts []isa.Inst) *Slice { return &Slice{Insts: insts} }

// Next implements Source.
func (s *Slice) Next() (isa.Inst, bool) {
	if s.pos >= len(s.Insts) {
		return isa.Inst{}, false
	}
	in := s.Insts[s.pos]
	s.pos++
	return in, true
}

// ReadBatch implements BatchSource: one copy, no per-instruction work.
func (s *Slice) ReadBatch(dst []isa.Inst) int {
	n := copy(dst, s.Insts[s.pos:])
	s.pos += n
	return n
}

// Reset implements Replayable.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the trace.
func (s *Slice) Len() int { return len(s.Insts) }

// SizeHint implements Sized with the remaining length.
func (s *Slice) SizeHint() int64 { return int64(len(s.Insts) - s.pos) }

// collectPreallocCap bounds how far Collect trusts a size hint when
// preallocating, so a corrupt or hostile trace header cannot force a
// giant up-front allocation. Larger traces still collect fully; they
// just grow from this initial capacity.
const collectPreallocCap = 1 << 22

// Collect drains src into a Slice. It is intended for tests and for
// materializing generator output before writing it to disk or replaying
// it across configurations. When src exposes a size hint the backing
// slice is allocated once up front; the drain itself runs through the
// batch path.
func Collect(src Source) *Slice {
	var insts []isa.Inst
	if sz, ok := src.(Sized); ok {
		if hint := sz.SizeHint(); hint > 0 {
			if hint > collectPreallocCap {
				hint = collectPreallocCap
			}
			insts = make([]isa.Inst, 0, hint)
		}
	}
	var buf [1024]isa.Inst
	for {
		n := Fill(src, buf[:])
		if n == 0 {
			break
		}
		insts = append(insts, buf[:n]...)
	}
	return NewSlice(insts)
}

// limited truncates a source after n instructions.
type limited struct {
	src Source
	n   int64
}

// Limit returns a Source that yields at most n instructions from src.
// The returned source is batch-aware: when src implements BatchSource
// (the workload generators, slices and the file codec all do), replay
// through Limit stays on the block path instead of degrading to
// per-instruction calls.
func Limit(src Source, n int64) Source { return &limited{src: src, n: n} }

func (l *limited) Next() (isa.Inst, bool) {
	if l.n <= 0 {
		return isa.Inst{}, false
	}
	l.n--
	return l.src.Next()
}

// ReadBatch implements BatchSource by clamping the destination block to
// the remaining budget.
func (l *limited) ReadBatch(dst []isa.Inst) int {
	if l.n <= 0 {
		return 0
	}
	if int64(len(dst)) > l.n {
		dst = dst[:l.n]
	}
	k := Fill(l.src, dst)
	l.n -= int64(k)
	return k
}

// SizeHint implements Sized: the budget, tightened by the underlying
// source's own hint when it has one.
func (l *limited) SizeHint() int64 {
	if sz, ok := l.src.(Sized); ok {
		if h := sz.SizeHint(); h >= 0 && h < l.n {
			return h
		}
	}
	return l.n
}

// concat chains sources end to end.
type concat struct {
	srcs []Source
}

// Concat returns a Source that yields all of the given sources in
// order. It is batch-aware per underlying source.
func Concat(srcs ...Source) Source { return &concat{srcs: srcs} }

func (c *concat) Next() (isa.Inst, bool) {
	for len(c.srcs) > 0 {
		in, ok := c.srcs[0].Next()
		if ok {
			return in, true
		}
		c.srcs = c.srcs[1:]
	}
	return isa.Inst{}, false
}

// ReadBatch implements BatchSource.
func (c *concat) ReadBatch(dst []isa.Inst) int {
	for len(c.srcs) > 0 {
		if k := Fill(c.srcs[0], dst); k > 0 {
			return k
		}
		c.srcs = c.srcs[1:]
	}
	return 0
}

// SizeHint implements Sized: the sum of the parts, unknown if any part
// is unknown.
func (c *concat) SizeHint() int64 {
	var total int64
	for _, s := range c.srcs {
		sz, ok := s.(Sized)
		if !ok {
			return -1
		}
		h := sz.SizeHint()
		if h < 0 {
			return -1
		}
		total += h
	}
	return total
}

// Func adapts a function to the Source interface.
type Func func() (isa.Inst, bool)

// Next implements Source.
func (f Func) Next() (isa.Inst, bool) { return f() }

// mapped applies a transform to every instruction of a source. It keeps
// the batch path alive: input blocks are pulled into a scratch buffer
// and transformed in place, so a Map over a batch source costs two
// interface calls per block rather than two per instruction.
type mapped struct {
	src     Source
	fn      func(isa.Inst) (isa.Inst, bool)
	scratch []isa.Inst
}

// Map returns a Source that applies fn to every instruction of src.
// fn may return false to drop the instruction from the stream.
func Map(src Source, fn func(isa.Inst) (isa.Inst, bool)) Source {
	return &mapped{src: src, fn: fn}
}

// Next implements Source.
func (m *mapped) Next() (isa.Inst, bool) {
	for {
		in, ok := m.src.Next()
		if !ok {
			return isa.Inst{}, false
		}
		if out, keep := m.fn(in); keep {
			return out, true
		}
	}
}

// ReadBatch implements BatchSource. A block that the transform entirely
// drops yields another pull, not a premature end of stream.
func (m *mapped) ReadBatch(dst []isa.Inst) int {
	if cap(m.scratch) < len(dst) {
		m.scratch = make([]isa.Inst, len(dst))
	}
	for {
		in := m.scratch[:len(dst)]
		k := Fill(m.src, in)
		if k == 0 {
			return 0
		}
		n := 0
		for i := 0; i < k; i++ {
			if out, keep := m.fn(in[i]); keep {
				dst[n] = out
				n++
			}
		}
		if n > 0 {
			return n
		}
	}
}
