// Package trace provides the dynamic instruction stream abstraction the
// epoch MLP engine consumes, plus a binary on-disk trace format and
// stream transforms (limit, concat, replay, statistics).
//
// The paper's MLPsim "reads in an instruction trace and a set of
// microarchitecture parameters as inputs"; Source is that trace input.
// Traces may come from the synthetic workload generators
// (internal/workload), from files written by cmd/tracegen, or from
// in-memory slices in tests.
package trace

import (
	"storemlp/internal/isa"
)

// Source is a stream of dynamic instructions. Next returns the next
// instruction and true, or a zero Inst and false at end of stream.
// Sources are single-use; use a Replayable source to run the same stream
// through multiple simulator configurations.
type Source interface {
	Next() (isa.Inst, bool)
}

// Replayable is a Source that can be reset to its beginning, so that
// identical instruction streams can be fed to many configurations — the
// way every multi-configuration figure in the paper is produced.
type Replayable interface {
	Source
	Reset()
}

// Slice is an in-memory trace. It implements Replayable.
type Slice struct {
	Insts []isa.Inst
	pos   int
}

// NewSlice wraps insts in a replayable source.
func NewSlice(insts []isa.Inst) *Slice { return &Slice{Insts: insts} }

// Next implements Source.
func (s *Slice) Next() (isa.Inst, bool) {
	if s.pos >= len(s.Insts) {
		return isa.Inst{}, false
	}
	in := s.Insts[s.pos]
	s.pos++
	return in, true
}

// Reset implements Replayable.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the trace.
func (s *Slice) Len() int { return len(s.Insts) }

// Collect drains src into a Slice. It is intended for tests and for
// materializing generator output before writing it to disk.
func Collect(src Source) *Slice {
	var insts []isa.Inst
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		insts = append(insts, in)
	}
	return NewSlice(insts)
}

// limited truncates a source after n instructions.
type limited struct {
	src Source
	n   int64
}

// Limit returns a Source that yields at most n instructions from src.
func Limit(src Source, n int64) Source { return &limited{src: src, n: n} }

func (l *limited) Next() (isa.Inst, bool) {
	if l.n <= 0 {
		return isa.Inst{}, false
	}
	l.n--
	return l.src.Next()
}

// concat chains sources end to end.
type concat struct {
	srcs []Source
}

// Concat returns a Source that yields all of the given sources in order.
func Concat(srcs ...Source) Source { return &concat{srcs: srcs} }

func (c *concat) Next() (isa.Inst, bool) {
	for len(c.srcs) > 0 {
		in, ok := c.srcs[0].Next()
		if ok {
			return in, true
		}
		c.srcs = c.srcs[1:]
	}
	return isa.Inst{}, false
}

// Func adapts a function to the Source interface.
type Func func() (isa.Inst, bool)

// Next implements Source.
func (f Func) Next() (isa.Inst, bool) { return f() }

// Map returns a Source that applies fn to every instruction of src.
// fn may return false to drop the instruction from the stream.
func Map(src Source, fn func(isa.Inst) (isa.Inst, bool)) Source {
	return Func(func() (isa.Inst, bool) {
		for {
			in, ok := src.Next()
			if !ok {
				return isa.Inst{}, false
			}
			if out, keep := fn(in); keep {
				return out, true
			}
		}
	})
}
