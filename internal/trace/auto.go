package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"storemlp/internal/isa"
	"storemlp/internal/trace/colv1"
)

// This file is the format-dispatch layer over the two on-disk codecs:
// the legacy record-at-a-time "SMLT" format (codec.go) and the
// columnar "SMLC" block format (internal/trace/colv1). Both start with
// a distinct four-byte magic, so every consumer — mlpsim, lockdetect,
// the service — reads either format through NewAutoReader/OpenFile
// without being told which it has.

// Format selects an on-disk trace encoding.
type Format int

const (
	// FormatLegacy is the original record-at-a-time varint format
	// ("SMLT"): simple, streamable, but it costs one allocation and
	// two varint reads per instruction to decode.
	FormatLegacy Format = iota
	// FormatColumnar is the block-based structure-of-arrays format
	// ("SMLC"): per-block columns, delta/varint PCs and addresses,
	// run-length kinds, a footer seek index, and O(blocks) decode
	// allocations.
	FormatColumnar
)

// String returns the name ParseFormat accepts.
func (f Format) String() string {
	switch f {
	case FormatLegacy:
		return "legacy"
	case FormatColumnar:
		return "columnar"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat resolves "legacy" or "columnar".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "legacy":
		return FormatLegacy, nil
	case "columnar":
		return FormatColumnar, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want legacy or columnar)", s)
	}
}

// FileSource is what both trace codecs hand back: a batch-capable
// instruction source with a terminal-error accessor — decoding
// problems end the stream, and Err distinguishes a clean end from a
// corrupt or truncated one.
type FileSource interface {
	BatchSource
	Sized
	Err() error
}

// NewAutoReader sniffs the magic bytes of r and returns a reader for
// whichever trace format it holds. The returned source reads
// sequentially; for seekable columnar access use OpenFile or
// colv1.Open directly.
func NewAutoReader(r io.Reader) (FileSource, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	m, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(m) {
	case magic:
		return NewReader(br)
	case colv1.Magic:
		return colv1.NewReader(br)
	default:
		return nil, ErrBadMagic
	}
}

// OpenFile opens path as a trace, detecting the format from its magic
// bytes. Columnar traces are opened through the random-access mmap
// backend, so arbitrarily large traces cost no up-front read; legacy
// traces stream through the file descriptor. The returned closer
// releases the file or mapping and must be closed after the source is
// drained.
func OpenFile(path string) (FileSource, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trace: reading magic of %s: %w", path, err)
	}
	if string(m[:]) == colv1.Magic {
		f.Close()
		cf, err := colv1.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return cf.Reader, cf, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	src, err := NewAutoReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, f, nil
}

// WriteAllFormat writes every instruction from src into w in the given
// format and returns the count written. The columnar path pulls whole
// blocks through the batch interface, so encoding costs O(blocks)
// allocations; the legacy path is the historical per-record loop.
func WriteAllFormat(w io.Writer, src Source, f Format) (int64, error) {
	switch f {
	case FormatLegacy:
		return WriteAll(w, src)
	case FormatColumnar:
		cw, err := colv1.NewWriter(w)
		if err != nil {
			return 0, err
		}
		buf := make([]isa.Inst, colv1.DefaultBlockLen)
		for {
			n := Fill(src, buf)
			if n == 0 {
				break
			}
			if werr := cw.WriteBatch(buf[:n]); werr != nil {
				return cw.Count(), werr
			}
		}
		if err := cw.Close(); err != nil {
			return cw.Count(), err
		}
		return cw.Count(), nil
	default:
		return 0, fmt.Errorf("trace: unknown format %d", int(f))
	}
}

// Convert re-encodes the trace on r — either format, autodetected —
// into w in the target format, and returns the number of instructions
// copied. The instruction stream is preserved exactly; a decode error
// in the source aborts the conversion rather than silently truncating
// the output.
func Convert(w io.Writer, r io.Reader, f Format) (int64, error) {
	src, err := NewAutoReader(r)
	if err != nil {
		return 0, err
	}
	n, err := WriteAllFormat(w, src, f)
	if err != nil {
		return n, err
	}
	if err := src.Err(); err != nil {
		return n, fmt.Errorf("trace: source trace failed mid-conversion: %w", err)
	}
	return n, nil
}
