package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"storemlp/internal/isa"
	"storemlp/internal/trace/colv1"
	"storemlp/internal/workload"
)

// genStream returns a fresh deterministic workload source limited to n
// instructions; calling it twice yields identical streams.
func genStream(n int64) Source {
	return Limit(workload.NewGenerator(workload.TPCW(7)), n)
}

// collect drains a source into a slice.
func collect(t *testing.T, src Source) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

// encodeFormat writes n generated instructions in the given format.
func encodeFormat(t *testing.T, n int64, f Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	written, err := WriteAllFormat(&buf, genStream(n), f)
	if err != nil {
		t.Fatalf("WriteAllFormat(%s): %v", f, err)
	}
	if written != n {
		t.Fatalf("WriteAllFormat(%s) wrote %d, want %d", f, written, n)
	}
	return buf.Bytes()
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
		ok   bool
	}{
		{"legacy", FormatLegacy, true},
		{"columnar", FormatColumnar, true},
		{"", 0, false},
		{"Columnar", 0, false},
		{"smlc", 0, false},
	} {
		got, err := ParseFormat(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseFormat(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseFormat(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if FormatLegacy.String() != "legacy" || FormatColumnar.String() != "columnar" {
		t.Errorf("Format.String: %q / %q", FormatLegacy, FormatColumnar)
	}
	if s := Format(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown format String() = %q", s)
	}
}

// TestAutoReaderBothFormats encodes the same stream both ways and
// checks NewAutoReader decodes each to the identical instruction
// sequence — the format must be invisible to the consumer.
func TestAutoReaderBothFormats(t *testing.T) {
	const n = 10_000
	want := collect(t, genStream(n))
	for _, f := range []Format{FormatLegacy, FormatColumnar} {
		enc := encodeFormat(t, n, f)
		src, err := NewAutoReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: NewAutoReader: %v", f, err)
		}
		// Neither streaming reader knows the count up front here: the
		// legacy WriteAll header declares 0 (unknown), and a columnar
		// stream only learns it at the footer.
		if hint := src.SizeHint(); hint != -1 {
			t.Errorf("%s: streaming SizeHint = %d, want -1", f, hint)
		}
		got := collect(t, src)
		if err := src.Err(); err != nil {
			t.Fatalf("%s: Err after drain: %v", f, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d insts, want %d", f, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: inst %d = %+v, want %+v", f, i, got[i], want[i])
			}
		}
	}
}

func TestAutoReaderBadMagic(t *testing.T) {
	if _, err := NewAutoReader(bytes.NewReader([]byte("XXXX trailing"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("unknown magic: err = %v, want ErrBadMagic", err)
	}
	if _, err := NewAutoReader(bytes.NewReader([]byte("SM"))); err == nil {
		t.Error("short stream: want error, got nil")
	}
}

// TestOpenFileBothFormats round-trips through real files: the legacy
// path streams the descriptor, the columnar path goes through the
// mmap-backed random-access reader.
func TestOpenFileBothFormats(t *testing.T) {
	const n = 8_192
	want := collect(t, genStream(n))
	dir := t.TempDir()
	for _, f := range []Format{FormatLegacy, FormatColumnar} {
		path := filepath.Join(dir, f.String()+".trace")
		if err := os.WriteFile(path, encodeFormat(t, n, f), 0o644); err != nil {
			t.Fatal(err)
		}
		src, closer, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: OpenFile: %v", f, err)
		}
		// The random-access columnar backend reads the footer eagerly,
		// so the count is exact before a single instruction decodes.
		if f == FormatColumnar {
			if hint := src.SizeHint(); hint != n {
				t.Errorf("columnar OpenFile SizeHint = %d, want %d", hint, n)
			}
		}
		got := collect(t, src)
		if err := src.Err(); err != nil {
			t.Fatalf("%s: Err after drain: %v", f, err)
		}
		if err := closer.Close(); err != nil {
			t.Fatalf("%s: Close: %v", f, err)
		}
		if len(got) != n {
			t.Fatalf("%s: decoded %d insts, want %d", f, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: inst %d mismatch", f, i)
			}
		}
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := OpenFile(filepath.Join(dir, "missing.trace")); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage file: err = %v, want ErrBadMagic", err)
	}
}

// TestConvertRoundTrip drives legacy -> columnar -> legacy and checks
// the final bytes equal a direct legacy encoding — conversion preserves
// the instruction stream exactly in both directions.
func TestConvertRoundTrip(t *testing.T) {
	const n = 9_001 // deliberately not a block multiple
	legacy := encodeFormat(t, n, FormatLegacy)

	var col bytes.Buffer
	if cn, err := Convert(&col, bytes.NewReader(legacy), FormatColumnar); err != nil || cn != n {
		t.Fatalf("Convert to columnar: n=%d err=%v", cn, err)
	}
	if got := col.Bytes()[:4]; string(got) != colv1.Magic {
		t.Fatalf("converted trace magic = %q, want %q", got, colv1.Magic)
	}

	var back bytes.Buffer
	if cn, err := Convert(&back, bytes.NewReader(col.Bytes()), FormatLegacy); err != nil || cn != n {
		t.Fatalf("Convert back to legacy: n=%d err=%v", cn, err)
	}
	if !bytes.Equal(back.Bytes(), legacy) {
		t.Fatal("legacy -> columnar -> legacy is not byte-identical")
	}

	// Identity conversion (columnar -> columnar) must also be exact.
	var again bytes.Buffer
	if cn, err := Convert(&again, bytes.NewReader(col.Bytes()), FormatColumnar); err != nil || cn != n {
		t.Fatalf("Convert columnar -> columnar: n=%d err=%v", cn, err)
	}
	if !bytes.Equal(again.Bytes(), col.Bytes()) {
		t.Fatal("columnar identity conversion is not byte-identical")
	}
}

// TestConvertTruncatedSource checks a corrupt source aborts the
// conversion with an error instead of silently emitting a short trace.
func TestConvertTruncatedSource(t *testing.T) {
	legacy := encodeFormat(t, 4_096, FormatLegacy)
	var out bytes.Buffer
	if _, err := Convert(&out, bytes.NewReader(legacy[:len(legacy)/2]), FormatColumnar); err == nil {
		t.Fatal("truncated source: want error, got nil")
	}
}
