// Package colv1 implements the columnar ("SMLC", version 1) on-disk
// trace format: a block-based structure-of-arrays encoding of the
// dynamic instruction stream, built so that trace-driven simulation is
// I/O-bound on nothing — ReadBatch decodes whole 4096-instruction
// blocks straight into the engine's batch buffers with zero
// per-instruction allocation, and the layout is mmap-friendly so
// billion-instruction traces never need a full-file read.
//
// # File layout
//
//	header | block* | footer | trailer
//
// All fixed-width integers are little-endian.
//
//	header  (16 B): magic "SMLC" | u16 version | u16 blockLen | u64 reserved (0)
//	block:          u32 payloadLen | payload
//	payload:        u32 nInsts | u32 colLen[8] | col bytes, concatenated
//	footer:         u32 0 (marker) | u64 totalInsts | u32 nBlocks |
//	                nBlocks x { u64 blockOffset, u64 startInst }
//	trailer (12 B): u64 footerOffset | magic "SMLX"
//
// A block's payloadLen can never be 0 (empty blocks are not written),
// so the u32 0 marker unambiguously separates the last block from the
// footer for sequential readers; random-access readers instead find the
// footer through the fixed-size trailer at end of file, which is why an
// mmap consumer touches only the trailer page, the footer, and the
// blocks it actually decodes.
//
// # Column encodings
//
// Each block stores the eight isa.Inst fields as eight independent
// columns, in this order and with these encodings:
//
//	pc    signed varint deltas vs the previous record (prev = 0 at block start)
//	addr  signed varint deltas vs the previous record (prev = 0 at block start)
//	op    run-length encoded: { value byte, uvarint runLen } pairs
//	size  run-length encoded
//	flags run-length encoded
//	dst   one raw byte per instruction
//	src1  one raw byte per instruction
//	src2  one raw byte per instruction
//
// Delta chains reset at every block boundary, so any block decodes
// independently of every other block — the property the footer's seek
// index relies on.
package colv1

import "errors"

const (
	// Magic identifies a columnar trace file; it is the first four
	// bytes of the stream (the legacy record-at-a-time format uses
	// "SMLT", so the two are distinguishable by their magic alone).
	Magic = "SMLC"
	// trailerMagic terminates the file so a random-access reader can
	// locate the footer without scanning.
	trailerMagic = "SMLX"

	version = 1

	// DefaultBlockLen is the number of instructions per block. It
	// matches the epoch engine's batch length, so one ReadBatch call
	// from the engine decodes exactly one block.
	DefaultBlockLen = 4096
	// maxBlockLen bounds the self-described block length a reader will
	// accept, so a corrupt header cannot demand a giant decode state.
	maxBlockLen = 1 << 16

	headerSize  = 16
	trailerSize = 12
	numCols     = 8

	// Worst-case encoded bytes per instruction: two 10-byte varints
	// (pc, addr), three 2-byte RLE singleton runs, three raw bytes.
	maxBytesPerInst = 29
	// payloadFixed is the fixed prefix of a block payload: nInsts plus
	// the eight column lengths.
	payloadFixed = 4 + 4*numCols
)

// maxPayload bounds a block's payloadLen given the stream's block
// length, so corrupt or hostile length fields cannot force huge buffer
// allocations in the streaming reader.
func maxPayload(blockLen int) int {
	return payloadFixed + maxBytesPerInst*blockLen
}

// Errors returned by the reader. Corruption and truncation are
// distinguished so callers can tell "the file lies" from "the file was
// cut short"; both are terminal for the stream that hit them.
var (
	// ErrBadMagic means the input does not start with "SMLC".
	ErrBadMagic = errors.New("colv1: bad magic (not a columnar trace)")
	// ErrBadVersion means the version field is unsupported.
	ErrBadVersion = errors.New("colv1: unsupported format version")
	// ErrTruncated means the stream ended before the footer and
	// trailer — a partial write or a cut-short copy.
	ErrTruncated = errors.New("colv1: truncated trace (missing footer)")
	// ErrCorrupt means a structural invariant of the format does not
	// hold: a length field out of range, a column that over- or
	// under-runs its section, an invalid opcode, or a footer that
	// disagrees with the blocks it indexes.
	ErrCorrupt = errors.New("colv1: corrupt trace")
)

// blockIndexEnt is one footer seek-index entry: the file offset of a
// block's payloadLen field and the stream-wide index of its first
// instruction.
type blockIndexEnt struct {
	offset    int64
	startInst int64
}
