package colv1

import (
	"fmt"
	"os"
)

// File is a columnar trace opened from disk through the random-access
// backend: on platforms with mmap support (linux) the file is
// memory-mapped, so the reader touches only the header, trailer,
// footer and the block pages it actually decodes — a billion-
// instruction trace costs no up-front read at all. Elsewhere the file
// is read into memory once. Close releases the mapping (or the
// buffer) and the descriptor; the embedded Reader must not be used
// after Close.
type File struct {
	*Reader
	data   []byte
	unmap  func([]byte) error
	closed bool
}

// Open opens path as a columnar trace for random-access reading.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("%w: %s is empty", ErrTruncated, path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("colv1: %s: %d bytes exceeds the addressable size", path, size)
	}
	data, unmap, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("colv1: mapping %s: %w", path, err)
	}
	cr, err := NewBytesReader(data)
	if err != nil {
		if unmap != nil {
			_ = unmap(data)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{Reader: cr, data: data, unmap: unmap}, nil
}

// Data exposes the file's complete byte image (the mmap on Linux).
// Additional independent readers — e.g. one per worker of a parallel
// segment run — are built over it with NewBytesReader; none of them,
// nor the slice itself, may be used after Close releases the mapping.
func (cf *File) Data() []byte { return cf.data }

// Close releases the mapping and invalidates the Reader.
func (cf *File) Close() error {
	if cf.closed {
		return nil
	}
	cf.closed = true
	cf.Reader.fail(fmt.Errorf("colv1: reader used after Close"))
	cf.Reader.data = nil
	if cf.unmap != nil {
		return cf.unmap(cf.data)
	}
	return nil
}
