package colv1

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"storemlp/internal/isa"
)

// genInsts builds a deterministic pseudo-random instruction stream
// that exercises every column encoding: sequential and jumping PCs,
// clustered and scattered addresses, long and singleton opcode runs.
func genInsts(n int, seed int64) []isa.Inst {
	rng := rand.New(rand.NewSource(seed))
	out := make([]isa.Inst, n)
	pc := uint64(0x10_0000)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			pc -= uint64(rng.Intn(4096)) * 4 // backward branch target
		case 1:
			pc += uint64(rng.Intn(1 << 20)) // far jump
		default:
			pc += 4
		}
		op := isa.OpALU
		switch r := rng.Intn(100); {
		case r < 20:
			op = isa.OpLoad
		case r < 35:
			op = isa.OpStore
		case r < 45:
			op = isa.OpBranch
		case r < 47:
			op = isa.Op(rng.Intn(isa.NumOps))
		}
		out[i] = isa.Inst{
			PC:    pc,
			Addr:  uint64(rng.Intn(1<<30)) << uint(rng.Intn(3)),
			Op:    op,
			Size:  byte(1 << uint(rng.Intn(7))),
			Flags: isa.Flags(rng.Intn(8)),
			Dst:   isa.Reg(rng.Intn(isa.RegCount)),
			Src1:  isa.Reg(rng.Intn(isa.RegCount)),
			Src2:  isa.Reg(rng.Intn(isa.RegCount)),
		}
	}
	return out
}

// encode writes insts through a Writer (in randomly sized batches, to
// exercise the pending-block boundary logic) and returns the file
// bytes.
func encode(t testing.TB, insts []isa.Inst) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for pos := 0; pos < len(insts); {
		n := 1 + rng.Intn(3000)
		if pos+n > len(insts) {
			n = len(insts) - pos
		}
		if rng.Intn(4) == 0 {
			for _, in := range insts[pos : pos+n] {
				if err := cw.Write(in); err != nil {
					t.Fatal(err)
				}
			}
		} else if err := cw.WriteBatch(insts[pos : pos+n]); err != nil {
			t.Fatal(err)
		}
		pos += n
	}
	if got := cw.Count(); got != int64(len(insts)) {
		t.Fatalf("writer Count = %d, want %d", got, len(insts))
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil { // Close is idempotent
		t.Fatalf("second Close: %v", err)
	}
	return buf.Bytes()
}

// drain reads everything from cr in the given batch size.
func drain(t testing.TB, cr *Reader, batchLen int) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	buf := make([]isa.Inst, batchLen)
	for {
		k := cr.ReadBatch(buf)
		if k == 0 {
			break
		}
		out = append(out, buf[:k]...)
	}
	if cr.Err() != nil {
		t.Fatalf("drain: %v", cr.Err())
	}
	return out
}

func TestRoundTripStreamAndBytes(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultBlockLen - 1, DefaultBlockLen, DefaultBlockLen + 1, 3*DefaultBlockLen + 100} {
		insts := genInsts(n, int64(n)+1)
		data := encode(t, insts)

		for _, mode := range []string{"stream", "bytes"} {
			var cr *Reader
			var err error
			if mode == "stream" {
				cr, err = NewReader(bytes.NewReader(data))
			} else {
				cr, err = NewBytesReader(data)
			}
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, mode, err)
			}
			got := drain(t, cr, DefaultBlockLen)
			if len(got) != n {
				t.Fatalf("n=%d %s: decoded %d", n, mode, len(got))
			}
			for i := range got {
				if got[i] != insts[i] {
					t.Fatalf("n=%d %s: inst %d: got %v want %v", n, mode, i, got[i], insts[i])
				}
			}
			if cr.NumInsts() != int64(n) {
				t.Fatalf("n=%d %s: NumInsts = %d", n, mode, cr.NumInsts())
			}
		}
	}
}

func TestRoundTripOddBatchSizes(t *testing.T) {
	insts := genInsts(2*DefaultBlockLen+17, 9)
	data := encode(t, insts)
	for _, batch := range []int{1, 3, 100, DefaultBlockLen - 1, DefaultBlockLen + 1, 5 * DefaultBlockLen} {
		cr, err := NewBytesReader(data)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, cr, batch)
		if len(got) != len(insts) {
			t.Fatalf("batch=%d: decoded %d of %d", batch, len(got), len(insts))
		}
		for i := range got {
			if got[i] != insts[i] {
				t.Fatalf("batch=%d: inst %d mismatch", batch, i)
			}
		}
	}
}

func TestNextMatchesReadBatch(t *testing.T) {
	insts := genInsts(DefaultBlockLen+55, 3)
	data := encode(t, insts)
	cr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range insts {
		got, ok := cr.Next()
		if !ok {
			t.Fatalf("inst %d: early end (err %v)", i, cr.Err())
		}
		if got != want {
			t.Fatalf("inst %d: got %v want %v", i, got, want)
		}
	}
	if _, ok := cr.Next(); ok {
		t.Fatal("Next after end returned an instruction")
	}
	if cr.Err() != nil {
		t.Fatal(cr.Err())
	}
}

func TestSizeHint(t *testing.T) {
	insts := genInsts(DefaultBlockLen+100, 5)
	data := encode(t, insts)

	cr, err := NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.SizeHint(); got != int64(len(insts)) {
		t.Fatalf("bytes SizeHint = %d, want %d", got, len(insts))
	}
	buf := make([]isa.Inst, 100)
	cr.ReadBatch(buf)
	if got := cr.SizeHint(); got != int64(len(insts)-100) {
		t.Fatalf("bytes SizeHint after 100 = %d", got)
	}

	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.SizeHint(); got >= 0 {
		t.Fatalf("stream SizeHint before footer = %d, want negative", got)
	}
}

func TestSeekInst(t *testing.T) {
	insts := genInsts(3*DefaultBlockLen+200, 11)
	data := encode(t, insts)
	cr, err := NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	targets := []int64{0, 1, 255, 256, 257, DefaultBlockLen - 1, DefaultBlockLen,
		2*DefaultBlockLen + 1234, int64(len(insts)) - 1, int64(len(insts))}
	buf := make([]isa.Inst, 64)
	for _, tgt := range targets {
		if err := cr.SeekInst(tgt); err != nil {
			t.Fatalf("SeekInst(%d): %v", tgt, err)
		}
		if got := cr.SizeHint(); got != int64(len(insts))-tgt {
			t.Fatalf("SeekInst(%d): SizeHint = %d", tgt, got)
		}
		k := cr.ReadBatch(buf)
		if tgt == int64(len(insts)) {
			if k != 0 {
				t.Fatalf("read after seek-to-end returned %d insts", k)
			}
			continue
		}
		if k == 0 {
			t.Fatalf("SeekInst(%d): no insts (err %v)", tgt, cr.Err())
		}
		for i := 0; i < k; i++ {
			if buf[i] != insts[tgt+int64(i)] {
				t.Fatalf("SeekInst(%d): inst %d mismatch", tgt, i)
			}
		}
	}
	if err := cr.SeekInst(-1); err == nil {
		t.Fatal("SeekInst(-1) succeeded")
	}
	if err := cr.SeekInst(int64(len(insts)) + 1); err == nil {
		t.Fatal("SeekInst past end succeeded")
	}

	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.SeekInst(0); err == nil {
		t.Fatal("SeekInst on a streaming reader succeeded")
	}
}

// TestTruncationWalk feeds every strict prefix of a valid trace to
// both backends: none may panic, and every one must report an error or
// (streaming) end without having invented instructions.
func TestTruncationWalk(t *testing.T) {
	insts := genInsts(DefaultBlockLen+300, 21)
	data := encode(t, insts)
	step := 1
	if testing.Short() {
		step = 97
	}
	buf := make([]isa.Inst, 512)
	for cut := 0; cut < len(data); cut += step {
		prefix := data[:cut]

		if cr, err := NewBytesReader(prefix); err == nil {
			for cr.ReadBatch(buf) != 0 {
			}
			if cr.Err() == nil && cr.instPos != 0 {
				t.Fatalf("cut=%d: bytes reader accepted a truncated trace (%d insts)", cut, cr.instPos)
			}
		}

		cr, err := NewReader(bytes.NewReader(prefix))
		if err != nil {
			continue
		}
		n := 0
		for {
			k := cr.ReadBatch(buf)
			if k == 0 {
				break
			}
			n += k
			for i := 0; i < k; i++ {
				if !buf[i].Op.Valid() {
					t.Fatalf("cut=%d: invalid opcode surfaced", cut)
				}
			}
		}
		if cr.Err() == nil {
			t.Fatalf("cut=%d: streaming reader reported a clean end on a truncated trace", cut)
		}
		if !errors.Is(cr.Err(), ErrTruncated) && !errors.Is(cr.Err(), ErrCorrupt) {
			t.Fatalf("cut=%d: error %v is neither ErrTruncated nor ErrCorrupt", cut, cr.Err())
		}
		_ = n
	}
}

func TestZeroLengthAndGarbageInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("SMLC"),
		[]byte("SMLT this is the legacy format"),
		[]byte("garbage that is long enough to not be a header at all........."),
		bytes.Repeat([]byte{0}, 64),
	}
	for i, data := range cases {
		if _, err := NewBytesReader(data); err == nil {
			t.Errorf("case %d: NewBytesReader accepted garbage", i)
		}
		if cr, err := NewReader(bytes.NewReader(data)); err == nil {
			if n := drainUnchecked(cr, 64); n != 0 || cr.Err() == nil {
				t.Errorf("case %d: streaming reader yielded %d insts, err=%v", i, n, cr.Err())
			}
		}
	}
}

func drainUnchecked(cr *Reader, batch int) int {
	buf := make([]isa.Inst, batch)
	n := 0
	for {
		k := cr.ReadBatch(buf)
		if k == 0 {
			return n
		}
		n += k
	}
}

// corrupt returns a copy of data with one little-endian u32 overwritten
// at off.
func corruptU32(data []byte, off int, v uint32) []byte {
	out := bytes.Clone(data)
	out[off] = byte(v)
	out[off+1] = byte(v >> 8)
	out[off+2] = byte(v >> 16)
	out[off+3] = byte(v >> 24)
	return out
}

func TestTargetedCorruption(t *testing.T) {
	insts := genInsts(2*DefaultBlockLen+10, 31)
	data := encode(t, insts)

	check := func(name string, mutated []byte) {
		t.Helper()
		if cr, err := NewBytesReader(mutated); err == nil {
			if drainUnchecked(cr, DefaultBlockLen); cr.Err() == nil {
				t.Errorf("%s: bytes reader accepted the corruption", name)
			}
		}
		if cr, err := NewReader(bytes.NewReader(mutated)); err == nil {
			if drainUnchecked(cr, DefaultBlockLen); cr.Err() == nil {
				t.Errorf("%s: streaming reader accepted the corruption", name)
			}
		}
	}

	// Block 0 starts right after the header.
	check("nInsts zero", corruptU32(data, headerSize+4, 0))
	check("nInsts over blockLen", corruptU32(data, headerSize+4, DefaultBlockLen+1))
	check("payloadLen tiny", corruptU32(data, headerSize, 1))
	check("payloadLen huge", corruptU32(data, headerSize, 1<<30))
	check("column length overrun", corruptU32(data, headerSize+8, 1<<29))
	// Shifting a column length by one makes the cursors misalign; the
	// lockstep decode or the drained() check must catch it.
	check("column length off by one", corruptU32(data, headerSize+8,
		binary32(data[headerSize+8:])+1))
	// Invalid opcode inside the op column: op column starts after the
	// pc and addr columns.
	{
		pcLen := int(binary32(data[headerSize+8:]))
		adLen := int(binary32(data[headerSize+12:]))
		opOff := headerSize + 4 + payloadFixed + pcLen + adLen
		mutated := bytes.Clone(data)
		mutated[opOff] = 0xEE // way out of the opcode range
		check("invalid opcode", mutated)
	}
	// Footer corruption: locate the footer through the trailer.
	trailerOff := len(data) - trailerSize
	footOff := int(binary64(data[trailerOff:]))
	check("footer total wrong", corruptU32(data, footOff+4, uint32(len(insts)+1)))
	check("footer nBlocks wrong", corruptU32(data, footOff+12, 7))
	check("footer marker nonzero", corruptU32(data, footOff, 1))
	// Trailer pointing into a block.
	{
		mutated := bytes.Clone(data)
		mutated[trailerOff] = byte(headerSize + 2)
		for i := 1; i < 8; i++ {
			mutated[trailerOff+i] = 0
		}
		if _, err := NewBytesReader(mutated); err == nil {
			t.Error("trailer pointing mid-block: accepted")
		}
	}
	// Seek index entry tampered: second block's startInst.
	if footOff+16+16+8 < trailerOff {
		check("seek index startInst wrong", corruptU32(data, footOff+16+16+8, 9))
	}
}

func binary32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func binary64(b []byte) uint64 {
	return uint64(binary32(b)) | uint64(binary32(b[4:]))<<32
}

func TestOpenMmap(t *testing.T) {
	insts := genInsts(DefaultBlockLen+500, 77)
	data := encode(t, insts)
	path := filepath.Join(t.TempDir(), "t.colv1")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, cf.Reader, DefaultBlockLen)
	if len(got) != len(insts) {
		t.Fatalf("decoded %d of %d", len(got), len(insts))
	}
	for i := range got {
		if got[i] != insts[i] {
			t.Fatalf("inst %d mismatch", i)
		}
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty); err == nil {
		t.Fatal("Open of an empty file succeeded")
	}
}

// TestReadBatchZeroAlloc proves the random-access decode path performs
// zero allocations per batch in steady state: the block payloads are
// sliced from the mapped bytes and decoded straight into the caller's
// buffer.
func TestReadBatchZeroAlloc(t *testing.T) {
	insts := genInsts(4*DefaultBlockLen, 55)
	data := encode(t, insts)
	cr, err := NewBytesReader(data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]isa.Inst, DefaultBlockLen)
	allocs := testing.AllocsPerRun(10, func() {
		if err := cr.SeekInst(0); err != nil {
			t.Fatal(err)
		}
		for cr.ReadBatch(buf) != 0 {
		}
		if cr.Err() != nil {
			t.Fatal(cr.Err())
		}
	})
	if allocs != 0 {
		t.Fatalf("decode of a %d-inst trace allocated %.0f times per run, want 0", len(insts), allocs)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(isa.Inst{}); err == nil {
		t.Fatal("Write after Close succeeded")
	}
	if err := cw.WriteBatch([]isa.Inst{{}}); err == nil {
		t.Fatal("WriteBatch after Close succeeded")
	}
}
