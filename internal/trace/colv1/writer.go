package colv1

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"storemlp/internal/isa"
)

// Writer streams instructions into the columnar format. Instructions
// accumulate in a pending block; every DefaultBlockLen of them are
// transposed into columns and emitted as one block. Close flushes the
// final partial block and writes the footer and trailer — a trace
// without them is reported as truncated by the reader, so Close is not
// optional.
//
// The Writer buffers through bufio and reuses all per-block scratch, so
// writing a trace costs O(blocks) allocations regardless of length.
type Writer struct {
	w       *bufio.Writer
	off     int64 // bytes emitted so far, including the header
	count   int64 // instructions accepted so far
	pending []isa.Inst
	npend   int
	index   []blockIndexEnt
	cols    [numCols][]byte // per-column encode scratch, reused across blocks
	hdr     [payloadFixed + 4]byte
	closed  bool
	err     error
}

// NewWriter writes the format header to w and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	cw := &Writer{
		w:       bufio.NewWriterSize(w, 1<<16),
		pending: make([]isa.Inst, DefaultBlockLen),
	}
	var hdr [headerSize]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint16(hdr[6:8], DefaultBlockLen)
	// hdr[8:16] is reserved, zero.
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	cw.off = headerSize
	return cw, nil
}

// Write appends one instruction to the trace.
func (cw *Writer) Write(in isa.Inst) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		cw.err = fmt.Errorf("colv1: write after Close")
		return cw.err
	}
	cw.pending[cw.npend] = in
	cw.npend++
	cw.count++
	if cw.npend == len(cw.pending) {
		return cw.flushBlock()
	}
	return nil
}

// WriteBatch appends a batch of instructions; equivalent to calling
// Write for each element but with the copy amortized per block.
func (cw *Writer) WriteBatch(ins []isa.Inst) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		cw.err = fmt.Errorf("colv1: write after Close")
		return cw.err
	}
	for len(ins) > 0 {
		n := copy(cw.pending[cw.npend:], ins)
		cw.npend += n
		cw.count += int64(n)
		ins = ins[n:]
		if cw.npend == len(cw.pending) {
			if err := cw.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Count returns the number of instructions accepted so far.
func (cw *Writer) Count() int64 { return cw.count }

// Close flushes the pending partial block, writes the footer and
// trailer, and flushes the underlying buffer. It does not close the
// underlying writer. Calling Close more than once returns the first
// error state and writes nothing further.
func (cw *Writer) Close() error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return nil
	}
	cw.closed = true
	if cw.npend > 0 {
		if err := cw.flushBlock(); err != nil {
			return err
		}
	}
	footerOff := cw.off
	var scratch [16]byte
	// Footer marker (payloadLen 0) + totals.
	binary.LittleEndian.PutUint32(scratch[0:4], 0)
	binary.LittleEndian.PutUint64(scratch[4:12], uint64(cw.count))
	binary.LittleEndian.PutUint32(scratch[12:16], uint32(len(cw.index)))
	if err := cw.emit(scratch[:16]); err != nil {
		return err
	}
	for _, ent := range cw.index {
		binary.LittleEndian.PutUint64(scratch[0:8], uint64(ent.offset))
		binary.LittleEndian.PutUint64(scratch[8:16], uint64(ent.startInst))
		if err := cw.emit(scratch[:16]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[0:8], uint64(footerOff))
	copy(scratch[8:12], trailerMagic)
	if err := cw.emit(scratch[:trailerSize]); err != nil {
		return err
	}
	if err := cw.w.Flush(); err != nil {
		cw.err = err
		return err
	}
	return nil
}

// emit writes p and advances the byte offset the seek index is built
// from.
func (cw *Writer) emit(p []byte) error {
	n, err := cw.w.Write(p)
	cw.off += int64(n)
	if err != nil {
		cw.err = err
	}
	return err
}

// flushBlock transposes the pending instructions into columns and
// emits one block.
func (cw *Writer) flushBlock() error {
	ins := cw.pending[:cw.npend]
	cw.index = append(cw.index, blockIndexEnt{
		offset:    cw.off,
		startInst: cw.count - int64(len(ins)),
	})

	for i := range cw.cols {
		cw.cols[i] = cw.cols[i][:0]
	}
	var varintBuf [binary.MaxVarintLen64]byte
	var prevPC, prevAddr uint64
	// Delta columns: signed varints against the previous record, with
	// the chain reset at the block boundary so blocks decode
	// independently.
	for _, in := range ins {
		n := binary.PutVarint(varintBuf[:], int64(in.PC-prevPC))
		cw.cols[0] = append(cw.cols[0], varintBuf[:n]...)
		prevPC = in.PC
		n = binary.PutVarint(varintBuf[:], int64(in.Addr-prevAddr))
		cw.cols[1] = append(cw.cols[1], varintBuf[:n]...)
		prevAddr = in.Addr
	}
	// Run-length columns.
	cw.cols[2] = appendRLE(cw.cols[2], ins, func(in isa.Inst) byte { return byte(in.Op) })
	cw.cols[3] = appendRLE(cw.cols[3], ins, func(in isa.Inst) byte { return in.Size })
	cw.cols[4] = appendRLE(cw.cols[4], ins, func(in isa.Inst) byte { return byte(in.Flags) })
	// Raw byte columns.
	for _, in := range ins {
		cw.cols[5] = append(cw.cols[5], byte(in.Dst))
		cw.cols[6] = append(cw.cols[6], byte(in.Src1))
		cw.cols[7] = append(cw.cols[7], byte(in.Src2))
	}

	payload := payloadFixed
	for _, c := range cw.cols {
		payload += len(c)
	}
	binary.LittleEndian.PutUint32(cw.hdr[0:4], uint32(payload))
	binary.LittleEndian.PutUint32(cw.hdr[4:8], uint32(len(ins)))
	for i, c := range cw.cols {
		binary.LittleEndian.PutUint32(cw.hdr[8+4*i:12+4*i], uint32(len(c)))
	}
	if err := cw.emit(cw.hdr[:]); err != nil {
		return err
	}
	for _, c := range cw.cols {
		if err := cw.emit(c); err != nil {
			return err
		}
	}
	cw.npend = 0
	return nil
}

// appendRLE appends { value, uvarint runLen } pairs for the byte
// column extracted by get.
func appendRLE(dst []byte, ins []isa.Inst, get func(isa.Inst) byte) []byte {
	var varintBuf [binary.MaxVarintLen64]byte
	i := 0
	for i < len(ins) {
		v := get(ins[i])
		j := i + 1
		for j < len(ins) && get(ins[j]) == v {
			j++
		}
		dst = append(dst, v)
		n := binary.PutUvarint(varintBuf[:], uint64(j-i))
		dst = append(dst, varintBuf[:n]...)
		i = j
	}
	return dst
}
