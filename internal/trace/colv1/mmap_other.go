//go:build !linux

package colv1

import (
	"io"
	"os"
)

// mapFile reads the whole file into memory on platforms without an
// mmap fast path; the nil unmap lets File skip the release step. The
// format stays fully functional, just without the lazy paging.
func mapFile(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
