package colv1

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"storemlp/internal/isa"
)

// Reader decodes a columnar trace. It implements the trace package's
// Source, BatchSource and Sized contracts (structurally — this package
// only imports isa), so it drops into every consumer of the legacy
// codec unchanged.
//
// A Reader has one of two backends:
//
//   - streaming (NewReader): blocks are read sequentially from an
//     io.Reader into one reusable buffer; no seeking, suitable for
//     pipes. End of stream without a footer reports ErrTruncated.
//   - random-access (NewBytesReader): the whole file is available as a
//     byte slice (typically an mmap via Open); block payloads are
//     sliced in place with zero copying, and Seek jumps to any
//     instruction through the footer index.
//
// Decode work happens lazily per ReadBatch call: the hot loop reads
// straight out of the block buffer into the caller's batch, allocating
// nothing per instruction.
type Reader struct {
	// Exactly one of br (streaming) / data (random-access) is set.
	br   *bufio.Reader
	data []byte

	blockLen int
	total    int64 // total instructions (footer); -1 while unknown (streaming)
	instPos  int64 // stream index of the next instruction to decode

	// Seek index: parsed eagerly from the footer (random-access), or
	// accumulated block by block for the footer cross-check
	// (streaming).
	index     []blockIndexEnt
	nextBlk   int   // next index entry to load (random-access)
	footOff   int64 // offset of the footer marker (random-access)
	streamOff int64 // bytes consumed so far (streaming)
	seenFoot  bool  // streaming: footer reached

	blockBuf []byte // streaming: reusable payload buffer
	dec      blockDecoder
	done     bool
	err      error
	one      [1]isa.Inst
	skip     [256]isa.Inst // Seek decode-discard scratch
	// scratch backs the fixed-size io.ReadFull reads of the streaming
	// backend (block length prefix, footer fixed part, index entries):
	// a stack array passed through the io.Reader interface escapes, so
	// one heap allocation per block; a struct field costs nothing.
	scratch [16]byte
}

// NewReader validates the header of r and returns a sequential Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short header", ErrTruncated)
		}
		return nil, fmt.Errorf("colv1: reading header: %w", err)
	}
	cr := &Reader{br: br, total: -1, streamOff: headerSize}
	if err := cr.parseHeader(hdr[:]); err != nil {
		return nil, err
	}
	return cr, nil
}

// NewBytesReader returns a random-access Reader over a complete
// columnar trace held (or mapped) in memory. The footer and trailer
// are validated eagerly; block payloads are referenced in place and
// only touched when decoded.
func NewBytesReader(data []byte) (*Reader, error) {
	if len(data) < headerSize+16+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than an empty trace", ErrTruncated, len(data))
	}
	cr := &Reader{data: data}
	if err := cr.parseHeader(data[:headerSize]); err != nil {
		return nil, err
	}
	if err := cr.parseFooter(); err != nil {
		return nil, err
	}
	return cr, nil
}

func (cr *Reader) parseHeader(hdr []byte) error {
	if string(hdr[:4]) != Magic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	bl := int(binary.LittleEndian.Uint16(hdr[6:8]))
	if bl < 1 || bl > maxBlockLen {
		return fmt.Errorf("%w: block length %d out of range", ErrCorrupt, bl)
	}
	cr.blockLen = bl
	return nil
}

// parseFooter locates and validates the footer through the trailer,
// building the seek index (random-access backend only).
func (cr *Reader) parseFooter() error {
	size := int64(len(cr.data))
	trailer := cr.data[size-trailerSize:]
	if string(trailer[8:12]) != trailerMagic {
		return fmt.Errorf("%w: missing trailer magic", ErrTruncated)
	}
	footOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	if footOff < headerSize || footOff > size-trailerSize-16 {
		return fmt.Errorf("%w: footer offset %d out of range", ErrCorrupt, footOff)
	}
	foot := cr.data[footOff : size-trailerSize]
	if binary.LittleEndian.Uint32(foot[0:4]) != 0 {
		return fmt.Errorf("%w: footer marker is not zero", ErrCorrupt)
	}
	total := int64(binary.LittleEndian.Uint64(foot[4:12]))
	nBlocks := int64(binary.LittleEndian.Uint32(foot[12:16]))
	if total < 0 {
		return fmt.Errorf("%w: negative instruction count", ErrCorrupt)
	}
	if int64(len(foot)) != 16+16*nBlocks {
		return fmt.Errorf("%w: footer length %d does not match %d blocks", ErrCorrupt, len(foot), nBlocks)
	}
	if nBlocks == 0 && total != 0 {
		return fmt.Errorf("%w: %d instructions but no blocks", ErrCorrupt, total)
	}
	index := make([]blockIndexEnt, nBlocks)
	for i := range index {
		off := int64(binary.LittleEndian.Uint64(foot[16+16*i:]))
		start := int64(binary.LittleEndian.Uint64(foot[24+16*i:]))
		index[i] = blockIndexEnt{offset: off, startInst: start}
		if i == 0 {
			if off != headerSize || start != 0 {
				return fmt.Errorf("%w: first block at offset %d / inst %d", ErrCorrupt, off, start)
			}
		} else if off <= index[i-1].offset || start <= index[i-1].startInst {
			return fmt.Errorf("%w: seek index not strictly increasing at block %d", ErrCorrupt, i)
		}
		if off+4+payloadFixed > footOff {
			return fmt.Errorf("%w: block %d offset %d beyond footer", ErrCorrupt, i, off)
		}
		if start >= total {
			return fmt.Errorf("%w: block %d starts at inst %d of %d", ErrCorrupt, i, start, total)
		}
	}
	cr.total = total
	cr.index = index
	cr.footOff = footOff
	return nil
}

// blockInsts returns how many instructions block i must contain
// according to the seek index — the index is authoritative, and any
// block whose own nInsts disagrees is corrupt.
func (cr *Reader) blockInsts(i int) int64 {
	end := cr.total
	if i+1 < len(cr.index) {
		end = cr.index[i+1].startInst
	}
	return end - cr.index[i].startInst
}

// Err returns the first error encountered, if any. End of a complete
// trace is not an error.
func (cr *Reader) Err() error { return cr.err }

// SizeHint reports the remaining instruction count when known (always,
// for the random-access backend; never, for the streaming backend —
// the count lives in the footer, which a sequential reader has not
// seen yet).
func (cr *Reader) SizeHint() int64 {
	if cr.total < 0 {
		return -1
	}
	return cr.total - cr.instPos
}

// NumInsts returns the total instruction count, or -1 when unknown
// (streaming backend before the footer).
func (cr *Reader) NumInsts() int64 { return cr.total }

// Next implements the per-instruction Source contract.
func (cr *Reader) Next() (isa.Inst, bool) {
	if cr.ReadBatch(cr.one[:]) == 0 {
		return isa.Inst{}, false
	}
	return cr.one[0], true
}

// ReadBatch decodes up to len(dst) instructions into dst and returns
// the number decoded; 0 means end of stream or error (see Err). The
// per-block column cursors persist across calls, so callers may use
// any batch size — a dst of the block length decodes exactly one block
// per call with zero per-instruction allocation.
func (cr *Reader) ReadBatch(dst []isa.Inst) int {
	if cr.err != nil || cr.done || len(dst) == 0 {
		return 0
	}
	n := 0
	for n < len(dst) {
		if cr.dec.remaining() == 0 {
			if !cr.nextBlock() {
				break
			}
		}
		k, ok := cr.dec.decode(dst[n:])
		if !ok {
			cr.fail(fmt.Errorf("%w: malformed column data in block ending at inst %d", ErrCorrupt, cr.instPos))
			return 0
		}
		n += k
		cr.instPos += int64(k)
		if cr.dec.remaining() == 0 && !cr.dec.drained() {
			cr.fail(fmt.Errorf("%w: trailing bytes in block ending at inst %d", ErrCorrupt, cr.instPos))
			return 0
		}
	}
	return n
}

// fail records the stream's terminal error.
func (cr *Reader) fail(err error) {
	cr.err = err
	cr.done = true
}

// nextBlock loads the next block into the decoder. It returns false at
// end of stream or on error.
func (cr *Reader) nextBlock() bool {
	if cr.data != nil {
		return cr.nextBlockBytes()
	}
	return cr.nextBlockStream()
}

func (cr *Reader) nextBlockBytes() bool {
	if cr.nextBlk >= len(cr.index) {
		cr.done = true
		return false
	}
	i := cr.nextBlk
	off := cr.index[i].offset
	payloadLen := int64(binary.LittleEndian.Uint32(cr.data[off : off+4]))
	if payloadLen < payloadFixed || off+4+payloadLen > cr.footOff {
		cr.fail(fmt.Errorf("%w: block %d payload length %d out of range", ErrCorrupt, i, payloadLen))
		return false
	}
	payload := cr.data[off+4 : off+4+payloadLen]
	if err := cr.dec.load(payload, cr.blockLen); err != nil {
		cr.fail(fmt.Errorf("block %d: %w", i, err))
		return false
	}
	if int64(cr.dec.n) != cr.blockInsts(i) {
		cr.fail(fmt.Errorf("%w: block %d holds %d insts, seek index says %d", ErrCorrupt, i, cr.dec.n, cr.blockInsts(i)))
		return false
	}
	cr.nextBlk++
	return true
}

func (cr *Reader) nextBlockStream() bool {
	lenBuf := cr.scratch[:4]
	if _, err := io.ReadFull(cr.br, lenBuf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			cr.fail(ErrTruncated)
		} else {
			cr.fail(fmt.Errorf("colv1: reading block length: %w", err))
		}
		return false
	}
	blockOff := cr.streamOff
	cr.streamOff += 4
	payloadLen := int(binary.LittleEndian.Uint32(lenBuf))
	if payloadLen == 0 {
		// Footer marker: validate totals, swallow the index, check the
		// trailer, and finish.
		cr.readFooterStream()
		return false
	}
	if payloadLen < payloadFixed || payloadLen > maxPayload(cr.blockLen) {
		cr.fail(fmt.Errorf("%w: block payload length %d out of range", ErrCorrupt, payloadLen))
		return false
	}
	if cap(cr.blockBuf) < payloadLen {
		cr.blockBuf = make([]byte, maxPayload(cr.blockLen))
	}
	buf := cr.blockBuf[:payloadLen]
	if _, err := io.ReadFull(cr.br, buf); err != nil {
		cr.fail(fmt.Errorf("%w: mid-block end of stream: %v", ErrTruncated, err))
		return false
	}
	cr.streamOff += int64(payloadLen)
	if err := cr.dec.load(buf, cr.blockLen); err != nil {
		cr.fail(err)
		return false
	}
	// Record what the footer's seek index must later claim about this
	// block; readFooterStream cross-checks entry by entry. Sized up
	// front so a long stream grows the index a few times, not per block.
	if cr.index == nil {
		cr.index = make([]blockIndexEnt, 0, 64)
	}
	cr.index = append(cr.index, blockIndexEnt{offset: blockOff, startInst: cr.instPos})
	return true
}

// readFooterStream consumes the footer and trailer of a sequential
// stream, cross-checking the declared instruction total against what
// was actually decoded.
func (cr *Reader) readFooterStream() {
	fixed := cr.scratch[:12]
	if _, err := io.ReadFull(cr.br, fixed); err != nil {
		cr.fail(fmt.Errorf("%w: cut short in footer: %v", ErrTruncated, err))
		return
	}
	total := int64(binary.LittleEndian.Uint64(fixed[0:8]))
	nBlocks := int64(binary.LittleEndian.Uint32(fixed[8:12]))
	if total != cr.instPos {
		cr.fail(fmt.Errorf("%w: footer declares %d instructions, stream held %d", ErrCorrupt, total, cr.instPos))
		return
	}
	// The seek index is for random access, but a sequential reader saw
	// every block go by and can hold the footer to account: each entry
	// must name exactly the offset and first-instruction index the
	// block actually had.
	if nBlocks != int64(len(cr.index)) {
		cr.fail(fmt.Errorf("%w: footer indexes %d blocks, stream held %d", ErrCorrupt, nBlocks, len(cr.index)))
		return
	}
	ent := cr.scratch[:16]
	for i := int64(0); i < nBlocks; i++ {
		if _, err := io.ReadFull(cr.br, ent); err != nil {
			cr.fail(fmt.Errorf("%w: cut short in seek index: %v", ErrTruncated, err))
			return
		}
		off := int64(binary.LittleEndian.Uint64(ent[0:8]))
		start := int64(binary.LittleEndian.Uint64(ent[8:16]))
		if got := cr.index[i]; off != got.offset || start != got.startInst {
			cr.fail(fmt.Errorf("%w: seek index entry %d is (%d,%d), block was at (%d,%d)",
				ErrCorrupt, i, off, start, got.offset, got.startInst))
			return
		}
	}
	trailer := cr.scratch[:trailerSize]
	if _, err := io.ReadFull(cr.br, trailer); err != nil {
		cr.fail(fmt.Errorf("%w: cut short in trailer: %v", ErrTruncated, err))
		return
	}
	if string(trailer[8:12]) != trailerMagic {
		cr.fail(fmt.Errorf("%w: bad trailer magic", ErrCorrupt))
		return
	}
	cr.total = total
	cr.seenFoot = true
	cr.done = true
}

// SeekInst positions the reader at instruction index inst (0-based), using
// the footer seek index to touch only the containing block. It is
// available on the random-access backend only. Seeking to NumInsts()
// positions at end of stream; anything outside [0, NumInsts()] is an
// error.
func (cr *Reader) SeekInst(inst int64) error {
	if cr.data == nil {
		return fmt.Errorf("colv1: SeekInst requires a random-access reader (NewBytesReader or Open)")
	}
	if cr.err != nil {
		return cr.err
	}
	if inst < 0 || inst > cr.total {
		return fmt.Errorf("colv1: seek to %d outside trace of %d instructions", inst, cr.total)
	}
	cr.dec = blockDecoder{}
	cr.done = false
	if inst == cr.total {
		cr.instPos = inst
		cr.nextBlk = len(cr.index)
		cr.done = true
		return nil
	}
	// Last block whose startInst <= inst.
	b := sort.Search(len(cr.index), func(i int) bool { return cr.index[i].startInst > inst }) - 1
	cr.nextBlk = b
	cr.instPos = cr.index[b].startInst
	if !cr.nextBlockBytes() {
		return cr.err
	}
	// Decode-and-discard up to the target: delta and RLE cursors only
	// move forward, so a skip is a decode into scratch.
	for cr.instPos < inst {
		want := inst - cr.instPos
		if want > int64(len(cr.skip)) {
			want = int64(len(cr.skip))
		}
		k, ok := cr.dec.decode(cr.skip[:want])
		if !ok || k == 0 {
			cr.fail(fmt.Errorf("%w: malformed column data while seeking to inst %d", ErrCorrupt, inst))
			return cr.err
		}
		cr.instPos += int64(k)
	}
	return nil
}

// blockDecoder holds the incremental decode state of one block: a
// cursor pair per column, the delta-chain accumulators, and the
// current run of each RLE column. It reads from the block's payload
// bytes in place.
type blockDecoder struct {
	buf []byte
	n   int // instructions in this block
	i   int // instructions decoded so far

	pcPos, pcEnd int
	adPos, adEnd int
	opPos, opEnd int
	szPos, szEnd int
	flPos, flEnd int
	dsPos        int
	s1Pos        int
	s2Pos        int
	dsEnd        int // shared length check uses explicit ends
	s1End        int
	s2End        int

	prevPC, prevAddr    uint64
	opVal, szVal, flVal byte
	opRun, szRun, flRun int
}

// remaining returns how many instructions of the loaded block are
// still undecoded.
func (d *blockDecoder) remaining() int { return d.n - d.i }

// drained reports whether every column cursor consumed its section
// exactly — anything less means the block payload lied about its
// column lengths.
func (d *blockDecoder) drained() bool {
	return d.pcPos == d.pcEnd && d.adPos == d.adEnd &&
		d.opPos == d.opEnd && d.szPos == d.szEnd && d.flPos == d.flEnd &&
		d.dsPos == d.dsEnd && d.s1Pos == d.s1End && d.s2Pos == d.s2End &&
		d.opRun == 0 && d.szRun == 0 && d.flRun == 0
}

// load points the decoder at one block payload (nInsts | colLen[8] |
// columns) and validates its structure.
func (d *blockDecoder) load(payload []byte, blockLen int) error {
	n := int(binary.LittleEndian.Uint32(payload[0:4]))
	if n < 1 || n > blockLen {
		return fmt.Errorf("%w: block instruction count %d out of range [1,%d]", ErrCorrupt, n, blockLen)
	}
	pos := payloadFixed
	var starts, ends [numCols]int
	for c := 0; c < numCols; c++ {
		l := int(binary.LittleEndian.Uint32(payload[4+4*c : 8+4*c]))
		if l < 0 || pos+l > len(payload) {
			return fmt.Errorf("%w: column %d length %d overruns block payload", ErrCorrupt, c, l)
		}
		starts[c], ends[c] = pos, pos+l
		pos += l
	}
	if pos != len(payload) {
		return fmt.Errorf("%w: block payload has %d trailing bytes", ErrCorrupt, len(payload)-pos)
	}
	// Raw register columns are one byte per instruction by
	// construction.
	for c := 5; c < 8; c++ {
		if ends[c]-starts[c] != n {
			return fmt.Errorf("%w: register column %d holds %d bytes for %d insts", ErrCorrupt, c, ends[c]-starts[c], n)
		}
	}
	*d = blockDecoder{
		buf: payload, n: n,
		pcPos: starts[0], pcEnd: ends[0],
		adPos: starts[1], adEnd: ends[1],
		opPos: starts[2], opEnd: ends[2],
		szPos: starts[3], szEnd: ends[3],
		flPos: starts[4], flEnd: ends[4],
		dsPos: starts[5], dsEnd: ends[5],
		s1Pos: starts[6], s1End: ends[6],
		s2Pos: starts[7], s2End: ends[7],
	}
	return nil
}

// decode writes up to len(dst) instructions into dst, advancing every
// column cursor in lockstep. It returns the count decoded and false if
// any column is malformed (varint overrun, run overrun, cursor past
// its section, invalid opcode). This is the trace pipeline's hot loop:
// it allocates nothing and touches only the block buffer and dst.
//
//storemlp:noalloc
func (d *blockDecoder) decode(dst []isa.Inst) (int, bool) {
	k := d.n - d.i
	if k > len(dst) {
		k = len(dst)
	}
	buf := d.buf
	for w := 0; w < k; w++ {
		// pc, addr: signed varint deltas.
		dpc, pos, ok := readVarint(buf, d.pcPos, d.pcEnd)
		if !ok {
			return 0, false
		}
		d.pcPos = pos
		d.prevPC += uint64(dpc)
		dad, pos, ok := readVarint(buf, d.adPos, d.adEnd)
		if !ok {
			return 0, false
		}
		d.adPos = pos
		d.prevAddr += uint64(dad)
		// op, size, flags: run-length pairs.
		if d.opRun == 0 {
			v, run, pos, ok := readRun(buf, d.opPos, d.opEnd)
			if !ok {
				return 0, false
			}
			d.opVal, d.opRun, d.opPos = v, run, pos
		}
		d.opRun--
		if d.szRun == 0 {
			v, run, pos, ok := readRun(buf, d.szPos, d.szEnd)
			if !ok {
				return 0, false
			}
			d.szVal, d.szRun, d.szPos = v, run, pos
		}
		d.szRun--
		if d.flRun == 0 {
			v, run, pos, ok := readRun(buf, d.flPos, d.flEnd)
			if !ok {
				return 0, false
			}
			d.flVal, d.flRun, d.flPos = v, run, pos
		}
		d.flRun--
		op := isa.Op(d.opVal)
		if !op.Valid() {
			return 0, false
		}
		// dst, src1, src2: raw bytes (section lengths pre-validated in
		// load, so plain indexing is in bounds).
		dst[w] = isa.Inst{
			PC:    d.prevPC,
			Addr:  d.prevAddr,
			Op:    op,
			Size:  d.szVal,
			Flags: isa.Flags(d.flVal),
			Dst:   isa.Reg(buf[d.dsPos]),
			Src1:  isa.Reg(buf[d.s1Pos]),
			Src2:  isa.Reg(buf[d.s2Pos]),
		}
		d.dsPos++
		d.s1Pos++
		d.s2Pos++
	}
	d.i += k
	return k, true
}

// readVarint decodes one signed varint from buf[pos:end], returning
// the value and the new cursor. It is binary.Varint restricted to a
// column section, with the allocation-free failure mode the hot loop
// needs.
//
//storemlp:noalloc
func readVarint(buf []byte, pos, end int) (int64, int, bool) {
	var ux uint64
	var shift uint
	for pos < end {
		b := buf[pos]
		pos++
		if b < 0x80 {
			if shift >= 63 && b > 1 {
				return 0, 0, false // overflows int64
			}
			ux |= uint64(b) << shift
			// Zigzag decode (matches encoding/binary's Varint).
			return int64(ux>>1) ^ -int64(ux&1), pos, true
		}
		ux |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, 0, false
		}
	}
	return 0, 0, false // section ended mid-varint
}

// readRun decodes one RLE pair (value byte, uvarint run length) from
// buf[pos:end]. Runs are capped at maxBlockLen: no legitimate run can
// exceed the block length, and the cap keeps a hostile run length from
// stalling the column-lockstep invariant checks.
//
//storemlp:noalloc
func readRun(buf []byte, pos, end int) (byte, int, int, bool) {
	if pos >= end {
		return 0, 0, 0, false
	}
	v := buf[pos]
	pos++
	var run uint64
	var shift uint
	for pos < end {
		b := buf[pos]
		pos++
		if b < 0x80 {
			run |= uint64(b) << shift
			if run < 1 || run > maxBlockLen {
				return 0, 0, 0, false
			}
			return v, int(run), pos, true
		}
		run |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 21 { // runs are <= maxBlockLen, 3 varint bytes suffice
			return 0, 0, 0, false
		}
	}
	return 0, 0, 0, false
}
