//go:build linux

package colv1

import (
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only. The returned unmap function
// releases the mapping.
func mapFile(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
