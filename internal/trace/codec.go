package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"storemlp/internal/isa"
)

// Binary trace format ("SMLT"):
//
//	header:  magic "SMLT" | version uvarint | count uvarint (0 = unknown)
//	record:  op byte | flags byte | size byte | dst byte | src1 byte |
//	         src2 byte | pc-delta varint | addr varint
//
// PC is delta-encoded against the previous record's PC (signed varint)
// because instruction addresses are mostly sequential; effective
// addresses are stored raw (uvarint) because they jump across regions.

const (
	magic   = "SMLT"
	version = 1
)

// ErrBadMagic is returned when a reader input is not a storemlp trace.
var ErrBadMagic = errors.New("trace: bad magic (not a storemlp trace file)")

// Writer streams instructions to an io.Writer in the binary format.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  int64
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter writes a trace header to w and returns a Writer. count is the
// number of instructions that will follow; pass 0 if unknown.
func NewWriter(w io.Writer, count int64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], version)
	n += binary.PutUvarint(hdr[n:], uint64(count))
	if _, err := bw.Write(hdr[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction record.
func (tw *Writer) Write(in isa.Inst) error {
	fixed := [6]byte{byte(in.Op), byte(in.Flags), in.Size, byte(in.Dst), byte(in.Src1), byte(in.Src2)}
	if _, err := tw.w.Write(fixed[:]); err != nil {
		return err
	}
	n := binary.PutVarint(tw.buf[:], int64(in.PC)-int64(tw.lastPC))
	n += binary.PutUvarint(tw.buf[n:], in.Addr)
	tw.lastPC = in.PC
	tw.count++
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Count returns the number of records written so far.
func (tw *Writer) Count() int64 { return tw.count }

// WriteAll writes every instruction from src through a new Writer on w.
func WriteAll(w io.Writer, src Source) (int64, error) {
	tw, err := NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(in); err != nil {
			return n, err
		}
		n++
	}
	return n, tw.Flush()
}

// Reader streams instructions from a binary trace. It implements Source.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	remain int64 // declared count, or -1 if unknown
	err    error
}

// NewReader validates the header of r and returns a streaming Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(m[:]) != magic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	remain := int64(count)
	if count == 0 {
		remain = -1
	}
	return &Reader{r: br, remain: remain}, nil
}

// Next implements Source. A malformed record ends the stream; the error
// is available via Err.
func (tr *Reader) Next() (isa.Inst, bool) {
	if tr.err != nil || tr.remain == 0 {
		return isa.Inst{}, false
	}
	var fixed [6]byte
	if _, err := io.ReadFull(tr.r, fixed[:]); err != nil {
		if err != io.EOF {
			tr.err = fmt.Errorf("trace: reading record: %w", err)
		}
		return isa.Inst{}, false
	}
	dpc, err := binary.ReadVarint(tr.r)
	if err != nil {
		tr.err = fmt.Errorf("trace: reading pc delta: %w", err)
		return isa.Inst{}, false
	}
	addr, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = fmt.Errorf("trace: reading addr: %w", err)
		return isa.Inst{}, false
	}
	pc := uint64(int64(tr.lastPC) + dpc)
	tr.lastPC = pc
	if tr.remain > 0 {
		tr.remain--
	}
	in := isa.Inst{
		Op:    isa.Op(fixed[0]),
		Flags: isa.Flags(fixed[1]),
		Size:  fixed[2],
		Dst:   isa.Reg(fixed[3]),
		Src1:  isa.Reg(fixed[4]),
		Src2:  isa.Reg(fixed[5]),
		PC:    pc,
		Addr:  addr,
	}
	if !in.Op.Valid() {
		tr.err = fmt.Errorf("trace: invalid opcode %d", fixed[0])
		return isa.Inst{}, false
	}
	return in, true
}

// ReadBatch implements BatchSource: it decodes records straight into
// dst until dst is full or the stream ends. The decode logic is the
// same as Next; the win is that interface dispatch and the per-call
// error/remain checks amortize over the block.
func (tr *Reader) ReadBatch(dst []isa.Inst) int {
	n := 0
	for n < len(dst) {
		in, ok := tr.Next()
		if !ok {
			break
		}
		dst[n] = in
		n++
	}
	return n
}

// SizeHint implements Sized with the header-declared record count, or
// -1 when the header did not declare one.
func (tr *Reader) SizeHint() int64 { return tr.remain }

// Err returns the first decode error encountered, if any.
func (tr *Reader) Err() error { return tr.err }
