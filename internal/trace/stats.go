package trace

import (
	"fmt"
	"strings"

	"storemlp/internal/isa"
)

// Stats summarizes the static properties of an instruction stream —
// the quantities in the paper's Table 1 numerator (store frequency) and
// the workload calibration tests.
type Stats struct {
	Total       int64
	ByOp        [isa.NumOps]int64
	LockAcquire int64
	LockRelease int64
	SharedMem   int64
	Mispredicts int64
}

// Loads counts instructions that read data memory (including atomics).
func (s *Stats) Loads() int64 {
	return s.ByOp[isa.OpLoad] + s.ByOp[isa.OpCASA] + s.ByOp[isa.OpLoadLocked]
}

// Stores counts instructions that write data memory (including atomics).
func (s *Stats) Stores() int64 {
	return s.ByOp[isa.OpStore] + s.ByOp[isa.OpCASA] + s.ByOp[isa.OpStoreCond]
}

// Per100 converts a count into "per 100 instructions", the unit of the
// paper's Table 1.
func (s *Stats) Per100(n int64) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Total)
}

// Add accumulates one instruction.
func (s *Stats) Add(in isa.Inst) {
	s.Total++
	s.ByOp[in.Op]++
	if in.Flags.Has(isa.FlagLockAcquire) {
		s.LockAcquire++
	}
	if in.Flags.Has(isa.FlagLockRelease) {
		s.LockRelease++
	}
	if in.Op.IsMem() && in.Flags.Has(isa.FlagShared) {
		s.SharedMem++
	}
	if in.Op == isa.OpBranch && in.Flags.Has(isa.FlagMispredict) {
		s.Mispredicts++
	}
}

// Gather drains src, accumulating statistics.
func Gather(src Source) Stats {
	var s Stats
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		s.Add(in)
	}
	return s
}

// String renders a one-line-per-class summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d\n", s.Total)
	for op := 0; op < isa.NumOps; op++ {
		if s.ByOp[op] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-8s %12d (%6.2f/100)\n",
			isa.Op(op), s.ByOp[op], s.Per100(s.ByOp[op]))
	}
	fmt.Fprintf(&b, "  lock acq/rel: %d/%d  shared mem: %d  mispredicts: %d\n",
		s.LockAcquire, s.LockRelease, s.SharedMem, s.Mispredicts)
	return b.String()
}
