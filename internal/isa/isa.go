// Package isa defines the abstract instruction set consumed by the epoch
// MLP engine.
//
// The paper's analysis distinguishes only a handful of instruction
// classes: ordinary computation, loads, stores, branches, and the
// serializing / synchronizing instructions that implement critical
// sections under the two memory consistency models it studies (SPARC TSO
// for processor consistency, PowerPC for weak consistency). This package
// models exactly those classes plus the register-dependence information
// the engine needs to decide which off-chip accesses can overlap.
package isa

import "fmt"

// Op is the instruction class of a dynamic instruction.
type Op uint8

const (
	// OpALU is any on-chip computation: integer/FP arithmetic, address
	// arithmetic, register moves. It has no memory side effects.
	OpALU Op = iota
	// OpLoad reads Size bytes from Addr into Dst.
	OpLoad
	// OpStore writes Size bytes from Src1 to Addr.
	OpStore
	// OpBranch is a conditional branch whose direction depends on Src1.
	OpBranch
	// OpCASA is the SPARC compare-and-swap (casa): an atomic load+store to
	// Addr. Under TSO it is a serializing instruction: the pipeline and
	// the store buffer/queue must drain before it executes.
	OpCASA
	// OpMembar is the SPARC membar barrier. Serializing under TSO like
	// OpCASA but with no memory access of its own.
	OpMembar
	// OpLoadLocked is the PowerPC lwarx: a load that begins a
	// load-locked/store-conditional pair.
	OpLoadLocked
	// OpStoreCond is the PowerPC stwcx: the store-conditional that
	// completes a lwarx/stwcx pair.
	OpStoreCond
	// OpISync is the PowerPC isync barrier: requires the pipeline to
	// drain (all earlier instructions retired) but, crucially for the
	// paper, does NOT require the store buffer/queue to drain.
	OpISync
	// OpLWSync is the PowerPC lwsync barrier: orders stores across the
	// barrier (commits of later stores wait for commits of earlier ones)
	// without stalling execution.
	OpLWSync

	numOps
)

// NumOps is the number of distinct instruction classes.
const NumOps = int(numOps)

var opNames = [...]string{
	OpALU:        "alu",
	OpLoad:       "load",
	OpStore:      "store",
	OpBranch:     "branch",
	OpCASA:       "casa",
	OpMembar:     "membar",
	OpLoadLocked: "lwarx",
	OpStoreCond:  "stwcx",
	OpISync:      "isync",
	OpLWSync:     "lwsync",
}

// String returns the conventional mnemonic for the instruction class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined instruction class.
func (o Op) Valid() bool { return o < numOps }

// IsLoad reports whether the instruction reads memory into a register.
// casa performs a load as part of its atomic exchange; lwarx is a load.
func (o Op) IsLoad() bool {
	return o == OpLoad || o == OpCASA || o == OpLoadLocked
}

// IsStore reports whether the instruction writes memory.
// casa performs a store as part of its atomic exchange; stwcx is a store.
func (o Op) IsStore() bool {
	return o == OpStore || o == OpCASA || o == OpStoreCond
}

// IsMem reports whether the instruction accesses data memory at all.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBarrier reports whether the instruction is a pure ordering barrier
// with no data memory access (membar, isync, lwsync).
func (o Op) IsBarrier() bool {
	return o == OpMembar || o == OpISync || o == OpLWSync
}

// Flags carries workload-generator ground truth and lock-detector output
// attached to a dynamic instruction.
type Flags uint8

const (
	// FlagLockAcquire marks the serializing instruction that acquires a
	// critical-section lock (casa under PC; the stwcx of a
	// lwarx/stwcx/isync sequence under WC).
	FlagLockAcquire Flags = 1 << iota
	// FlagLockRelease marks the store that releases a critical-section
	// lock.
	FlagLockRelease
	// FlagShared marks a memory access to data shared across chips; such
	// lines are subject to cross-chip coherence invalidations and limit
	// SMAC effectiveness.
	FlagShared
	// FlagMispredict marks a branch that the (modelled) predictor
	// mispredicts. A mispredicted branch dependent on a missing load is a
	// window termination condition.
	FlagMispredict
	// FlagTaken records a branch's actual direction, consumed by the
	// optional gshare front-end model instead of FlagMispredict.
	FlagTaken
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// RegCount is the size of the architectural integer register file visible
// to the dependence tracker. Register 0 is hardwired to zero (always
// ready), matching SPARC %g0.
const RegCount = 64

// Reg identifies an architectural register. Reg 0 is the zero register.
type Reg uint8

// Inst is one dynamic instruction from the trace.
//
// PC is the instruction's own address (used for the L1I/L2 instruction
// stream); Addr is the effective address of a memory access. Dst is the
// destination register (0 for none); Src1 and Src2 are source registers
// (0 means no dependence). For stores, Src1 is the data register and Src2
// the address base; for branches Src1 is the condition source.
type Inst struct {
	PC    uint64
	Addr  uint64
	Op    Op
	Size  uint8 // memory access size in bytes (1..64)
	Dst   Reg
	Src1  Reg
	Src2  Reg
	Flags Flags
}

// Serializing reports whether the instruction is serializing under the
// given in-order-store-commit regime. Under processor consistency (TSO),
// casa and membar serialize: the pipeline must drain AND all earlier
// stores must commit before they execute. Under weak consistency, isync
// requires only a pipeline drain and lwsync only orders commits, so the
// store queue need not drain — the distinction at the heart of the
// paper's PC-vs-WC gap.
func (in Inst) Serializing() bool {
	switch in.Op {
	case OpCASA, OpMembar, OpISync:
		return true
	default:
		// lwsync deliberately does NOT serialize: it orders store
		// commits without draining anything (§3.3.4).
		return false
	}
}

// String renders the instruction compactly for debugging and golden
// tests.
func (in Inst) String() string {
	switch {
	case in.Op.IsMem():
		return fmt.Sprintf("%s@%#x[%d] pc=%#x d=r%d s=r%d,r%d f=%02x",
			in.Op, in.Addr, in.Size, in.PC, in.Dst, in.Src1, in.Src2, uint8(in.Flags))
	default:
		return fmt.Sprintf("%s pc=%#x d=r%d s=r%d,r%d f=%02x",
			in.Op, in.PC, in.Dst, in.Src1, in.Src2, uint8(in.Flags))
	}
}
