package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpALU:        "alu",
		OpLoad:       "load",
		OpStore:      "store",
		OpBranch:     "branch",
		OpCASA:       "casa",
		OpMembar:     "membar",
		OpLoadLocked: "lwarx",
		OpStoreCond:  "stwcx",
		OpISync:      "isync",
		OpLWSync:     "lwsync",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(250).String(); got != "op(250)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestOpValid(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if !o.Valid() {
			t.Errorf("Op %v should be valid", o)
		}
	}
	if Op(numOps).Valid() {
		t.Error("Op(numOps) should be invalid")
	}
}

func TestLoadStoreClassification(t *testing.T) {
	tests := []struct {
		op          Op
		load, store bool
	}{
		{OpALU, false, false},
		{OpLoad, true, false},
		{OpStore, false, true},
		{OpBranch, false, false},
		{OpCASA, true, true}, // atomic load+store
		{OpMembar, false, false},
		{OpLoadLocked, true, false},
		{OpStoreCond, false, true},
		{OpISync, false, false},
		{OpLWSync, false, false},
	}
	for _, tc := range tests {
		if got := tc.op.IsLoad(); got != tc.load {
			t.Errorf("%v.IsLoad() = %v, want %v", tc.op, got, tc.load)
		}
		if got := tc.op.IsStore(); got != tc.store {
			t.Errorf("%v.IsStore() = %v, want %v", tc.op, got, tc.store)
		}
		if got := tc.op.IsMem(); got != (tc.load || tc.store) {
			t.Errorf("%v.IsMem() = %v, want %v", tc.op, got, tc.load || tc.store)
		}
	}
}

func TestBarrierClassification(t *testing.T) {
	barriers := map[Op]bool{
		OpMembar: true, OpISync: true, OpLWSync: true,
		OpALU: false, OpLoad: false, OpStore: false, OpCASA: false,
	}
	for op, want := range barriers {
		if got := op.IsBarrier(); got != want {
			t.Errorf("%v.IsBarrier() = %v, want %v", op, got, want)
		}
	}
}

func TestSerializing(t *testing.T) {
	// Under PC, casa and membar serialize. isync serializes the pipeline
	// (though not the store queue). lwsync does not stall execution.
	ser := map[Op]bool{
		OpCASA: true, OpMembar: true, OpISync: true,
		OpLWSync: false, OpLoad: false, OpStore: false, OpALU: false,
		OpLoadLocked: false, OpStoreCond: false, OpBranch: false,
	}
	for op, want := range ser {
		in := Inst{Op: op}
		if got := in.Serializing(); got != want {
			t.Errorf("Inst{%v}.Serializing() = %v, want %v", op, got, want)
		}
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagLockAcquire | FlagShared
	if !f.Has(FlagLockAcquire) {
		t.Error("expected FlagLockAcquire set")
	}
	if !f.Has(FlagShared) {
		t.Error("expected FlagShared set")
	}
	if f.Has(FlagLockRelease) {
		t.Error("FlagLockRelease should not be set")
	}
	if !f.Has(FlagLockAcquire | FlagShared) {
		t.Error("combined mask should match")
	}
	if f.Has(FlagLockAcquire | FlagLockRelease) {
		t.Error("partial mask must not match")
	}
}

func TestInstString(t *testing.T) {
	mem := Inst{Op: OpStore, Addr: 0x1000, Size: 8, PC: 0x400, Src1: 3, Src2: 4}
	if s := mem.String(); !strings.Contains(s, "store@0x1000[8]") {
		t.Errorf("mem String() = %q", s)
	}
	alu := Inst{Op: OpALU, PC: 0x404, Dst: 5, Src1: 1, Src2: 2}
	if s := alu.String(); !strings.Contains(s, "alu pc=0x404") {
		t.Errorf("alu String() = %q", s)
	}
}

// Property: IsMem is exactly IsLoad || IsStore for every op value,
// including invalid ones.
func TestMemClassificationProperty(t *testing.T) {
	f := func(b uint8) bool {
		o := Op(b)
		return o.IsMem() == (o.IsLoad() || o.IsStore())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Flags.Has is monotone — if a flag set has mask m, it has
// every subset of m.
func TestFlagsHasProperty(t *testing.T) {
	f := func(set, mask uint8) bool {
		fs, m := Flags(set), Flags(mask)
		if !fs.Has(m) {
			return true
		}
		// every single-bit subset must also be present
		for b := uint8(1); b != 0; b <<= 1 {
			if m.Has(Flags(b)) && !fs.Has(Flags(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
