// Package consistency models the two memory consistency model families
// the paper studies and the trace transformations between them.
//
// Processor consistency (PC) is concretely SPARC TSO: stores become
// globally visible in program order, critical sections are entered with
// the atomic casa and exited with an ordinary store, and casa/membar
// are serializing — they drain both the pipeline and the store
// buffer/queue.
//
// Weak consistency (WC) is concretely the PowerPC model: stores may
// commit out of order, lock acquisition uses the lwarx/stwcx pair
// followed by isync (which drains the pipeline but NOT the store
// queue), and lock release uses lwsync followed by the releasing store
// (lwsync orders commits without stalling execution).
//
// The paper's traces were collected on TSO binaries; to simulate WC it
// built "a lock detection tool ... to identify all the lock acquisition
// and lock release instruction sequences in the traces", then replaced
// them with the WC idiom. DetectLocks and RewriteWC reproduce that
// tool, and ElideLocks implements Speculative Lock Elision (lock
// acquire becomes a plain load, lock release becomes a NOP).
package consistency

import (
	"fmt"

	"storemlp/internal/isa"
	"storemlp/internal/trace"
)

// Model selects the memory consistency model the epoch engine enforces.
type Model uint8

const (
	// PC is processor consistency (SPARC TSO): in-order store commit;
	// casa/membar drain pipeline + store buffer/queue; store coalescing
	// only between consecutive stores.
	PC Model = iota
	// WC is weak consistency (PowerPC): out-of-order store commit; isync
	// drains only the pipeline; lwsync orders commits; coalescing with
	// any eligible store queue entry.
	WC
)

func (m Model) String() string {
	if m == PC {
		return "PC"
	}
	return "WC"
}

// Valid reports whether m is a defined model.
func (m Model) Valid() bool { return m == PC || m == WC }

// InOrderCommit reports whether stores must commit in program order.
func (m Model) InOrderCommit() bool { return m == PC }

// DrainsStoresOnSerialize reports whether the model's serializing
// instructions require the store buffer and store queue to drain — the
// key PC/WC difference for store performance (§3.3.4).
func (m Model) DrainsStoresOnSerialize() bool { return m == PC }

// DetectLocks scans a PC (TSO) instruction stream and marks lock
// acquisition and release instructions, reproducing the paper's lock
// detection tool. The TSO idiom is: casa to the lock address acquires;
// the next ordinary store to the same address releases. Detection is
// purely structural — any generator-provided flags are ignored and
// overwritten.
func DetectLocks(src trace.Source) trace.Source {
	held := make(map[uint64]struct{})
	return trace.Map(src, func(in isa.Inst) (isa.Inst, bool) {
		in.Flags &^= isa.FlagLockAcquire | isa.FlagLockRelease
		switch in.Op {
		case isa.OpCASA:
			held[in.Addr] = struct{}{}
			in.Flags |= isa.FlagLockAcquire
		case isa.OpStore:
			if _, ok := held[in.Addr]; ok {
				delete(held, in.Addr)
				in.Flags |= isa.FlagLockRelease
			}
		default:
			// Every other instruction class passes through unchanged:
			// only casa acquires and only a plain store releases under
			// the TSO lock idiom.
		}
		return in, true
	})
}

// RewriteWC converts a PC (TSO) trace into the equivalent WC (PowerPC)
// trace, replacing lock idioms exactly as the paper's tool does:
//
//	casa (acquire)        -> lwarx ; stwcx ; isync
//	store (release)       -> lwsync ; store
//	membar                -> lwsync
//
// Instructions must already carry lock flags (from the workload
// generator or DetectLocks). The returned source is batch-aware.
func RewriteWC(src trace.Source) trace.Source {
	return &wcRewriter{src: src}
}

// wcRewriter expands one input instruction into at most three outputs.
// Outputs that do not fit the caller's block are parked in pending and
// drained first on the next call, so Next and ReadBatch interleave
// without reordering.
type wcRewriter struct {
	src     trace.Source
	pending [3]isa.Inst
	pHead   int
	pLen    int
	scratch []isa.Inst
}

// rewrite expands in into out and returns the number of instructions
// produced (1..3).
func (r *wcRewriter) rewrite(in isa.Inst, out *[3]isa.Inst) int {
	switch {
	case in.Op == isa.OpCASA && in.Flags.Has(isa.FlagLockAcquire):
		ll := in
		ll.Op = isa.OpLoadLocked
		sc := in
		sc.Op = isa.OpStoreCond
		sc.PC += 4
		sc.Dst = 0
		out[0] = ll
		out[1] = sc
		out[2] = isa.Inst{Op: isa.OpISync, PC: in.PC + 8, Flags: in.Flags}
		return 3
	case in.Op == isa.OpStore && in.Flags.Has(isa.FlagLockRelease):
		// The barrier carries the release flag too so that SLE can
		// recognize and elide the whole release idiom.
		out[0] = isa.Inst{Op: isa.OpLWSync, PC: in.PC, Flags: in.Flags}
		rel := in
		rel.PC += 4
		out[1] = rel
		return 2
	case in.Op == isa.OpMembar:
		in.Op = isa.OpLWSync
		out[0] = in
		return 1
	default:
		out[0] = in
		return 1
	}
}

// Next implements trace.Source.
func (r *wcRewriter) Next() (isa.Inst, bool) {
	if r.pHead < r.pLen {
		out := r.pending[r.pHead]
		r.pHead++
		return out, true
	}
	in, ok := r.src.Next()
	if !ok {
		return isa.Inst{}, false
	}
	var out [3]isa.Inst
	n := r.rewrite(in, &out)
	copy(r.pending[:], out[1:n])
	r.pHead, r.pLen = 0, n-1
	return out[0], true
}

// ReadBatch implements trace.BatchSource. Input blocks are sized to a
// third of the remaining room so the worst-case 3x expansion fits; any
// spill from the final input lands in pending for the next call.
func (r *wcRewriter) ReadBatch(dst []isa.Inst) int {
	n := 0
	for n < len(dst) && r.pHead < r.pLen {
		dst[n] = r.pending[r.pHead]
		r.pHead++
		n++
	}
	if r.pHead == r.pLen {
		r.pHead, r.pLen = 0, 0
	}
	for n < len(dst) {
		want := (len(dst) - n) / 3
		if want < 1 {
			want = 1
		}
		if want > cap(r.scratch) {
			r.scratch = make([]isa.Inst, want)
		}
		k := trace.Fill(r.src, r.scratch[:want])
		if k == 0 {
			break
		}
		var out [3]isa.Inst
		for i := 0; i < k; i++ {
			m := r.rewrite(r.scratch[i], &out)
			for j := 0; j < m; j++ {
				if n < len(dst) {
					dst[n] = out[j]
					n++
				} else {
					r.pending[r.pLen] = out[j]
					r.pLen++
				}
			}
		}
	}
	return n
}

// ElideLocks applies Speculative Lock Elision (§3.3.4) to a trace of
// either model, assuming (as the paper's experiments do) that every
// elision succeeds: the serializing lock acquire becomes a plain load of
// the lock word and the releasing store becomes a NOP (is dropped), so
// neither constrains store, load or instruction MLP.
func ElideLocks(src trace.Source) trace.Source {
	return trace.Map(src, func(in isa.Inst) (isa.Inst, bool) {
		switch {
		case in.Op == isa.OpCASA && in.Flags.Has(isa.FlagLockAcquire):
			in.Op = isa.OpLoad
			return in, true
		case in.Op == isa.OpLoadLocked && in.Flags.Has(isa.FlagLockAcquire):
			in.Op = isa.OpLoad
			return in, true
		case in.Op == isa.OpStoreCond && in.Flags.Has(isa.FlagLockAcquire):
			return isa.Inst{}, false
		case in.Op == isa.OpISync && in.Flags.Has(isa.FlagLockAcquire):
			return isa.Inst{}, false
		case in.Flags.Has(isa.FlagLockRelease) && (in.Op == isa.OpStore || in.Op == isa.OpLWSync):
			return isa.Inst{}, false
		default:
			return in, true
		}
	})
}

// ApplyTM applies the transactional-memory alternative to SLE (§3.3.4,
// [14]): critical sections become transactions. Where SLE turns the lock
// acquire into a plain load of the lock word (the processor still reads
// it to validate the elision), TM never touches the lock word at all —
// the acquire sequence and the release disappear entirely, with the
// hardware tracking the transaction's read/write set instead. As in the
// paper's SLE experiments, every transaction is assumed to succeed.
func ApplyTM(src trace.Source) trace.Source {
	return trace.Map(src, func(in isa.Inst) (isa.Inst, bool) {
		switch {
		case in.Flags.Has(isa.FlagLockAcquire) &&
			(in.Op == isa.OpCASA || in.Op == isa.OpLoadLocked ||
				in.Op == isa.OpStoreCond || in.Op == isa.OpISync):
			return isa.Inst{}, false
		case in.Flags.Has(isa.FlagLockRelease) && (in.Op == isa.OpStore || in.Op == isa.OpLWSync):
			return isa.Inst{}, false
		default:
			return in, true
		}
	})
}

// Validate reports an error for undefined model values.
func Validate(m Model) error {
	if !m.Valid() {
		return fmt.Errorf("consistency: undefined model %d", m)
	}
	return nil
}
