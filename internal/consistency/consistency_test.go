package consistency

import (
	"testing"

	"storemlp/internal/isa"
	"storemlp/internal/trace"
)

func ops(src trace.Source) []isa.Op {
	var out []isa.Op
	for {
		in, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, in.Op)
	}
}

func TestModelBasics(t *testing.T) {
	if PC.String() != "PC" || WC.String() != "WC" {
		t.Error("model strings wrong")
	}
	if !PC.Valid() || !WC.Valid() || Model(9).Valid() {
		t.Error("validity wrong")
	}
	if !PC.InOrderCommit() || WC.InOrderCommit() {
		t.Error("InOrderCommit wrong")
	}
	if !PC.DrainsStoresOnSerialize() || WC.DrainsStoresOnSerialize() {
		t.Error("DrainsStoresOnSerialize wrong")
	}
	if Validate(PC) != nil || Validate(Model(7)) == nil {
		t.Error("Validate wrong")
	}
}

// criticalSection builds the paper's Example 5 pattern: casa acquire,
// body, store release — with ground-truth flags stripped.
func criticalSection(lock uint64) []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpStore, Addr: 0x9000, Size: 8, PC: 0x100},
		{Op: isa.OpCASA, Addr: lock, Size: 8, PC: 0x104, Dst: 1},
		{Op: isa.OpLoad, Addr: 0xA000, Size: 8, PC: 0x108, Dst: 2},
		{Op: isa.OpStore, Addr: 0xA008, Size: 8, PC: 0x10c},
		{Op: isa.OpStore, Addr: lock, Size: 8, PC: 0x110}, // release
		{Op: isa.OpLoad, Addr: 0xB000, Size: 8, PC: 0x114, Dst: 3},
	}
}

func TestDetectLocks(t *testing.T) {
	got := trace.Collect(DetectLocks(trace.NewSlice(criticalSection(0x5000))))
	if !got.Insts[1].Flags.Has(isa.FlagLockAcquire) {
		t.Error("casa not marked acquire")
	}
	if !got.Insts[4].Flags.Has(isa.FlagLockRelease) {
		t.Error("release store not marked")
	}
	// Non-lock stores untouched.
	for _, i := range []int{0, 3} {
		if got.Insts[i].Flags.Has(isa.FlagLockRelease) || got.Insts[i].Flags.Has(isa.FlagLockAcquire) {
			t.Errorf("inst %d spuriously marked", i)
		}
	}
	// Only the FIRST store to the lock address after casa is the release.
	extra := append(criticalSection(0x5000), isa.Inst{Op: isa.OpStore, Addr: 0x5000, PC: 0x118, Size: 8})
	got = trace.Collect(DetectLocks(trace.NewSlice(extra)))
	if got.Insts[6].Flags.Has(isa.FlagLockRelease) {
		t.Error("second store to lock address must not be a release")
	}
}

func TestDetectLocksOverwritesStaleFlags(t *testing.T) {
	in := []isa.Inst{{Op: isa.OpLoad, Addr: 1, Flags: isa.FlagLockAcquire | isa.FlagLockRelease}}
	got := trace.Collect(DetectLocks(trace.NewSlice(in)))
	if got.Insts[0].Flags.Has(isa.FlagLockAcquire) || got.Insts[0].Flags.Has(isa.FlagLockRelease) {
		t.Error("stale flags must be cleared")
	}
}

func TestRewriteWC(t *testing.T) {
	pc := trace.Collect(DetectLocks(trace.NewSlice(criticalSection(0x5000))))
	pc.Reset()
	got := trace.Collect(RewriteWC(pc))
	want := []isa.Op{
		isa.OpStore,                                    // plain store
		isa.OpLoadLocked, isa.OpStoreCond, isa.OpISync, // acquire
		isa.OpLoad, isa.OpStore, // body
		isa.OpLWSync, isa.OpStore, // release
		isa.OpLoad, // after
	}
	if len(got.Insts) != len(want) {
		t.Fatalf("rewrote to %d insts, want %d: %v", got.Len(), len(want), ops(trace.NewSlice(got.Insts)))
	}
	for i, op := range want {
		if got.Insts[i].Op != op {
			t.Errorf("inst %d = %v, want %v", i, got.Insts[i].Op, op)
		}
	}
	// The lwarx/stwcx keep the lock address; the release store keeps its
	// address and flag.
	if got.Insts[1].Addr != 0x5000 || got.Insts[2].Addr != 0x5000 {
		t.Error("acquire pair lost lock address")
	}
	if !got.Insts[7].Flags.Has(isa.FlagLockRelease) {
		t.Error("release store lost its flag")
	}
	if !got.Insts[6].Flags.Has(isa.FlagLockRelease) {
		t.Error("lwsync must carry the release flag for SLE")
	}
}

func TestRewriteWCMembar(t *testing.T) {
	src := trace.NewSlice([]isa.Inst{{Op: isa.OpMembar, PC: 4}})
	got := trace.Collect(RewriteWC(src))
	if got.Len() != 1 || got.Insts[0].Op != isa.OpLWSync {
		t.Errorf("membar rewrite = %v", ops(trace.NewSlice(got.Insts)))
	}
}

func TestElideLocksPC(t *testing.T) {
	pc := trace.Collect(DetectLocks(trace.NewSlice(criticalSection(0x5000))))
	pc.Reset()
	got := trace.Collect(ElideLocks(pc))
	want := []isa.Op{isa.OpStore, isa.OpLoad, isa.OpLoad, isa.OpStore, isa.OpLoad}
	if len(got.Insts) != len(want) {
		t.Fatalf("elided to %d insts, want %d", got.Len(), len(want))
	}
	for i, op := range want {
		if got.Insts[i].Op != op {
			t.Errorf("inst %d = %v, want %v", i, got.Insts[i].Op, op)
		}
	}
	// The acquire became a plain load of the lock word.
	if got.Insts[1].Addr != 0x5000 {
		t.Error("elided acquire lost lock address")
	}
}

func TestElideLocksWC(t *testing.T) {
	pc := trace.Collect(DetectLocks(trace.NewSlice(criticalSection(0x5000))))
	pc.Reset()
	wc := trace.Collect(RewriteWC(pc))
	wc.Reset()
	got := trace.Collect(ElideLocks(wc))
	// lwarx->load, stwcx/isync dropped, lwsync+release dropped.
	want := []isa.Op{isa.OpStore, isa.OpLoad, isa.OpLoad, isa.OpStore, isa.OpLoad}
	if len(got.Insts) != len(want) {
		t.Fatalf("elided WC to %d insts, want %d: %v", got.Len(), len(want), ops(trace.NewSlice(got.Insts)))
	}
	for i, op := range want {
		if got.Insts[i].Op != op {
			t.Errorf("inst %d = %v, want %v", i, got.Insts[i].Op, op)
		}
	}
}

func TestElideLeavesNonLockSerializersAlone(t *testing.T) {
	src := trace.NewSlice([]isa.Inst{
		{Op: isa.OpMembar},
		{Op: isa.OpCASA, Addr: 0x10}, // not flagged: e.g. atomic counter
	})
	got := trace.Collect(ElideLocks(src))
	if got.Len() != 2 || got.Insts[0].Op != isa.OpMembar || got.Insts[1].Op != isa.OpCASA {
		t.Error("unflagged serializers must survive elision")
	}
}

func TestApplyTMPC(t *testing.T) {
	pc := trace.Collect(DetectLocks(trace.NewSlice(criticalSection(0x5000))))
	pc.Reset()
	got := trace.Collect(ApplyTM(pc))
	// TM removes the acquire AND the release entirely — unlike SLE, the
	// lock word is never even loaded.
	want := []isa.Op{isa.OpStore, isa.OpLoad, isa.OpStore, isa.OpLoad}
	if len(got.Insts) != len(want) {
		t.Fatalf("TM produced %d insts, want %d: %v", got.Len(), len(want), ops(trace.NewSlice(got.Insts)))
	}
	for i, op := range want {
		if got.Insts[i].Op != op {
			t.Errorf("inst %d = %v, want %v", i, got.Insts[i].Op, op)
		}
	}
	for _, in := range got.Insts {
		if in.Addr == 0x5000 {
			t.Error("TM must not access the lock word")
		}
	}
}

func TestApplyTMWC(t *testing.T) {
	pc := trace.Collect(DetectLocks(trace.NewSlice(criticalSection(0x5000))))
	pc.Reset()
	wc := trace.Collect(RewriteWC(pc))
	wc.Reset()
	got := trace.Collect(ApplyTM(wc))
	want := []isa.Op{isa.OpStore, isa.OpLoad, isa.OpStore, isa.OpLoad}
	if len(got.Insts) != len(want) {
		t.Fatalf("TM on WC produced %d insts, want %d: %v",
			got.Len(), len(want), ops(trace.NewSlice(got.Insts)))
	}
}

func TestApplyTMLeavesNonLockAlone(t *testing.T) {
	src := trace.NewSlice([]isa.Inst{
		{Op: isa.OpMembar},
		{Op: isa.OpCASA, Addr: 0x10},
		{Op: isa.OpStore, Addr: 0x20, Size: 8},
	})
	got := trace.Collect(ApplyTM(src))
	if got.Len() != 3 {
		t.Errorf("unflagged instructions must survive TM: %d", got.Len())
	}
}

// Detector vs generator ground truth: strip flags, re-detect, compare.
func TestDetectorMatchesGroundTruth(t *testing.T) {
	var truth []isa.Inst
	lockA, lockB := uint64(0x5000), uint64(0x6000)
	emit := func(in isa.Inst) { truth = append(truth, in) }
	for i := 0; i < 50; i++ {
		emit(isa.Inst{Op: isa.OpALU, PC: uint64(i * 40)})
		lock := lockA
		if i%2 == 1 {
			lock = lockB
		}
		emit(isa.Inst{Op: isa.OpCASA, Addr: lock, Size: 8, Flags: isa.FlagLockAcquire})
		emit(isa.Inst{Op: isa.OpStore, Addr: uint64(0x8000 + i*64), Size: 8})
		emit(isa.Inst{Op: isa.OpStore, Addr: lock, Size: 8, Flags: isa.FlagLockRelease})
	}
	stripped := make([]isa.Inst, len(truth))
	for i, in := range truth {
		in.Flags = 0
		stripped[i] = in
	}
	got := trace.Collect(DetectLocks(trace.NewSlice(stripped)))
	for i := range truth {
		wantAcq := truth[i].Flags.Has(isa.FlagLockAcquire)
		wantRel := truth[i].Flags.Has(isa.FlagLockRelease)
		if got.Insts[i].Flags.Has(isa.FlagLockAcquire) != wantAcq {
			t.Fatalf("inst %d acquire mismatch", i)
		}
		if got.Insts[i].Flags.Has(isa.FlagLockRelease) != wantRel {
			t.Fatalf("inst %d release mismatch", i)
		}
	}
}
