// Package branch implements the branch predictor of the paper's default
// configuration (§4.3): a 64K-entry gshare direction predictor with
// 2-bit saturating counters, a 16K-entry direct-mapped BTB, and a
// 16-entry return address stack.
//
// In the epoch MLP model only *unresolvable* mispredictions matter — a
// mispredicted branch whose condition hangs off an outstanding miss is
// a window termination condition, while a quickly resolved one costs a
// small bubble the model ignores. The default pipeline therefore takes
// misprediction events from the workload generator's calibrated rate;
// enabling Config.ModelBranchPredictor replaces those flags with this
// predictor's actual hits and misses on the generated outcome stream.
package branch

import (
	"fmt"
	"math/bits"
)

// Config sizes the predictor.
type Config struct {
	GshareEntries int // direction predictor entries (64K in the paper)
	BTBEntries    int // branch target buffer entries (16K)
	RASEntries    int // return address stack depth (16)
}

// DefaultConfig is the paper's §4.3 front end.
func DefaultConfig() Config {
	return Config{GshareEntries: 64 << 10, BTBEntries: 16 << 10, RASEntries: 16}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.GshareEntries <= 0 || c.GshareEntries&(c.GshareEntries-1) != 0 {
		return fmt.Errorf("branch: gshare entries %d not a positive power of two", c.GshareEntries)
	}
	if c.BTBEntries <= 0 || c.BTBEntries&(c.BTBEntries-1) != 0 {
		return fmt.Errorf("branch: BTB entries %d not a positive power of two", c.BTBEntries)
	}
	if c.RASEntries <= 0 {
		return fmt.Errorf("branch: RAS entries %d not positive", c.RASEntries)
	}
	return nil
}

// Stats counts predictor events.
type Stats struct {
	Branches      int64
	Mispredicts   int64 // direction mispredictions
	BTBMisses     int64 // taken branches whose target was unknown
	Calls         int64
	Returns       int64
	RASMispredict int64
}

// MispredictRate returns direction mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Predictor is the gshare + BTB + RAS front end.
type Predictor struct {
	cfg      Config  //storemlp:keep (geometry, fixed at construction)
	counters []uint8 // 2-bit saturating counters
	history  uint64  // global history register
	histMask uint64  //storemlp:keep
	idxMask  uint64  //storemlp:keep

	btbTags    []uint64
	btbTargets []uint64
	btbMask    uint64 //storemlp:keep

	ras    []uint64
	rasTop int

	Stats Stats
}

// New builds a predictor; it panics on invalid geometry.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	histBits := bits.TrailingZeros(uint(cfg.GshareEntries))
	p := &Predictor{
		cfg:        cfg,
		counters:   make([]uint8, cfg.GshareEntries),
		histMask:   (1 << histBits) - 1,
		idxMask:    uint64(cfg.GshareEntries - 1),
		btbTags:    make([]uint64, cfg.BTBEntries),
		btbTargets: make([]uint64, cfg.BTBEntries),
		btbMask:    uint64(cfg.BTBEntries - 1),
		ras:        make([]uint64, cfg.RASEntries),
	}
	// Weakly taken: commercial code branches are taken-biased.
	for i := range p.counters {
		p.counters[i] = 2
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ (p.history & p.histMask)) & p.idxMask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (p *Predictor) Predict(pc uint64) bool {
	return p.counters[p.index(pc)] >= 2
}

// Update trains the predictor with the branch's actual direction and
// (for taken branches) target, returning whether the front end
// mispredicted — either the direction was wrong, or the branch was
// taken and the BTB had no target for it.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) (mispredicted bool) {
	p.Stats.Branches++
	idx := p.index(pc)
	pred := p.counters[idx] >= 2
	if taken {
		if p.counters[idx] < 3 {
			p.counters[idx]++
		}
	} else if p.counters[idx] > 0 {
		p.counters[idx]--
	}
	p.history = p.history<<1 | b2u(taken)

	mispredicted = pred != taken
	if taken {
		slot := (pc >> 2) & p.btbMask
		if p.btbTags[slot] != pc || p.btbTargets[slot] != target {
			if p.btbTags[slot] != pc {
				p.Stats.BTBMisses++
				if !mispredicted {
					// Correct direction but unknown target still
					// redirects the front end.
					mispredicted = true
				}
			}
			p.btbTags[slot] = pc
			p.btbTargets[slot] = target
		}
	}
	if mispredicted {
		p.Stats.Mispredicts++
	}
	return mispredicted
}

// Call pushes a return address onto the RAS.
func (p *Predictor) Call(returnPC uint64) {
	p.Stats.Calls++
	p.ras[p.rasTop%len(p.ras)] = returnPC
	p.rasTop++
}

// Return pops the RAS and reports whether the predicted return address
// matched.
func (p *Predictor) Return(actual uint64) bool {
	p.Stats.Returns++
	if p.rasTop == 0 {
		p.Stats.RASMispredict++
		return false
	}
	p.rasTop--
	if p.ras[p.rasTop%len(p.ras)] != actual {
		p.Stats.RASMispredict++
		return false
	}
	return true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Reset returns the predictor to its as-constructed state — empty
// tables, cleared history and statistics — without reallocating. The
// direction counters go back to weakly taken, exactly as New leaves
// them: a recycled engine must be observationally identical to a fresh
// one.
func (p *Predictor) Reset() {
	for i := range p.counters {
		p.counters[i] = 2
	}
	for i := range p.btbTags {
		p.btbTags[i] = 0
	}
	for i := range p.btbTargets {
		p.btbTargets[i] = 0
	}
	for i := range p.ras {
		p.ras[i] = 0
	}
	p.history = 0
	p.rasTop = 0
	p.Stats = Stats{}
}
