package branch

import (
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{GshareEntries: 0, BTBEntries: 16, RASEntries: 16},
		{GshareEntries: 100, BTBEntries: 16, RASEntries: 16},
		{GshareEntries: 64, BTBEntries: 0, RASEntries: 16},
		{GshareEntries: 64, BTBEntries: 100, RASEntries: 16},
		{GshareEntries: 64, BTBEntries: 16, RASEntries: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on bad config")
		}
	}()
	New(Config{GshareEntries: 3, BTBEntries: 16, RASEntries: 16})
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(Config{GshareEntries: 1024, BTBEntries: 256, RASEntries: 16})
	pc, target := uint64(0x4000), uint64(0x4100)
	// Always-taken branch: after warmup, predictions are correct and the
	// BTB holds the target.
	for i := 0; i < 50; i++ {
		p.Update(pc, true, target)
	}
	before := p.Stats.Mispredicts
	for i := 0; i < 100; i++ {
		if p.Update(pc, true, target) {
			t.Fatal("trained always-taken branch mispredicted")
		}
	}
	if p.Stats.Mispredicts != before {
		t.Error("mispredict count moved")
	}
	if !p.Predict(pc) {
		t.Error("Predict should say taken")
	}
}

func TestLearnsNotTaken(t *testing.T) {
	p := New(Config{GshareEntries: 1024, BTBEntries: 256, RASEntries: 16})
	pc := uint64(0x8000)
	for i := 0; i < 50; i++ {
		p.Update(pc, false, 0)
	}
	if p.Predict(pc) {
		t.Error("trained never-taken branch predicted taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A period-2 alternating branch is perfectly predictable with global
	// history; a bias-only predictor would miss half the time.
	p := New(Config{GshareEntries: 4096, BTBEntries: 256, RASEntries: 16})
	pc, target := uint64(0xC000), uint64(0xC100)
	taken := false
	for i := 0; i < 2000; i++ {
		p.Update(pc, taken, target)
		taken = !taken
	}
	before := p.Stats.Mispredicts
	for i := 0; i < 400; i++ {
		p.Update(pc, taken, target)
		taken = !taken
	}
	miss := p.Stats.Mispredicts - before
	if miss > 20 {
		t.Errorf("alternating pattern missed %d/400 after training", miss)
	}
}

func TestBTBMissOnNewTakenBranch(t *testing.T) {
	p := New(Config{GshareEntries: 1024, BTBEntries: 64, RASEntries: 16})
	// Counters start weakly-taken, so direction is right, but the BTB is
	// cold: the first taken visit must still redirect.
	if !p.Update(0x1000, true, 0x2000) {
		t.Error("cold-BTB taken branch should count as mispredicted")
	}
	if p.Stats.BTBMisses != 1 {
		t.Errorf("BTBMisses = %d", p.Stats.BTBMisses)
	}
	if p.Update(0x1000, true, 0x2000) {
		t.Error("warm BTB should not mispredict")
	}
}

func TestRAS(t *testing.T) {
	p := New(Config{GshareEntries: 64, BTBEntries: 64, RASEntries: 4})
	p.Call(0x100)
	p.Call(0x200)
	if !p.Return(0x200) || !p.Return(0x100) {
		t.Error("RAS should predict matched returns")
	}
	if p.Return(0x300) {
		t.Error("empty RAS should mispredict")
	}
	if p.Stats.RASMispredict != 1 || p.Stats.Calls != 2 || p.Stats.Returns != 3 {
		t.Errorf("stats = %+v", p.Stats)
	}
	// Overflow wraps: deep call chains lose the oldest entries.
	for i := 0; i < 6; i++ {
		p.Call(uint64(0x1000 + i*16))
	}
	if !p.Return(0x1050) {
		t.Error("most recent call should still match after wrap")
	}
}

func TestMispredictRateOnRandom(t *testing.T) {
	// Random outcomes: rate should be near 50% (no pattern to learn).
	p := New(Config{GshareEntries: 4096, BTBEntries: 1024, RASEntries: 16})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		p.Update(0x5000, rng.Float64() < 0.5, 0x5100)
	}
	rate := p.Stats.MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random-branch rate = %.2f, want ~0.5", rate)
	}
	var zero Stats
	if zero.MispredictRate() != 0 {
		t.Error("zero stats rate should be 0")
	}
}

func TestBiasedMixRate(t *testing.T) {
	// 90%-taken branches across many PCs: rate should land well under
	// 20% — the regime commercial workloads sit in.
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		pc := uint64(0x10000 + (rng.Intn(512) * 4))
		p.Update(pc, rng.Float64() < 0.9, pc+64)
	}
	if rate := p.Stats.MispredictRate(); rate > 0.2 {
		t.Errorf("biased-mix rate = %.2f, want < 0.2", rate)
	}
}

// Property: the predictor never misclassifies its own prediction — the
// mispredict flag returned by Update matches Predict-before-Update
// for direction (BTB effects aside for not-taken branches).
func TestPredictUpdateConsistencyProperty(t *testing.T) {
	p := New(Config{GshareEntries: 256, BTBEntries: 64, RASEntries: 4})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		pc := uint64(rng.Intn(64) * 4)
		taken := rng.Float64() < 0.7
		pred := p.Predict(pc)
		mis := p.Update(pc, taken, pc+64)
		if !taken && mis != (pred != taken) {
			t.Fatalf("iteration %d: not-taken branch mispredict=%v pred=%v taken=%v",
				i, mis, pred, taken)
		}
		if pred != taken && !mis {
			t.Fatalf("iteration %d: wrong direction not flagged", i)
		}
	}
}

// Property: counters stay within the 2-bit range under any sequence.
func TestCounterSaturationProperty(t *testing.T) {
	p := New(Config{GshareEntries: 64, BTBEntries: 64, RASEntries: 4})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		p.Update(uint64(rng.Intn(32)*4), rng.Intn(2) == 0, 0x100)
	}
	for i, c := range p.counters {
		if c > 3 {
			t.Fatalf("counter %d out of range: %d", i, c)
		}
	}
}
