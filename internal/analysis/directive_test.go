package analysis

import (
	"go/ast"
	"reflect"
	"strings"
	"testing"
)

func TestParseDirectives(t *testing.T) {
	cases := []struct {
		text    string
		want    []Directive
		wantErr string
	}{
		{text: "// no directives here", want: nil},
		{text: "//storemlp:keep", want: []Directive{{Name: "keep"}}},
		{text: "// retained across resets //storemlp:keep (see DESIGN.md)",
			want: []Directive{{Name: "keep"}}},
		{text: "//storemlp:noalloc //storemlp:inline",
			want: []Directive{{Name: "noalloc"}, {Name: "inline"}}},
		{text: "//storemlp:lockafter(P.mu)",
			want: []Directive{{Name: "lockafter", Args: []string{"P.mu"}}}},
		{text: "//storemlp:lockafter(a.mu, b.mu)",
			want: []Directive{{Name: "lockafter", Args: []string{"a.mu", "b.mu"}}}},
		{text: "//storemlp:noaloc", wantErr: "unknown directive"},
		{text: "//storemlp:", wantErr: "unknown directive"},
		{text: "//storemlp:lockafter", wantErr: "requires arguments"},
		{text: "//storemlp:lockafter()", wantErr: "empty argument"},
		{text: "//storemlp:lockafter(a,,b)", wantErr: "empty argument"},
		{text: "//storemlp:lockafter(a.mu", wantErr: "unterminated"},
		{text: "//storemlp:keep(why)", wantErr: "takes no arguments"},
		{text: "//storemlp:daemon //storemlp:bogus", wantErr: "unknown directive"},
	}
	for _, tc := range cases {
		got, err := ParseDirectives(tc.text)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseDirectives(%q) err = %v, want containing %q", tc.text, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDirectives(%q) unexpected error: %v", tc.text, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseDirectives(%q) = %+v, want %+v", tc.text, got, tc.want)
		}
	}
}

func TestHasDirective(t *testing.T) {
	group := func(lines ...string) *ast.CommentGroup {
		g := &ast.CommentGroup{}
		for _, l := range lines {
			g.List = append(g.List, &ast.Comment{Text: l})
		}
		return g
	}
	if !hasDirective("locked", group("// held by caller", "//storemlp:locked")) {
		t.Error("hasDirective missed a directive in a multi-line group")
	}
	if hasDirective("locked", nil, group("// mentions locked but no directive")) {
		t.Error("hasDirective matched plain prose")
	}
	// A comment that fails to parse contributes nothing, even when the
	// wanted directive precedes the error.
	if hasDirective("locked", group("//storemlp:locked //storemlp:bogus")) {
		t.Error("hasDirective accepted a comment with a parse error")
	}
}

// FuzzDirectiveParse fuzzes the //storemlp: grammar. Seeds cover every
// directive form used in the live tree plus the rejection cases; the
// invariants are that parsing never panics and that any accepted parse
// is well-formed (known names, argument arity respected) and stable
// under re-rendering.
func FuzzDirectiveParse(f *testing.F) {
	for _, seed := range []string{
		"//storemlp:daemon",
		"//storemlp:inline",
		"//storemlp:keep",
		"//storemlp:lockafter(P.mu)",
		"//storemlp:lockafter(sim.Pool.mu, server.Cache.mu)",
		"//storemlp:locked",
		"//storemlp:noalloc",
		"//storemlp:noclose",
		"//storemlp:nodigest",
		"//storemlp:nomerge",
		"//storemlp:owned",
		"//storemlp:noalloc //storemlp:inline",
		"// keep this field //storemlp:keep (survives Reset)",
		"//storemlp:bogus",
		"//storemlp:lockafter",
		"//storemlp:lockafter()",
		"//storemlp:keep(arg)",
		"//storemlp:lockafter(a.mu",
		"//storemlp:",
		"storemlp:storemlp:keep",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		ds, err := ParseDirectives(text)
		if err != nil {
			return
		}
		var rendered []string
		for _, d := range ds {
			if takesArgs, known := directiveTakesArgs[d.Name]; !known {
				t.Fatalf("accepted unknown directive %q from %q", d.Name, text)
			} else if takesArgs != (len(d.Args) > 0) {
				t.Fatalf("directive %q arity mismatch (args %q) from %q", d.Name, d.Args, text)
			}
			for _, arg := range d.Args {
				if arg == "" || arg != strings.TrimSpace(arg) {
					t.Fatalf("directive %q has unnormalized arg %q from %q", d.Name, arg, text)
				}
				if strings.ContainsAny(arg, "(),") {
					t.Fatalf("directive %q arg %q contains grammar metacharacters", d.Name, arg)
				}
			}
			s := "//storemlp:" + d.Name
			if len(d.Args) > 0 {
				s += "(" + strings.Join(d.Args, ", ") + ")"
			}
			rendered = append(rendered, s)
		}
		// Re-rendering the accepted parse and parsing again must be a
		// fixed point: the grammar has one canonical reading.
		again, err := ParseDirectives(strings.Join(rendered, " "))
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, text, err)
		}
		if !reflect.DeepEqual(ds, again) {
			t.Fatalf("re-parse of %q = %+v, want %+v", rendered, again, ds)
		}
	})
}
