// Package analysis is MLPsim's repo-specific static-analysis engine:
// a self-contained module loader plus a suite of analyzers that check
// invariants the Go compiler cannot see — exhaustive switches over the
// model's enums, Validate() coverage of configuration structs, drift
// between epoch.Stats and the experiment emitters, floating-point
// equality, and mutation of shared configuration through pointers.
//
// The engine uses only the standard library (go/ast, go/parser,
// go/types): the module pins zero external dependencies, and the
// analyzers must not change that. Stdlib imports are type-checked from
// GOROOT source via go/importer's "source" compiler, so no compiled
// export data is needed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"storemlp/internal/analysis/flow"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
}

// Module is a fully loaded Go module: every package, type-checked, in
// one shared FileSet.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Pkgs maps import path to package, including the root package.
	Pkgs map[string]*Package
	// cfgs memoizes per-body control-flow graphs across analyzers; see
	// Module.CFG.
	cfgs map[*ast.BlockStmt]*flow.Graph
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.Pkgs[path] }

// SortedPackages returns the module's packages ordered by import path,
// so analyzer output is deterministic.
func (m *Module) SortedPackages() []*Package {
	out := make([]*Package, 0, len(m.Pkgs))
	for _, p := range m.Pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Load parses and type-checks every package under the module rooted at
// dir (the directory containing go.mod). Test files and testdata,
// vendor, hidden and underscore-prefixed directories are skipped, as
// the go tool itself does.
func Load(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Dir: dir, Fset: token.NewFileSet(), Pkgs: map[string]*Package{}}

	pkgDirs, err := findPackageDirs(dir)
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*Package, len(pkgDirs)) // import path -> parsed-only pkg
	imports := make(map[string][]string)              // module-internal import edges
	for _, d := range pkgDirs {
		rel, _ := filepath.Rel(dir, d)
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, deps, err := parseDir(m.Fset, d, path, modPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		parsed[path] = pkg
		imports[path] = deps
	}

	order, err := topoSort(parsed, imports)
	if err != nil {
		return nil, err
	}

	// The "source" importer type-checks stdlib packages from GOROOT
	// source; module-internal imports resolve to already-checked
	// packages, which topological order guarantees exist.
	std := importer.ForCompiler(m.Fset, "source", nil)
	imp := &moduleImporter{module: m, fallback: std}
	for _, path := range order {
		pkg := parsed[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, m.Fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		m.Pkgs[path] = pkg
	}
	return m, nil
}

// moduleImporter resolves module-internal paths to already-checked
// packages and everything else through the fallback (stdlib) importer.
type moduleImporter struct {
	module   *Module
	fallback types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.module.Path || strings.HasPrefix(path, mi.module.Path+"/") {
		if p := mi.module.Pkgs[path]; p != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("analysis: internal import %q not yet checked (import cycle?)", path)
	}
	return mi.fallback.Import(path)
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (run against a module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// findPackageDirs walks the tree collecting directories that contain at
// least one non-test Go file.
func findPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") &&
			!strings.HasPrefix(d.Name(), ".") && !strings.HasPrefix(d.Name(), "_") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// knownGOOS / knownGOARCH are the platform names a file suffix can
// select, per `go tool dist list`.
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixGOOS mirrors the toolchain's "unix" build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// buildTagSatisfied reports whether a single //go:build tag holds on
// the host platform. Release tags (go1.x) and the default compiler tag
// are always on.
func buildTagSatisfied(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixGOOS[runtime.GOOS]
	case tag == "gc" || strings.HasPrefix(tag, "go1."):
		return true
	default:
		return false
	}
}

// fileBuilds reports whether the file takes part in the host-platform
// build: its _GOOS / _GOARCH / _GOOS_GOARCH filename suffix (if any)
// names the host, and its //go:build line (if any) evaluates true.
func fileBuilds(name string, src []byte) bool {
	base := strings.TrimSuffix(name, ".go")
	if parts := strings.Split(base, "_"); len(parts) > 1 {
		last := parts[len(parts)-1]
		prev := ""
		if len(parts) > 2 {
			prev = parts[len(parts)-2]
		}
		switch {
		case knownGOOS[prev] && knownGOARCH[last]:
			if prev != runtime.GOOS || last != runtime.GOARCH {
				return false
			}
		case knownGOOS[last]:
			if last != runtime.GOOS {
				return false
			}
		case knownGOARCH[last]:
			if last != runtime.GOARCH {
				return false
			}
		}
	}
	// A //go:build line must appear before the package clause; scan
	// the header lines only.
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !strings.HasPrefix(trimmed, "//go:build ") {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true // malformed constraint: let the parser complain
		}
		return expr.Eval(buildTagSatisfied)
	}
	return true
}

// parseDir parses the non-test files of one directory and returns the
// package plus its module-internal import paths. A nil package means
// the directory holds no buildable files.
func parseDir(fset *token.FileSet, dir, path, modPath string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	depSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		// Respect build constraints for the host platform, the way the
		// real toolchain does: a _linux.go / _windows.go suffix or a
		// //go:build line selecting another GOOS would otherwise make
		// platform-gated pairs look like redeclarations.
		if !fileBuilds(name, src) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				depSet[ip] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	return &Package{Path: path, Dir: dir, Files: files}, deps, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(pkgs map[string]*Package, imports map[string][]string) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = visiting
		for _, dep := range imports[p] {
			if _, ok := pkgs[dep]; !ok {
				continue // import of a package with no buildable files
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
