package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc parses src as the body of the first function declaration in
// a synthetic package file.
func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package t\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fset, fn
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// nameClassifier classifies x.Lock()/x.Unlock() by the rendered
// receiver spelling — enough for syntax-level tests.
func nameClassifier(call *ast.CallExpr) (string, LockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", OpNone
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", OpNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return id.Name, OpAcquire
	case "Unlock", "RUnlock":
		return id.Name, OpRelease
	}
	return "", OpNone
}

// stateAtExit solves the lock flow and returns the in-state of Exit.
func stateAtExit(t *testing.T, src string, must bool) LockSet {
	t.Helper()
	_, fn := parseFunc(t, src)
	g := New(fn.Body)
	lk := SolveLocks(g, nameClassifier, must)
	return lk.In(g.Exit)
}

func TestBranchReleaseMustJoin(t *testing.T) {
	// mu released on one branch: after the join it must not count as
	// held (the lexical analyzers' blind spot).
	src := `func f(c bool) {
		mu.Lock()
		if c {
			mu.Unlock()
		}
		use()
	}`
	exit := stateAtExit(t, src, true)
	if _, held := exit["mu"]; held {
		t.Errorf("must-analysis: mu should not be held at exit after a branch release, got %v", exit)
	}
	// May-analysis keeps it: some path still holds mu.
	exit = stateAtExit(t, src, false)
	if exit["mu"] != HeldPlain {
		t.Errorf("may-analysis: mu should be HeldPlain at exit, got %v", exit)
	}
}

func TestEarlyReturnPathIsExact(t *testing.T) {
	// The release-then-return branch does not pollute the fall-through
	// path: mu stays held after the if on the path that reaches it.
	src := `func f(c bool) {
		mu.Lock()
		if c {
			mu.Unlock()
			return
		}
		use()
		mu.Unlock()
	}`
	_, fn := parseFunc(t, src)
	g := New(fn.Body)
	lk := SolveLocks(g, nameClassifier, true)
	// Find the block holding the use() call: mu must be held there.
	found := false
	for _, blk := range g.Blocks {
		lk.Walk(blk, func(n ast.Node, held LockSet) {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
						found = true
						if held["mu"] != HeldPlain {
							t.Errorf("mu should be held at use() on the fall-through path, got %v", held)
						}
					}
				}
			}
		})
	}
	if !found {
		t.Fatal("use() call not visited")
	}
	if exit := lk.In(g.Exit); len(exit) != 0 {
		t.Errorf("exit state should be empty (both paths release), got %v", exit)
	}
}

func TestDeferredReleaseCoversExit(t *testing.T) {
	src := `func f() {
		mu.Lock()
		defer mu.Unlock()
		use()
	}`
	exit := stateAtExit(t, src, true)
	if exit["mu"] != HeldDeferred {
		t.Errorf("deferred unlock should leave mu HeldDeferred at exit, got %v", exit)
	}
}

func TestDeferBeforeAcquire(t *testing.T) {
	src := `func f() {
		defer mu.Unlock()
		mu.Lock()
		use()
	}`
	exit := stateAtExit(t, src, true)
	if exit["mu"] != HeldDeferred {
		t.Errorf("early defer should cover the later acquire, got %v", exit)
	}
}

func TestLoopBackEdgeRelease(t *testing.T) {
	// Unlock inside the loop body flows around the back edge: at the
	// loop head mu is held only on the first iteration, so must-held
	// says not held — the second iteration's reads are unprotected.
	src := `func f(c bool) {
		mu.Lock()
		for c {
			use()
			mu.Unlock()
		}
	}`
	_, fn := parseFunc(t, src)
	g := New(fn.Body)
	lk := SolveLocks(g, nameClassifier, true)
	var loopHead *Block
	for _, h := range g.Loops {
		loopHead = h
	}
	if loopHead == nil {
		t.Fatal("loop head not recorded")
	}
	if in := lk.In(loopHead); len(in) != 0 {
		t.Errorf("must-held at loop head should be empty after back-edge join, got %v", in)
	}
}

func TestConditionalAcquireLeak(t *testing.T) {
	// Branch-dependent acquisition reaching exit: may-analysis reports
	// the leak, the conditional defer pattern stays clean.
	leak := `func f(c bool) {
		if c {
			mu.Lock()
		}
	}`
	exit := stateAtExit(t, leak, false)
	if exit["mu"] != HeldPlain {
		t.Errorf("conditional acquire without release should leak (HeldPlain), got %v", exit)
	}
	covered := `func f(c bool) {
		if c {
			mu.Lock()
			defer mu.Unlock()
		}
	}`
	exit = stateAtExit(t, covered, false)
	if exit["mu"] != HeldDeferred {
		t.Errorf("conditional lock+defer should be HeldDeferred, got %v", exit)
	}
}

func TestReturnBlocksDoNotJoin(t *testing.T) {
	// Code after return is unreachable: its block has a nil in-state.
	src := `func f() {
		mu.Lock()
		return
		use()
	}`
	_, fn := parseFunc(t, src)
	g := New(fn.Body)
	lk := SolveLocks(g, nameClassifier, true)
	reach := g.Reachable()
	unreachable := 0
	for _, blk := range g.Blocks {
		if !reach[blk] {
			unreachable++
			if lk.In(blk) != nil {
				t.Errorf("unreachable block %d has an in-state", blk.Index)
			}
		}
	}
	if unreachable == 0 {
		t.Error("expected an unreachable block after return")
	}
	if exit := lk.In(g.Exit); exit["mu"] != HeldPlain {
		t.Errorf("mu held at the return, got %v", exit)
	}
}

func TestSwitchAndSelectJoin(t *testing.T) {
	src := `func f(x int, ch chan int) {
		switch x {
		case 1:
			mu.Lock()
		case 2:
			mu.Lock()
		default:
			mu.Lock()
		}
		use()
	}`
	exit := stateAtExit(t, src, true)
	if exit["mu"] != HeldPlain {
		t.Errorf("mu locked on every switch arm must be held after the join, got %v", exit)
	}
	src = `func f(x int) {
		switch x {
		case 1:
			mu.Lock()
		}
	}`
	exit = stateAtExit(t, src, true)
	if _, held := exit["mu"]; held {
		t.Errorf("single-arm switch lock must not be must-held at exit, got %v", exit)
	}
}

func TestLabeledBreak(t *testing.T) {
	// break out of a labeled outer loop carries the inner state.
	src := `func f(c bool) {
	outer:
		for {
			mu.Lock()
			for c {
				break outer
			}
			mu.Unlock()
		}
		use()
	}`
	exit := stateAtExit(t, src, false)
	if exit["mu"] != HeldPlain {
		t.Errorf("labeled break path should carry the held lock, got %v", exit)
	}
}

func TestLoopBodyMembership(t *testing.T) {
	src := `func f(n int) {
		use()
		for i := 0; i < n; i++ {
			if i > 2 {
				use()
			}
		}
		use()
	}`
	_, fn := parseFunc(t, src)
	g := New(fn.Body)
	var loop ast.Stmt
	for s := range g.Loops {
		loop = s
	}
	body := g.LoopBody(loop)
	if body == nil {
		t.Fatal("LoopBody returned nil")
	}
	head := g.Loops[loop]
	if !body[head] {
		t.Error("head not in its own loop body")
	}
	if body[g.Entry] || body[g.Exit] {
		t.Error("entry/exit blocks must not be in the loop body")
	}
	// The if-branch inside the loop must be a member.
	inLoopBlocks := 0
	for blk := range body {
		inLoopBlocks++
		_ = blk
	}
	if inLoopBlocks < 3 { // head, body, branch at least
		t.Errorf("loop body too small: %d blocks", inLoopBlocks)
	}
}

func TestGotoEdge(t *testing.T) {
	src := `func f(c bool) {
		mu.Lock()
		if c {
			goto done
		}
		mu.Unlock()
	done:
		use()
	}`
	exit := stateAtExit(t, src, false)
	if exit["mu"] != HeldPlain {
		t.Errorf("goto path skipping the unlock should leak, got %v", exit)
	}
}

// typecheck parses and type-checks a dependency-free snippet.
func typecheck(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{}
	if _, err := conf.Check("t", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return file, info
}

func TestFreeVarsAndWrites(t *testing.T) {
	src := `package t

var global int

func f(n int) {
	shared := 0
	results := make([]int, n)
	fn := func(i int) {
		shared++
		results[i] = i
		local := 1
		local++
		global = 2
	}
	_ = fn
}
`
	file, info := typecheck(t, src)
	var lit *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
			return false
		}
		return true
	})
	if lit == nil {
		t.Fatal("no func literal")
	}
	free := FreeVars(info, lit)
	var names []string
	for _, v := range free {
		names = append(names, v.Name())
	}
	if got := strings.Join(names, ","); got != "shared,results" {
		t.Errorf("FreeVars = %s, want shared,results (no local, no global, no param)", got)
	}

	writes := Writes(info, lit.Body)
	byVar := map[string][]Write{}
	for _, w := range writes {
		if w.Var != nil {
			byVar[w.Var.Name()] = append(byVar[w.Var.Name()], w)
		}
	}
	if len(byVar["shared"]) != 1 {
		t.Errorf("want 1 write to shared, got %d", len(byVar["shared"]))
	}
	rw := byVar["results"]
	if len(rw) != 1 || len(rw[0].Indexes) != 1 {
		t.Errorf("want 1 indexed write to results, got %+v", rw)
	}
	if len(byVar["global"]) != 1 {
		t.Errorf("want 1 write to global (package-level), got %d", len(byVar["global"]))
	}
	if len(byVar["local"]) != 1 { // local++ is a write; local := 1 is a def
		t.Errorf("want 1 write to local, got %d", len(byVar["local"]))
	}
}

func TestWriteShapes(t *testing.T) {
	src := `package t

type S struct{ F int }

func f() {
	var s S
	p := &s
	s.F = 1
	*&s.F = 2
	p.F = 3
	m := map[string]int{}
	m["k"] = 4
}
`
	file, info := typecheck(t, src)
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fn = fd
		}
	}
	writes := Writes(info, fn.Body)
	var fieldWrites, derefWrites, indexWrites int
	for _, w := range writes {
		if w.Field {
			fieldWrites++
		}
		if w.Deref {
			derefWrites++
		}
		if len(w.Indexes) > 0 {
			indexWrites++
		}
	}
	if fieldWrites < 2 {
		t.Errorf("want >=2 field writes (s.F, p.F), got %d", fieldWrites)
	}
	if indexWrites != 1 {
		t.Errorf("want 1 index write (m[k]), got %d", indexWrites)
	}
}
