package flow

import "go/ast"

// LockOp classifies one call as a lock acquisition or release.
type LockOp int

const (
	// OpNone marks a call that is not a lock operation.
	OpNone LockOp = iota
	// OpAcquire is X.Lock() / X.RLock().
	OpAcquire
	// OpRelease is X.Unlock() / X.RUnlock().
	OpRelease
)

// Classifier resolves a call to a lock identity and operation. An empty
// identity means the call is not a (nameable) lock operation. Analyzers
// choose the identity granularity: the guardedby port renders the mutex
// expression ("q.mu"), the lockorder port uses type-level identities
// ("pkg.Type.mu").
type Classifier func(call *ast.CallExpr) (string, LockOp)

// Held values order the lattice per lock: absent < HeldDeferred <
// HeldPlain. "Badness" grows to the right — a plainly held lock still
// needs a release on the path; a deferred release covers every path
// from its registration to function exit.
const (
	// HeldDeferred: the lock is held and an Unlock for it is deferred.
	HeldDeferred uint8 = 1
	// HeldPlain: the lock is held with no deferred release registered.
	HeldPlain uint8 = 2
)

// LockSet maps lock identity to its held status at a program point.
// Absence means the lock is not held (on the analyzed paths).
type LockSet map[string]uint8

func (s LockSet) clone() LockSet {
	out := make(LockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Locks is the solved lock-state dataflow over one Graph.
type Locks struct {
	g        *Graph
	classify Classifier
	must     bool
	in       map[*Block]LockSet
	// earlyDefer tracks per-block entry the releases deferred before
	// their acquire ("defer mu.Unlock(); ...; mu.Lock()"), so the later
	// acquire lands already covered.
	earlyIn map[*Block]map[string]bool
}

// SolveLocks runs the lock-state analysis to fixpoint.
//
// must=true joins by intersection: a lock counts as held at a point
// only if every path to it holds the lock (the guardedby obligation —
// no false "held" after a branch that released). must=false joins by
// union, keeping the worse status per lock: a lock counts as held if
// some path holds it (the lockorder/lockbalance over-approximation — a
// branch-dependent acquisition still orders later locks, an
// early-return path that leaks still reports).
//
// A deferred release does not remove the lock from the set — the
// unlock runs at function exit — but downgrades it to HeldDeferred, so
// exit-leak checks can tell covered locks from genuine leaks on a
// per-path basis.
func SolveLocks(g *Graph, classify Classifier, must bool) *Locks {
	lk := &Locks{
		g:        g,
		classify: classify,
		must:     must,
		in:       map[*Block]LockSet{},
		earlyIn:  map[*Block]map[string]bool{},
	}
	lk.in[g.Entry] = LockSet{}
	lk.earlyIn[g.Entry] = map[string]bool{}

	// Worklist over reverse-post-order for fast convergence.
	order := postorder(g)
	pos := map[*Block]int{}
	for i := len(order) - 1; i >= 0; i-- {
		pos[order[i]] = len(order) - 1 - i
	}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out, early := lk.transfer(blk, lk.in[blk], lk.earlyIn[blk])
		for _, s := range blk.Succs {
			if lk.join(s, out, early) && !queued[s] {
				queued[s] = true
				// Insert keeping rough RPO order (small graphs: linear scan).
				i := 0
				for i < len(work) && pos[work[i]] <= pos[s] {
					i++
				}
				work = append(work, nil)
				copy(work[i+1:], work[i:])
				work[i] = s
			}
		}
	}
	return lk
}

// join merges the predecessor out-state into succ's in-state and
// reports whether it changed.
func (lk *Locks) join(succ *Block, out LockSet, early map[string]bool) bool {
	cur, ok := lk.in[succ]
	if !ok {
		lk.in[succ] = out.clone()
		e := make(map[string]bool, len(early))
		for k := range early {
			e[k] = true
		}
		lk.earlyIn[succ] = e
		return true
	}
	changed := false
	if lk.must {
		// Intersection; keep the worse (higher) status for survivors.
		for k, v := range cur {
			ov, held := out[k]
			if !held {
				delete(cur, k)
				changed = true
			} else if ov > v {
				cur[k] = ov
				changed = true
			}
		}
	} else {
		// Union with worst status.
		for k, ov := range out {
			if v, held := cur[k]; !held || ov > v {
				cur[k] = ov
				changed = true
			}
		}
	}
	// Early defers join by union in both modes: covering a later
	// acquire on some path never claims a lock is held.
	ce := lk.earlyIn[succ]
	for k := range early {
		if !ce[k] {
			ce[k] = true
			changed = true
		}
	}
	return changed
}

// transfer applies one block's lock operations to a copy of the
// in-state and returns the out-state.
func (lk *Locks) transfer(blk *Block, in LockSet, early map[string]bool) (LockSet, map[string]bool) {
	out := in.clone()
	e := make(map[string]bool, len(early))
	for k := range early {
		e[k] = true
	}
	for _, n := range blk.Nodes {
		lk.apply(n, out, e)
	}
	return out, e
}

// apply updates the state for one node's lock operations. Function
// literals are opaque: their bodies run elsewhere.
func (lk *Locks) apply(n ast.Node, held LockSet, early map[string]bool) {
	if d, ok := n.(*ast.DeferStmt); ok {
		if id, op := lk.classify(d.Call); id != "" && op == OpRelease {
			if _, ok := held[id]; ok {
				held[id] = HeldDeferred
			} else {
				early[id] = true
			}
		}
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, op := lk.classify(call)
		if id == "" {
			return true
		}
		switch op {
		case OpAcquire:
			if early[id] {
				held[id] = HeldDeferred
			} else {
				held[id] = HeldPlain
			}
		case OpRelease:
			delete(held, id)
		case OpNone:
		}
		return true
	})
}

// In returns the solved lock state at the block's entry, or nil when
// the block is unreachable.
func (lk *Locks) In(blk *Block) LockSet {
	s, ok := lk.in[blk]
	if !ok {
		return nil
	}
	return s
}

// Walk replays the block's transfer from its solved in-state, calling
// visit with the state in effect immediately before each node. The
// callback must not retain the LockSet across calls (it mutates).
// Unreachable blocks are skipped.
func (lk *Locks) Walk(blk *Block, visit func(n ast.Node, held LockSet)) {
	in, ok := lk.in[blk]
	if !ok {
		return
	}
	held := in.clone()
	early := make(map[string]bool, len(lk.earlyIn[blk]))
	for k := range lk.earlyIn[blk] {
		early[k] = true
	}
	for _, n := range blk.Nodes {
		visit(n, held)
		lk.apply(n, held, early)
	}
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(g *Graph) []*Block {
	var order []*Block
	seen := map[*Block]bool{}
	var visit func(*Block)
	visit = func(blk *Block) {
		seen[blk] = true
		for _, s := range blk.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, blk)
	}
	visit(g.Entry)
	return order
}
