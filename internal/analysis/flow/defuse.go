package flow

import (
	"go/ast"
	"go/types"
	"sort"
)

// FreeVars returns the variables used inside the function literal but
// declared in an enclosing function — the literal's captures. Package-
// level variables and struct fields are not captures (they are shared
// by name, not by closure), and are excluded. The result is sorted by
// declaration position for deterministic reporting.
func FreeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (param or local)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Write is one assignment through a variable: the def half of a
// def-use chain. Base records how far the write is from the variable
// itself — a plain write (x = ...), an element write (x[i] = ...), a
// field write (x.f = ...) or a write through a pointer (*x = ...).
type Write struct {
	// Var is the base variable the write reaches storage through.
	Var *types.Var
	// Node is the assignment, incdec or range statement performing the
	// write.
	Node ast.Node
	// Target is the full left-hand-side expression.
	Target ast.Expr
	// Indexes are the index expressions crossed on the way to Var
	// (innermost first), e.g. i and j for x[j][i] = v.
	Indexes []ast.Expr
	// Deref is true when the write goes through a pointer dereference.
	Deref bool
	// Field is true when the write targets a field of Var's value.
	Field bool
}

// Writes collects every assignment under root (including nested
// function literals) and resolves each left-hand side to its base
// variable. Short-variable declarations of new variables are
// definitions, not writes; a := that re-uses an existing variable is a
// write to it.
func Writes(info *types.Info, root ast.Node) []Write {
	var out []Write
	add := func(n ast.Node, lhs ast.Expr) {
		if w, ok := resolveWrite(info, n, lhs); ok {
			out = append(out, w)
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				add(st, lhs)
			}
		case *ast.IncDecStmt:
			add(st, st.X)
		case *ast.RangeStmt:
			if st.Tok.String() == "=" {
				if st.Key != nil {
					add(st, st.Key)
				}
				if st.Value != nil {
					add(st, st.Value)
				}
			}
		}
		return true
	})
	return out
}

// resolveWrite unwraps one LHS expression to its base variable.
func resolveWrite(info *types.Info, n ast.Node, lhs ast.Expr) (Write, bool) {
	w := Write{Node: n, Target: lhs}
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			w.Indexes = append(w.Indexes, x.Index)
			e = x.X
		case *ast.StarExpr:
			w.Deref = true
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					// pkg.Var = ...: the base is the package-level var.
					if v, ok := info.Uses[x.Sel].(*types.Var); ok {
						w.Var = v
						return w, true
					}
					return w, false
				}
			}
			w.Field = true
			e = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return w, false
			}
			if info.Defs[x] != nil {
				return w, false // new variable: a definition, not a write
			}
			if v, ok := info.Uses[x].(*types.Var); ok {
				w.Var = v
				return w, true
			}
			return w, false
		default:
			return w, false // opaque target (call result, composite, ...)
		}
	}
}
