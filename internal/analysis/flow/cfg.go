// Package flow is the dataflow core under storemlpvet's path-sensitive
// analyzers: a control-flow-graph builder over go/ast, a defer-aware
// lock-state lattice with configurable join semantics (must/may), and
// def-use helpers for captured variables.
//
// The CFG is built per function body from the syntax alone (no SSA, no
// external packages): basic blocks hold statements and control
// expressions in execution order, edges model branches, loops (with
// back edges), early returns, labeled break/continue, goto and
// fallthrough. Function literals are NOT inlined — a closure may run on
// another goroutine or after its enclosing frame returned, so analyzers
// build a separate graph per literal.
//
// The design follows the reduction-theorem school of the store-buffer
// literature: prove the ordering/locking discipline once, offline, on
// every path — instead of hoping the race detector's schedule visits
// the path with the bug.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of
// statements and control expressions.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0, Exit is 1).
	Index int
	// Nodes are the block's statements and control expressions in
	// execution order. Control expressions (if/for conditions, switch
	// tags, range key/value) appear as bare ast.Expr nodes.
	Nodes []ast.Node
	// Succs are the successor blocks. When Cond is non-nil there are
	// exactly two: Succs[0] is the true edge, Succs[1] the false edge.
	Succs []*Block
	// Cond, when non-nil, is the boolean expression the block branches
	// on (an if or for condition).
	Cond ast.Expr
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is where control enters; Exit is the single synthetic block
	// every return and the fall-off-the-end path reach.
	Entry, Exit *Block
	// Blocks lists every block, including unreachable ones (code after
	// a return keeps a block with no predecessors).
	Blocks []*Block
	// Loops maps each for/range statement to its head block — the block
	// every iteration passes through (holding the loop condition, or
	// the range step). Back edges are the head's in-loop predecessors.
	Loops map[ast.Stmt]*Block
	// Defers lists the defer statements in source order. Their calls
	// run at function exit; the lock lattice models the registration
	// point flow-sensitively.
	Defers []*ast.DeferStmt
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{Loops: map[ast.Stmt]*Block{}}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmts(body.List)
	b.link(b.cur, g.Exit)
	b.patchGotos()
	return g
}

// breakTarget is one enclosing breakable/continuable construct.
type breakTarget struct {
	label string // enclosing label, if any
	brk   *Block // where break jumps
	cont  *Block // where continue jumps (nil for switch/select)
}

type builder struct {
	g   *Graph
	cur *Block
	// targets is the stack of enclosing loops/switches/selects.
	targets []breakTarget
	// pendingLabel labels the next loop/switch/select statement.
	pendingLabel string
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
	// labels maps label names to their statement's block (goto targets).
	labels map[string]*Block
	// gotos are forward gotos patched once all labels are known.
	gotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Cond)
		cond := b.cur
		cond.Cond = st.Cond
		then := b.newBlock()
		join := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmt(st.Body)
		b.link(b.cur, join)
		if st.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(st.Else)
			b.link(b.cur, join)
		} else {
			b.link(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		after := b.newBlock()
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			head.Cond = st.Cond
		}
		body := b.newBlock()
		b.link(head, body)
		if st.Cond != nil {
			b.link(head, after)
		}
		cont := head
		if st.Post != nil {
			cont = b.newBlock()
		}
		b.targets = append(b.targets, breakTarget{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(st.Body)
		b.targets = b.targets[:len(b.targets)-1]
		b.link(b.cur, cont)
		if st.Post != nil {
			b.cur = cont
			b.stmt(st.Post)
			b.link(b.cur, head)
		}
		b.g.Loops[st] = head
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(st.X) // evaluated once, before the loop
		head := b.newBlock()
		b.link(b.cur, head)
		// The range step: key/value appear as (written) expressions.
		if st.Key != nil {
			head.Nodes = append(head.Nodes, st.Key)
		}
		if st.Value != nil {
			head.Nodes = append(head.Nodes, st.Value)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.targets = append(b.targets, breakTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(st.Body)
		b.targets = b.targets[:len(b.targets)-1]
		b.link(b.cur, head)
		b.g.Loops[st] = head
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.buildSwitch(label, st.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		b.buildSwitch(label, st.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		src := b.cur
		after := b.newBlock()
		b.targets = append(b.targets, breakTarget{label: label, brk: after})
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.link(src, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			b.link(b.cur, after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		if len(st.Body.List) == 0 {
			b.link(src, after)
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(st)
		b.link(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if t := b.findTarget(st.Label, false); t != nil {
				b.link(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findTarget(st.Label, true); t != nil {
				b.link(b.cur, t)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.link(b.cur, b.fallthroughTo)
			}
		}
		b.cur = b.newBlock() // unreachable continuation

	case *ast.LabeledStmt:
		blk := b.newBlock()
		b.link(b.cur, blk)
		b.cur = blk
		b.labels[st.Label.Name] = blk
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.DeferStmt:
		b.add(st)
		b.g.Defers = append(b.g.Defers, st)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Simple statements: expr, assign, incdec, send, go, decl.
		b.add(s)
	}
}

// buildSwitch wires the case clauses of a (type) switch: each clause
// branches from the dispatch block and falls to the join; fallthrough
// jumps to the next clause's body.
func (b *builder) buildSwitch(label string, clauses []ast.Stmt, _ *Block) {
	src := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, breakTarget{label: label, brk: after})
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.link(src, blocks[i])
		if len(c.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	savedFT := b.fallthroughTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmts(cc.Body)
		b.link(b.cur, after)
	}
	b.fallthroughTo = savedFT
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.link(src, after)
	}
	b.cur = after
}

// takeLabel consumes the pending label for the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break (continue=false) or continue target,
// optionally labeled. Continue skips switch/select frames.
func (b *builder) findTarget(label *ast.Ident, isContinue bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if isContinue && t.cont == nil {
			continue // switch/select: continue belongs to an outer loop
		}
		if label != nil && t.label != label.Name {
			continue
		}
		if isContinue {
			return t.cont
		}
		return t.brk
	}
	return nil
}

func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			b.link(g.from, t)
		}
	}
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// LoopBody returns the natural-loop block set of the loop statement:
// the head plus every block that can reach the head's back edges
// without passing through the head. Returns nil for unknown statements.
func (g *Graph) LoopBody(loop ast.Stmt) map[*Block]bool {
	head := g.Loops[loop]
	if head == nil {
		return nil
	}
	reach := g.Reachable()
	// Back edges: predecessors of head that the head itself reaches
	// (in-loop paths), found by reverse search from head.
	preds := map[*Block][]*Block{}
	for _, blk := range g.Blocks {
		if !reach[blk] {
			continue
		}
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	// Which blocks does head reach without leaving through... a simple
	// forward search from head suffices to classify back edges.
	fromHead := map[*Block]bool{head: true}
	stack := []*Block{head}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !fromHead[s] {
				fromHead[s] = true
				stack = append(stack, s)
			}
		}
	}
	body := map[*Block]bool{head: true}
	var tails []*Block
	for _, p := range preds[head] {
		if fromHead[p] { // head →* p → head: a back edge
			tails = append(tails, p)
		}
	}
	// Natural loop: reverse-reachable from the tails without crossing
	// the head.
	stack = append(stack[:0], tails...)
	for _, t := range tails {
		body[t] = true
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == head {
			continue
		}
		for _, p := range preds[blk] {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return body
}
