package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"storemlp/internal/analysis/flow"
)

// CloseAll checks that every Close-able value a function creates is
// closed, handed off, or returned on every path out of the function.
// The leak it targets is the early return threaded past the cleanup —
//
//	tw, err := NewWriter(f, 0)
//	...
//	if err := tw.Flush(); err != nil {
//		return err // tw (and its buffers) leak
//	}
//	return tw.Close()
//
// — which no test catches until a long-running server runs out of
// descriptors or a truncated trace surfaces days later.
//
// A "creation" is a call result bound to a new local variable whose
// type has a niladic Close method. The obligation is discharged on a
// path when the value is Closed (plainly or via defer), returned,
// passed to another call, stored (assignment right-hand side, composite
// literal, channel send) or captured by a function literal — anything
// that hands responsibility elsewhere. The error-check branch of the
// creating assignment is exempt: on the err != nil path the value is
// dead by convention. Functions or individual creations opt out with
// //storemlp:noclose.
//
// The check is path-sensitive over the flow package's CFG: a leak
// means there exists a path from the creation to the function exit
// that passes no discharging block.
type CloseAll struct{}

// Name implements Analyzer.
func (CloseAll) Name() string { return "closeall" }

// Doc implements Analyzer.
func (CloseAll) Doc() string {
	return "Close-able values created in a function are closed or handed off on every path"
}

// Run implements Analyzer.
func (a CloseAll) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			noclose := annotationLines(m, f, "noclose")
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if hasDirective("noclose", fn.Doc) {
					continue
				}
				for _, body := range funcBodies(fn) {
					out = append(out, a.checkBody(m, pkg, body, noclose)...)
				}
			}
		}
	}
	return out
}

// creation is one tracked Close-able value.
type creation struct {
	v      *types.Var
	errVar *types.Var // error defined by the same assignment, if any
	assign *ast.AssignStmt
	block  *flow.Block
}

// checkBody finds the body's creations and tests each for a
// leak path to the exit.
func (a CloseAll) checkBody(m *Module, pkg *Package, body *ast.BlockStmt, noclose map[int]bool) []Diagnostic {
	g := m.CFG(body)
	reach := g.Reachable()
	var created []creation
	for _, blk := range g.Blocks {
		if !reach[blk] {
			continue
		}
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			line := m.Fset.Position(as.Pos()).Line
			if noclose[line] || noclose[line-1] {
				continue
			}
			for _, c := range creationsIn(pkg, as) {
				c.block = blk
				created = append(created, c)
			}
		}
	}
	var out []Diagnostic
	for _, c := range created {
		if a.leaks(pkg, g, reach, c) {
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(c.assign.Pos()),
				Rule: a.Name(),
				Message: fmt.Sprintf("%s (%s) is not closed on every path out of the function (close it, hand it off, or annotate //storemlp:noclose)",
					c.v.Name(), c.v.Type().String()),
			})
		}
	}
	return out
}

// creationsIn extracts the Close-able values the assignment creates:
// new variables bound to call results.
func creationsIn(pkg *Package, as *ast.AssignStmt) []creation {
	// Position i's RHS: the single (possibly multi-value) call, or the
	// i-th expression of a parallel assignment.
	rhsAt := func(i int) ast.Expr {
		if len(as.Rhs) == 1 {
			return as.Rhs[0]
		}
		if i < len(as.Rhs) {
			return as.Rhs[i]
		}
		return nil
	}
	var out []creation
	var errVar *types.Var
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			// A reassigned err ("f, err := ..." with err already in
			// scope) still names the creation's error.
			if u, isUse := pkg.Info.Uses[id].(*types.Var); isUse &&
				u.Type() != nil && u.Type().String() == "error" {
				errVar = u
			}
			continue // reassignment or blank: not a fresh obligation
		}
		if v.Type() != nil && v.Type().String() == "error" {
			errVar = v
			continue
		}
		call, ok := rhsAt(i).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			continue // conversion, not a constructor
		}
		if !hasNiladicClose(v.Type()) {
			continue
		}
		out = append(out, creation{v: v, assign: as})
	}
	for i := range out {
		out[i].errVar = errVar
	}
	return out
}

// hasNiladicClose reports whether t (or *t) has an io.Closer-shaped
// Close method: no arguments, exactly one error result. The result
// check matters — reflect.Value and friends carry a niladic Close that
// has nothing to do with resource ownership.
func hasNiladicClose(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 &&
		sig.Results().Len() == 1 && sig.Results().At(0).Type().String() == "error"
}

// leaks reports whether some path from the creation reaches the exit
// without discharging the obligation.
func (a CloseAll) leaks(pkg *Package, g *flow.Graph, reach map[*flow.Block]bool, c creation) bool {
	discharged := map[*flow.Block]bool{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n == ast.Node(c.assign) {
				continue // the creation itself is not a discharge
			}
			if dischargesObligation(pkg, n, c.v) {
				discharged[blk] = true
				break
			}
		}
	}
	if discharged[c.block] {
		// Same-block discharge: every path through the creation passes
		// it. (Node order within the block is not modeled; a discharge
		// textually before the creation in one straight-line block is
		// treated as covering, which cannot produce a false negative on
		// real control flow.)
		return false
	}
	// DFS from the creation block toward the exit, avoiding discharging
	// blocks and the error branch of the creating assignment.
	seen := map[*flow.Block]bool{c.block: true}
	stack := []*flow.Block{c.block}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, s := range blk.Succs {
			if seen[s] || !reach[s] || discharged[s] {
				continue
			}
			if c.errVar != nil && errEdge(pkg, blk, i, c.errVar) {
				continue // value is dead on the error path by convention
			}
			if s == g.Exit {
				return true
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return false
}

// errEdge reports whether taking successor i of blk follows the
// "creation failed" branch: the block's condition compares the
// creation's error against nil — or classifies it with
// errors.Is/errors.As — and edge i is the error side. Succs[0] is the
// true edge.
func errEdge(pkg *Package, blk *flow.Block, i int, errVar *types.Var) bool {
	// errors.Is(err, X) / errors.As(err, &x): true means err is non-nil,
	// so the true edge is an error path on which the value is dead.
	if call, ok := blk.Cond.(*ast.CallExpr); ok && len(call.Args) == 2 {
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel &&
			(sel.Sel.Name == "Is" || sel.Sel.Name == "As") {
			if pkgID, isID := sel.X.(*ast.Ident); isID {
				if _, isPkg := pkg.Info.Uses[pkgID].(*types.PkgName); isPkg && pkgID.Name == "errors" {
					if argID, isID := call.Args[0].(*ast.Ident); isID && pkg.Info.Uses[argID] == errVar {
						return i == 0
					}
				}
			}
		}
		return false
	}
	be, ok := blk.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op != token.NEQ && be.Op != token.EQL {
		return false
	}
	mentions := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pkg.Info.Uses[id] == errVar
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(mentions(be.X) && isNil(be.Y)) && !(mentions(be.Y) && isNil(be.X)) {
		return false
	}
	errSide := 0 // err != nil: true edge is the error path
	if be.Op == token.EQL {
		errSide = 1 // err == nil: false edge is the error path
	}
	return i == errSide
}

// dischargesObligation reports whether the node hands the value's
// close responsibility elsewhere: a Close call on it, a return, a call
// argument, a store, a channel send, or capture by a function literal.
func dischargesObligation(pkg *Package, n ast.Node, v *types.Var) bool {
	usesV := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
				found = true
			}
			return !found
		})
		return found
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch x := c.(type) {
		case *ast.FuncLit:
			if usesV(x) {
				found = true // captured: the literal owns it now
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesV(r) {
					found = true
				}
			}
		case *ast.SendStmt:
			if usesV(x.Value) {
				found = true
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if usesV(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			if usesV(x) {
				found = true
			}
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if id, ok := sel.X.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
					found = true
					return false
				}
			}
			for _, arg := range x.Args {
				if usesV(arg) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
