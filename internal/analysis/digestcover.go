package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DigestCover protects the cache-key integrity of the digest layer.
// storemlp's serving stack coalesces, caches and (in the roadmap's
// next wave) shards by config digest; a config field that exists but
// is not hashed means two different runs share a digest and the cache
// silently returns the wrong run's results.
//
// Two hashing styles exist in the tree and each fails differently:
//
//   - digest.Sum over a struct (digest.Canonical) walks exported
//     fields reflectively. It silently skips unexported fields, and it
//     panics at runtime on chan/func/unsafe kinds. Roots lists the
//     struct types handed to the reflective encoder; every field
//     reachable from a root must be exported and encodable.
//   - explicit enumerations like storemlp.ConfigDigest build the
//     digested value field by field. Funcs maps such a function to the
//     struct it covers; every exported field of the struct must be
//     mentioned in the function body.
//
// A field genuinely excluded from identity — a debug knob, an output
// sink — carries //storemlp:nodigest to say so in the source.
type DigestCover struct {
	// Roots are named struct types ("pkgpath.Name") passed to the
	// reflective encoder; all fields transitively reachable through
	// exported fields are checked.
	Roots []string
	// Funcs maps a digest function ("pkgpath.Func") to the named struct
	// type whose exported fields it must consume.
	Funcs map[string]string
}

// Name implements Analyzer.
func (DigestCover) Name() string { return "digestcover" }

// Doc implements Analyzer.
func (DigestCover) Doc() string {
	return "every config field reachable from a digest root is hashed or carries //storemlp:nodigest"
}

// Run implements Analyzer.
func (a DigestCover) Run(m *Module) []Diagnostic {
	nodigest := nodigestFields(m)
	var out []Diagnostic

	sortedRoots := append([]string(nil), a.Roots...)
	sort.Strings(sortedRoots)
	for _, root := range sortedRoots {
		named := lookupNamedType(m, root)
		if named == nil {
			continue // root type lives outside this module (or was renamed)
		}
		w := &digestWalker{m: m, rule: a.Name(), nodigest: nodigest, seen: map[*types.Named]bool{}}
		w.walkNamed(named)
		out = append(out, w.out...)
	}

	funcNames := make([]string, 0, len(a.Funcs))
	for fn := range a.Funcs {
		funcNames = append(funcNames, fn)
	}
	sort.Strings(funcNames)
	for _, fn := range funcNames {
		out = append(out, a.checkFunc(m, fn, a.Funcs[fn], nodigest)...)
	}
	return out
}

// checkFunc verifies that the digest function mentions every exported
// field of its covered struct.
func (a DigestCover) checkFunc(m *Module, funcKey, typeKey_ string, nodigest map[token.Pos]bool) []Diagnostic {
	named := lookupNamedType(m, typeKey_)
	if named == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	body := lookupFuncBody(m, funcKey)
	if body == nil {
		return nil
	}

	// Every s.Field selector in the body whose receiver is the covered
	// struct counts as consumption, wherever it feeds the hash.
	pkg := m.Lookup(pkgOfKey(funcKey))
	consumed := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if recv := namedOf(selection.Recv()); recv != nil && typesIdentical(recv, named) {
			consumed[sel.Sel.Name] = true
		}
		return true
	})

	var out []Diagnostic
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || consumed[f.Name()] || nodigest[f.Pos()] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(f.Pos()),
			Rule: a.Name(),
			Message: fmt.Sprintf("exported field %s.%s is not consumed by %s (hash it there, or annotate //storemlp:nodigest)",
				shortLock(typeKey_), f.Name(), shortLock(funcKey)),
		})
	}
	return out
}

// digestWalker checks every struct reachable from a reflective digest
// root through exported, encodable fields.
type digestWalker struct {
	m        *Module
	rule     string
	nodigest map[token.Pos]bool
	seen     map[*types.Named]bool
	out      []Diagnostic
}

func (w *digestWalker) walkNamed(n *types.Named) {
	if w.seen[n] {
		return
	}
	w.seen[n] = true
	// Only structs declared in this module are checked: stdlib types
	// (time.Duration etc.) are out of the repo's control.
	if n.Obj().Pkg() == nil || w.m.Lookup(n.Obj().Pkg().Path()) == nil {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	tname := typeKey(n)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if w.nodigest[f.Pos()] {
			continue
		}
		if !f.Exported() {
			w.out = append(w.out, Diagnostic{
				Pos:  w.m.Fset.Position(f.Pos()),
				Rule: w.rule,
				Message: fmt.Sprintf("unexported field %s.%s is silently skipped by the reflective digest (export it, or annotate //storemlp:nodigest)",
					shortLock(tname), f.Name()),
			})
			continue
		}
		if kind := unencodableKind(f.Type(), map[*types.Named]bool{}); kind != "" {
			w.out = append(w.out, Diagnostic{
				Pos:  w.m.Fset.Position(f.Pos()),
				Rule: w.rule,
				Message: fmt.Sprintf("field %s.%s contains %s, which the reflective digest cannot encode (it panics at run time)",
					shortLock(tname), f.Name(), kind),
			})
			continue
		}
		w.walkType(f.Type())
	}
}

// walkType recurses into the named structs reachable from t.
func (w *digestWalker) walkType(t types.Type) {
	switch x := types.Unalias(t).(type) {
	case *types.Named:
		w.walkNamed(x)
		if _, isStruct := x.Underlying().(*types.Struct); !isStruct {
			w.walkType(x.Underlying())
		}
	case *types.Pointer:
		w.walkType(x.Elem())
	case *types.Slice:
		w.walkType(x.Elem())
	case *types.Array:
		w.walkType(x.Elem())
	case *types.Map:
		w.walkType(x.Key())
		w.walkType(x.Elem())
	case *types.Struct:
		// Anonymous struct: check its fields inline under a synthetic
		// name-free walk (fields still carry positions).
		for i := 0; i < x.NumFields(); i++ {
			f := x.Field(i)
			if w.nodigest[f.Pos()] {
				continue
			}
			if !f.Exported() {
				w.out = append(w.out, Diagnostic{
					Pos:  w.m.Fset.Position(f.Pos()),
					Rule: w.rule,
					Message: fmt.Sprintf("unexported field %s of anonymous struct is silently skipped by the reflective digest (export it, or annotate //storemlp:nodigest)",
						f.Name()),
				})
				continue
			}
			w.walkType(f.Type())
		}
	}
}

// unencodableKind returns a description of the first chan/func/unsafe
// kind transitively contained in t (through pointers, slices, arrays,
// maps and struct fields), or "" when t is fully encodable. Interfaces
// stop the walk: their dynamic type is not statically known.
func unencodableKind(t types.Type, seen map[*types.Named]bool) string {
	switch x := types.Unalias(t).(type) {
	case *types.Named:
		if seen[x] {
			return ""
		}
		seen[x] = true
		return unencodableKind(x.Underlying(), seen)
	case *types.Basic:
		if x.Kind() == types.UnsafePointer {
			return "an unsafe.Pointer"
		}
	case *types.Chan:
		return "a channel"
	case *types.Signature:
		return "a function value"
	case *types.Pointer:
		return unencodableKind(x.Elem(), seen)
	case *types.Slice:
		return unencodableKind(x.Elem(), seen)
	case *types.Array:
		return unencodableKind(x.Elem(), seen)
	case *types.Map:
		if k := unencodableKind(x.Key(), seen); k != "" {
			return k
		}
		return unencodableKind(x.Elem(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			f := x.Field(i)
			if !f.Exported() {
				continue // skipped by the encoder, so its kind never surfaces
			}
			if k := unencodableKind(f.Type(), seen); k != "" {
				return k
			}
		}
	}
	return ""
}

// nodigestFields collects the declaration positions of struct fields
// annotated //storemlp:nodigest (doc comment or trailing line comment).
func nodigestFields(m *Module) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !hasDirective("nodigest", field.Doc, field.Comment) {
						continue
					}
					for _, name := range field.Names {
						out[name.Pos()] = true
					}
					if len(field.Names) == 0 { // embedded field
						out[field.Type.Pos()] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// lookupNamedType resolves "pkgpath.Name" to the named type, or nil.
func lookupNamedType(m *Module, key string) *types.Named {
	pkg := m.Lookup(pkgOfKey(key))
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(key[strings.LastIndex(key, ".")+1:])
	if obj == nil {
		return nil
	}
	return namedOf(obj.Type())
}

// lookupFuncBody resolves "pkgpath.Func" to the function's AST body.
func lookupFuncBody(m *Module, key string) *ast.BlockStmt {
	pkg := m.Lookup(pkgOfKey(key))
	if pkg == nil {
		return nil
	}
	name := key[strings.LastIndex(key, ".")+1:]
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Recv == nil && fn.Name.Name == name {
				return fn.Body
			}
		}
	}
	return nil
}

// pkgOfKey strips the final ".Name" segment from "pkgpath.Name".
func pkgOfKey(key string) string {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return key
	}
	return key[:i]
}

// typesIdentical compares two named types by identity of their
// type-name objects (robust across instantiations).
func typesIdentical(a, b *types.Named) bool { return a.Obj() == b.Obj() }
