package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NoValidateMarker suppresses validate-coverage for a struct field when
// it appears in the field's doc or line comment. Use it for fields with
// genuinely unconstrained domains (seeds, booleans, offsets).
const NoValidateMarker = "storemlpvet:novalidate"

// ValidateCoverage checks that every exported field of a struct with a
// Validate method is referenced by that method — directly, or through
// other methods of the same type that Validate (transitively) calls.
// A field whose whole domain is valid can opt out with a
// "// storemlpvet:novalidate" comment.
//
// The invariant: configuration structs grow knobs over time, and a knob
// that Validate never looks at is a knob whose contradictions reach the
// simulator. Forcing every field through Validate (or an explicit
// opt-out) keeps rejection paths in sync with the struct.
type ValidateCoverage struct{}

// Name implements Analyzer.
func (ValidateCoverage) Name() string { return "validate-coverage" }

// Doc implements Analyzer.
func (ValidateCoverage) Doc() string {
	return "every exported field of a struct with Validate() must be checked by it or marked " + NoValidateMarker
}

// Run implements Analyzer.
func (a ValidateCoverage) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		// Gather the methods of every named struct type in the package:
		// method name -> fields read and sibling methods called.
		type methodFacts struct {
			fields map[*types.Var]bool
			calls  map[string]bool
		}
		perType := map[*types.Named]map[string]*methodFacts{}
		var typeDecls []*ast.FuncDecl
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil {
					continue
				}
				typeDecls = append(typeDecls, fn)
			}
		}
		for _, fn := range typeDecls {
			recv := recvBaseType(fn, pkg.Info)
			if recv == nil {
				continue
			}
			if _, ok := recv.Underlying().(*types.Struct); !ok {
				continue
			}
			facts := &methodFacts{fields: map[*types.Var]bool{}, calls: map[string]bool{}}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sel := pkg.Info.Selections[se]
				if sel == nil {
					return true
				}
				if namedOf(sel.Recv()) != recv {
					return true
				}
				switch sel.Kind() {
				case types.FieldVal:
					if v, ok := sel.Obj().(*types.Var); ok {
						facts.fields[v] = true
					}
				case types.MethodVal, types.MethodExpr:
					facts.calls[sel.Obj().Name()] = true
				}
				return true
			})
			if perType[recv] == nil {
				perType[recv] = map[string]*methodFacts{}
			}
			perType[recv][fn.Name.Name] = facts
		}

		for _, recv := range sortedNamed(perType) {
			methods := perType[recv]
			if methods["Validate"] == nil {
				continue
			}
			// Transitive closure of fields read from Validate through
			// same-type method calls.
			reached := map[*types.Var]bool{}
			visited := map[string]bool{}
			var visit func(name string)
			visit = func(name string) {
				if visited[name] {
					return
				}
				visited[name] = true
				facts := methods[name]
				if facts == nil {
					return
				}
				for f := range facts.fields {
					reached[f] = true
				}
				for callee := range facts.calls {
					visit(callee)
				}
			}
			visit("Validate")

			st := recv.Underlying().(*types.Struct)
			fieldDecls := structFieldDecls(pkg, recv)
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if !fld.Exported() || reached[fld] {
					continue
				}
				decl := fieldDecls[fld.Name()]
				if decl != nil && commentHasMarker(NoValidateMarker, decl.Doc, decl.Comment) {
					continue
				}
				pos := fld.Pos()
				if decl != nil {
					pos = decl.Pos()
				}
				out = append(out, Diagnostic{
					Pos:  m.Fset.Position(pos),
					Rule: "validate-coverage",
					Message: fmt.Sprintf("field %s.%s is not checked by Validate (add a check or a // %s comment)",
						recv.Obj().Name(), fld.Name(), NoValidateMarker),
				})
			}
		}
	}
	return out
}

// structFieldDecls maps field names of the named struct type to their
// AST declarations, so comments and positions can be inspected.
func structFieldDecls(pkg *Package, named *types.Named) map[string]*ast.Field {
	out := map[string]*ast.Field{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != named.Obj().Name() {
				return true
			}
			if def := pkg.Info.Defs[ts.Name]; def == nil || def.Type() != named {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					out[name.Name] = fld
				}
			}
			return false
		})
	}
	return out
}

func sortedNamed[V any](m map[*types.Named]V) []*types.Named {
	out := make([]*types.Named, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	// Sort by name for deterministic output (one package: names unique).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Obj().Name() > out[j].Obj().Name(); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
