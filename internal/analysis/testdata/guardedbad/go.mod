module example.com/guardedbad

go 1.21
