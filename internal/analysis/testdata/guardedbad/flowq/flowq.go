// Package flowq exercises the path-sensitive side of the guardedby
// analyzer: every bug here is invisible to the lexical walker because
// the release happens on a branch or at the bottom of a loop, and only
// the CFG join (intersection) or the loop back edge exposes it.
package flowq

import "sync"

// S is a mutex-guarded counter.
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// BranchRelease unlocks on the error branch but forgets to return, so
// the read after the join is unguarded whenever the branch ran.
func (s *S) BranchRelease(fail bool) int {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
	}
	v := s.n
	if !fail {
		s.mu.Unlock()
	}
	return v
}

// LoopRelease unlocks inside the loop body: iteration one reads under
// the lock, every later iteration does not. Only the back edge sees it.
func (s *S) LoopRelease(k int) int {
	total := 0
	s.mu.Lock()
	for i := 0; i < k; i++ {
		total += s.n
		s.mu.Unlock()
	}
	return total
}

// EarlyReturn releases on the early-out path and returns immediately;
// the fall-through path still holds the lock at its read. Return paths
// do not join, so this is clean — pinning the false-positive side of
// the port.
func (s *S) EarlyReturn(stop bool) int {
	s.mu.Lock()
	if stop {
		n := s.n
		s.mu.Unlock()
		return n
	}
	n := s.n * 2
	s.mu.Unlock()
	return n
}
