// Package queue exercises the guardedby analyzer: Push/Stats hold the
// mutex correctly (defer and paired unlock), Bad and Race touch guarded
// fields outside the critical section, lockedLen opts out via the
// //storemlp:locked annotation.
package queue

import "sync"

// Q is a mutex-guarded queue.
type Q struct {
	mu    sync.Mutex
	items []int // guarded by mu
	hits  int   // guarded by mu
}

// Push appends under the lock (deferred unlock).
func (q *Q) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

// Stats reads under a paired Lock/Unlock.
func (q *Q) Stats() int {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	return n
}

// Bad reads items with no lock at all.
func (q *Q) Bad() int {
	return len(q.items)
}

// Race touches hits after the critical section closed.
func (q *Q) Race() {
	q.mu.Lock()
	q.mu.Unlock()
	q.hits++
}

// lockedLen runs with q.mu held by the caller.
//
//storemlp:locked
func (q *Q) lockedLen() int {
	return len(q.items)
}

var _ = (*Q).lockedLen
