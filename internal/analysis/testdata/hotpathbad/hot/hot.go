// Package hot exercises the hotpath analyzer against real compiler
// diagnostics: Leaky allocates despite its //storemlp:noalloc claim,
// Spin is recursive so the inliner rejects its //storemlp:inline claim,
// and Tiny honours both annotations.
package hot

// sink forces anything stored in it to escape.
var sink *int

// Leaky claims to be allocation-free but heap-allocates.
//
//storemlp:noalloc
func Leaky() {
	sink = new(int)
}

// Spin claims to be inlinable but is recursive.
//
//storemlp:inline
func Spin(n int) int {
	if n <= 0 {
		return 0
	}
	return Spin(n-1) + 1
}

// Tiny inlines and does not allocate.
//
//storemlp:noalloc
//storemlp:inline
func Tiny(x int) int {
	return x + 1
}
