module example.com/hotpathbad

go 1.21
