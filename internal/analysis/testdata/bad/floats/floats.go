// Package floats compares floats exactly.
package floats

// Disabled tests a float with ==.
func Disabled(rate float64) bool { return rate == 0 }

// Differs tests float32s with !=.
func Differs(a, b float32) bool { return a != b }
