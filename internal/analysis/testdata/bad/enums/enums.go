// Package enums holds a switch that misses an enumerator.
package enums

// Mode is an iota enum.
type Mode uint8

const (
	Off Mode = iota
	Slow
	Fast
)

// Describe misses Fast and has no default clause.
func Describe(m Mode) string {
	switch m {
	case Off:
		return "off"
	case Slow:
		return "slow"
	}
	return ""
}
