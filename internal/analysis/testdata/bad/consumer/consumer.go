// Package consumer reads Merged and NotMerged but never Dead.
package consumer

import "example.com/bad/stats"

// Total is the report body.
func Total(s *stats.Stats) int64 { return s.Merged + s.NotMerged }
