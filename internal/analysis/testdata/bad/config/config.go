// Package config holds a struct whose Validate skips a field.
package config

type simpleError string

func (e simpleError) Error() string { return string(e) }

// Config is a validated parameter block with a hole.
type Config struct {
	Size int
	Rate float64
}

// Validate checks Size but forgets Rate.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return simpleError("config: non-positive size")
	}
	return nil
}
