module example.com/bad

go 1.21
