// Package stats holds a Stats whose Merge and consumers have drifted.
package stats

// Stats counts simulated events.
type Stats struct {
	Merged    int64
	NotMerged int64
	Dead      int64
}

// Merge folds Merged and Dead but forgets NotMerged.
func (s *Stats) Merge(o *Stats) {
	s.Merged += o.Merged
	s.Dead += o.Dead
}
