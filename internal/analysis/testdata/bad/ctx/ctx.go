// Package ctx writes through a shared *config.Config.
package ctx

import "example.com/bad/config"

// Tune mutates the caller's Config in place.
func Tune(c *config.Config) {
	c.Size = 64
	c.Rate++
}
