// Package stats exercises stats-drift with a complete Merge.
package stats

// Stats counts simulated events.
type Stats struct {
	Events int64
	Hits   int64
	Ratio  float64
	Name   string // non-numeric: exempt from the drift rule
}

// Merge folds o into s.
func (s *Stats) Merge(o *Stats) {
	s.Events += o.Events
	s.Hits += o.Hits
	s.Ratio += o.Ratio
}
