// Package enums exercises exhaustive-enum with compliant switches.
package enums

// Color is an iota enum with a trailing sentinel counter.
type Color uint8

const (
	Red Color = iota
	Green
	Blue

	numColors
)

// Count is the number of colors.
const Count = int(numColors)

// Flags is a bitmask, not an enum: its values are not contiguous from
// zero, so sparse switches over it need no coverage.
type Flags uint8

const (
	FlagA Flags = 1 << iota
	FlagB
	FlagC
)

// Name covers every enumerator; the sentinel is not required.
func Name(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return "unknown"
}

// Warm relies on a default clause instead of full coverage.
func Warm(c Color) bool {
	switch c {
	case Red:
		return true
	default:
		return false
	}
}

// HasA switches sparsely over the bitmask.
func HasA(f Flags) bool {
	switch f {
	case FlagA:
		return true
	}
	return false
}
