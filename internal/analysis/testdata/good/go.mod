module example.com/good

go 1.21
