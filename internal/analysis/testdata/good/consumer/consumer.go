// Package consumer reads every exported numeric field of stats.Stats.
package consumer

import "example.com/good/stats"

// Total sums the counters a report shows.
func Total(s *stats.Stats) float64 {
	return float64(s.Events+s.Hits) + s.Ratio
}
