// Package ctx exercises ctxmut with the sanctioned value-copy idiom.
package ctx

import "example.com/good/config"

// Grow returns a copy with a larger size: mutating a local value is
// always fine.
func Grow(c config.Config) config.Config {
	c.Size++
	return c
}

// Rebind repoints p without writing through it.
func Rebind(p, o *config.Config) *config.Config {
	p = o
	return p
}
