// Package config exercises validate-coverage with a fully covered
// struct: fields are checked directly, through a helper method, or
// opted out with the novalidate marker.
package config

type simpleError string

func (e simpleError) Error() string { return string(e) }

// Config is a validated parameter block.
type Config struct {
	Size  int
	Rate  float64
	Label string
	Seed  int64 // storemlpvet:novalidate (any seed is valid)
	note  string
}

// Validate checks Size directly and the rest through a helper.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return simpleError("config: non-positive size")
	}
	return c.check()
}

func (c Config) check() error {
	if c.Rate < 0 || c.Label == "" {
		return simpleError("config: bad rate or label")
	}
	return nil
}

// Note returns the private annotation.
func (c Config) Note() string { return c.note }
