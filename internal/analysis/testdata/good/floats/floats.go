// Package floats exercises floatcmp with sign tests only.
package floats

// Enabled reports whether rate is set, via a sign test.
func Enabled(rate float64) bool { return rate > 0 }

// Same compares ints exactly, which is fine.
func Same(a, b int) bool { return a == b }
