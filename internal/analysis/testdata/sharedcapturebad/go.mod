module example.com/sharedcapturebad

go 1.21
