// Package fan exercises the sharedcapture analyzer: Sum races on a
// captured accumulator, Last races through a captured struct field,
// SumLocked and Slots use the sanctioned disciplines (mutex,
// per-worker slot, per-iteration loop variable), and Handoff declares
// ownership with //storemlp:owned.
package fan

import "sync"

// Sum plainly adds into a captured total from every worker: the race
// the rule exists to catch.
func Sum(parts [][]int64) int64 {
	var wg sync.WaitGroup
	var total int64
	for _, part := range parts {
		wg.Add(1)
		go func(p []int64) {
			defer wg.Done()
			for _, v := range p {
				total += v
			}
		}(part)
	}
	wg.Wait()
	return total
}

// Last writes a captured struct's field from the goroutine.
func Last(res *struct{ n int }, vals []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range vals {
			res.n = v
		}
	}()
	wg.Wait()
}

// SumLocked guards the shared accumulator with a mutex: clean.
func SumLocked(parts [][]int64) int64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total int64
	for _, part := range parts {
		wg.Add(1)
		go func(p []int64) {
			defer wg.Done()
			var local int64
			for _, v := range p {
				local += v
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	return total
}

// Slots gives each worker its own element, indexed by the worker's
// parameter: the engine's fan-out/merge idiom, clean.
func Slots(n int, f func(int) int64) []int64 {
	results := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = f(i)
		}(i)
	}
	wg.Wait()
	return results
}

// LoopVarSlots indexes by the captured per-iteration loop variable
// (distinct per goroutine since Go 1.22): clean.
func LoopVarSlots(n int, f func(int) int64) []int64 {
	results := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = f(i)
		}()
	}
	wg.Wait()
	return results
}

// Handoff writes a captured variable the spawner never touches again;
// the annotation on the go statement declares the ownership transfer.
func Handoff(done chan struct{}) *int {
	v := new(int)
	//storemlp:owned
	go func() {
		*v = 42
		close(done)
	}()
	return v
}
