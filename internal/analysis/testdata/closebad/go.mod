module example.com/closebad

go 1.21
