// Package res exercises the closeall analyzer: Leak returns early past
// the Close, Good defers it, Branch closes on both exits, HandOff
// returns the value and Feed passes it along, ErrPath relies on the
// err != nil exemption, Sink opts out with //storemlp:noclose.
package res

import "errors"

// R is a Close-able resource.
type R struct{ open bool }

// Close releases R.
func (r *R) Close() error {
	r.open = false
	return nil
}

// ErrNotReady trips the validation branch in Leak.
var ErrNotReady = errors.New("not ready")

// Open creates an R, or fails.
func Open(name string) (*R, error) {
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &R{open: true}, nil
}

// validate stands in for mid-function work that can fail.
func validate(r *R) error {
	if !r.open {
		return ErrNotReady
	}
	return nil
}

// Leak threads an early return past the Close.
func Leak(name string, limit int) error {
	r, err := Open(name)
	if err != nil {
		return err
	}
	if limit <= 0 {
		return ErrNotReady // r leaks on this path
	}
	return r.Close()
}

// Good defers the Close right after the error check.
func Good(name string) error {
	r, err := Open(name)
	if err != nil {
		return err
	}
	defer r.Close()
	return validate(r)
}

// Branch closes on both the early-out and the fall-through.
func Branch(name string, quick bool) error {
	r, err := Open(name)
	if err != nil {
		return err
	}
	if quick {
		return r.Close()
	}
	verr := validate(r)
	cerr := r.Close()
	if verr != nil {
		return verr
	}
	return cerr
}

// HandOff returns the resource: the caller owns it now.
func HandOff(name string) (*R, error) {
	r, err := Open(name)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Feed passes the resource to a consumer that takes ownership.
func Feed(name string, consume func(*R)) error {
	r, err := Open(name)
	if err != nil {
		return err
	}
	consume(r)
	return nil
}

// Sink deliberately never closes; the annotation documents it.
func Sink(name string) {
	//storemlp:noclose
	r, _ := Open(name)
	r.open = false
}
