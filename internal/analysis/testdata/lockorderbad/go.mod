module example.com/lockorderbad

go 1.21
