// Package branchy exercises the path-sensitive side of the lockorder
// analyzer: the X.mu -> Y.mu edge only exists on the branch that pinned
// x, which the lexical walker forgets at the join. With may-held state
// flowing through the CFG the edge survives, closing a cycle against
// the unconditional Y.mu -> X.mu order.
package branchy

import "sync"

// X is pinned on demand before touching Y.
type X struct {
	mu sync.Mutex
	n  int
}

// Y is the lock every caller takes.
type Y struct {
	mu sync.Mutex
	n  int
}

// PinThenBump takes x.mu only when pin is set, then y.mu after the
// join: on the pin path the acquisition order is X then Y.
func PinThenBump(x *X, y *Y, pin bool) {
	if pin {
		x.mu.Lock()
		defer x.mu.Unlock()
	}
	y.mu.Lock()
	defer y.mu.Unlock()
	y.n++
}

// BumpThenPin takes the same pair in the opposite order on every path.
func BumpThenPin(x *X, y *Y) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n++
}
