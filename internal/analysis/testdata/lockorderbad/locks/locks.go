// Package locks exercises the lockorder analyzer: A/B are locked in
// opposite orders by two functions (a two-lock cycle), Node is locked
// twice at the same type (a self-cycle), and the P/C pair shows both a
// blessed //storemlp:lockafter ordering and a violation of it.
package locks

import "sync"

// A and B form the classic two-lock deadlock.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// TransferAB takes A then B.
func TransferAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.n, b.n = b.n, a.n
}

// TransferBA takes B then A: the opposite order.
func TransferBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	b.n, a.n = a.n, b.n
}

// Node self-cycles: two instances of the same type locked nested means
// concurrent goroutines can take them in address-dependent order.
type Node struct {
	mu   sync.Mutex
	next *Node
	v    int
}

// Link locks two Nodes at once.
func Link(x, y *Node) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
	x.next = y
}

// P is the parent lock of the blessed pair.
type P struct {
	mu sync.Mutex
	cs []*C
}

// C declares that its lock nests inside P's.
type C struct {
	mu sync.Mutex //storemlp:lockafter(P.mu)
	v  int
}

// Blessed acquires in the declared order: no finding.
func Blessed(p *P, c *C) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v++
}

// Violation acquires against the declared order.
func Violation(p *P, c *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cs = append(p.cs, c)
}

// Unnested takes each lock on its own: never an edge.
func Unnested(a *A, b *B) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
