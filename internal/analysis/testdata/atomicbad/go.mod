module example.com/atomicbad

go 1.21
