// Package counters exercises the atomicfield analyzer: S.hits is a
// typed atomic read correctly via Load but also copied plainly, and
// S.raw is passed to atomic.AddInt64 in one method yet incremented
// plainly in another.
package counters

import "sync/atomic"

// S mixes sanctioned and plain access to its atomic fields.
type S struct {
	hits atomic.Int64
	raw  int64
	name string
}

// Inc uses the atomic API for both fields: all sanctioned.
func (s *S) Inc() {
	s.hits.Add(1)
	atomic.AddInt64(&s.raw, 1)
}

// Snapshot reads both atomically: sanctioned.
func (s *S) Snapshot() (int64, int64) {
	return s.hits.Load(), atomic.LoadInt64(&s.raw)
}

// Copy copies the typed atomic plainly: finding.
func (s *S) Copy() atomic.Int64 {
	return s.hits
}

// Bump increments the raw atomic field plainly: finding.
func (s *S) Bump() {
	s.raw++
}

// Name touches only the non-atomic field: clean.
func (s *S) Name() string {
	return s.name
}

// handOff passes the typed atomic by address: sanctioned.
func handOff(s *S) *atomic.Int64 {
	return &s.hits
}

var _ = handOff
