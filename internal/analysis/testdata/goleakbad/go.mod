module example.com/goleakbad

go 1.21
