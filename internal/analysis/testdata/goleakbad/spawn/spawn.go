// Package spawn exercises the goleak analyzer: Leak and Fire launch
// unbounded goroutines from context-taking functions, while the other
// functions show each accepted join/exit discipline.
package spawn

import (
	"context"
	"sync"
)

func work() {}

// Leak spawns a goroutine with no join, channel or ctx exit: finding.
func Leak(ctx context.Context) {
	go func() {
		work()
	}()
}

// Fire spawns a bare call with no context forwarded: finding.
func Fire(ctx context.Context) {
	go work()
}

// Joined is reaped through a WaitGroup: clean.
func Joined(ctx context.Context, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Handoff paces and reaps through a channel: clean.
func Handoff(ctx context.Context) <-chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	return ch
}

// Cancelled exits when the context does: clean.
func Cancelled(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// Forwarded hands the context to the spawned call: clean.
func Forwarded(ctx context.Context) {
	go serve(ctx)
}

func serve(ctx context.Context) { <-ctx.Done() }

// Pinned documents an intentional process-lifetime goroutine on the
// statement itself: clean.
func Pinned(ctx context.Context) {
	//storemlp:daemon
	go func() {
		for {
			work()
		}
	}()
}

// background is a whole-function daemon: clean.
//
//storemlp:daemon
func background(ctx context.Context) {
	go func() {
		for {
			work()
		}
	}()
}

var _ = background

// NoCtx takes no context, so the rule does not apply: clean.
func NoCtx() {
	go work()
}
