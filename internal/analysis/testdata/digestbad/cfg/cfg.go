// Package cfg exercises the digestcover analyzer: Spec is a reflective
// digest root with an unexported field, a func-valued field, an
// annotated exclusion, and a nested struct hiding another unexported
// field; Key is an explicit digest function that forgets one of Req's
// exported fields.
package cfg

import "strconv"

// Spec is handed to the reflective encoder.
type Spec struct {
	Name   string
	seed   int64 // silently skipped by the encoder: finding
	Notify func() // panics the encoder at run time: finding
	Debug  bool //storemlp:nodigest
	Sub    Nested
}

// Nested rides along inside Spec.
type Nested struct {
	Depth int
	cache []byte // finding, reached through Spec.Sub
}

// Req is covered by the explicit digest function Key.
type Req struct {
	Workload string
	Insts    int64
	Trace    bool // not mentioned in Key: finding
}

// Key hashes Req field by field — and forgets Trace.
func Key(r Req) string {
	return r.Workload + "-" + strconv.FormatInt(r.Insts, 10)
}
