module example.com/digestbad

go 1.21
