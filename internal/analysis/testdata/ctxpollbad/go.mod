module example.com/ctxpollbad

go 1.21
