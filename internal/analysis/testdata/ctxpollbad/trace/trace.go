// Package trace is a miniature of the real trace package: the ctxpoll
// analyzer marks loops calling its Fill/Next/ReadBatch as
// batch-consuming.
package trace

// Inst is one instruction.
type Inst struct{ Op uint8 }

// Source yields instructions one at a time.
type Source interface {
	Next() (Inst, bool)
}

// Fill reads up to len(dst) instructions from src.
func Fill(src Source, dst []Inst) int {
	n := 0
	for ; n < len(dst); n++ {
		in, ok := src.Next()
		if !ok {
			break
		}
		dst[n] = in
	}
	return n
}
