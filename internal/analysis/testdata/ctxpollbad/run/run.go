// Package run exercises the ctxpoll analyzer: Good polls ctx once per
// refilled batch, Bad consumes the stream with no cancellation check.
package run

import (
	"context"

	"example.com/ctxpollbad/trace"
)

// Good checks ctx.Err() every batch.
func Good(ctx context.Context, src trace.Source) (int64, error) {
	buf := make([]trace.Inst, 64)
	var n int64
	for {
		got := trace.Fill(src, buf)
		if got == 0 {
			return n, nil
		}
		n += int64(got)
		if err := ctx.Err(); err != nil {
			return n, err
		}
	}
}

// Bad never looks at ctx while draining the source.
func Bad(ctx context.Context, src trace.Source) int64 {
	var n int64
	for {
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}

// RarePoll parks the only poll on a debug branch: the common iteration
// path consumes and loops back without ever checking ctx. The lexical
// check sees "a poll somewhere in the body" and stays quiet; the
// path-sensitive check flags it.
func RarePoll(ctx context.Context, src trace.Source, debug bool) int64 {
	var n int64
	for {
		if debug {
			if ctx.Err() != nil {
				return n
			}
		}
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}

// BatchRefill polls only on the refill branch, mirroring the engine's
// hot loop: the paths that skip the poll also skip the consumption, so
// the cancellation bound holds and the loop is clean.
func BatchRefill(ctx context.Context, src trace.Source) (int64, error) {
	buf := make([]trace.Inst, 64)
	bi, bn := 0, 0
	var n int64
	for {
		if bi == bn {
			if err := ctx.Err(); err != nil {
				return n, err
			}
			bn = trace.Fill(src, buf)
			if bn == 0 {
				return n, nil
			}
			bi = 0
		}
		n++
		bi++
	}
}
