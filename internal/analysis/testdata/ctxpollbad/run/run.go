// Package run exercises the ctxpoll analyzer: Good polls ctx once per
// refilled batch, Bad consumes the stream with no cancellation check.
package run

import (
	"context"

	"example.com/ctxpollbad/trace"
)

// Good checks ctx.Err() every batch.
func Good(ctx context.Context, src trace.Source) (int64, error) {
	buf := make([]trace.Inst, 64)
	var n int64
	for {
		got := trace.Fill(src, buf)
		if got == 0 {
			return n, nil
		}
		n += int64(got)
		if err := ctx.Err(); err != nil {
			return n, err
		}
	}
}

// Bad never looks at ctx while draining the source.
func Bad(ctx context.Context, src trace.Source) int64 {
	var n int64
	for {
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}
