// Package stats exercises the mergecomplete analyzer: the root
// Stats.Merge forgets its Aborts counter, the nested Hist.Add it
// delegates to forgets Overflow, the doubly-nested Buckets.Add is
// complete, and Cfg opts out of merging entirely with
// //storemlp:nomerge (it is echoed on every shard).
package stats

// Buckets is the innermost accumulator; Add folds every field.
type Buckets struct {
	Counts [4]int64
	Total  int64
}

// Add folds o into b.
func (b *Buckets) Add(o *Buckets) {
	for i := range b.Counts {
		b.Counts[i] += o.Counts[i]
	}
	b.Total += o.Total
}

// Hist delegates to Buckets but forgets its own Overflow counter.
type Hist struct {
	B        Buckets
	Overflow int64
}

// Add folds o into h — except Overflow.
func (h *Hist) Add(o *Hist) {
	h.B.Add(&o.B)
}

// Stats is the root of the merge path.
type Stats struct {
	Insts  int64
	Aborts int64
	H      Hist
	Cfg    string //storemlp:nomerge
}

// Merge folds o into s — except Aborts.
func (s *Stats) Merge(o *Stats) {
	s.Insts += o.Insts
	s.H.Add(&o.H)
}
