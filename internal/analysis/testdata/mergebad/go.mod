module example.com/mergebad

go 1.21
