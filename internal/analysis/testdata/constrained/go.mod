module example.com/constrained

go 1.21
