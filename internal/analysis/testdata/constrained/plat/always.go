//go:build go1.21

package plat

// Tagged is selected everywhere: release tags always evaluate true.
const Tagged = true
