//go:build storemlp_never

package plat

// OS would collide with the platform files: if the loader ever picks
// this file up, type-checking the package fails loudly.
const OS = "excluded"
