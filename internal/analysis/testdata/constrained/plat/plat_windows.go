package plat

// OS names the platform this file was selected for.
const OS = "windows"
