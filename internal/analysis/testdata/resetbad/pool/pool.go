// Package pool exercises the resetcomplete analyzer: Buf's Reset
// forgets a field, Ring demonstrates every accepted coverage form.
package pool

// Buf is recycled; Reset forgets dirty, which must be diagnosed.
type Buf struct {
	data  []byte //storemlp:keep (contents overwritten before every use)
	n     int
	dirty bool
}

// Reset rewinds the buffer but leaves dirty stale.
func (b *Buf) Reset() {
	b.n = 0
}

// Counter resets itself completely.
type Counter struct {
	n int
}

// Reset zeroes the count.
func (c *Counter) Reset() {
	c.n = 0
}

// Ring covers every field: element-wise loop, clear(), a helper method
// on the same receiver, and a sub-object Reset.
type Ring struct {
	buf   []int
	pos   int
	stats map[string]int
	sub   Counter
}

// Reset returns the ring to its as-constructed state in place.
func (r *Ring) Reset() {
	for i := range r.buf {
		r.buf[i] = 0
	}
	clear(r.stats)
	r.zeroPos()
	r.sub.Reset()
}

func (r *Ring) zeroPos() {
	r.pos = 0
}
