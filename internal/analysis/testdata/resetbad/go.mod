module example.com/resetbad

go 1.21
