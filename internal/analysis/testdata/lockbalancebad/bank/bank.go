// Package bank exercises the lockbalance analyzer: Deposit and
// Balance release correctly (defer, paired unlock, early return with
// unlock), EarlyOut returns with the lock still held on the error
// path, MaybeLock leaks a conditional acquisition, and LockForScan
// hands the lock off deliberately under //storemlp:locked.
package bank

import (
	"errors"
	"sync"
)

// Account is a mutex-guarded balance.
type Account struct {
	mu  sync.Mutex
	bal int64
}

// Deposit holds via defer: balanced on every path.
func (a *Account) Deposit(v int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bal += v
}

// Balance pairs Lock/Unlock on the straight line.
func (a *Account) Balance() int64 {
	a.mu.Lock()
	b := a.bal
	a.mu.Unlock()
	return b
}

// Withdraw releases on both the early-out path and the fall-through:
// balanced, even though no defer is involved.
func (a *Account) Withdraw(v int64) error {
	a.mu.Lock()
	if a.bal < v {
		a.mu.Unlock()
		return errors.New("insufficient funds")
	}
	a.bal -= v
	a.mu.Unlock()
	return nil
}

// EarlyOut threads an error return past the unlock: the lock is still
// held on that path.
func (a *Account) EarlyOut(v int64) error {
	a.mu.Lock()
	if v < 0 {
		return errors.New("negative amount")
	}
	a.bal += v
	a.mu.Unlock()
	return nil
}

// MaybeLock acquires on a branch and never releases: every path
// through the branch leaks.
func (a *Account) MaybeLock(audit bool) int64 {
	if audit {
		a.mu.Lock()
	}
	return a.bal
}

// CondHeld shows the conditional acquire-with-defer idiom: balanced,
// because the deferred unlock covers the only acquiring path.
func (a *Account) CondHeld(lock bool) int64 {
	if lock {
		a.mu.Lock()
		defer a.mu.Unlock()
	}
	return a.bal
}

// LockForScan intentionally returns holding the lock; the caller
// unlocks after iterating.
//
//storemlp:locked
func (a *Account) LockForScan() *int64 {
	a.mu.Lock()
	return &a.bal
}
