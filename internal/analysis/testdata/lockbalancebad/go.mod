module example.com/lockbalancebad

go 1.21
