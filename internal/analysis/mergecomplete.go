package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// MergeComplete verifies the transitive completeness of the parallel
// merge path: starting from the configured root merge methods (the
// fold that combines per-segment results after a sharded run), every
// struct type whose Merge/Add method is reached must reference every
// one of its fields, or the field must carry //storemlp:nomerge
// declaring it deliberately unmerged (configuration echoed on every
// shard, derived state recomputed after the fold).
//
// stats-drift pins the numeric counters of the top-level Stats struct;
// this rule closes the gap it leaves: the *nested* accumulators —
// cache hierarchies, SMAC tables, overlap histograms — that the root
// fold delegates to. A field added to a nested struct but forgotten by
// its Add silently vanishes from every multi-segment run, and only
// from multi-segment runs, which is exactly the configuration the
// paper's headline numbers use.
type MergeComplete struct {
	// Roots are the merge entry points, "pkgpath.Type.Method"
	// (e.g. "storemlp/internal/epoch.Stats.Merge").
	Roots []string
}

// Name implements Analyzer.
func (MergeComplete) Name() string { return "mergecomplete" }

// Doc implements Analyzer.
func (MergeComplete) Doc() string {
	return "every type on the parallel merge path folds all its fields (or marks them //storemlp:nomerge)"
}

// mergeSite is one (type, method) pair on the merge path.
type mergeSite struct {
	named  *types.Named
	method string
}

// Run implements Analyzer.
func (a MergeComplete) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	var work []mergeSite
	visited := map[string]bool{}
	for _, root := range a.Roots {
		site, diag := a.resolveRoot(m, root)
		if diag != nil {
			out = append(out, *diag)
			continue
		}
		work = append(work, site)
	}
	for len(work) > 0 {
		site := work[0]
		work = work[1:]
		key := typeKey(site.named) + "." + site.method
		if visited[key] {
			continue
		}
		visited[key] = true
		pkg := m.Lookup(site.named.Obj().Pkg().Path())
		if pkg == nil {
			continue // outside the module: nothing to check
		}
		body := findMethodBody(pkg, site.named, site.method)
		if body == nil {
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(site.named.Obj().Pos()),
				Rule: a.Name(),
				Message: fmt.Sprintf("%s.%s is on the merge path but has no %s method",
					site.named.Obj().Pkg().Name(), site.named.Obj().Name(), site.method),
			})
			continue
		}
		out = append(out, a.checkMethod(m, pkg, site.named, site.method, body)...)
		work = append(work, nestedMerges(pkg, body)...)
	}
	return out
}

// resolveRoot parses "pkgpath.Type.Method" and looks the type up.
func (a MergeComplete) resolveRoot(m *Module, root string) (mergeSite, *Diagnostic) {
	bad := func(format string, args ...any) (mergeSite, *Diagnostic) {
		return mergeSite{}, &Diagnostic{
			Pos:     m.Fset.Position(0),
			Rule:    a.Name(),
			Message: fmt.Sprintf(format, args...),
		}
	}
	i := strings.LastIndexByte(root, '.')
	if i < 0 {
		return bad("malformed merge root %q (want pkgpath.Type.Method)", root)
	}
	method := root[i+1:]
	j := strings.LastIndexByte(root[:i], '.')
	if j < 0 {
		return bad("malformed merge root %q (want pkgpath.Type.Method)", root)
	}
	pkgPath, typeName := root[:j], root[j+1:i]
	pkg := m.Lookup(pkgPath)
	if pkg == nil {
		return bad("merge root package %s not found in module", pkgPath)
	}
	obj := pkg.Types.Scope().Lookup(typeName)
	named := namedOf(objType(obj))
	if named == nil {
		return bad("merge root type %s.%s not found", pkgPath, typeName)
	}
	return mergeSite{named: named, method: method}, nil
}

// checkMethod reports the struct fields the merge method never touches.
func (a MergeComplete) checkMethod(m *Module, pkg *Package, named *types.Named, method string, body *ast.BlockStmt) []Diagnostic {
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	_, fields := structFieldsAST(pkg, named.Obj().Name())
	if fields == nil {
		return nil
	}
	covered := fieldsReferenced(pkg, named, body)
	var out []Diagnostic
	for _, field := range fields {
		if hasDirective("nomerge", field.Doc, field.Comment) {
			continue
		}
		for _, name := range field.Names {
			if covered[name.Name] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(name.Pos()),
				Rule: a.Name(),
				Message: fmt.Sprintf("field %s.%s is not folded by %s on the parallel merge path (merge it, or annotate //storemlp:nomerge)",
					named.Obj().Name(), name.Name, method),
			})
		}
	}
	return out
}

// nestedMerges finds the Merge/Add calls the body delegates to, each a
// new site on the merge path.
func nestedMerges(pkg *Package, body *ast.BlockStmt) []mergeSite {
	seen := map[string]mergeSite{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := fun.Sel.Name
		if name != "Merge" && name != "Add" {
			return true
		}
		sel, ok := pkg.Info.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return true
		}
		named := namedOf(sel.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return true
		}
		seen[typeKey(named)+"."+name] = mergeSite{named: named, method: name}
		return true
	})
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sites := make([]mergeSite, 0, len(keys))
	for _, k := range keys {
		sites = append(sites, seen[k])
	}
	return sites
}
