package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxMut forbids assignment through a pointer to a protected
// configuration type outside the package that declares it.
//
// The invariant: uarch.Config and workload.Params are shared, reusable
// calibrations — the experiment harness fans one Config out to dozens
// of concurrent simulation runs. Any code that writes through a
// *Config/*Params it was handed mutates every sibling run. Mutating a
// local copy (value semantics) is always fine and is the idiom the
// harness uses.
type CtxMut struct {
	// Protected lists "pkgpath.TypeName" keys of guarded types.
	Protected []string
}

// Name implements Analyzer.
func (CtxMut) Name() string { return "ctxmut" }

// Doc implements Analyzer.
func (a CtxMut) Doc() string {
	return fmt.Sprintf("no writes through pointers to shared config types (%s) outside their packages",
		strings.Join(a.Protected, ", "))
}

// Run implements Analyzer.
func (a CtxMut) Run(m *Module) []Diagnostic {
	protected := map[string]bool{}
	ownerPkg := map[string]bool{}
	for _, key := range a.Protected {
		protected[key] = true
		if i := strings.LastIndex(key, "."); i > 0 {
			ownerPkg[key[:i]] = true
		}
	}
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		if ownerPkg[pkg.Path] {
			continue // the declaring package may mutate its own type
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range stmt.Lhs {
						if key, bad := a.writesProtected(pkg, lhs, protected); bad {
							out = append(out, Diagnostic{
								Pos:  m.Fset.Position(lhs.Pos()),
								Rule: a.Name(),
								Message: fmt.Sprintf("assignment through *%s outside its package (copy the value instead)",
									key),
							})
						}
					}
				case *ast.IncDecStmt:
					if key, bad := a.writesProtected(pkg, stmt.X, protected); bad {
						out = append(out, Diagnostic{
							Pos:  m.Fset.Position(stmt.X.Pos()),
							Rule: a.Name(),
							Message: fmt.Sprintf("mutation through *%s outside its package (copy the value instead)",
								key),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// writesProtected reports whether the assignment target reaches its
// storage through a pointer to a protected type: p.Field = v,
// (*p).Field = v, *p = v, x.cfg.Field = v where cfg is a *Config, etc.
func (a CtxMut) writesProtected(pkg *Package, lhs ast.Expr, protected map[string]bool) (string, bool) {
	for {
		// The full LHS itself being a protected pointer (p = v) is a
		// rebind of the variable, not a write through it — only look at
		// the bases we dereference on the way to the storage.
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			if key, ok := protectedPtr(pkg, e.X, protected); ok {
				return key, true
			}
			lhs = e.X
		case *ast.SelectorExpr:
			if key, ok := protectedPtr(pkg, e.X, protected); ok {
				return key, true
			}
			lhs = e.X
		case *ast.IndexExpr:
			if key, ok := protectedPtr(pkg, e.X, protected); ok {
				return key, true
			}
			lhs = e.X
		default:
			return "", false
		}
	}
}

// protectedPtr reports whether e's type is a pointer to a protected
// named type.
func protectedPtr(pkg *Package, e ast.Expr, protected map[string]bool) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	named := namedOf(ptr.Elem())
	if named == nil {
		return "", false
	}
	key := typeKey(named)
	return key, protected[key]
}
