package analysis

import (
	"strings"
	"testing"
)

func TestLockOrderFindings(t *testing.T) {
	m := loadTestModule(t, "lockorderbad")
	diags := Run(m, []Analyzer{LockOrder{}})
	checkDiags(t, m, diags, []string{
		"branchy/branchy.go:29: [lockorder] lock-acquisition cycle branchy.X.mu -> branchy.Y.mu -> branchy.X.mu (potential deadlock; fix the order or declare it with //storemlp:lockafter)",
		"locks/locks.go:24: [lockorder] lock-acquisition cycle locks.A.mu -> locks.B.mu -> locks.A.mu (potential deadlock; fix the order or declare it with //storemlp:lockafter)",
		"locks/locks.go:50: [lockorder] lock-acquisition cycle locks.Node.mu -> locks.Node.mu (potential deadlock; fix the order or declare it with //storemlp:lockafter)",
		"locks/locks.go:80: [lockorder] locks.P.mu acquired while locks.C.mu is held, but locks.C.mu declares //storemlp:lockafter(locks.P.mu)",
	})
}

// TestLockOrderLexicalBaseline pins the blind spot of the pre-CFG
// walker: the branch-scoped x.mu acquisition in branchy.PinThenBump is
// forgotten at the join, so the X -> Y edge — and with it the
// branchy cycle — never materializes. The straight-line locks findings
// are shared by both modes.
func TestLockOrderLexicalBaseline(t *testing.T) {
	m := loadTestModule(t, "lockorderbad")
	diags := Run(m, []Analyzer{LockOrder{Lexical: true}})
	checkDiags(t, m, diags, []string{
		"locks/locks.go:24: [lockorder] lock-acquisition cycle locks.A.mu -> locks.B.mu -> locks.A.mu (potential deadlock; fix the order or declare it with //storemlp:lockafter)",
		"locks/locks.go:50: [lockorder] lock-acquisition cycle locks.Node.mu -> locks.Node.mu (potential deadlock; fix the order or declare it with //storemlp:lockafter)",
		"locks/locks.go:80: [lockorder] locks.P.mu acquired while locks.C.mu is held, but locks.C.mu declares //storemlp:lockafter(locks.P.mu)",
	})
}

func TestAtomicFieldFindings(t *testing.T) {
	m := loadTestModule(t, "atomicbad")
	diags := Run(m, []Analyzer{AtomicField{}})
	checkDiags(t, m, diags, []string{
		"counters/counters.go:29: [atomicfield] field counters.S.hits is a typed atomic but is read/written plainly here (use the atomic API for every access)",
		"counters/counters.go:34: [atomicfield] field counters.S.raw is accessed via sync/atomic elsewhere but is read/written plainly here (use the atomic API for every access)",
	})
}

func TestGoLeakFindings(t *testing.T) {
	m := loadTestModule(t, "goleakbad")
	diags := Run(m, []Analyzer{GoLeak{}})
	checkDiags(t, m, diags, []string{
		"spawn/spawn.go:15: [goleak] goroutine in context-taking function Leak has no WaitGroup join, channel hand-off or ctx exit (bound it, or annotate //storemlp:daemon)",
		"spawn/spawn.go:22: [goleak] goroutine in context-taking function Fire has no WaitGroup join, channel hand-off or ctx exit (bound it, or annotate //storemlp:daemon)",
	})
}

func TestDigestCoverFindings(t *testing.T) {
	m := loadTestModule(t, "digestbad")
	diags := Run(m, []Analyzer{DigestCover{
		Roots: []string{"example.com/digestbad/cfg.Spec"},
		Funcs: map[string]string{"example.com/digestbad/cfg.Key": "example.com/digestbad/cfg.Req"},
	}})
	checkDiags(t, m, diags, []string{
		"cfg/cfg.go:13: [digestcover] unexported field cfg.Spec.seed is silently skipped by the reflective digest (export it, or annotate //storemlp:nodigest)",
		"cfg/cfg.go:14: [digestcover] field cfg.Spec.Notify contains a function value, which the reflective digest cannot encode (it panics at run time)",
		"cfg/cfg.go:22: [digestcover] unexported field cfg.Nested.cache is silently skipped by the reflective digest (export it, or annotate //storemlp:nodigest)",
		"cfg/cfg.go:29: [digestcover] exported field cfg.Req.Trace is not consumed by cfg.Key (hash it there, or annotate //storemlp:nodigest)",
	})
}

// TestConcurrencyAnalyzersCleanOnGood pins the false-positive side: the
// good module holds no nested locks, no atomic fields, no goroutines in
// context-taking functions, and DigestCover with no configured roots or
// functions checks nothing.
func TestConcurrencyAnalyzersCleanOnGood(t *testing.T) {
	m := loadTestModule(t, "good")
	diags := Run(m, []Analyzer{
		LockOrder{},
		AtomicField{},
		GoLeak{},
		DigestCover{},
	})
	if len(diags) != 0 {
		t.Errorf("good module should be clean, got:\n%s",
			strings.Join(render(t, m, diags), "\n"))
	}
}

// TestLockOrderBlessedEdgeStaysQuiet double-checks that the declared
// P.mu -> C.mu edge alone produces no cycle and no violation: only the
// three expected lockorder findings exist in the fixture.
func TestLockOrderBlessedEdgeStaysQuiet(t *testing.T) {
	m := loadTestModule(t, "lockorderbad")
	for _, d := range Run(m, []Analyzer{LockOrder{}}) {
		if strings.Contains(d.Message, "locks.P.mu -> locks.C.mu") ||
			strings.Contains(d.Message, "locks.C.mu -> locks.P.mu") {
			t.Errorf("blessed P/C pair must not form a cycle, got: %s", d.Message)
		}
	}
}
