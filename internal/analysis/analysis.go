package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one repo-specific static check run over a whole module.
type Analyzer interface {
	// Name is the rule identifier used in output and -rule filters.
	Name() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	// Run inspects the module and returns its findings.
	Run(m *Module) []Diagnostic
}

// DefaultAnalyzers returns the full suite configured for this
// repository's invariants.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		ExhaustiveEnum{},
		ValidateCoverage{},
		StatsDrift{
			StructPkg:   "storemlp/internal/epoch",
			StructName:  "Stats",
			MergeMethod: "Merge",
			ConsumerPkg: "storemlp/internal/experiments",
		},
		FloatCmp{},
		CtxMut{Protected: []string{
			"storemlp/internal/uarch.Config",
			"storemlp/internal/workload.Params",
		}},
		ResetComplete{Methods: map[string]string{
			"storemlp/internal/epoch.Engine": "Reconfigure",
		}},
		GuardedBy{},
		HotPath{},
		CtxPoll{TracePkg: "storemlp/internal/trace"},
		LockOrder{},
		AtomicField{},
		GoLeak{},
		DigestCover{
			Roots: []string{"storemlp/internal/sim.Spec"},
			Funcs: map[string]string{
				"storemlp.ConfigDigest": "storemlp.RunSpec",
			},
		},
		LockBalance{},
		SharedCapture{},
		MergeComplete{Roots: []string{"storemlp/internal/epoch.Stats.Merge"}},
		CloseAll{},
	}
}

// Run executes the analyzers over the module and returns all findings
// sorted by position then rule.
func Run(m *Module, analyzers []Analyzer) []Diagnostic {
	out, _ := RunWithTiming(m, analyzers)
	return out
}

// RuleTiming records one analyzer's wall-clock cost over a shared
// module load.
type RuleTiming struct {
	Rule    string
	Elapsed time.Duration
}

// RunWithTiming executes the analyzers like Run and additionally
// reports each rule's wall-clock time, in execution order. All rules
// share one type-checked module (and one CFG cache), so a rule's cost
// here is its marginal cost — what dropping it would actually save.
func RunWithTiming(m *Module, analyzers []Analyzer) ([]Diagnostic, []RuleTiming) {
	var out []Diagnostic
	timings := make([]RuleTiming, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		out = append(out, a.Run(m)...)
		timings = append(timings, RuleTiming{Rule: a.Name(), Elapsed: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, timings
}

// ---- shared helpers ----

// namedOf unwraps aliases and returns the named type behind t, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// typeKey identifies a named type as "pkgpath.Name".
func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isNumeric reports whether t's core type is an integer or float.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// commentHasMarker reports whether any comment group contains marker.
func commentHasMarker(marker string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// recvBaseType resolves a method's receiver to its named base type.
func recvBaseType(fn *ast.FuncDecl, info *types.Info) *types.Named {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedOf(tv.Type)
}
