package analysis

import (
	"fmt"
	"go/ast"
	"go/types"

	"storemlp/internal/analysis/flow"
)

// SharedCapture checks goroutine closures for plain writes to captured
// variables — the data race the parallel fan-out makes easiest to
// write. A `go func() { ... }` literal that assigns to a variable it
// captured from the enclosing function races with the spawner (and
// with its sibling workers) unless the write is disciplined. Four
// disciplines are recognized:
//
//   - per-worker slot: results[i] = ... where every index is the
//     worker's own parameter, a literal-local variable, or a Go 1.22
//     per-iteration loop variable — each goroutine owns a distinct
//     element, the engine's fan-out/merge idiom;
//   - mutex: the write happens with a lock held on every path
//     (the flow lattice must prove it, same as guardedby);
//   - channel/atomic: sends and sync/atomic calls are not plain
//     writes, so they pass untouched;
//   - ownership hand-off: //storemlp:owned on the go statement, on the
//     variable's declaration, or on the function doc declares the
//     spawner never touches the variable again.
//
// Reads are deliberately out of scope: flagging them would bury the
// write-side races this rule exists to catch.
type SharedCapture struct{}

// Name implements Analyzer.
func (SharedCapture) Name() string { return "sharedcapture" }

// Doc implements Analyzer.
func (SharedCapture) Doc() string {
	return "go-closures may not plainly write captured variables (use a mutex, a per-worker slot, or //storemlp:owned)"
}

// Run implements Analyzer.
func (a SharedCapture) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			owned := annotationLines(m, f, "owned")
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if hasDirective("owned", fn.Doc) {
					continue
				}
				loopVars := perIterationVars(pkg, fn.Body)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					lit, ok := gs.Call.Fun.(*ast.FuncLit)
					if !ok {
						return true
					}
					line := m.Fset.Position(gs.Pos()).Line
					if owned[line] || owned[line-1] {
						return true
					}
					out = append(out, a.checkClosure(m, pkg, lit, owned, loopVars)...)
					return true
				})
			}
		}
	}
	return out
}

// checkClosure reports the undisciplined writes one go-literal makes to
// its captures.
func (a SharedCapture) checkClosure(m *Module, pkg *Package, lit *ast.FuncLit, owned map[int]bool, loopVars map[*types.Var]bool) []Diagnostic {
	captured := map[*types.Var]bool{}
	for _, v := range flow.FreeVars(pkg.Info, lit) {
		captured[v] = true
	}
	if len(captured) == 0 {
		return nil
	}
	// Lock state at each statement of the literal's own body; writes in
	// literals nested deeper belong to those literals' own checks.
	g := m.CFG(lit.Body)
	lk := flow.SolveLocks(g, lockClassifier, true)
	heldAt := map[ast.Node]bool{}
	for _, blk := range g.Blocks {
		lk.Walk(blk, func(n ast.Node, held flow.LockSet) {
			heldAt[n] = len(held) > 0
		})
	}
	var out []Diagnostic
	for _, w := range flow.Writes(pkg.Info, lit.Body) {
		if !captured[w.Var] {
			continue
		}
		if insideNestedLit(lit, w.Node) {
			continue
		}
		if owned[m.Fset.Position(w.Var.Pos()).Line] {
			continue // the variable's declaration hands ownership off
		}
		if heldAt[w.Node] {
			continue // proven under a lock on every path
		}
		if len(w.Indexes) > 0 && workerSlot(pkg, lit, w.Indexes, loopVars) {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(w.Target.Pos()),
			Rule: a.Name(),
			Message: fmt.Sprintf("go-closure writes captured variable %s without synchronization (guard it with a mutex, give each worker its own slot, or annotate //storemlp:owned)",
				w.Var.Name()),
		})
	}
	return out
}

// insideNestedLit reports whether n sits inside a function literal
// nested below lit's own body.
func insideNestedLit(lit *ast.FuncLit, n ast.Node) bool {
	inside := false
	ast.Inspect(lit.Body, func(c ast.Node) bool {
		if inside {
			return false
		}
		inner, ok := c.(*ast.FuncLit)
		if !ok {
			return true
		}
		if n.Pos() >= inner.Pos() && n.End() <= inner.End() {
			inside = true
		}
		return false // literal bodies are opaque either way
	})
	return inside
}

// workerSlot reports whether every index on the write's path is a
// variable the goroutine owns: declared inside the literal (a
// parameter or local) or a per-iteration loop variable of the spawning
// function (distinct per iteration since Go 1.22).
func workerSlot(pkg *Package, lit *ast.FuncLit, indexes []ast.Expr, loopVars map[*types.Var]bool) bool {
	for _, idx := range indexes {
		id, ok := idx.(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return false
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			continue // the worker's own parameter or local
		}
		if loopVars[v] {
			continue
		}
		return false
	}
	return true
}

// perIterationVars collects the loop variables declared by for and
// range statements under root — per-iteration bindings, so a closure
// capturing one sees a value no other iteration writes.
func perIterationVars(pkg *Package, root ast.Node) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	def := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			vars[v] = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok.String() == ":=" {
				for _, lhs := range init.Lhs {
					def(lhs)
				}
			}
		case *ast.RangeStmt:
			if st.Tok.String() == ":=" {
				def(st.Key)
				def(st.Value)
			}
		}
		return true
	})
	return vars
}
