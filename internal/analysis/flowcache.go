package analysis

import (
	"go/ast"

	"storemlp/internal/analysis/flow"
)

// CFG returns the memoized control-flow graph of a function or literal
// body. Six analyzers (guardedby, lockorder, ctxpoll, lockbalance,
// sharedcapture, closeall) walk the same bodies; sharing one graph per
// body — like sharing one type-checked load per run — keeps the suite's
// cost per rule marginal. Run executes analyzers sequentially, so the
// cache needs no lock.
func (m *Module) CFG(body *ast.BlockStmt) *flow.Graph {
	if m.cfgs == nil {
		m.cfgs = map[*ast.BlockStmt]*flow.Graph{}
	}
	if g, ok := m.cfgs[body]; ok {
		return g
	}
	g := flow.New(body)
	m.cfgs[body] = g
	return g
}

// funcBodies returns fn's body plus the bodies of every function
// literal nested inside it, each paired with the literal (nil for the
// outer body). A literal may run on another goroutine or after its
// frame returned, so path-sensitive analyzers give each body its own
// graph with an empty entry state instead of inlining it.
func funcBodies(fn *ast.FuncDecl) []*ast.BlockStmt {
	bodies := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	return bodies
}
