package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GoLeak requires every goroutine launched from a context-taking
// function to be provably bounded. A long-running service that spawns
// an unjoined, uncancellable goroutine per request leaks goroutines at
// request rate — the failure mode only shows up in production memory
// graphs, never in short tests.
//
// A `go` statement is accepted when the spawned body (or call) shows
// one of the join/exit disciplines:
//
//   - it calls Done() on a sync.WaitGroup (joined by Wait);
//   - it sends on or closes a channel, or ranges over one (the
//     goroutine is paced and reaped through channel hand-off);
//   - it references a context.Context value — selecting on ctx.Done(),
//     polling ctx.Err(), or forwarding the context into a call that
//     honors cancellation;
//   - the `go` statement or its enclosing function is annotated
//     //storemlp:daemon, documenting an intentional process-lifetime
//     goroutine.
//
// Anything else is reported. The rule only fires inside functions that
// take a context.Context: those are the request paths where lifetime
// is bounded by definition and a leak multiplies with load.
type GoLeak struct{}

// Name implements Analyzer.
func (GoLeak) Name() string { return "goleak" }

// Doc implements Analyzer.
func (GoLeak) Doc() string {
	return "goroutines spawned in context-taking functions are joined, channel-bounded or ctx-cancelled"
}

// Run implements Analyzer.
func (a GoLeak) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			daemonLines := annotationLines(m, f, "daemon")
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if contextParam(pkg, fn) == nil {
					continue
				}
				if hasDirective("daemon", fn.Doc) {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					line := m.Fset.Position(gs.Pos()).Line
					if daemonLines[line] || daemonLines[line-1] {
						return true
					}
					if goStmtBounded(pkg, gs) {
						return true
					}
					out = append(out, Diagnostic{
						Pos:  m.Fset.Position(gs.Pos()),
						Rule: a.Name(),
						Message: fmt.Sprintf("goroutine in context-taking function %s has no WaitGroup join, channel hand-off or ctx exit (bound it, or annotate //storemlp:daemon)",
							fn.Name.Name),
					})
					return true
				})
			}
		}
	}
	return out
}

// annotationLines maps source lines whose comments carry the named
// //storemlp: directive — so a //storemlp:daemon on or immediately
// above a `go` statement can bless that statement alone.
func annotationLines(m *Module, f *ast.File, name string) map[int]bool {
	lines := map[int]bool{}
	for _, g := range f.Comments {
		for _, c := range g.List {
			if hasDirective(name, &ast.CommentGroup{List: []*ast.Comment{c}}) {
				lines[m.Fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}

// goStmtBounded reports whether the spawned goroutine shows a join or
// exit discipline.
func goStmtBounded(pkg *Package, gs *ast.GoStmt) bool {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		if bodyBounded(pkg, lit.Body) {
			return true
		}
		// Arguments evaluated at spawn don't bound the goroutine, but a
		// captured context passed through the literal's parameters does.
		for _, arg := range gs.Call.Args {
			if exprIsContext(pkg, arg) {
				return true
			}
		}
		return false
	}
	// go obj.method(ctx, ...): forwarding a context into the spawned
	// call is the cancellation hand-off.
	for _, arg := range gs.Call.Args {
		if exprIsContext(pkg, arg) {
			return true
		}
	}
	return false
}

// bodyBounded scans a spawned function body for WaitGroup.Done calls,
// channel operations, or context references.
func bodyBounded(pkg *Package, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			bounded = true
			return false
		case *ast.UnaryExpr:
			// <-ch: pacing by receive also reaps the goroutine when the
			// producer closes the channel.
			if x.Op.String() == "<-" {
				bounded = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					bounded = true
					return false
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pkg, x) || isChanClose(pkg, x) {
				bounded = true
				return false
			}
		case *ast.Ident:
			if exprIsContext(pkg, x) {
				bounded = true
				return false
			}
		}
		return true
	})
	return bounded
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	return named != nil && typeKey(named) == "sync.WaitGroup"
}

// isChanClose matches close(ch).
func isChanClose(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	obj := pkg.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// exprIsContext reports whether e's type is context.Context.
func exprIsContext(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && tv.Type.String() == "context.Context"
}
