package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"

	"storemlp/internal/analysis/flow"
)

// guardedByRe extracts the mutex name from a "// guarded by mu" field
// comment. The name is the sibling field holding the sync.Mutex or
// sync.RWMutex.
var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// GuardedBy enforces the documented locking discipline of the service
// layer: a struct field annotated "// guarded by <mu>" may only be read
// or written while that mutex is held on every control-flow path to the
// access — an X.Lock() (or X.RLock()) that reaches the access on all
// paths, not yet released, or a deferred X.Unlock(). Functions that run
// entirely under a lock taken by their caller opt out with a
// //storemlp:locked annotation.
//
// The check is path-sensitive over the flow package's CFG: held state
// merges by intersection at join points, so a mutex released on one
// branch no longer counts as held after the join, and a release at the
// bottom of a loop flows around the back edge into the next
// iteration's reads. It is still not interprocedural — it catches the
// bug class the -race detector only finds when the schedule cooperates,
// at compile time, every run.
type GuardedBy struct {
	// Lexical reverts to the pre-CFG per-statement-list walker (branch
	// releases leak past joins, loop back edges are invisible). Kept as
	// the regression baseline the fixture tests pin the port against.
	Lexical bool
}

// Name implements Analyzer.
func (GuardedBy) Name() string { return "guardedby" }

// Doc implements Analyzer.
func (GuardedBy) Doc() string {
	return `fields annotated "guarded by <mu>" are only accessed with that mutex held on every path`
}

// guardSet maps "pkgpath.TypeName" -> field name -> mutex field name.
type guardSet map[string]map[string]string

// Run implements Analyzer.
func (a GuardedBy) Run(m *Module) []Diagnostic {
	guards := collectGuards(m)
	if len(guards) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if hasDirective("locked", fn.Doc) {
					continue
				}
				w := &guardWalker{m: m, pkg: pkg, guards: guards}
				if a.Lexical {
					w.stmts(fn.Body.List, map[string]bool{})
				} else {
					w.flowRun(fn)
				}
				out = append(out, w.out...)
			}
		}
	}
	return out
}

// collectGuards scans every struct declaration for guarded-by field
// annotations.
func collectGuards(m *Module) guardSet {
	guards := guardSet{}
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj := pkg.Info.Defs[ts.Name]
					if obj == nil {
						continue
					}
					named := namedOf(obj.Type())
					if named == nil {
						continue
					}
					for _, field := range st.Fields.List {
						mu := guardAnnotation(field)
						if mu == "" {
							continue
						}
						key := typeKey(named)
						if guards[key] == nil {
							guards[key] = map[string]string{}
						}
						for _, name := range field.Names {
							guards[key][name.Name] = mu
						}
					}
				}
			}
		}
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if match := guardedByRe.FindStringSubmatch(c.Text); match != nil {
				return match[1]
			}
		}
	}
	return ""
}

// guardWalker tracks the held mutexes through one function body. In
// flow mode (the default) held state comes from the CFG's lock lattice;
// in lexical mode, locks taken at one nesting level are visible to
// deeper levels (each compound statement walks its children with a copy
// of the held set), and a lock taken inside a block does not leak past
// it.
type guardWalker struct {
	m      *Module
	pkg    *Package
	guards guardSet
	out    []Diagnostic
}

// lockClassifier adapts lockCall to the flow package's interface: lock
// identity is the rendered mutex expression ("q.mu"), matching the
// per-instance spelling the guard annotations use.
func lockClassifier(call *ast.CallExpr) (string, flow.LockOp) {
	id, op := lockCall(call)
	switch op {
	case lockAcquire:
		return id, flow.OpAcquire
	case lockRelease:
		return id, flow.OpRelease
	}
	return "", flow.OpNone
}

// flowRun checks fn path-sensitively: each body (the function's own and
// every nested literal's, which may run on another goroutine) gets its
// own CFG and must-held lock solution, and every guarded access is
// checked against the state the lattice proves at that point.
func (w *guardWalker) flowRun(fn *ast.FuncDecl) {
	for _, body := range funcBodies(fn) {
		g := w.m.CFG(body)
		lk := flow.SolveLocks(g, lockClassifier, true)
		for _, blk := range g.Blocks {
			lk.Walk(blk, func(n ast.Node, held flow.LockSet) {
				ast.Inspect(n, func(c ast.Node) bool {
					switch x := c.(type) {
					case *ast.FuncLit:
						return false // analyzed as its own body
					case *ast.SelectorExpr:
						w.checkAccess(x, func(mu string) bool {
							_, ok := held[mu]
							return ok
						})
					}
					return true
				})
			})
		}
	}
}

func (w *guardWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *guardWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if mu, op := lockCall(st.X); op == lockAcquire {
			held[mu] = true
			return
		} else if op == lockRelease {
			delete(held, mu)
			return
		}
		w.expr(st.X, held)
	case *ast.DeferStmt:
		if _, op := lockCall(st.Call); op == lockRelease {
			return // deferred unlock: the mutex stays held to function end
		}
		w.expr(st.Call, held)
	case *ast.BlockStmt:
		w.stmts(st.List, copyHeld(held))
	case *ast.IfStmt:
		h := copyHeld(held)
		if st.Init != nil {
			w.stmt(st.Init, h)
		}
		w.expr(st.Cond, h)
		w.stmt(st.Body, h)
		if st.Else != nil {
			w.stmt(st.Else, h)
		}
	case *ast.ForStmt:
		h := copyHeld(held)
		if st.Init != nil {
			w.stmt(st.Init, h)
		}
		if st.Cond != nil {
			w.expr(st.Cond, h)
		}
		if st.Post != nil {
			w.stmt(st.Post, h)
		}
		w.stmt(st.Body, h)
	case *ast.RangeStmt:
		h := copyHeld(held)
		w.expr(st.X, h)
		if st.Key != nil {
			w.expr(st.Key, h)
		}
		if st.Value != nil {
			w.expr(st.Value, h)
		}
		w.stmt(st.Body, h)
	case *ast.SwitchStmt:
		h := copyHeld(held)
		if st.Init != nil {
			w.stmt(st.Init, h)
		}
		if st.Tag != nil {
			w.expr(st.Tag, h)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, h)
			}
			w.stmts(cc.Body, copyHeld(h))
		}
	case *ast.TypeSwitchStmt:
		h := copyHeld(held)
		if st.Init != nil {
			w.stmt(st.Init, h)
		}
		w.stmt(st.Assign, h)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			w.stmts(cc.Body, copyHeld(h))
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			h := copyHeld(held)
			if cc.Comm != nil {
				w.stmt(cc.Comm, h)
			}
			w.stmts(cc.Body, h)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	default:
		// Simple statements (assign, return, go, send, incdec, decl...):
		// no nested statements beyond function literals, which expr
		// handles with a fresh held set.
		w.exprStmtNode(s, held)
	}
}

// expr checks one expression tree for guarded-field accesses.
func (w *guardWalker) expr(e ast.Expr, held map[string]bool) {
	w.exprStmtNode(e, held)
}

func (w *guardWalker) exprStmtNode(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.FuncLit:
			// A literal may run on another goroutine or after the lock
			// is released: it must take its own locks.
			w.stmt(x.Body, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			w.checkAccess(x, func(mu string) bool { return held[mu] })
		}
		return true
	})
}

// checkAccess reports x.f when f is a guarded field and the guarding
// mutex (rendered against the same base expression x) is not held.
func (w *guardWalker) checkAccess(sel *ast.SelectorExpr, held func(string) bool) {
	selection, ok := w.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return
	}
	fields := w.guards[typeKey(named)]
	if fields == nil {
		return
	}
	mu, guarded := fields[sel.Sel.Name]
	if !guarded {
		return
	}
	required := renderExpr(sel.X) + "." + mu
	if held(required) {
		return
	}
	w.out = append(w.out, Diagnostic{
		Pos:  w.m.Fset.Position(sel.Sel.Pos()),
		Rule: "guardedby",
		Message: fmt.Sprintf("field %s.%s accessed without holding %s (lock it, or annotate the function //storemlp:locked)",
			named.Obj().Name(), sel.Sel.Name, required),
	})
}

const (
	lockNone = iota
	lockAcquire
	lockRelease
)

// lockCall classifies e as a mutex acquire/release call and returns the
// rendered mutex expression ("c.mu").
func lockCall(e ast.Expr) (string, int) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", lockNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return renderExpr(sel.X), lockAcquire
	case "Unlock", "RUnlock":
		return renderExpr(sel.X), lockRelease
	}
	return "", lockNone
}

// renderExpr gives the textual spelling of a mutex/receiver expression
// chain; anything beyond ident/selector chains renders opaque.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(x.X)
	case *ast.StarExpr:
		return renderExpr(x.X)
	}
	return "?"
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}
