package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// HotPath gates the engine's performance contract on the compiler's own
// diagnostics. Functions annotated //storemlp:noalloc must show no
// "escapes to heap" / "moved to heap" decision anywhere in their body,
// and functions annotated //storemlp:inline must be reported "can
// inline" — both read from `go build -gcflags=-m=2` over the module.
//
// This turns the allocation-free step loop and the inlinable fast paths
// (cache lookup, TLB touch, per-instruction traffic advance, trace
// refill) from benchmark observations into a CI invariant: a change
// that makes a hot function allocate, or pushes an inlined fast path
// over the inlining budget, fails the build instead of shipping a
// silent regression.
type HotPath struct{}

// Name implements Analyzer.
func (HotPath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (HotPath) Doc() string {
	return "//storemlp:noalloc functions must not allocate and //storemlp:inline functions must inline (per -gcflags=-m=2)"
}

// hotFunc is one annotated function awaiting compiler evidence.
type hotFunc struct {
	name      string
	pos       token.Position // declaration site
	startLine int
	endLine   int
	noalloc   bool
	inline    bool
	canInline bool
	cannot    string // reason from a "cannot inline" diagnostic
}

// buildDiagRe matches the compiler's primary -m lines; the indented
// escape-flow detail lines carry no position prefix and fall through.
var buildDiagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// Run implements Analyzer.
func (a HotPath) Run(m *Module) []Diagnostic {
	byFile := a.collect(m)
	if len(byFile) == 0 {
		return nil
	}

	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = m.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	var out []Diagnostic
	sawDiag := false
	// -m=2 prints each escape decision twice: a detail header with a
	// trailing colon and the plain -m line. Dedupe on normalized text.
	seen := map[string]bool{}
	for _, line := range strings.Split(stderr.String(), "\n") {
		match := buildDiagRe.FindStringSubmatch(line)
		if match == nil {
			continue
		}
		sawDiag = true
		file, msg := match[1], match[4]
		if !filepath.IsAbs(file) {
			file = filepath.Join(m.Dir, file)
		}
		lineNo, _ := strconv.Atoi(match[2])
		colNo, _ := strconv.Atoi(match[3])
		funcs := byFile[file]

		switch {
		case strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap"):
			key := fmt.Sprintf("%s:%d:%d:%s", file, lineNo, colNo, strings.TrimSuffix(msg, ":"))
			if seen[key] {
				continue
			}
			seen[key] = true
			for _, fn := range funcs {
				if fn.noalloc && lineNo >= fn.startLine && lineNo <= fn.endLine {
					out = append(out, Diagnostic{
						Pos:  token.Position{Filename: file, Line: lineNo, Column: colNo},
						Rule: a.Name(),
						Message: fmt.Sprintf("//storemlp:noalloc function %s allocates: %s",
							fn.name, strings.TrimSuffix(msg, ":")),
					})
				}
			}
		case strings.HasPrefix(msg, "can inline "):
			for _, fn := range funcs {
				if fn.inline && lineNo == fn.pos.Line {
					fn.canInline = true
				}
			}
		case strings.HasPrefix(msg, "cannot inline "):
			for _, fn := range funcs {
				if fn.inline && lineNo == fn.pos.Line {
					fn.cannot = msg
				}
			}
		}
	}

	if runErr != nil && !sawDiag {
		// The compiler produced no diagnostics at all: the build itself
		// is broken, which the other CI stages report in full. Surface a
		// single loud finding instead of silently passing.
		return []Diagnostic{{
			Pos:     token.Position{Filename: filepath.Join(m.Dir, "go.mod"), Line: 1},
			Rule:    a.Name(),
			Message: fmt.Sprintf("go build -gcflags=-m=2 failed: %v (fix the build, then re-run)", runErr),
		}}
	}

	for _, funcs := range byFile {
		for _, fn := range funcs {
			if !fn.inline || fn.canInline {
				continue
			}
			reason := strings.TrimPrefix(fn.cannot, "cannot inline "+fn.name+": ")
			if reason == "" {
				reason = "compiler reported no inline decision (diagnostics missing from build output)"
			}
			out = append(out, Diagnostic{
				Pos:  fn.pos,
				Rule: a.Name(),
				Message: fmt.Sprintf("//storemlp:inline function %s does not inline: %s",
					fn.name, reason),
			})
		}
	}
	return out
}

// collect gathers the annotated functions, keyed by absolute filename.
func (a HotPath) collect(m *Module) map[string][]*hotFunc {
	byFile := map[string][]*hotFunc{}
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				noalloc := hasDirective("noalloc", fn.Doc)
				inline := hasDirective("inline", fn.Doc)
				if !noalloc && !inline {
					continue
				}
				pos := m.Fset.Position(fn.Name.Pos())
				byFile[pos.Filename] = append(byFile[pos.Filename], &hotFunc{
					name:      funcDisplayName(fn),
					pos:       pos,
					startLine: m.Fset.Position(fn.Body.Pos()).Line,
					endLine:   m.Fset.Position(fn.Body.End()).Line,
					noalloc:   noalloc,
					inline:    inline,
				})
			}
		}
	}
	return byFile
}

// funcDisplayName renders "(*T).M" for methods and "F" for functions,
// matching the compiler's own spelling.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
