package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"storemlp/internal/analysis/flow"
)

// LockOrder builds a static lock-acquisition graph over the whole
// module and reports cycles as potential deadlocks. Held state is
// path-sensitive over the flow package's CFG with may-join semantics: a
// mutex is "held" at a point if some path to it acquired the mutex
// without releasing it (a deferred unlock holds to function end), so a
// branch-dependent acquisition still orders every lock taken after the
// join — not just locks taken inside the same branch, the lexical
// walker's blind spot. Acquiring lock B while lock A is held adds the
// edge A → B.
//
// Locks are identified at type granularity — "pkg.Type.field" for a
// mutex struct field, "pkg.var" for a package-level mutex — because a
// deadlock needs two goroutines taking the same two locks in opposite
// orders, and goroutines agree on types, not on variable spellings.
// Acquiring a lock of the same identity while one is already held is a
// self-cycle: two instances locked in address-dependent order by
// concurrent goroutines deadlock just like two distinct locks do.
//
// A declaration comment //storemlp:lockafter(<mu>) on a mutex field or
// variable declares that this lock is always acquired after <mu>
// (matched against the full identity or its suffix). Declared edges
// are the intended order: they are removed from the graph before cycle
// detection, and an observed acquisition in the opposite direction is
// reported immediately as an ordering violation.
type LockOrder struct {
	// Lexical reverts to the pre-CFG statement-list walker, which loses
	// acquisitions made inside a branch at the join. Kept as the
	// regression baseline the fixture tests pin the port against.
	Lexical bool
}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "the static lock-acquisition graph is acyclic (declare intended order with //storemlp:lockafter)"
}

// lockEdge is one observed nested acquisition: from held to acquired.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// Run implements Analyzer.
func (a LockOrder) Run(m *Module) []Diagnostic {
	after := collectLockAfter(m)
	var edges []lockEdge
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				w := &orderWalker{pkg: pkg, edges: &edges}
				if a.Lexical {
					w.stmts(fn.Body.List, nil)
				} else {
					w.flowRun(m, fn)
				}
			}
		}
	}

	var out []Diagnostic
	// Ordering violations: an edge that contradicts a declaration.
	graph := map[string]map[string]token.Pos{}
	for _, e := range edges {
		if declaredAfter(after, e.from, e.to) {
			// e.from declares lockafter(e.to), but we saw from → to.
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(e.pos),
				Rule: a.Name(),
				Message: fmt.Sprintf("%s acquired while %s is held, but %s declares //storemlp:lockafter(%s)",
					shortLock(e.to), shortLock(e.from), shortLock(e.from), shortLock(e.to)),
			})
			continue
		}
		if declaredAfter(after, e.to, e.from) {
			continue // blessed: e.to is declared to come after e.from
		}
		if graph[e.from] == nil {
			graph[e.from] = map[string]token.Pos{}
		}
		if old, ok := graph[e.from][e.to]; !ok || e.pos < old {
			graph[e.from][e.to] = e.pos
		}
	}

	for _, cyc := range lockCycles(graph) {
		names := make([]string, len(cyc)+1)
		for i, id := range cyc {
			names[i] = shortLock(id)
		}
		names[len(cyc)] = shortLock(cyc[0])
		pos := graph[cyc[0]][cyc[1%len(cyc)]]
		if len(cyc) == 1 {
			pos = graph[cyc[0]][cyc[0]]
		}
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(pos),
			Rule: a.Name(),
			Message: fmt.Sprintf("lock-acquisition cycle %s (potential deadlock; fix the order or declare it with //storemlp:lockafter)",
				strings.Join(names, " -> ")),
		})
	}
	return out
}

// declaredAfter reports whether lock b carries a lockafter declaration
// matching lock a ("b is acquired after a").
func declaredAfter(after map[string][]string, b, a string) bool {
	for _, spec := range after[b] {
		if spec == a || strings.HasSuffix(a, "."+spec) {
			return true
		}
	}
	return false
}

// shortLock renders a lock identity without its package-path prefix
// ("storemlp/internal/sim.Pool.mu" -> "sim.Pool.mu").
func shortLock(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// collectLockAfter gathers //storemlp:lockafter declarations from
// mutex-typed struct fields and package-level variables.
func collectLockAfter(m *Module) map[string][]string {
	after := map[string][]string{}
	add := func(id string, groups ...*ast.CommentGroup) {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				// A malformed directive fails to parse and simply
				// contributes no order declarations; the grammar itself
				// is fuzzed in directive_test.go.
				ds, err := ParseDirectives(c.Text)
				if err != nil {
					continue
				}
				for _, d := range ds {
					if d.Name == "lockafter" {
						after[id] = append(after[id], d.Args...)
					}
				}
			}
		}
	}
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						st, ok := sp.Type.(*ast.StructType)
						if !ok {
							continue
						}
						obj := pkg.Info.Defs[sp.Name]
						named := namedOf(objType(obj))
						if named == nil {
							continue
						}
						for _, field := range st.Fields.List {
							for _, name := range field.Names {
								add(typeKey(named)+"."+name.Name, field.Doc, field.Comment)
							}
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							add(pkg.Path+"."+name.Name, gd.Doc, sp.Doc, sp.Comment)
						}
					}
				}
			}
		}
	}
	return after
}

// objType returns obj.Type() tolerating nil objects.
func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// orderWalker tracks the lexically held lock identities, in
// acquisition order, through one function body. The traversal mirrors
// guardWalker: locks persist across later statements of the same list
// and into nested blocks, and do not leak past the block that took
// them; function literals start with an empty held list (they may run
// on another goroutine).
type orderWalker struct {
	pkg   *Package
	edges *[]lockEdge
}

// flowRun collects acquisition edges path-sensitively: each body (the
// function's own and every nested literal's) gets its own CFG and
// may-held lock solution, and every acquisition draws an edge from each
// lock held on some path to that point.
func (w *orderWalker) flowRun(m *Module, fn *ast.FuncDecl) {
	classify := func(call *ast.CallExpr) (string, flow.LockOp) {
		id, op := w.lockIdentity(call)
		switch op {
		case lockAcquire:
			return id, flow.OpAcquire
		case lockRelease:
			return id, flow.OpRelease
		}
		return "", flow.OpNone
	}
	for _, body := range funcBodies(fn) {
		g := m.CFG(body)
		lk := flow.SolveLocks(g, classify, false)
		for _, blk := range g.Blocks {
			lk.Walk(blk, func(n ast.Node, held flow.LockSet) {
				// Replay the node's own lock operations in order: a node
				// may both release and acquire (rare, but a compound
				// statement can), so track the in-node state locally.
				local := make(map[string]bool, len(held))
				for id := range held {
					local[id] = true
				}
				ast.Inspect(n, func(c ast.Node) bool {
					if _, ok := c.(*ast.FuncLit); ok {
						return false // analyzed as its own body
					}
					call, ok := c.(*ast.CallExpr)
					if !ok {
						return true
					}
					if _, isDefer := n.(*ast.DeferStmt); isDefer {
						return true // deferred unlock: no state change here
					}
					id, op := w.lockIdentity(call)
					if id == "" {
						return true
					}
					switch op {
					case lockAcquire:
						froms := make([]string, 0, len(local))
						for f := range local {
							froms = append(froms, f)
						}
						sort.Strings(froms)
						for _, f := range froms {
							*w.edges = append(*w.edges, lockEdge{from: f, to: id, pos: call.Pos()})
						}
						local[id] = true
					case lockRelease:
						delete(local, id)
					}
					return true
				})
			})
		}
	}
}

func (w *orderWalker) stmts(list []ast.Stmt, held []string) {
	h := append([]string(nil), held...)
	for _, s := range list {
		h = w.stmt(s, h)
	}
}

// stmt processes one statement and returns the updated held list.
func (w *orderWalker) stmt(s ast.Stmt, held []string) []string {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, op := w.lockIdentity(call); id != "" {
				switch op {
				case lockAcquire:
					for _, from := range held {
						*w.edges = append(*w.edges, lockEdge{from: from, to: id, pos: call.Pos()})
					}
					return append(held, id)
				case lockRelease:
					return removeLock(held, id)
				}
			}
		}
		w.nested(st.X, held)
	case *ast.DeferStmt:
		if _, op := lockCall(st.Call); op == lockRelease {
			return held // deferred unlock: held to function end
		}
		w.nested(st.Call, held)
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.IfStmt:
		h := append([]string(nil), held...)
		if st.Init != nil {
			h = w.stmt(st.Init, h)
		}
		w.nested(st.Cond, h)
		w.stmts(st.Body.List, h)
		if st.Else != nil {
			w.stmt(st.Else, h)
		}
	case *ast.ForStmt:
		h := append([]string(nil), held...)
		if st.Init != nil {
			h = w.stmt(st.Init, h)
		}
		w.stmts(st.Body.List, h)
	case *ast.RangeStmt:
		w.nested(st.X, held)
		w.stmts(st.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, held)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, held)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			h := append([]string(nil), held...)
			if cc.Comm != nil {
				h = w.stmt(cc.Comm, h)
			}
			w.stmts(cc.Body, h)
		}
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	default:
		w.nested(s, held)
	}
	return held
}

// nested walks an expression or simple statement for function literals,
// which are analyzed with an empty held list.
func (w *orderWalker) nested(n ast.Node, held []string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, nil)
			return false
		}
		return true
	})
}

// lockIdentity classifies call as a lock operation and resolves the
// mutex to a stable type-level identity, or "" for locks the analyzer
// cannot name (local mutex variables, opaque expressions).
func (w *orderWalker) lockIdentity(call *ast.CallExpr) (string, int) {
	if len(call.Args) != 0 {
		return "", lockNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", lockNone
	}
	if !isMutexExpr(w.pkg, sel.X) {
		return "", lockNone
	}
	switch mu := sel.X.(type) {
	case *ast.SelectorExpr:
		// x.mu: a mutex field — identity is its owning named type.
		if selection, ok := w.pkg.Info.Selections[mu]; ok && selection.Kind() == types.FieldVal {
			if named := namedOf(selection.Recv()); named != nil {
				return typeKey(named) + "." + mu.Sel.Name, op
			}
		}
		// pkg.Mu: a qualified package-level mutex.
		if obj := w.pkg.Info.Uses[mu.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && objIsPkgLevel(v) {
				return v.Pkg().Path() + "." + v.Name(), op
			}
		}
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[mu]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && objIsPkgLevel(v) {
				return v.Pkg().Path() + "." + v.Name(), op
			}
		}
	}
	return "", lockNone
}

// objIsPkgLevel reports whether v is declared at package scope.
func objIsPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isMutexExpr reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	if named == nil {
		return false
	}
	key := typeKey(named)
	return key == "sync.Mutex" || key == "sync.RWMutex"
}

// removeLock drops the last occurrence of id from held.
func removeLock(held []string, id string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == id {
			return append(append([]string(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

// lockCycles finds the cycles of the acquisition graph: one per
// strongly connected component with more than one node, plus
// self-loops. Components and the cycle path inside each are rendered
// deterministically (lexicographic node order).
func lockCycles(graph map[string]map[string]token.Pos) [][]string {
	nodes := make([]string, 0, len(graph))
	seen := map[string]bool{}
	for from, tos := range graph {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	// Tarjan's strongly connected components, iterative enough for the
	// small graphs a module produces.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(graph[v]))
		for to := range graph[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if _, ok := index[to]; !ok {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				n := len(stack) - 1
				w := stack[n]
				stack = stack[:n]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var cycles [][]string
	for _, comp := range sccs {
		if len(comp) == 1 {
			v := comp[0]
			if _, self := graph[v][v]; self {
				cycles = append(cycles, []string{v})
			}
			continue
		}
		cycles = append(cycles, cyclePath(comp, graph))
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0] < cycles[j][0] })
	return cycles
}

// cyclePath renders one representative cycle through a multi-node SCC:
// starting from the smallest node, follow the smallest in-component
// successor until the walk returns to a visited node.
func cyclePath(comp []string, graph map[string]map[string]token.Pos) []string {
	in := map[string]bool{}
	for _, v := range comp {
		in[v] = true
	}
	path := []string{comp[0]}
	visited := map[string]bool{comp[0]: true}
	cur := comp[0]
	for {
		tos := make([]string, 0, len(graph[cur]))
		for to := range graph[cur] {
			if in[to] {
				tos = append(tos, to)
			}
		}
		sort.Strings(tos)
		if len(tos) == 0 {
			return path // cannot happen in an SCC; defensive
		}
		nextNode := tos[0]
		// Prefer closing back to the path start when possible.
		for _, to := range tos {
			if to == path[0] {
				nextNode = to
				break
			}
		}
		if visited[nextNode] {
			return path
		}
		visited[nextNode] = true
		path = append(path, nextNode)
		cur = nextNode
	}
}
