package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// StatsDrift checks that the statistics struct and its consumers stay
// in sync: every numeric field (scalars and fixed-size numeric arrays)
// must be folded by the struct's merge method, and every exported
// numeric field must be read somewhere in the consumer package that
// renders the CSVs, tables and figures.
//
// The invariant: a counter the engine accumulates but the merge skips
// silently vanishes from sharded runs; a counter the emitters never
// read is either dead weight or a metric the paper's figures are
// missing. Either way the drift is invisible to the compiler.
type StatsDrift struct {
	// StructPkg is the import path declaring the statistics struct.
	StructPkg string
	// StructName is the struct type name, e.g. "Stats".
	StructName string
	// MergeMethod is the method that folds one struct into another.
	MergeMethod string
	// ConsumerPkg is the import path whose code must read every
	// exported numeric field.
	ConsumerPkg string
}

// Name implements Analyzer.
func (StatsDrift) Name() string { return "stats-drift" }

// Doc implements Analyzer.
func (a StatsDrift) Doc() string {
	return fmt.Sprintf("every numeric field of %s.%s must flow through %s and the %s emitters",
		a.StructPkg, a.StructName, a.MergeMethod, a.ConsumerPkg)
}

// Run implements Analyzer.
func (a StatsDrift) Run(m *Module) []Diagnostic {
	spkg := m.Lookup(a.StructPkg)
	if spkg == nil {
		return []Diagnostic{{
			Pos:     m.Fset.Position(0),
			Rule:    a.Name(),
			Message: fmt.Sprintf("package %s not found in module", a.StructPkg),
		}}
	}
	obj := spkg.Types.Scope().Lookup(a.StructName)
	if obj == nil {
		return []Diagnostic{{
			Pos:     m.Fset.Position(0),
			Rule:    a.Name(),
			Message: fmt.Sprintf("type %s.%s not found", a.StructPkg, a.StructName),
		}}
	}
	named := namedOf(obj.Type())
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return []Diagnostic{{
			Pos:     m.Fset.Position(obj.Pos()),
			Rule:    a.Name(),
			Message: fmt.Sprintf("%s.%s is not a struct", a.StructPkg, a.StructName),
		}}
	}

	mergeBody := findMethodBody(spkg, named, a.MergeMethod)
	if mergeBody == nil {
		return []Diagnostic{{
			Pos:  m.Fset.Position(obj.Pos()),
			Rule: a.Name(),
			Message: fmt.Sprintf("%s.%s has no %s method (sharded runs cannot fold their statistics)",
				a.StructPkg, a.StructName, a.MergeMethod),
		}}
	}
	mergedFields := fieldsReferenced(spkg, named, mergeBody)

	consumer := m.Lookup(a.ConsumerPkg)
	consumedFields := map[string]bool{}
	if consumer != nil {
		for _, f := range consumer.Files {
			for fld := range fieldsReferenced(consumer, named, f) {
				consumedFields[fld] = true
			}
		}
	}

	var out []Diagnostic
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if !numericStatField(fld.Type()) {
			continue
		}
		if !mergedFields[fld.Name()] {
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(fld.Pos()),
				Rule: a.Name(),
				Message: fmt.Sprintf("numeric field %s.%s is not folded by %s",
					a.StructName, fld.Name(), a.MergeMethod),
			})
		}
		if fld.Exported() && !consumedFields[fld.Name()] {
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(fld.Pos()),
				Rule: a.Name(),
				Message: fmt.Sprintf("numeric field %s.%s is never read by %s (dead counter or missing metric)",
					a.StructName, fld.Name(), a.ConsumerPkg),
			})
		}
	}
	return out
}

// numericStatField reports whether t is a numeric scalar or a
// fixed-size (possibly nested) array of numerics.
func numericStatField(t types.Type) bool {
	for {
		arr, ok := t.Underlying().(*types.Array)
		if !ok {
			break
		}
		t = arr.Elem()
	}
	return isNumeric(t)
}

// findMethodBody returns the body of the named method of the type, or
// nil.
func findMethodBody(pkg *Package, named *types.Named, method string) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != method {
				continue
			}
			if recvBaseType(fn, pkg.Info) == named {
				return fn.Body
			}
		}
	}
	return nil
}

// fieldsReferenced collects names of the named struct's fields selected
// anywhere under root.
func fieldsReferenced(pkg *Package, named *types.Named, root ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel := pkg.Info.Selections[se]
		if sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		if namedOf(sel.Recv()) == named {
			out[sel.Obj().Name()] = true
		}
		return true
	})
	return out
}
