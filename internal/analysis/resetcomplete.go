package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ResetComplete verifies that recycled objects are actually recycled:
// for every struct type with a Reset/reset method (plus explicitly
// configured reset-equivalents such as epoch.Engine.Reconfigure), the
// method must reassign every field of the struct, or the field must
// carry a //storemlp:keep marker declaring that stale contents are
// intentionally preserved (geometry constants, buffers whose contents
// are overwritten before use).
//
// The invariant: sim.Pool and Engine.Reconfigure recycle engines — and
// through them caches, predictors, SMACs, rings and traffic sources —
// across simulation runs. A field the reset method forgets is state
// from a previous request leaking into the next one: the stale-state
// bug class that engine recycling introduced, invisible to the
// compiler and to any single-run test.
type ResetComplete struct {
	// Methods maps "pkgpath.TypeName" to the name of a method that must
	// also satisfy the reset contract, beyond the Reset/reset naming
	// convention (e.g. epoch.Engine -> Reconfigure).
	Methods map[string]string
}

// Name implements Analyzer.
func (ResetComplete) Name() string { return "resetcomplete" }

// Doc implements Analyzer.
func (ResetComplete) Doc() string {
	return "Reset methods of recycled types must reassign every field (or mark it //storemlp:keep)"
}

// Run implements Analyzer.
func (a ResetComplete) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil {
					continue
				}
				recv := recvBaseType(fn, pkg.Info)
				if recv == nil {
					continue
				}
				if !a.isResetMethod(fn, recv) {
					continue
				}
				if !isPointerRecv(fn, pkg.Info) {
					continue // a value receiver cannot reset anything
				}
				out = append(out, a.check(m, pkg, fn, recv)...)
			}
		}
	}
	return out
}

// isResetMethod reports whether fn is subject to the reset contract:
// named Reset/reset with no parameters and no results, or explicitly
// configured for its receiver type.
func (a ResetComplete) isResetMethod(fn *ast.FuncDecl, recv *types.Named) bool {
	name := fn.Name.Name
	if name == "Reset" || name == "reset" {
		return fn.Type.Params.NumFields() == 0 && fn.Type.Results.NumFields() == 0
	}
	return a.Methods[typeKey(recv)] == name
}

func isPointerRecv(fn *ast.FuncDecl, info *types.Info) bool {
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	_, isPtr := tv.Type.(*types.Pointer)
	return isPtr
}

// check verifies one reset method against its receiver's field list.
func (a ResetComplete) check(m *Module, pkg *Package, fn *ast.FuncDecl, recv *types.Named) []Diagnostic {
	st, fields := structFieldsAST(pkg, recv.Obj().Name())
	if st == nil {
		return nil
	}
	covered := map[string]bool{}
	visited := map[string]bool{}
	a.cover(pkg, fn, covered, visited)
	if covered["*"] {
		return nil // whole-receiver assignment resets everything
	}
	var out []Diagnostic
	for _, field := range fields {
		if hasDirective("keep", field.Doc, field.Comment) {
			continue
		}
		for _, name := range field.Names {
			if covered[name.Name] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:  m.Fset.Position(name.Pos()),
				Rule: a.Name(),
				Message: fmt.Sprintf("field %s.%s is not reassigned by %s (stale state survives recycling; reset it or mark the field //storemlp:keep)",
					recv.Obj().Name(), name.Name, fn.Name.Name),
			})
		}
	}
	return out
}

// cover records which receiver fields fn reassigns, following calls to
// other methods on the same receiver (e.g. a clearFastPaths helper).
func (a ResetComplete) cover(pkg *Package, fn *ast.FuncDecl, covered, visited map[string]bool) {
	if visited[fn.Name.Name] || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	visited[fn.Name.Name] = true
	recvObj := pkg.Info.Defs[fn.Recv.List[0].Names[0]]
	if recvObj == nil {
		return
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pkg.Info.Uses[id] == recvObj
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				coverLHS(lhs, isRecv, covered)
			}
		case *ast.CallExpr:
			// clear(recv.f) empties a map or slice in place.
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "clear" && len(st.Args) == 1 {
				if f, ok := fieldOfRecv(st.Args[0], isRecv); ok {
					covered[f] = true
				}
			}
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// recv.f.Reset() resets the field's object in place.
			if f, ok := fieldOfRecv(sel.X, isRecv); ok &&
				(sel.Sel.Name == "Reset" || sel.Sel.Name == "reset") {
				covered[f] = true
			}
			// recv.helper() may reassign fields; follow it.
			if isRecv(sel.X) {
				if helper := findMethod(pkg, sel.Sel.Name, fn); helper != nil {
					a.cover(pkg, helper, covered, visited)
				}
			}
		}
		return true
	})
}

// coverLHS marks the receiver field (if any) that an assignment target
// resets: recv.f = v, *recv = T{} (all fields), and element writes
// recv.f[i] = v (contents cleared in place, allocation kept).
func coverLHS(lhs ast.Expr, isRecv func(ast.Expr) bool, covered map[string]bool) {
	switch e := lhs.(type) {
	case *ast.StarExpr:
		if isRecv(e.X) {
			covered["*"] = true
		}
	case *ast.SelectorExpr:
		if isRecv(e.X) {
			covered[e.Sel.Name] = true
		}
	case *ast.IndexExpr:
		if f, ok := fieldOfRecv(e.X, isRecv); ok {
			covered[f] = true
		}
	case *ast.ParenExpr:
		coverLHS(e.X, isRecv, covered)
	}
}

// fieldOfRecv returns the field name when e is recv.<field>.
func fieldOfRecv(e ast.Expr, isRecv func(ast.Expr) bool) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !isRecv(sel.X) {
		return "", false
	}
	return sel.Sel.Name, true
}

// findMethod locates another method of caller's receiver type in the
// same package.
func findMethod(pkg *Package, name string, caller *ast.FuncDecl) *ast.FuncDecl {
	callerRecv := recvBaseType(caller, pkg.Info)
	if callerRecv == nil {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != name {
				continue
			}
			if recvBaseType(fn, pkg.Info) == callerRecv {
				return fn
			}
		}
	}
	return nil
}

// structFieldsAST finds the struct type declaration for name in pkg and
// returns its AST node plus the flattened field list.
func structFieldsAST(pkg *Package, name string) (*ast.StructType, []*ast.Field) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st, st.Fields.List
				}
			}
		}
	}
	return nil, nil
}
