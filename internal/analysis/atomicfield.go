package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity on struct fields: a
// field that is ever accessed through sync/atomic — either a typed
// atomic (atomic.Int64 and friends, used via .Load/.Store/.Add) or a
// plain integer passed by address to atomic.AddInt64-style functions —
// must never also be accessed as a plain read or write. Mixed access
// is exactly the bug the memory model does not forgive: the plain
// access races with every atomic one, and -race only sees it when the
// schedule cooperates.
//
// Typed atomic fields are sanctioned only as method-call receivers
// (x.f.Load()) or when passed by address (the idiomatic hand-off to a
// helper); any other selector use — copying the value, assigning over
// it — is a finding. Raw fields marked atomic by an
// atomic.<Op><Type>(&x.f, ...) call site are sanctioned only inside
// such calls.
type AtomicField struct{}

// Name implements Analyzer.
func (AtomicField) Name() string { return "atomicfield" }

// Doc implements Analyzer.
func (AtomicField) Doc() string {
	return "fields accessed via sync/atomic are never also accessed as plain reads/writes"
}

// atomicFieldKind distinguishes how a field earned its atomic status.
type atomicFieldKind uint8

const (
	atomicTyped atomicFieldKind = iota // declared as atomic.Int64 etc.
	atomicRaw                          // plain int passed to atomic.AddInt64 etc.
)

// Run implements Analyzer.
func (a AtomicField) Run(m *Module) []Diagnostic {
	marked := map[string]atomicFieldKind{} // "pkg.Type.field" -> kind

	// Pass 1a: fields with a sync/atomic type.
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					named := namedOf(objType(pkg.Info.Defs[ts.Name]))
					if named == nil {
						continue
					}
					for _, field := range st.Fields.List {
						tv, ok := pkg.Info.Types[field.Type]
						if !ok || !isAtomicType(tv.Type) {
							continue
						}
						for _, name := range field.Names {
							marked[typeKey(named)+"."+name.Name] = atomicTyped
						}
					}
				}
			}
		}
	}

	// Pass 1b: fields whose address reaches a sync/atomic function.
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					if key := addressedFieldKey(pkg, arg); key != "" {
						if _, typed := marked[key]; !typed {
							marked[key] = atomicRaw
						}
					}
				}
				return true
			})
		}
	}

	if len(marked) == 0 {
		return nil
	}

	// Pass 2: every selector access to a marked field must be in a
	// sanctioned position.
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			sanctioned := map[*ast.SelectorExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					// x.f.Load(...): the receiver selector of a method call
					// on a typed atomic is the atomic API itself.
					if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
						if recv, ok := fun.X.(*ast.SelectorExpr); ok {
							if key := fieldKeyOf(pkg, recv); key != "" && marked[key] == atomicTyped {
								sanctioned[recv] = true
							}
						}
					}
					// atomic.AddInt64(&x.f, ...): raw fields inside
					// sync/atomic calls.
					if isAtomicPkgCall(pkg, x) {
						for _, arg := range x.Args {
							if sel := addressedField(arg); sel != nil {
								sanctioned[sel] = true
							}
						}
					}
				case *ast.UnaryExpr:
					// &x.f on a typed atomic: a hand-off by pointer keeps
					// every access through the atomic API.
					if sel := addressedField(x); sel != nil {
						if key := fieldKeyOf(pkg, sel); key != "" && marked[key] == atomicTyped {
							sanctioned[sel] = true
						}
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				key := fieldKeyOf(pkg, sel)
				if key == "" {
					return true
				}
				kind, ok := marked[key]
				if !ok {
					return true
				}
				how := "accessed via sync/atomic elsewhere"
				if kind == atomicTyped {
					how = "a typed atomic"
				}
				out = append(out, Diagnostic{
					Pos:  m.Fset.Position(sel.Sel.Pos()),
					Rule: a.Name(),
					Message: fmt.Sprintf("field %s is %s but is read/written plainly here (use the atomic API for every access)",
						shortLock(key), how),
				})
				return true
			})
		}
	}
	return out
}

// fieldKeyOf resolves sel to "pkg.Type.field" when it selects a struct
// field, else "".
func fieldKeyOf(pkg *Package, sel *ast.SelectorExpr) string {
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return ""
	}
	return typeKey(named) + "." + sel.Sel.Name
}

// addressedField unwraps &x.f (through parens) to the field selector.
func addressedField(e ast.Expr) *ast.SelectorExpr {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	un, ok := e.(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	inner := un.X
	for {
		if p, ok := inner.(*ast.ParenExpr); ok {
			inner = p.X
			continue
		}
		break
	}
	sel, _ := inner.(*ast.SelectorExpr)
	return sel
}

// addressedFieldKey resolves &x.f to its field key, or "".
func addressedFieldKey(pkg *Package, e ast.Expr) string {
	if sel := addressedField(e); sel != nil {
		return fieldKeyOf(pkg, sel)
	}
	return ""
}

// isAtomicPkgCall reports whether call resolves to a sync/atomic
// package-level function (atomic.AddInt64, atomic.LoadUint32, ...).
func isAtomicPkgCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc && obj.Pkg().Path() == "sync/atomic"
}

// isAtomicType reports whether t is one of sync/atomic's typed values
// (atomic.Int64, atomic.Uint32, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		strings.HasPrefix(typeKey(named), "sync/atomic.")
}
