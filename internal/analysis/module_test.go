package analysis

import (
	"fmt"
	"go/constant"
	"runtime"
	"testing"
)

// otherGOOS returns a real GOOS that is not the host's, for negative
// suffix cases.
func otherGOOS() string {
	if runtime.GOOS == "linux" {
		return "windows"
	}
	return "linux"
}

// otherGOARCH returns a real GOARCH that is not the host's.
func otherGOARCH() string {
	if runtime.GOARCH == "amd64" {
		return "arm64"
	}
	return "amd64"
}

func TestFileBuildsSuffixes(t *testing.T) {
	goos, goarch := runtime.GOOS, runtime.GOARCH
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{fmt.Sprintf("x_%s.go", goos), true},
		{fmt.Sprintf("x_%s.go", otherGOOS()), false},
		{fmt.Sprintf("x_%s.go", goarch), true},
		{fmt.Sprintf("x_%s.go", otherGOARCH()), false},
		{fmt.Sprintf("x_%s_%s.go", goos, goarch), true},
		{fmt.Sprintf("x_%s_%s.go", otherGOOS(), goarch), false},
		{fmt.Sprintf("x_%s_%s.go", goos, otherGOARCH()), false},
		// An OS name not in the final suffix position does not
		// constrain: only the trailing _GOOS[_GOARCH] counts.
		{fmt.Sprintf("%s_helpers.go", otherGOOS()), true},
		// Suffix words that are no platform at all constrain nothing.
		{"x_test_utils.go", true},
	}
	for _, tc := range cases {
		if got := fileBuilds(tc.name, []byte("package p\n")); got != tc.want {
			t.Errorf("fileBuilds(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFileBuildsConstraintLines(t *testing.T) {
	goos := runtime.GOOS
	cases := []struct {
		src  string
		want bool
	}{
		{"//go:build " + goos + "\n\npackage p\n", true},
		{"//go:build !" + goos + "\n\npackage p\n", false},
		{"//go:build " + otherGOOS() + "\n\npackage p\n", false},
		{"//go:build " + goos + " || " + otherGOOS() + "\n\npackage p\n", true},
		{"//go:build " + goos + " && " + otherGOOS() + "\n\npackage p\n", false},
		{"//go:build go1.21\n\npackage p\n", true},
		{"//go:build gc\n\npackage p\n", true},
		{"//go:build some_custom_tag\n\npackage p\n", false},
		{"//go:build !some_custom_tag\n\npackage p\n", true},
		// A //go:build line after the package clause is not a
		// constraint; the header scan must stop at "package".
		{"package p\n\n//go:build " + otherGOOS() + "\nvar X = 1\n", true},
		// Malformed constraints defer to the parser's error reporting.
		{"//go:build &&\n\npackage p\n", true},
	}
	for _, tc := range cases {
		if got := fileBuilds("plain.go", []byte(tc.src)); got != tc.want {
			t.Errorf("fileBuilds(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}

	unixWant := unixGOOS[goos]
	if got := fileBuilds("plain.go", []byte("//go:build unix\n\npackage p\n")); got != unixWant {
		t.Errorf("fileBuilds(unix tag) = %v, want %v on %s", got, unixWant, goos)
	}
}

// TestLoadHonorsBuildConstraints loads a module whose package declares
// the same constant in one file per platform (suffix-selected) plus a
// !linux/!darwin/!windows fallback, a release-tagged file, and a file
// behind a never-true tag that would redeclare the constant: type
// checking succeeds only if the loader picks exactly the host's file
// set.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	m := loadTestModule(t, "constrained")
	pkg := m.Lookup("example.com/constrained/plat")
	if pkg == nil {
		t.Fatal("package example.com/constrained/plat not loaded")
	}
	want := runtime.GOOS
	switch want {
	case "linux", "darwin", "windows":
	default:
		want = "other"
	}
	obj := pkg.Types.Scope().Lookup("OS")
	if obj == nil {
		t.Fatal("constant OS not found (no platform file selected)")
	}
	got := constant.StringVal(obj.(interface{ Val() constant.Value }).Val())
	if got != want {
		t.Errorf("constrained OS = %q, want %q", got, want)
	}
	if tagged := pkg.Types.Scope().Lookup("Tagged"); tagged == nil {
		t.Error("constant Tagged not found (release-tagged file dropped)")
	}
	if len(pkg.Files) != 2 {
		t.Errorf("loaded %d files, want 2 (platform file + release-tagged file)", len(pkg.Files))
	}
}
