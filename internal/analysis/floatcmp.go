package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp forbids == and != on floating-point operands outside test
// files.
//
// The invariant: the simulator's metrics (EPI, MLP, fractions, CPI) are
// accumulated floats; exact equality on them is either a latent epsilon
// bug or an accidental way to spell "rate disabled" that breaks the
// moment a computed value arrives. Sign tests (<= 0, > 0) express the
// same intent robustly.
type FloatCmp struct{}

// Name implements Analyzer.
func (FloatCmp) Name() string { return "floatcmp" }

// Doc implements Analyzer.
func (FloatCmp) Doc() string {
	return "no == or != on floating-point operands outside _test.go files"
}

// Run implements Analyzer.
func (a FloatCmp) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			if strings.HasSuffix(m.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloatExpr(pkg, be.X) || isFloatExpr(pkg, be.Y) {
					out = append(out, Diagnostic{
						Pos:  m.Fset.Position(be.OpPos),
						Rule: a.Name(),
						Message: fmt.Sprintf("floating-point %s comparison (use a sign test or an epsilon)",
							be.Op),
					})
				}
				return true
			})
		}
	}
	return out
}

func isFloatExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
