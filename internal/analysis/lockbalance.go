package analysis

import (
	"fmt"
	"go/ast"
	"go/token"

	"storemlp/internal/analysis/flow"
)

// LockBalance checks that every mutex acquisition is balanced by a
// release on every control-flow path out of the function: a plain
// Unlock on the path, or a deferred Unlock that covers every exit. The
// classic shape it catches is the early return threaded past a paired
// Unlock —
//
//	mu.Lock()
//	if err != nil {
//		return err // mu still held: every later caller deadlocks
//	}
//	mu.Unlock()
//
// — which -race never sees (it is not a race) and which deadlocks the
// process the next time anyone takes the lock.
//
// The check runs over the flow package's CFG with may-join semantics: a
// lock that reaches the function exit still plainly held on *some* path
// is reported at its acquisition site. A deferred unlock downgrades the
// lock to deferred-held, which is balanced by definition, so the
// conditional-acquire idiom
//
//	if c { mu.Lock(); defer mu.Unlock() }
//
// stays clean. Functions that intentionally return holding the lock
// (lock-handoff helpers) opt out with //storemlp:locked on the function
// doc, the same annotation guardedby honors for callee-held locks.
//
// Lock identity is the rendered expression ("q.mu"), so a lock taken on
// one receiver and released on another is a leak, not a wash.
type LockBalance struct{}

// Name implements Analyzer.
func (LockBalance) Name() string { return "lockbalance" }

// Doc implements Analyzer.
func (LockBalance) Doc() string {
	return "every mutex Lock is released on every path out of the function (defer counts)"
}

// Run implements Analyzer.
func (a LockBalance) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if hasDirective("locked", fn.Doc) {
					continue // lock handoff is this function's contract
				}
				for _, body := range funcBodies(fn) {
					out = append(out, a.checkBody(m, body)...)
				}
			}
		}
	}
	return out
}

// checkBody reports every lock that reaches the body's exit plainly
// held on some path.
func (a LockBalance) checkBody(m *Module, body *ast.BlockStmt) []Diagnostic {
	g := m.CFG(body)
	lk := flow.SolveLocks(g, lockClassifier, false)
	atExit := lk.In(g.Exit)
	if atExit == nil {
		return nil // exit unreachable: the body never returns
	}
	var out []Diagnostic
	for id, status := range atExit {
		if status != flow.HeldPlain {
			continue // deferred unlock covers every exit
		}
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(acquirePos(g, id)),
			Rule: a.Name(),
			Message: fmt.Sprintf("%s can still be held when the function returns (unlock it on every path, or defer the unlock; lock-handoff functions opt out with //storemlp:locked)",
				id),
		})
	}
	return out
}

// acquirePos finds the first acquisition site of the lock in the graph,
// for a stable diagnostic position.
func acquirePos(g *flow.Graph, id string) token.Pos {
	pos := token.NoPos
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(c ast.Node) bool {
				if _, ok := c.(*ast.FuncLit); ok {
					return false
				}
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				if cid, op := lockClassifier(call); op == flow.OpAcquire && cid == id {
					if pos == token.NoPos || call.Pos() < pos {
						pos = call.Pos()
					}
				}
				return true
			})
		}
	}
	return pos
}
