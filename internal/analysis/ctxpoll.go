package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"storemlp/internal/analysis/flow"
)

// CtxPoll enforces the cancellation contract of the batched trace
// pipeline: any loop in a context-taking function that consumes trace
// batches (trace.Fill / Next / ReadBatch) must poll the context — a
// ctx.Err() call or ctx.Done() receive — so a cancelled request stops
// within one batch (the 8192-instruction bound the service layer
// promises) instead of running a multi-billion instruction replay to
// completion.
//
// The check is path-sensitive over the flow package's CFG: every
// iteration path that reaches a consuming call and loops back must pass
// a poll. A poll parked on a rare branch ("if debug { ctx.Err() }")
// does not satisfy the contract — the common iteration path never
// checks — while the engine's batch-refill pattern ("if bi == bn {
// poll; Fill }") does: the paths that skip the poll also skip the
// consumption.
//
// Calls are attributed to their innermost enclosing loop: an inner
// stall loop with no trace consumption needs no poll, and a nested
// consuming loop is checked on its own.
type CtxPoll struct {
	// TracePkg is the import path of the trace package whose consuming
	// calls (Fill, Next, ReadBatch) mark a loop as batch-iterating.
	TracePkg string
	// Lexical reverts to the pre-CFG check, which accepts a poll
	// anywhere in the loop body even if the consuming iteration path
	// never executes it. Kept as the regression baseline the fixture
	// tests pin the port against.
	Lexical bool
}

// Name implements Analyzer.
func (CtxPoll) Name() string { return "ctxpoll" }

// Doc implements Analyzer.
func (CtxPoll) Doc() string {
	return "loops consuming trace batches in context-taking functions must poll ctx"
}

// Run implements Analyzer.
func (a CtxPoll) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ctxObj := contextParam(pkg, fn)
				if ctxObj == nil {
					continue
				}
				report := func(pos token.Pos) {
					out = append(out, Diagnostic{
						Pos:  m.Fset.Position(pos),
						Rule: a.Name(),
						Message: fmt.Sprintf("loop consumes trace batches without polling %s (check %s.Err() every batch so cancellation lands within the 8192-inst bound)",
							ctxObj.Name(), ctxObj.Name()),
					})
				}
				if a.Lexical {
					ast.Inspect(fn.Body, func(n ast.Node) bool {
						body, pos := loopBody(n)
						if body == nil {
							return true
						}
						if !a.consumesTrace(pkg, body) {
							return true
						}
						if pollsCtx(pkg, body, ctxObj) {
							return true
						}
						report(pos)
						return true
					})
					continue
				}
				for _, body := range funcBodies(fn) {
					g := m.CFG(body)
					for _, loop := range sortedLoops(g) {
						lb, pos := loopBody(loop)
						if lb == nil || !a.consumesTrace(pkg, lb) {
							continue
						}
						if !a.polledOnConsumePaths(pkg, g, loop, ctxObj) {
							report(pos)
						}
					}
				}
			}
		}
	}
	return out
}

// sortedLoops returns the graph's loop statements in source order.
func sortedLoops(g *flow.Graph) []ast.Stmt {
	loops := make([]ast.Stmt, 0, len(g.Loops))
	for s := range g.Loops {
		loops = append(loops, s)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Pos() < loops[j].Pos() })
	return loops
}

// polledOnConsumePaths reports whether every iteration path of the loop
// that consumes trace batches also polls the context: there must be no
// cycle head -> consume -> head through the natural loop that avoids
// every polling block. Consumption inside nested loops is excluded —
// those loops carry their own obligation.
func (a CtxPoll) polledOnConsumePaths(pkg *Package, g *flow.Graph, loop ast.Stmt, ctxObj types.Object) bool {
	set := g.LoopBody(loop)
	head := g.Loops[loop]
	if set == nil || head == nil {
		return true // unreachable loop: nothing executes
	}
	// Blocks owned by nested loops do not consume on this loop's behalf.
	nested := map[*flow.Block]bool{}
	for other, oh := range g.Loops {
		if other == loop || !set[oh] {
			continue
		}
		for blk := range g.LoopBody(other) {
			if blk != head {
				nested[blk] = true
			}
		}
	}
	poll := map[*flow.Block]bool{}
	consume := map[*flow.Block]bool{}
	for blk := range set {
		for _, n := range blk.Nodes {
			if nodePolls(pkg, n, ctxObj) {
				poll[blk] = true
			}
			if !nested[blk] && nodeConsumes(a, pkg, n) {
				consume[blk] = true
			}
		}
	}
	if len(consume) == 0 {
		return true
	}
	if poll[head] {
		return true // every iteration passes the head
	}
	// Forward: blocks reachable from the head without crossing a poll.
	fwd := reachAvoiding(head, set, poll, func(b *flow.Block) []*flow.Block { return b.Succs })
	// Backward: blocks that reach the head without crossing a poll.
	preds := map[*flow.Block][]*flow.Block{}
	for blk := range set {
		for _, s := range blk.Succs {
			if set[s] {
				preds[s] = append(preds[s], blk)
			}
		}
	}
	bwd := reachAvoiding(head, set, poll, func(b *flow.Block) []*flow.Block { return preds[b] })
	for blk := range consume {
		if poll[blk] {
			continue
		}
		if (blk == head) || (fwd[blk] && bwd[blk]) {
			return false // an unpolled consuming iteration exists
		}
	}
	return true
}

// reachAvoiding walks edges from start within set, never entering
// blocks in avoid; start itself is not subject to avoid.
func reachAvoiding(start *flow.Block, set, avoid map[*flow.Block]bool, next func(*flow.Block) []*flow.Block) map[*flow.Block]bool {
	seen := map[*flow.Block]bool{}
	stack := []*flow.Block{start}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range next(blk) {
			if !set[n] || avoid[n] || seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, n)
		}
	}
	return seen
}

// nodeConsumes reports whether the node (outside function literals)
// calls a trace consumer.
func nodeConsumes(a CtxPoll, pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch x := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if a.isTraceCall(pkg, x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// nodePolls reports whether the node (outside function literals)
// contains ctx.Err or ctx.Done on the given context object.
func nodePolls(pkg *Package, n ast.Node, ctxObj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := c.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pkg.Info.Uses[id] == ctxObj {
			found = true
		}
		return true
	})
	return found
}

// contextParam returns the function's context.Context parameter object,
// or nil.
func contextParam(pkg *Package, fn *ast.FuncDecl) types.Object {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && obj.Type() != nil && obj.Type().String() == "context.Context" {
				return obj
			}
		}
	}
	return nil
}

// loopBody unwraps a for/range statement into its body and position.
func loopBody(n ast.Node) (*ast.BlockStmt, token.Pos) {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body, l.For
	case *ast.RangeStmt:
		return l.Body, l.For
	}
	return nil, 0
}

// consumesTrace reports whether the loop body itself (excluding nested
// loops and function literals, which own their calls) calls a trace
// consumer.
func (a CtxPoll) consumesTrace(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	for _, s := range body.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if a.isTraceCall(pkg, x) {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// isTraceCall reports whether call resolves to TracePkg's Fill, Next or
// ReadBatch — as a method (including through the Source/BatchSource
// interfaces) or a package-level function.
func (a CtxPoll) isTraceCall(pkg *Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pkg.Info.Uses[fun.Sel] // qualified call: trace.Fill(...)
		}
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != a.TracePkg {
		return false
	}
	switch obj.Name() {
	case "Fill", "Next", "ReadBatch":
		return true
	}
	return false
}

// pollsCtx reports whether the loop body contains ctx.Err() or
// ctx.Done() on the given context object, anywhere outside function
// literals.
func pollsCtx(pkg *Package, body *ast.BlockStmt, ctxObj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if ok && pkg.Info.Uses[id] == ctxObj {
			found = true
		}
		return true
	})
	return found
}
