package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxPoll enforces the cancellation contract of the batched trace
// pipeline: any loop in a context-taking function that consumes trace
// batches (trace.Fill / Next / ReadBatch) must poll the context — a
// ctx.Err() call or ctx.Done() receive lexically inside the loop — so
// a cancelled request stops within one batch (the 8192-instruction
// bound the service layer promises) instead of running a multi-billion
// instruction replay to completion.
//
// Calls are attributed to their innermost enclosing loop: an inner
// stall loop with no trace consumption needs no poll, and a nested
// consuming loop is checked on its own.
type CtxPoll struct {
	// TracePkg is the import path of the trace package whose consuming
	// calls (Fill, Next, ReadBatch) mark a loop as batch-iterating.
	TracePkg string
}

// Name implements Analyzer.
func (CtxPoll) Name() string { return "ctxpoll" }

// Doc implements Analyzer.
func (CtxPoll) Doc() string {
	return "loops consuming trace batches in context-taking functions must poll ctx"
}

// Run implements Analyzer.
func (a CtxPoll) Run(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.SortedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ctxObj := contextParam(pkg, fn)
				if ctxObj == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					body, pos := loopBody(n)
					if body == nil {
						return true
					}
					if !a.consumesTrace(pkg, body) {
						return true
					}
					if pollsCtx(pkg, body, ctxObj) {
						return true
					}
					out = append(out, Diagnostic{
						Pos:  m.Fset.Position(pos),
						Rule: a.Name(),
						Message: fmt.Sprintf("loop consumes trace batches without polling %s (check %s.Err() every batch so cancellation lands within the 8192-inst bound)",
							ctxObj.Name(), ctxObj.Name()),
					})
					return true
				})
			}
		}
	}
	return out
}

// contextParam returns the function's context.Context parameter object,
// or nil.
func contextParam(pkg *Package, fn *ast.FuncDecl) types.Object {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && obj.Type() != nil && obj.Type().String() == "context.Context" {
				return obj
			}
		}
	}
	return nil
}

// loopBody unwraps a for/range statement into its body and position.
func loopBody(n ast.Node) (*ast.BlockStmt, token.Pos) {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body, l.For
	case *ast.RangeStmt:
		return l.Body, l.For
	}
	return nil, 0
}

// consumesTrace reports whether the loop body itself (excluding nested
// loops and function literals, which own their calls) calls a trace
// consumer.
func (a CtxPoll) consumesTrace(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	for _, s := range body.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if a.isTraceCall(pkg, x) {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// isTraceCall reports whether call resolves to TracePkg's Fill, Next or
// ReadBatch — as a method (including through the Source/BatchSource
// interfaces) or a package-level function.
func (a CtxPoll) isTraceCall(pkg *Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pkg.Info.Uses[fun.Sel] // qualified call: trace.Fill(...)
		}
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != a.TracePkg {
		return false
	}
	switch obj.Name() {
	case "Fill", "Next", "ReadBatch":
		return true
	}
	return false
}

// pollsCtx reports whether the loop body contains ctx.Err() or
// ctx.Done() on the given context object, anywhere outside function
// literals.
func pollsCtx(pkg *Package, body *ast.BlockStmt, ctxObj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if ok && pkg.Info.Uses[id] == ctxObj {
			found = true
		}
		return true
	})
	return found
}
