package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// Directive is one parsed //storemlp:<name>[(<args>)] annotation. The
// grammar, shared by every analyzer in the suite:
//
//	directive = "storemlp:" name [ "(" args ")" ]
//	name      = lowercase letters
//	args      = arg { "," arg }        (lockafter only)
//
// A comment may carry several directives ("//storemlp:noalloc
// //storemlp:inline"), and a directive may trail prose on the same
// line. ParseDirectives is the one place the grammar lives; analyzers
// match parsed names instead of substring-grepping comment text.
type Directive struct {
	// Name is the directive keyword ("keep", "lockafter", ...).
	Name string
	// Args holds the parenthesized arguments, nil for the argument-less
	// directives.
	Args []string
}

// directiveTakesArgs maps every known directive to whether it requires
// a parenthesized argument list. An unknown name is a parse error —
// a typo like //storemlp:noaloc must fail loudly, not silently
// deactivate the annotation it was meant to be.
var directiveTakesArgs = map[string]bool{
	"keep":      false, // resetcomplete: field intentionally survives Reset
	"noalloc":   false, // hotpath: function must not allocate
	"inline":    false, // hotpath: function must inline
	"nodigest":  false, // digestcover: field excluded from the config digest
	"daemon":    false, // goleak: goroutine intentionally unbounded
	"locked":    false, // guardedby/lockbalance: lock held by caller / handed off
	"lockafter": true,  // lockorder: declared acquisition order
	"owned":     false, // sharedcapture: goroutine owns the captured variable
	"nomerge":   false, // mergecomplete: field deliberately unmerged
	"noclose":   false, // closeall: value deliberately left open
}

// ParseDirectives extracts every //storemlp: directive from one
// comment's text. It returns an error for an unknown directive name,
// for arguments on a directive that takes none, and for a missing,
// empty or unterminated argument list on one that requires them.
func ParseDirectives(text string) ([]Directive, error) {
	var out []Directive
	rest := text
	for {
		i := strings.Index(rest, "storemlp:")
		if i < 0 {
			return out, nil
		}
		rest = rest[i+len("storemlp:"):]
		j := 0
		for j < len(rest) && rest[j] >= 'a' && rest[j] <= 'z' {
			j++
		}
		name := rest[:j]
		rest = rest[j:]
		takesArgs, known := directiveTakesArgs[name]
		if !known {
			return out, fmt.Errorf("unknown directive storemlp:%s", name)
		}
		d := Directive{Name: name}
		if strings.HasPrefix(rest, "(") {
			end := strings.IndexByte(rest, ')')
			if end < 0 {
				return out, fmt.Errorf("storemlp:%s: unterminated argument list", name)
			}
			if !takesArgs {
				return out, fmt.Errorf("storemlp:%s takes no arguments", name)
			}
			for _, arg := range strings.Split(rest[1:end], ",") {
				arg = strings.TrimSpace(arg)
				if arg == "" {
					return out, fmt.Errorf("storemlp:%s: empty argument", name)
				}
				if strings.ContainsRune(arg, '(') {
					return out, fmt.Errorf("storemlp:%s: malformed argument %q", name, arg)
				}
				d.Args = append(d.Args, arg)
			}
			rest = rest[end+1:]
		} else if takesArgs {
			return out, fmt.Errorf("storemlp:%s requires arguments, e.g. storemlp:%s(mu)", name, name)
		}
		out = append(out, d)
	}
}

// hasDirective reports whether any comment in the given groups carries
// the named directive, by the grammar above. Comments with parse errors
// contribute nothing.
func hasDirective(name string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			ds, err := ParseDirectives(c.Text)
			if err != nil {
				continue
			}
			for _, d := range ds {
				if d.Name == name {
					return true
				}
			}
		}
	}
	return false
}
