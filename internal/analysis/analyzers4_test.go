package analysis

import (
	"strings"
	"testing"
)

func TestLockBalanceFindings(t *testing.T) {
	m := loadTestModule(t, "lockbalancebad")
	diags := Run(m, []Analyzer{LockBalance{}})
	checkDiags(t, m, diags, []string{
		"bank/bank.go:50: [lockbalance] a.mu can still be held when the function returns (unlock it on every path, or defer the unlock; lock-handoff functions opt out with //storemlp:locked)",
		"bank/bank.go:63: [lockbalance] a.mu can still be held when the function returns (unlock it on every path, or defer the unlock; lock-handoff functions opt out with //storemlp:locked)",
	})
}

func TestSharedCaptureFindings(t *testing.T) {
	m := loadTestModule(t, "sharedcapturebad")
	diags := Run(m, []Analyzer{SharedCapture{}})
	checkDiags(t, m, diags, []string{
		"fan/fan.go:20: [sharedcapture] go-closure writes captured variable total without synchronization (guard it with a mutex, give each worker its own slot, or annotate //storemlp:owned)",
		"fan/fan.go:35: [sharedcapture] go-closure writes captured variable res without synchronization (guard it with a mutex, give each worker its own slot, or annotate //storemlp:owned)",
	})
}

func TestMergeCompleteFindings(t *testing.T) {
	m := loadTestModule(t, "mergebad")
	diags := Run(m, []Analyzer{MergeComplete{Roots: []string{"example.com/mergebad/stats.Stats.Merge"}}})
	checkDiags(t, m, diags, []string{
		"stats/stats.go:25: [mergecomplete] field Hist.Overflow is not folded by Add on the parallel merge path (merge it, or annotate //storemlp:nomerge)",
		"stats/stats.go:36: [mergecomplete] field Stats.Aborts is not folded by Merge on the parallel merge path (merge it, or annotate //storemlp:nomerge)",
	})
}

func TestCloseAllFindings(t *testing.T) {
	m := loadTestModule(t, "closebad")
	diags := Run(m, []Analyzer{CloseAll{}})
	checkDiags(t, m, diags, []string{
		"res/res.go:39: [closeall] r (*example.com/closebad/res.R) is not closed on every path out of the function (close it, hand it off, or annotate //storemlp:noclose)",
	})
}

// TestParallelAnalyzersCleanOnGood pins the false-positive side: the
// good module has balanced locks, no go statements writing captures,
// no merge roots configured, and no Close-able constructors.
func TestParallelAnalyzersCleanOnGood(t *testing.T) {
	m := loadTestModule(t, "good")
	diags := Run(m, []Analyzer{
		LockBalance{},
		SharedCapture{},
		MergeComplete{},
		CloseAll{},
	})
	if len(diags) != 0 {
		t.Errorf("good module should be clean, got:\n%s",
			strings.Join(render(t, m, diags), "\n"))
	}
}
